GO ?= go

# Trace scale for the BENCH_experiments.json snapshot; 1.0 is the paper's
# full traces.
BENCH_SCALE ?= 0.25

.PHONY: ci fmt vet lint lint-baseline build test race bench trace-smoke chaos chaos-demo loadtest loadtest-smoke wire-smoke soak-smoke soak prefetch-smoke

# ci is the full gate: formatting, vet, the gmslint analyzer suite, build,
# tests (including the gmsdebug-instrumented core), a race-detector pass
# over every package, the trace-export smoke, the bounded scale-out load
# smoke, the batched-wire concurrency smoke, the bounded crash-soak smoke,
# the learned-prefetcher smoke, and the benchmark snapshot.
ci: fmt vet lint build test race trace-smoke loadtest-smoke wire-smoke soak-smoke prefetch-smoke bench

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the project-specific analyzers (unitsafety, simpurity, lockio,
# errdrop, deadlinecheck, tagswitch, goloop, lockorder); see DESIGN.md
# "Static analysis & invariants". The -short test pass is the analyzer
# suite's own fixture self-tests: it proves the checks still fire on known
# violations before trusting a clean run over the repository.
lint:
	$(GO) test -short ./internal/lint ./cmd/gmslint
	$(GO) run ./cmd/gmslint ./...

# lint-baseline regenerates lint_baseline.json, the committed findings
# artifact. It is kept empty — the lint gate admits no findings — so any
# diff in this file in a change is itself reviewable evidence.
lint-baseline:
	$(GO) run ./cmd/gmslint -json ./... > lint_baseline.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...
	$(GO) test -tags gmsdebug ./internal/core

# -short skips the heaviest experiment sweeps, but the parallel-engine
# determinism test (internal/experiments TestParallelOutputMatchesSequential)
# deliberately stays enabled so the full RunAll fan-out — every experiment,
# every sweep cell, on a width-8 pool — runs under the race detector at
# small scale on every CI pass.
race:
	$(GO) test -race -short -timeout 15m ./...

# bench runs the Go microbenchmarks and regenerates BENCH_experiments.json,
# the per-experiment wall-clock snapshot that seeds the repo's perf
# trajectory (see EXPERIMENTS.md). Override the scale or width with e.g.
# `make bench BENCH_SCALE=1.0 BENCH_J=8`.
BENCH_J ?= 0
bench:
	$(GO) test -bench . -benchtime 200x -run xxx -timeout 30m ./...
	$(GO) run ./cmd/subpagesim -run all -scale $(BENCH_SCALE) -j $(BENCH_J) \
		-benchout BENCH_experiments.json > /dev/null
	$(GO) run ./cmd/gmsload -wire -shards 1 -clients 16 -requests 100 \
		-pages 256 -policy pipelined -subpage 256 -cache 8 -dirservice 500us \
		-benchout BENCH_experiments.json > /dev/null
	$(GO) run ./cmd/gmsload -dirlog -dirlogn 1000,10000,50000 \
		-benchout BENCH_experiments.json > /dev/null

# trace-smoke drives the fault tracer end to end through the CLI: one
# small traced simulation exporting both formats, run twice, and the
# exports must be byte-identical (the tracer's determinism contract,
# DESIGN.md §8) and non-empty.
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	for run in a b; do \
		$(GO) run ./cmd/subpagesim -app modula3 -scale 0.05 -mem 0.5 -policy lazy \
			-traceout "$$tmp/$$run.chrome.json" -tracejsonl "$$tmp/$$run.jsonl" > /dev/null || exit 1; \
	done && \
	test -s "$$tmp/a.chrome.json" && test -s "$$tmp/a.jsonl" && \
	cmp -s "$$tmp/a.chrome.json" "$$tmp/b.chrome.json" && \
	cmp -s "$$tmp/a.jsonl" "$$tmp/b.jsonl" && \
	echo "trace-smoke: exports non-empty and byte-identical across reruns"

# loadtest is the scale-out experiment (EXPERIMENTS.md "Sharded directory
# loadtest"): a 1-shard vs 4-shard directory comparison under a lookup
# storm and a fleet of closed-loop faulting clients, with each shard's
# lookup capacity service-emulated (-dirservice) so the scaling is visible
# on any host. It fails unless 4 shards deliver >= 3x the 1-shard lookup
# throughput, and writes the SLO table (experiments_loadtest.txt) plus the
# "loadtest" section of BENCH_experiments.json — both committed artifacts.
loadtest:
	$(GO) run ./cmd/gmsload -shards 1,4 -minx 3 -j 16 -duration 2s \
		-clients 100 -requests 100 -dirservice 500us -warmup -cache 8 \
		-out experiments_loadtest.txt -benchout BENCH_experiments.json

# loadtest-smoke is the bounded CI variant: same shape, ~1s of wall clock,
# a looser 2x scaling gate, and no artifacts written (the tree stays
# clean; the table goes to stdout).
loadtest-smoke:
	$(GO) run ./cmd/gmsload -shards 1,4 -minx 2 -j 8 -duration 250ms \
		-clients 8 -requests 20 -dirservice 500us -warmup -cache 8

# wire-smoke is the bounded batched-wire smoke: v2 and v1-pinned clients
# hammer the same replicated servers concurrently — hedges, cancels and
# pool churn included — under the race detector.
wire-smoke:
	$(GO) test -race -run 'TestBatchedWireSmoke|TestHedgeLoserCanceledEagerly' \
		-count=1 ./internal/remote/

# chaos runs the kill/restart self-heal soak: the control-plane recovery
# scenario (lease expiry, epoch-fenced re-registration, breaker probe) on a
# lossy, jittery network across several fault-schedule seeds, under the
# race detector. The short single-pass variant of the same scenario runs in
# every `make test` / `make race` (and thus `make ci`) as
# TestChaosKillRestartSelfHeal.
chaos:
	GMS_CHAOS_SOAK=1 $(GO) test -race -run 'TestChaosKillRestart' -count=1 -v ./internal/remote/

# soak is the kill-anything durability soak (EXPERIMENTS.md "Crash soak"):
# a journaled directory is killed and restarted in place, repeatedly,
# under continuous fault load. gmsload exits non-zero if any recovery
# invariant breaks: a client hang, a re-registration storm, an
# unresolvable page, or a stale-epoch resurrection.
soak:
	$(GO) run ./cmd/gmsload -soak -crashes 5 -crashevery 300ms \
		-clients 4 -pages 256 -servers 2

# soak-smoke is the bounded CI variant: two crash cycles, ~1s of wall
# clock, same invariants, no artifacts written.
soak-smoke:
	$(GO) run ./cmd/gmsload -soak -crashes 2 -crashevery 150ms \
		-clients 2 -pages 64 -servers 1

chaos-demo:
	$(GO) run ./cmd/gmsnode chaos -pages 256 -kill-at 0.5 -restart -hedge 5ms

# prefetch-smoke drives the learned prefetcher through both planes, bounded:
# the prefetch experiment runs twice at small scale through the CLI and must
# render byte-identically (the stateful planner's determinism contract), and
# the client-side prediction path runs against a real server under the race
# detector.
prefetch-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	for run in a b; do \
		$(GO) run ./cmd/subpagesim -run prefetch -scale 0.05 -j 4 \
			> "$$tmp/$$run.txt" || exit 1; \
	done && \
	test -s "$$tmp/a.txt" && cmp -s "$$tmp/a.txt" "$$tmp/b.txt" && \
	grep -q 'strided' "$$tmp/a.txt" && \
	echo "prefetch-smoke: experiment deterministic across reruns" && \
	$(GO) test -race -run 'TestClientPrefetchLearnsStride|TestPolicyWireRoundTrip|TestServerWantBeyondPlanIsHonored' \
		-count=1 ./internal/remote/
