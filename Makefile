GO ?= go

# Trace scale for the BENCH_experiments.json snapshot; 1.0 is the paper's
# full traces.
BENCH_SCALE ?= 0.25

.PHONY: ci fmt vet lint build test race bench chaos chaos-demo

# ci is the full gate: formatting, vet, the gmslint analyzer suite, build,
# tests (including the gmsdebug-instrumented core), a race-detector pass
# over every package, and the benchmark snapshot.
ci: fmt vet lint build test race bench

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the project-specific analyzers (unitsafety, simpurity, lockio,
# errdrop); see DESIGN.md "Static analysis & invariants".
lint:
	$(GO) run ./cmd/gmslint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...
	$(GO) test -tags gmsdebug ./internal/core

# -short skips the heaviest experiment sweeps, but the parallel-engine
# determinism test (internal/experiments TestParallelOutputMatchesSequential)
# deliberately stays enabled so the full RunAll fan-out — every experiment,
# every sweep cell, on a width-8 pool — runs under the race detector at
# small scale on every CI pass.
race:
	$(GO) test -race -short -timeout 15m ./...

# bench runs the Go microbenchmarks and regenerates BENCH_experiments.json,
# the per-experiment wall-clock snapshot that seeds the repo's perf
# trajectory (see EXPERIMENTS.md). Override the scale or width with e.g.
# `make bench BENCH_SCALE=1.0 BENCH_J=8`.
BENCH_J ?= 0
bench:
	$(GO) test -bench . -benchtime 200x -run xxx -timeout 30m ./...
	$(GO) run ./cmd/subpagesim -run all -scale $(BENCH_SCALE) -j $(BENCH_J) \
		-benchout BENCH_experiments.json > /dev/null

# chaos runs the kill/restart self-heal soak: the control-plane recovery
# scenario (lease expiry, epoch-fenced re-registration, breaker probe) on a
# lossy, jittery network across several fault-schedule seeds, under the
# race detector. The short single-pass variant of the same scenario runs in
# every `make test` / `make race` (and thus `make ci`) as
# TestChaosKillRestartSelfHeal.
chaos:
	GMS_CHAOS_SOAK=1 $(GO) test -race -run 'TestChaosKillRestart' -count=1 -v ./internal/remote/

chaos-demo:
	$(GO) run ./cmd/gmsnode chaos -pages 256 -kill-at 0.5 -restart -hedge 5ms
