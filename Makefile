GO ?= go

.PHONY: ci fmt vet build test race bench chaos-demo

# ci is the full gate: formatting, vet, build, tests, and a race-detector
# pass over the concurrent packages.
ci: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The remote client and the fault injector are the concurrency-heavy
# packages; the race run is mandatory for them.
race:
	$(GO) test -race ./internal/remote ./internal/chaos

bench:
	$(GO) test -bench . -benchtime 200x -run xxx ./...

chaos-demo:
	$(GO) run ./cmd/gmsnode chaos -pages 256 -kill-at 0.5 -restart -hedge 5ms
