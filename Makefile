GO ?= go

.PHONY: ci fmt vet lint build test race bench chaos-demo

# ci is the full gate: formatting, vet, the gmslint analyzer suite, build,
# tests (including the gmsdebug-instrumented core), and a race-detector
# pass over every package.
ci: fmt vet lint build test race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the project-specific analyzers (unitsafety, simpurity, lockio,
# errdrop); see DESIGN.md "Static analysis & invariants".
lint:
	$(GO) run ./cmd/gmslint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...
	$(GO) test -tags gmsdebug ./internal/core

# -short skips the full experiment sweep, which is CPU-bound model code
# with no goroutines; every concurrent path still runs under the detector.
race:
	$(GO) test -race -short -timeout 15m ./...

bench:
	$(GO) test -bench . -benchtime 200x -run xxx ./...

chaos-demo:
	$(GO) run ./cmd/gmsnode chaos -pages 256 -kill-at 0.5 -restart -hedge 5ms
