// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each benchmark runs the
// corresponding experiment end to end on reduced-scale traces; per-run
// metrics that correspond to paper numbers are reported alongside ns/op.
//
//	go test -bench=. -benchmem
//
// For paper-scale numbers run the harness directly:
//
//	go run ./cmd/subpagesim -run all -scale 1.0
package gmsubpage_test

import (
	"testing"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

// benchScale keeps each experiment iteration fast while preserving every
// shape the paper reports.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := gmsubpage.RunExperiment(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// Figure 1: latency vs. page size for disks and networks.
func BenchmarkFig1LatencyVsPageSize(b *testing.B) { benchExperiment(b, "fig1") }

// Table 1: PALcode load/store emulation performance.
func BenchmarkTable1PALEmulation(b *testing.B) { benchExperiment(b, "table1") }

// Table 2: page-fault latencies for eager fullpage fetch.
func BenchmarkTable2FaultLatency(b *testing.B) { benchExperiment(b, "table2") }

// Figure 2: remote page fetch timelines.
func BenchmarkFig2Timeline(b *testing.B) { benchExperiment(b, "fig2") }

// Figure 3: subpage performance for three memory sizes (Modula-3).
func BenchmarkFig3EagerMemSizes(b *testing.B) { benchExperiment(b, "fig3") }

// Figure 4: runtime decomposition at 1/2 memory.
func BenchmarkFig4RuntimeBreakdown(b *testing.B) { benchExperiment(b, "fig4") }

// Figure 5: sorted per-fault waiting times.
func BenchmarkFig5PerFaultWait(b *testing.B) { benchExperiment(b, "fig5") }

// Figure 6: temporal clustering of page faults (Modula-3).
func BenchmarkFig6FaultClustering(b *testing.B) { benchExperiment(b, "fig6") }

// Figure 7: distance to the next accessed subpage.
func BenchmarkFig7SubpageDistance(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: eager fullpage fetch vs. subpage pipelining.
func BenchmarkFig8Pipelining(b *testing.B) { benchExperiment(b, "fig8") }

// Figure 9: speedups for all five applications at 1/2-mem, 1K subpages.
func BenchmarkFig9AllApps(b *testing.B) { benchExperiment(b, "fig9") }

// Figure 10: fault clustering, gdb vs. Atom.
func BenchmarkFig10GdbVsAtom(b *testing.B) { benchExperiment(b, "fig10") }

// Ablation (§2.1): small pages / lazy subpage fetch lose.
func BenchmarkAblationSmallPages(b *testing.B) { benchExperiment(b, "smallpage") }

// Ablation (§4.3): pipelining variants.
func BenchmarkAblationPipelineVariants(b *testing.B) { benchExperiment(b, "pipevariants") }

// Methodology (§3.2): cache-hierarchy replay deriving the event clock.
func BenchmarkEventTimeDerivation(b *testing.B) { benchExperiment(b, "eventtime") }

// BenchmarkFig9Parallel8 runs the widest sweep (5 apps × 3 policies) on
// an 8-wide worker pool; against BenchmarkFig9AllApps it measures what
// the parallel engine buys (or costs, on one core) per experiment. The
// output is byte-identical to the sequential run at any width.
func BenchmarkFig9Parallel8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := gmsubpage.RunExperimentParallel("fig9", benchScale, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw trace-replay speed: references
// simulated per second, the figure that bounds paper-scale runs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := gmsubpage.Config{
		Workload:       "modula3",
		Scale:          0.1,
		MemoryFraction: 0.5,
		Policy:         gmsubpage.Eager,
		SubpageSize:    1024,
	}
	// One warm-up run to size the per-iteration work.
	rep, err := gmsubpage.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	refsPerRun := rep.ExecMs * 1e6 / 12 // events = exec ns / 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gmsubpage.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(refsPerRun*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkPrototypeFault measures a live remote-memory fault over
// loopback TCP: one 1K-subpage eager fault per operation (§3.1's headline
// measurement; the paper's AN2 prototype took 0.52 ms).
func BenchmarkPrototypeFault(b *testing.B) {
	dir, err := gmsubpage.StartDirectory("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer dir.Close()
	srv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.StoreRange(0, b.N+1)
	if err := srv.Register(dir.Addr()); err != nil {
		b.Fatal(err)
	}
	c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
		CachePages:  b.N + 2,
		SubpageSize: 1024,
		Policy:      gmsubpage.Eager,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	var buf [64]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Read(buf[:], uint64(i)*gmsubpage.PageSize+4000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.Stats()
	if st.SubpageLatencyUs > 0 {
		b.ReportMetric(st.SubpageLatencyUs, "subpage-us")
	}
	if st.FullLatencyUs > 0 {
		b.ReportMetric(st.FullLatencyUs, "fullpage-us")
	}
}

// BenchmarkPrototypeFullPageFault is the full-page baseline for
// BenchmarkPrototypeFault (the paper's 1.48 ms on AN2).
func BenchmarkPrototypeFullPageFault(b *testing.B) {
	dir, err := gmsubpage.StartDirectory("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer dir.Close()
	srv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.StoreRange(0, b.N+1)
	if err := srv.Register(dir.Addr()); err != nil {
		b.Fatal(err)
	}
	c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
		CachePages: b.N + 2,
		Policy:     gmsubpage.FullPage,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	var buf [64]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Read(buf[:], uint64(i)*gmsubpage.PageSize+4000); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension: multi-node global memory under load.
func BenchmarkClusterUnderLoad(b *testing.B) { benchExperiment(b, "cluster") }

// Validation: simulator against closed-form bounds.
func BenchmarkAnalyticBounds(b *testing.B) { benchExperiment(b, "bounds") }

// Extension: the paper's closing prediction — faster networks shrink the
// optimal subpage size.
func BenchmarkFutureNetworks(b *testing.B) { benchExperiment(b, "future") }

// Motivation (§1): TLB coverage vs. page size.
func BenchmarkTLBCoverage(b *testing.B) { benchExperiment(b, "tlbcover") }
