package gmsubpage

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// ClusterConfig describes a simulated multi-node GMS cluster: several
// active workstations, each running a workload in reduced local memory,
// sharing a finite pool of idle-node memory managed with epoch-based
// global replacement.
type ClusterConfig struct {
	// Workloads names one workload per active node (see Workloads()).
	Workloads []string
	// Scale is the per-workload trace scale (default 0.25).
	Scale float64
	// MemoryFraction sizes each node's local memory relative to its own
	// workload footprint (default 0.5).
	MemoryFraction float64
	// Policy and SubpageSize apply to every node (defaults Eager, 1024).
	Policy      Policy
	SubpageSize int
	// IdleNodes donate memory (default 2); DonatedPagesPerIdle is each
	// one's capacity in 8 KB pages (0 = unbounded). IdleNodes == 0 means
	// "use the default" — to run the all-disk baseline with no network
	// memory at all, set NoIdleNodes (or, equivalently, IdleNodes: -1).
	IdleNodes           int
	DonatedPagesPerIdle int
	// NoIdleNodes runs the cluster with zero idle nodes: no global cache,
	// every refault that misses local memory goes to disk. This is the
	// baseline the paper's speedups are measured against.
	NoIdleNodes bool
	// LeastLoaded disables GMS's epoch-weighted placement in favour of
	// simple least-loaded placement.
	LeastLoaded bool
	// NodeFailures schedules idle-node deaths against the simulated clock
	// (see FailureEvent). The schedule is part of the simulation input, so
	// runs stay deterministic. Incompatible with NoIdleNodes.
	NodeFailures []FailureEvent
}

// FailureEvent kills idle node Node at simulated time AtMs (milliseconds):
// its donated pages vanish from the global cache, so refaults on them fall
// through to disk — the paper's graceful-degradation story. When
// RejoinAtMs > AtMs the node rejoins with empty memory at that time;
// otherwise it stays dead. Events at 0 ms apply before the first
// reference, so failing every idle node at 0 reproduces the NoIdleNodes
// all-disk baseline exactly.
type FailureEvent struct {
	Node       int
	AtMs       float64
	RejoinAtMs float64
}

// NodeReport is one active node's outcome in a cluster run.
type NodeReport struct {
	Workload   string
	RuntimeMs  float64
	Faults     int64
	DiskFaults int64
	Evictions  int64
}

// ClusterReport aggregates a cluster run.
type ClusterReport struct {
	Nodes []NodeReport

	// MakespanMs is the slowest node's runtime.
	MakespanMs float64
	// DiskFaults counts refaults that fell through to disk because the
	// global cache had discarded the page.
	DiskFaults int64
	// Discards counts globally-oldest pages dropped for space.
	Discards int64
	// GlobalHits counts faults served from network memory.
	GlobalHits int64
	// Epochs counts replacement-epoch boundaries (0 with LeastLoaded).
	Epochs int64
	// DroppedPages counts donated pages lost to scheduled node failures.
	DroppedPages int64
}

// SimulateCluster runs every workload against one shared global memory,
// interleaved in simulated-time order.
func SimulateCluster(cfg ClusterConfig) (*ClusterReport, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("gmsubpage: cluster needs at least one workload")
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.25
	}
	if cfg.MemoryFraction == 0 {
		cfg.MemoryFraction = 0.5
	}
	if cfg.SubpageSize == 0 {
		cfg.SubpageSize = 1024
	}
	if cfg.NoIdleNodes || cfg.IdleNodes < 0 {
		cfg.IdleNodes = -1 // all-disk baseline: RunCluster gets no idle memory
	} else if cfg.IdleNodes == 0 {
		cfg.IdleNodes = 2
	}
	if len(cfg.NodeFailures) > 0 && cfg.IdleNodes < 0 {
		return nil, fmt.Errorf("gmsubpage: NodeFailures needs idle nodes to fail")
	}
	failures := make([]sim.FailureEvent, 0, len(cfg.NodeFailures))
	for _, ev := range cfg.NodeFailures {
		if ev.Node < 0 || ev.Node >= cfg.IdleNodes {
			return nil, fmt.Errorf("gmsubpage: FailureEvent node %d out of range [0,%d)", ev.Node, cfg.IdleNodes)
		}
		if ev.AtMs < 0 || ev.RejoinAtMs < 0 {
			return nil, fmt.Errorf("gmsubpage: FailureEvent times must be non-negative")
		}
		failures = append(failures, sim.FailureEvent{
			Node:     ev.Node,
			At:       units.FromMs(ev.AtMs).ToTicks(),
			RejoinAt: units.FromMs(ev.RejoinAtMs).ToTicks(),
		})
	}
	if !units.ValidSubpageSize(cfg.SubpageSize) {
		return nil, fmt.Errorf("gmsubpage: invalid subpage size %d", cfg.SubpageSize)
	}
	pol, err := policyFor(cfg.Policy)
	if err != nil {
		return nil, err
	}
	apps := make([]*trace.App, len(cfg.Workloads))
	for i, name := range cfg.Workloads {
		apps[i] = trace.ByName(name, cfg.Scale)
		if apps[i] == nil {
			return nil, fmt.Errorf("gmsubpage: unknown workload %q (have %v)", name, Workloads())
		}
	}
	res := sim.RunCluster(sim.ClusterConfig{
		Apps:               apps,
		MemFraction:        cfg.MemoryFraction,
		Policy:             pol,
		SubpageSize:        cfg.SubpageSize,
		IdleNodes:          cfg.IdleNodes,
		GlobalPagesPerIdle: cfg.DonatedPagesPerIdle,
		UseEpoch:           !cfg.LeastLoaded,
		NodeFailures:       failures,
	})
	out := &ClusterReport{
		MakespanMs:   res.TotalRuntime().Ms(),
		DiskFaults:   res.DiskFaults(),
		Discards:     res.Discards,
		GlobalHits:   res.GlobalHits,
		Epochs:       res.Epochs,
		DroppedPages: res.DroppedPages,
	}
	for _, n := range res.Nodes {
		out.Nodes = append(out.Nodes, NodeReport{
			Workload:   n.AppName,
			RuntimeMs:  n.Runtime.Ms(),
			Faults:     n.Faults,
			DiskFaults: n.DiskFaults,
			Evictions:  n.Evictions,
		})
	}
	return out, nil
}
