// Command gmslint runs the repository's static analyzer suite (see
// internal/lint): unitsafety, simpurity, lockio, errdrop, deadlinecheck,
// tagswitch, goloop and lockorder. It exits nonzero when any finding
// survives //lint:allow suppression, which is what `make lint` — and so
// `make ci` — gates on.
//
// Usage:
//
//	gmslint [-checks deadlinecheck,tagswitch] [-json] [-allows] [packages]
//	gmslint -list
//
// Packages are directories, or directory/... subtrees; the default is
// ./... from the current directory. -json emits the findings as a JSON
// array (an empty array when clean) for baselines and tooling; -allows
// prints every //lint:allow suppression in the tree with its
// justification instead of running the analyzers. Conflicting flags exit
// 2, findings exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/gms-sim/gmsubpage/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the stable wire shape of one finding: module-root-relative
// slash paths so a baseline diffs cleanly across checkouts.
type jsonFinding struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gmslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	allows := fs.Bool("allows", false, "list every //lint:allow suppression instead of running checks")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	switch {
	case *list && (*asJSON || *allows || *checks != ""):
		_, _ = fmt.Fprintln(stderr, "gmslint: -list takes no other flags")
		return 2
	case *asJSON && *allows:
		_, _ = fmt.Fprintln(stderr, "gmslint: -json and -allows conflict; the allow listing is not a findings report")
		return 2
	case *allows && *checks != "":
		_, _ = fmt.Fprintln(stderr, "gmslint: -allows lists every suppression; it does not take -checks")
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			_, _ = fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(*checks)
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "gmslint:", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := lint.ModuleRoot(".")
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "gmslint:", err)
		return 2
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.Expand(patterns)
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "gmslint:", err)
		return 2
	}

	if *allows {
		for _, a := range lint.Allows(pkgs) {
			just := a.Justification
			if just == "" {
				just = "(no justification)"
			}
			_, _ = fmt.Fprintf(stdout, "%s:%d: %s: %s\n", relPath(root, a.Pos.Filename), a.Pos.Line, a.Check, just)
		}
		return 0
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:  relPath(root, d.Pos.Filename),
				Line:  d.Pos.Line,
				Col:   d.Pos.Column,
				Check: d.Check,
				Msg:   d.Msg,
			})
		}
		// Run already orders by position; pin file/line/check ordering here
		// anyway so the baseline artifact is byte-stable by construction.
		sort.Slice(out, func(i, j int) bool {
			if out[i].File != out[j].File {
				return out[i].File < out[j].File
			}
			if out[i].Line != out[j].Line {
				return out[i].Line < out[j].Line
			}
			return out[i].Check < out[j].Check
		})
		enc, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "gmslint:", err)
			return 2
		}
		_, _ = fmt.Fprintln(stdout, string(enc))
	} else {
		for _, d := range diags {
			_, _ = fmt.Fprintln(stdout, d)
		}
	}
	if n := len(diags); n > 0 {
		_, _ = fmt.Fprintf(stderr, "gmslint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		return 1
	}
	return 0
}

// relPath rewrites an absolute position filename to a module-root-relative
// slash path; paths outside the module (there are none in practice) pass
// through unchanged.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
