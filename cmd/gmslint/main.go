// Command gmslint runs the repository's static analyzer suite (see
// internal/lint): unitsafety, simpurity, lockio and errdrop. It exits
// nonzero when any finding survives //lint:allow suppression, which is
// what `make lint` — and so `make ci` — gates on.
//
// Usage:
//
//	gmslint [-checks unitsafety,simpurity,lockio,errdrop] [packages]
//
// Packages are directories, or directory/... subtrees; the default is
// ./... from the current directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gms-sim/gmsubpage/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(*checks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmslint:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmslint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmslint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "gmslint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}
