package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the path of a lint testdata fixture relative to this
// package directory, which is the test's working directory.
func fixture(elem ...string) string {
	return filepath.Join(append([]string{"..", "..", "internal", "lint", "testdata", "src"}, elem...)...)
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"unitsafety", "simpurity", "lockio", "errdrop",
		"deadlinecheck", "tagswitch", "goloop", "lockorder"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestConflictingFlagsExitTwo(t *testing.T) {
	for _, argv := range [][]string{
		{"-list", "-json"},
		{"-list", "-allows"},
		{"-list", "-checks", "errdrop"},
		{"-json", "-allows"},
		{"-allows", "-checks", "errdrop"},
		{"-checks", "nosuch"},
	} {
		var out, errb bytes.Buffer
		if code := run(argv, &out, &errb); code != 2 {
			t.Errorf("%v exited %d, want 2 (stderr: %s)", argv, code, errb.String())
		}
	}
}

func TestJSONFindingsOnDirtyFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-checks", "errdrop", fixture("errdrop")}, &out, &errb)
	if code != 1 {
		t.Fatalf("dirty fixture exited %d, want 1 (stderr: %s)", code, errb.String())
	}
	var findings []struct {
		File  string `json:"file"`
		Line  int    `json:"line"`
		Check string `json:"check"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("errdrop fixture produced no findings")
	}
	for _, f := range findings {
		if f.Check != "errdrop" || f.Line <= 0 || f.Msg == "" {
			t.Errorf("malformed finding %+v", f)
		}
		if filepath.IsAbs(f.File) || strings.Contains(f.File, `\`) || strings.HasPrefix(f.File, "..") {
			t.Errorf("finding path %q is not a module-root-relative slash path", f.File)
		}
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings not ordered: %+v before %+v", a, b)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", filepath.Join("..", "..", "internal", "units")}, &out, &errb)
	if code != 0 {
		t.Fatalf("clean package exited %d: %s%s", code, out.String(), errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestAllowsListsSuppressionsWithJustifications(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-allows", filepath.Join("..", "..", "internal", "remote")}, &out, &errb)
	if code != 0 {
		t.Fatalf("-allows exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "deadlinecheck:") {
		t.Fatalf("-allows output missing the audited deadlinecheck suppressions:\n%s", out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		// path:line: check: justification
		parts := strings.SplitN(line, ": ", 3)
		if len(parts) != 3 || parts[2] == "" {
			t.Errorf("allow line %q has no justification; every live suppression must say why", line)
		}
	}
}
