// Command gmsload is the scale-out load harness: it stands up real
// sharded directory clusters (internal/dirshard), drives them with a
// lookup storm and a fleet of closed-loop faulting clients
// (internal/load), and reports a throughput + fault-latency SLO table.
//
// The default run compares a 1-shard and a 4-shard deployment:
//
//	gmsload
//	gmsload -shards 1,4 -clients 32 -requests 100 -duration 2s
//	gmsload -shards 1,4 -minx 3 -out experiments_loadtest.txt -benchout BENCH_experiments.json
//	gmsload -wire -clients 16 -policy pipelined -subpage 256 -cache 8
//
// -benchout merges the run into BENCH_experiments.json under the
// "loadtest" key, preserving whatever else the file holds (subpagesim
// owns the rest of it). -minx N fails the run (exit 1) unless the last
// arm's lookup throughput is at least N times the first arm's — the CI
// scaling gate. -warmup walks each client's fault sequence once before
// the clock starts, so the fault phase measures the wire rather than the
// emulated lookup service. -wire replaces the shard arms with a protocol
// comparison: the same warmed fault phase pinned to the v1 wire and on
// batched v2, merged under the "protowire" key.
//
// Two durability modes ride the same harness:
//
//	gmsload -dirlog -dirlogn 1000,10000,50000 -benchout BENCH_experiments.json
//	gmsload -soak -crashes 5 -crashevery 300ms -clients 4 -pages 256
//
// -dirlog benchmarks the directory journal itself — recovery wall time
// and replay throughput at each journal length, and the snapshot
// compaction ratio — merged under the "dirlog" key. -soak runs the
// kill-anything crash soak: a durable directory is killed and restarted
// in place under fault load, and the run fails (exit 1) if any recovery
// invariant breaks (client hangs, re-registration storms, unresolvable
// pages, stale-epoch resurrection); -benchout merges its ledger under
// "soak".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/load"
	"github.com/gms-sim/gmsubpage/internal/proto"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// allFlags lists every flag name in display order, so conflict errors
// name the offending flags deterministically.
var allFlags = []string{"shards", "j", "duration", "clients", "requests",
	"servers", "pages", "subpage", "policy", "cache", "rps", "dirservice",
	"warmup", "wire", "dirlog", "dirlogn", "soak", "crashes", "crashevery",
	"fsync", "seed", "minx", "benchout", "out", "json"}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gmsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		shardsArg  = fs.String("shards", "1,4", "comma-separated shard counts to run, one cluster per arm")
		workers    = fs.Int("j", 8, "lookup-storm connections per arm")
		duration   = fs.Duration("duration", 2*time.Second, "lookup-storm length per arm")
		clients    = fs.Int("clients", 32, "faulting clients per arm")
		requests   = fs.Int("requests", 100, "faults per client")
		servers    = fs.Int("servers", 2, "page servers per arm")
		pages      = fs.Int("pages", 512, "pages in the global set")
		subpage    = fs.Int("subpage", 1024, "client subpage size in bytes")
		policy     = fs.String("policy", "eager", "client transfer policy")
		cache      = fs.Int("cache", 64, "client cache pages")
		rps        = fs.Float64("rps", 0, "open-loop total fault rate; 0 = closed loop")
		dirservice = fs.Duration("dirservice", 200*time.Microsecond, "emulated per-lookup shard service time; 0 = off")
		warmup     = fs.Bool("warmup", false, "walk each client's fault sequence unmeasured first, so the measured phase times the wire, not lookups")
		wireMode   = fs.Bool("wire", false, "compare the v1 and batched v2 wire on one cluster (fault phase only); -benchout writes the \"protowire\" section")
		dirlogMode = fs.Bool("dirlog", false, "benchmark journal recovery and snapshot compaction; -benchout writes the \"dirlog\" section")
		dirlogN    = fs.String("dirlogn", "1000,10000,50000", "comma-separated journal lengths for -dirlog")
		soakMode   = fs.Bool("soak", false, "run the kill-anything crash soak against a durable directory; -benchout writes the \"soak\" section")
		crashes    = fs.Int("crashes", 5, "directory kill/restart cycles for -soak")
		crashEvery = fs.Duration("crashevery", 300*time.Millisecond, "load time between kills for -soak")
		fsyncStr   = fs.String("fsync", "interval", "journal fsync policy for -soak: always, interval, or never")
		seed       = fs.Uint64("seed", 1, "base seed for page choice")
		minX       = fs.Float64("minx", 0, "fail unless last arm's lookup rate >= this multiple of the first arm's")
		benchOut   = fs.String("benchout", "", "merge results into this BENCH_experiments.json under \"loadtest\"")
		out        = fs.String("out", "", "also write the SLO table to this file")
		asJSON     = fs.Bool("json", false, "emit the result snapshot as JSON instead of the table")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	arms, err := parseShards(*shardsArg)
	if err != nil {
		_, _ = fmt.Fprintln(stderr, "gmsload:", err)
		return 2
	}
	if err := conflictErr(set, arms, *minX, *rps, *wireMode, *dirlogMode, *soakMode); err != nil {
		_, _ = fmt.Fprintln(stderr, "gmsload:", err)
		return 2
	}
	// "prefetch" is not a wire policy: the learned prefetcher rides the
	// v2 want bitmap over the lazy wire policy, selected client-side.
	var polByte uint8
	prefetch := *policy == "prefetch"
	if prefetch && *wireMode {
		_, _ = fmt.Fprintln(stderr, "gmsload: -policy prefetch needs the v2 want bitmap; the -wire comparison's v1 arm cannot carry it")
		return 2
	}
	if !prefetch {
		if polByte, err = proto.PolicyByte(*policy); err != nil {
			_, _ = fmt.Fprintln(stderr, "gmsload:", err)
			return 2
		}
	}

	fail := func(err error) int {
		_, _ = fmt.Fprintln(stderr, "gmsload:", err)
		return 1
	}
	if *dirlogMode {
		sizes, err := parseSizes(*dirlogN)
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "gmsload:", err)
			return 2
		}
		root, err := os.MkdirTemp("", "gmsload-dirlog")
		if err != nil {
			return fail(err)
		}
		defer func() { _ = os.RemoveAll(root) }()
		_, _ = fmt.Fprintln(stderr, "gmsload: benchmarking journal recovery...")
		pts, err := dirlog.Bench(root, sizes)
		if err != nil {
			return fail(err)
		}
		dsnap := dirlogSnapshot{
			Schema:     "gmsubpage-dirlog/v1",
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Points:     pts,
		}
		return emit(&dsnap, dsnap.table(), "dirlog", *asJSON, *out, *benchOut, stdout, fail)
	}
	if *soakMode {
		fsync, err := dirlog.ParseFsync(*fsyncStr)
		if err != nil {
			_, _ = fmt.Fprintln(stderr, "gmsload:", err)
			return 2
		}
		jdir, err := os.MkdirTemp("", "gmsload-soak")
		if err != nil {
			return fail(err)
		}
		defer func() { _ = os.RemoveAll(jdir) }()
		_, _ = fmt.Fprintf(stderr, "gmsload: soaking through %d directory crashes...\n", *crashes)
		res, err := load.RunSoak(load.SoakConfig{
			Servers:    *servers,
			Pages:      *pages,
			Clients:    *clients,
			Crashes:    *crashes,
			CrashEvery: *crashEvery,
			JournalDir: jdir,
			Fsync:      fsync,
			Seed:       *seed,
		})
		if err != nil {
			return fail(err)
		}
		ssnap := soakSnapshot{
			Schema:       "gmsubpage-dirsoak/v1",
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			Servers:      *servers,
			Pages:        *pages,
			Clients:      *clients,
			CrashEveryMs: float64(crashEvery.Milliseconds()),
			Fsync:        fsync.String(),
			Seed:         *seed,
			Result:       res,
		}
		return emit(&ssnap, ssnap.table(), "soak", *asJSON, *out, *benchOut, stdout, fail)
	}
	if *wireMode {
		_, _ = fmt.Fprintln(stderr, "gmsload: running wire comparison (v1 then v2)...")
		wr, err := load.RunWire(load.Config{
			Shards:      arms[0],
			Servers:     *servers,
			Pages:       *pages,
			Clients:     *clients,
			Requests:    *requests,
			RPS:         *rps,
			SubpageSize: *subpage,
			Policy:      polByte,
			Prefetch:    prefetch,
			CachePages:  *cache,
			DirService:  *dirservice,
			Seed:        *seed,
		})
		if err != nil {
			return fail(err)
		}
		wsnap := wireSnapshot{
			Schema:       "gmsubpage-protowire/v1",
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			Clients:      *clients,
			Requests:     *requests,
			Servers:      *servers,
			Pages:        *pages,
			Subpage:      *subpage,
			Policy:       *policy,
			Cache:        *cache,
			RPS:          *rps,
			DirServiceUs: float64(dirservice.Nanoseconds()) / 1e3,
			Seed:         *seed,
			V1:           wr.V1,
			V2:           wr.V2,
			SpeedupX:     round2(wr.SpeedupX),
		}
		return emit(&wsnap, wsnap.table(), "protowire", *asJSON, *out, *benchOut, stdout, fail)
	}
	snap := loadSnapshot{
		Schema:       "gmsubpage-loadtest/v1",
		Workers:      *workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		DurationMs:   float64(duration.Milliseconds()),
		Clients:      *clients,
		Requests:     *requests,
		Servers:      *servers,
		Pages:        *pages,
		Subpage:      *subpage,
		Policy:       *policy,
		Cache:        *cache,
		RPS:          *rps,
		DirServiceUs: float64(dirservice.Nanoseconds()) / 1e3,
		Seed:         *seed,
	}
	for _, n := range arms {
		_, _ = fmt.Fprintf(stderr, "gmsload: running %d-shard arm...\n", n)
		res, err := load.Run(load.Config{
			Shards:      n,
			Servers:     *servers,
			Pages:       *pages,
			Workers:     *workers,
			Duration:    *duration,
			Clients:     *clients,
			Requests:    *requests,
			RPS:         *rps,
			SubpageSize: *subpage,
			Policy:      polByte,
			Prefetch:    prefetch,
			CachePages:  *cache,
			DirService:  *dirservice,
			Warmup:      *warmup,
			Seed:        *seed,
		})
		if err != nil {
			return fail(err)
		}
		snap.Arms = append(snap.Arms, res)
	}
	if len(snap.Arms) > 1 {
		first, last := snap.Arms[0], snap.Arms[len(snap.Arms)-1]
		if first.LookupRate > 0 {
			snap.ScalingX = round2(last.LookupRate / first.LookupRate)
		}
	}

	if rc := emit(&snap, snap.table(), "loadtest", *asJSON, *out, *benchOut, stdout, fail); rc != 0 {
		return rc
	}
	if *minX > 0 && snap.ScalingX < *minX {
		return fail(fmt.Errorf("lookup scaling %.2fx below required %.2fx (%d vs %d shards)",
			snap.ScalingX, *minX, arms[len(arms)-1], arms[0]))
	}
	return 0
}

// emit writes one snapshot everywhere it's wanted: the table or JSON on
// stdout, the table to -out, the section to -benchout. All four modes
// funnel through here so artifacts stay shaped the same way.
func emit(snap any, table, key string, asJSON bool, out, benchOut string, stdout io.Writer, fail func(error) int) int {
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return fail(err)
		}
	} else {
		_, _ = io.WriteString(stdout, table)
	}
	if out != "" {
		if err := os.WriteFile(out, []byte(table), 0o644); err != nil {
			return fail(err)
		}
	}
	if benchOut != "" {
		if err := mergeBench(benchOut, key, snap); err != nil {
			return fail(err)
		}
	}
	return 0
}

// parseSizes parses the -dirlogn list: comma-separated positive ints.
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-dirlogn wants positive journal lengths like \"1000,10000\", got %q", s)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// parseShards parses the -shards list: comma-separated positive ints.
func parseShards(s string) ([]int, error) {
	var arms []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards wants positive shard counts like \"1,4\", got %q", s)
		}
		arms = append(arms, n)
	}
	return arms, nil
}

// conflictErr rejects flag combinations the run would otherwise silently
// misinterpret, following the subpagesim convention (exit 2).
func conflictErr(set map[string]bool, arms []int, minX, rps float64, wire, dirlogM, soakM bool) error {
	modes := 0
	for _, m := range []bool{wire, dirlogM, soakM} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-wire, -dirlog, and -soak are distinct modes; pick one")
	}
	if dirlogM {
		if f := firstSet(set, "shards", "j", "duration", "clients", "requests",
			"servers", "pages", "subpage", "policy", "cache", "rps", "dirservice",
			"warmup", "crashes", "crashevery", "fsync", "seed", "minx"); f != "" {
			return fmt.Errorf("-%s shapes a cluster load, which -dirlog (a journal replay bench) skips", f)
		}
	} else if set["dirlogn"] {
		return fmt.Errorf("-dirlogn sizes the -dirlog bench; pass -dirlog too")
	}
	if soakM {
		if f := firstSet(set, "shards", "j", "duration", "requests", "subpage",
			"policy", "cache", "rps", "dirservice", "warmup", "minx"); f != "" {
			return fmt.Errorf("-%s shapes the scaling arms, which -soak skips", f)
		}
	} else if f := firstSet(set, "crashes", "crashevery", "fsync"); f != "" {
		return fmt.Errorf("-%s shapes the crash soak; pass -soak too", f)
	}
	if wire {
		if set["minx"] {
			return fmt.Errorf("-minx gates the shard-scaling arms, which -wire skips")
		}
		if set["shards"] && len(arms) > 1 {
			return fmt.Errorf("-wire compares protocols on one cluster; -shards names %d arms", len(arms))
		}
		if set["j"] || set["duration"] {
			return fmt.Errorf("-j and -duration shape the lookup storm, which -wire skips")
		}
	}
	if set["minx"] {
		if minX <= 0 {
			return fmt.Errorf("-minx wants a positive ratio, got %v", minX)
		}
		if len(arms) < 2 {
			return fmt.Errorf("-minx compares the first and last arms; -shards names only one (%d)", arms[0])
		}
	}
	if set["rps"] && rps < 0 {
		return fmt.Errorf("-rps wants a non-negative rate, got %v", rps)
	}
	return nil
}

// firstSet returns the first of names (in the order given, which callers
// keep aligned with allFlags) present in set, or "".
func firstSet(set map[string]bool, names ...string) string {
	for _, n := range names {
		if set[n] {
			return n
		}
	}
	return ""
}

// loadSnapshot is the "loadtest" section merged into
// BENCH_experiments.json: the run's configuration, one entry per shard
// arm, and the first-to-last lookup-throughput scaling ratio.
type loadSnapshot struct {
	Schema       string        `json:"schema"`
	Workers      int           `json:"workers"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	DurationMs   float64       `json:"duration_ms"`
	Clients      int           `json:"clients"`
	Requests     int           `json:"requests"`
	Servers      int           `json:"servers"`
	Pages        int           `json:"pages"`
	Subpage      int           `json:"subpage"`
	Policy       string        `json:"policy"`
	Cache        int           `json:"cache"`
	RPS          float64       `json:"rps"`
	DirServiceUs float64       `json:"dirservice_us"`
	Seed         uint64        `json:"seed"`
	Arms         []load.Result `json:"arms"`
	ScalingX     float64       `json:"scaling_x,omitempty"`
}

// table renders the SLO table.
func (s *loadSnapshot) table() string {
	var b strings.Builder
	loop := "closed loop"
	if s.RPS > 0 {
		loop = fmt.Sprintf("open loop %.0f req/s", s.RPS)
	}
	fmt.Fprintf(&b, "gmsload: %d clients x %d faults (%s), %d pages, %d servers, dirservice %.0fµs\n\n",
		s.Clients, s.Requests, loop, s.Pages, s.Servers, s.DirServiceUs)
	fmt.Fprintf(&b, "%6s  %10s  %9s  %8s  %8s  %9s  %8s  %7s\n",
		"shards", "lookups/s", "faults/s", "p50(µs)", "p99(µs)", "p999(µs)", "max(µs)", "bounces")
	for _, a := range s.Arms {
		fmt.Fprintf(&b, "%6d  %10.0f  %9.0f  %8.0f  %8.0f  %9.0f  %8.0f  %7d\n",
			a.Shards, a.LookupRate, a.FaultRate, a.P50Us, a.P99Us, a.P999Us, a.MaxUs, a.WrongShard)
	}
	if s.ScalingX > 0 {
		fmt.Fprintf(&b, "\nlookup scaling: %.2fx (%d shards vs %d)\n",
			s.ScalingX, s.Arms[len(s.Arms)-1].Shards, s.Arms[0].Shards)
	}
	return b.String()
}

// wireSnapshot is the "protowire" section merged into
// BENCH_experiments.json: the same warmed fault phase over the v1 wire
// and the batched v2 wire, plus the throughput ratio.
type wireSnapshot struct {
	Schema       string      `json:"schema"`
	GOMAXPROCS   int         `json:"gomaxprocs"`
	Clients      int         `json:"clients"`
	Requests     int         `json:"requests"`
	Servers      int         `json:"servers"`
	Pages        int         `json:"pages"`
	Subpage      int         `json:"subpage"`
	Policy       string      `json:"policy"`
	Cache        int         `json:"cache"`
	RPS          float64     `json:"rps"`
	DirServiceUs float64     `json:"dirservice_us"`
	Seed         uint64      `json:"seed"`
	V1           load.Result `json:"v1"`
	V2           load.Result `json:"v2"`
	SpeedupX     float64     `json:"speedup_x"`
}

// table renders the wire comparison.
func (s *wireSnapshot) table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gmsload -wire: %d clients x %d faults, policy %s, subpage %dB, cache %d pages, warm control plane\n\n",
		s.Clients, s.Requests, s.Policy, s.Subpage, s.Cache)
	fmt.Fprintf(&b, "%4s  %9s  %8s  %8s  %9s  %8s  %8s\n",
		"wire", "faults/s", "p50(µs)", "p99(µs)", "p999(µs)", "max(µs)", "MiB in")
	for _, row := range []struct {
		name string
		r    load.Result
	}{{"v1", s.V1}, {"v2", s.V2}} {
		fmt.Fprintf(&b, "%4s  %9.0f  %8.0f  %8.0f  %9.0f  %8.0f  %8.1f\n",
			row.name, row.r.FaultRate, row.r.P50Us, row.r.P99Us, row.r.P999Us,
			row.r.MaxUs, float64(row.r.BytesIn)/(1<<20))
	}
	fmt.Fprintf(&b, "\nv2 speedup: %.2fx\n", s.SpeedupX)
	return b.String()
}

// dirlogSnapshot is the "dirlog" section merged into
// BENCH_experiments.json: journal replay throughput and recovery wall
// time at each journal length, and the snapshot compaction ratio.
type dirlogSnapshot struct {
	Schema     string              `json:"schema"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Points     []dirlog.BenchPoint `json:"points"`
}

// table renders the recovery bench.
func (s *dirlogSnapshot) table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gmsload -dirlog: journal recovery and snapshot compaction\n\n")
	fmt.Fprintf(&b, "%9s  %10s  %11s  %11s  %9s  %10s  %8s\n",
		"records", "wal KiB", "recover ms", "replay/s", "snap ms", "snap KiB", "compact")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%9d  %10.1f  %11.2f  %11.0f  %9.2f  %10.1f  %7.1fx\n",
			p.Records, float64(p.WalBytes)/1024, p.RecoverMs, p.ReplayRecsPerSec,
			p.SnapshotMs, float64(p.SnapshotBytes)/1024, p.CompactionX)
	}
	return b.String()
}

// soakSnapshot is the "soak" section merged into BENCH_experiments.json:
// the crash soak's configuration and its ledger. Reaching emit at all
// means every recovery invariant held.
type soakSnapshot struct {
	Schema       string          `json:"schema"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	Servers      int             `json:"servers"`
	Pages        int             `json:"pages"`
	Clients      int             `json:"clients"`
	CrashEveryMs float64         `json:"crashevery_ms"`
	Fsync        string          `json:"fsync"`
	Seed         uint64          `json:"seed"`
	Result       load.SoakResult `json:"result"`
}

// table renders the soak ledger.
func (s *soakSnapshot) table() string {
	var b strings.Builder
	r := s.Result
	fmt.Fprintf(&b, "gmsload -soak: %d clients x %d pages x %d servers, fsync %s, kill every %.0fms\n\n",
		s.Clients, s.Pages, s.Servers, s.Fsync, s.CrashEveryMs)
	fmt.Fprintf(&b, "crashes survived:   %d in %.1fs\n", r.Crashes, r.Elapsed)
	fmt.Fprintf(&b, "reads:              %d (%d errs, max %.0fµs, zero hangs)\n", r.Reads, r.ReadErrs, r.MaxReadUs)
	fmt.Fprintf(&b, "re-registrations:   %d (journal recovered %d leases at the last restart)\n", r.Reregs, r.Recovered)
	fmt.Fprintf(&b, "final journal:      %d wal records (%.1f KiB) over a %d-record snapshot\n",
		r.WalRecords, float64(r.WalBytes)/1024, r.SnapRecords)
	return b.String()
}

// mergeBench read-modify-writes path, setting only the given key so every
// other section (subpagesim's, the other gmsload mode's) survives. A
// missing or unparseable file starts fresh rather than failing: the
// snapshot is an artifact, not an input.
func mergeBench(path, key string, snap any) error {
	top := make(map[string]any)
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &top)
		if top == nil {
			top = make(map[string]any)
		}
	}
	top[key] = snap
	out, err := json.MarshalIndent(top, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// round2 keeps ratios readable at two decimals.
func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
