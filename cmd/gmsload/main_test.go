package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConflictsExit2 pins the flag-conflict convention: misuse is exit
// code 2 with a diagnostic on stderr, before any cluster is started.
func TestConflictsExit2(t *testing.T) {
	cases := [][]string{
		{"-shards", "0"},
		{"-shards", "four"},
		{"-shards", "1,"},
		{"-minx", "3", "-shards", "4"},
		{"-minx", "-1"},
		{"-rps", "-5"},
		{"-policy", "warp"},
		{"-nosuchflag"},
	}
	for _, argv := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(argv, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", argv, code, stderr.String())
		}
	}
}

var smokeArgs = []string{"-j", "2", "-duration", "50ms", "-clients", "2",
	"-requests", "5", "-pages", "32", "-servers", "1", "-dirservice", "0"}

// TestSmokeTable runs one tiny single-arm load and checks the SLO table
// lands on stdout.
func TestSmokeTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	argv := append([]string{"-shards", "1"}, smokeArgs...)
	if code := run(argv, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"lookups/s", "p999(µs)", "shards"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestJSONAndBenchMerge runs a two-arm comparison with -json and
// -benchout against a pre-existing BENCH file, checking the snapshot
// schema, the scaling ratio, and that foreign keys survive the merge.
func TestJSONAndBenchMerge(t *testing.T) {
	bench := filepath.Join(t.TempDir(), "BENCH_experiments.json")
	if err := os.WriteFile(bench, []byte(`{"schema":"gmsubpage-bench-experiments/v1","total_ms":12.5}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	argv := append([]string{"-shards", "1,2", "-json", "-benchout", bench}, smokeArgs...)
	if code := run(argv, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}

	var snap loadSnapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("stdout is not the snapshot JSON: %v\n%s", err, stdout.String())
	}
	if snap.Schema != "gmsubpage-loadtest/v1" || len(snap.Arms) != 2 {
		t.Fatalf("snapshot = %+v, want 2 arms under gmsubpage-loadtest/v1", snap)
	}
	if snap.Arms[0].Faults != 2*5 {
		t.Fatalf("arm 0 faults = %d, want 10", snap.Arms[0].Faults)
	}

	raw, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	if top["schema"] != "gmsubpage-bench-experiments/v1" || top["total_ms"] != 12.5 {
		t.Fatalf("merge clobbered existing keys: %v", top)
	}
	if _, ok := top["loadtest"]; !ok {
		t.Fatalf("merge did not add loadtest: %v", top)
	}
}

// TestOutWritesArtifact checks -out writes the same table to a file.
func TestOutWritesArtifact(t *testing.T) {
	art := filepath.Join(t.TempDir(), "loadtest.txt")
	var stdout, stderr bytes.Buffer
	argv := append([]string{"-shards", "1", "-out", art}, smokeArgs...)
	if code := run(argv, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != stdout.String() {
		t.Fatalf("-out artifact differs from stdout table")
	}
}

// TestWireModeConflicts pins the -wire flag surface: storm flags and the
// scaling gate are rejected, as is a multi-arm shard list.
func TestWireModeConflicts(t *testing.T) {
	cases := [][]string{
		{"-wire", "-minx", "2", "-shards", "1,4"},
		{"-wire", "-shards", "1,4"},
		{"-wire", "-j", "4"},
		{"-wire", "-duration", "1s"},
	}
	for _, argv := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(argv, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", argv, code, stderr.String())
		}
	}
}

// TestWireModeMerge runs a tiny v1-vs-v2 comparison with -json and
// -benchout, checking the snapshot shape and that the protowire section
// lands next to existing keys.
func TestWireModeMerge(t *testing.T) {
	bench := filepath.Join(t.TempDir(), "BENCH_experiments.json")
	if err := os.WriteFile(bench, []byte(`{"loadtest":{"schema":"gmsubpage-loadtest/v1"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	argv := []string{"-wire", "-json", "-benchout", bench, "-clients", "2",
		"-requests", "5", "-pages", "32", "-servers", "1", "-cache", "4", "-dirservice", "0"}
	if code := run(argv, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var snap wireSnapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("stdout is not the snapshot JSON: %v\n%s", err, stdout.String())
	}
	if snap.Schema != "gmsubpage-protowire/v1" {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if snap.V1.Faults != 2*5 || snap.V2.Faults != 2*5 {
		t.Fatalf("faults v1=%d v2=%d, want 10/10", snap.V1.Faults, snap.V2.Faults)
	}
	if snap.SpeedupX <= 0 {
		t.Fatalf("speedup = %v, want positive", snap.SpeedupX)
	}
	raw, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["protowire"]; !ok {
		t.Fatalf("merge did not add protowire: %v", top)
	}
	if _, ok := top["loadtest"]; !ok {
		t.Fatalf("merge clobbered loadtest: %v", top)
	}
}

// TestDurabilityModeConflicts pins the -dirlog and -soak flag surfaces:
// the modes are mutually exclusive, load-shaping flags are rejected, and
// the mode-specific knobs demand their mode.
func TestDurabilityModeConflicts(t *testing.T) {
	cases := [][]string{
		{"-dirlog", "-soak"},
		{"-dirlog", "-wire"},
		{"-dirlog", "-clients", "2"},
		{"-dirlog", "-minx", "2", "-shards", "1,4"},
		{"-dirlog", "-crashes", "3"},
		{"-dirlog", "-dirlogn", "0"},
		{"-dirlog", "-dirlogn", "ten"},
		{"-dirlogn", "500"},
		{"-crashes", "3"},
		{"-fsync", "always"},
		{"-soak", "-duration", "1s"},
		{"-soak", "-minx", "2"},
		{"-soak", "-fsync", "sometimes"},
	}
	for _, argv := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(argv, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", argv, code, stderr.String())
		}
	}
}

// TestDirlogModeMerge runs the journal recovery bench at tiny sizes with
// -json and -benchout, checking the snapshot shape and that the dirlog
// section lands next to existing keys.
func TestDirlogModeMerge(t *testing.T) {
	bench := filepath.Join(t.TempDir(), "BENCH_experiments.json")
	if err := os.WriteFile(bench, []byte(`{"loadtest":{"schema":"gmsubpage-loadtest/v1"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	argv := []string{"-dirlog", "-dirlogn", "300,900", "-json", "-benchout", bench}
	if code := run(argv, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var snap dirlogSnapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("stdout is not the snapshot JSON: %v\n%s", err, stdout.String())
	}
	if snap.Schema != "gmsubpage-dirlog/v1" || len(snap.Points) != 2 {
		t.Fatalf("snapshot = %+v, want 2 points under gmsubpage-dirlog/v1", snap)
	}
	for i, p := range snap.Points {
		if p.Records < 300 || p.ReplayRecsPerSec <= 0 || p.CompactionX <= 1 {
			t.Fatalf("point %d looks empty: %+v", i, p)
		}
	}
	raw, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["dirlog"]; !ok {
		t.Fatalf("merge did not add dirlog: %v", top)
	}
	if _, ok := top["loadtest"]; !ok {
		t.Fatalf("merge clobbered loadtest: %v", top)
	}
}

// TestSoakModeSmoke runs a bounded two-crash soak end to end and checks
// the ledger both on stdout and in the merged soak section. Exit 0 here
// means every recovery invariant inside load.RunSoak held.
func TestSoakModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak sleeps through real kill/restart cycles")
	}
	bench := filepath.Join(t.TempDir(), "BENCH_experiments.json")
	var stdout, stderr bytes.Buffer
	argv := []string{"-soak", "-crashes", "2", "-crashevery", "120ms",
		"-clients", "2", "-pages", "64", "-servers", "1", "-json", "-benchout", bench}
	if code := run(argv, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var snap soakSnapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("stdout is not the snapshot JSON: %v\n%s", err, stdout.String())
	}
	if snap.Schema != "gmsubpage-dirsoak/v1" || snap.Result.Crashes != 2 || snap.Result.Reads <= 0 {
		t.Fatalf("snapshot = %+v, want 2 survived crashes with reads", snap)
	}
	raw, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["soak"]; !ok {
		t.Fatalf("merge did not add soak: %v", top)
	}
}
