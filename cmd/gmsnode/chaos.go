package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	gmsubpage "github.com/gms-sim/gmsubpage"
	"github.com/gms-sim/gmsubpage/internal/chaos"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/remote"
)

// runChaos is the end-to-end resilience demo: an in-process cluster (one
// directory, two page servers holding the same pages) whose server-side
// traffic passes through a fault injector, and a client workload during
// which the primary server is killed — and optionally restarted — while
// every read must still complete, via retry and failover to the replica.
func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	pages := fs.Int("pages", 256, "pages in the workload")
	cache := fs.Int("cache", 16, "client cache size in pages (small, so reads refault)")
	subpage := fs.Int("subpage", 1024, "subpage size in bytes")
	policy := fs.String("policy", "eager", "fullpage|lazy|eager|pipelined")
	latency := fs.Duration("latency", 0, "added one-way latency per server write")
	jitter := fs.Duration("jitter", 2*time.Millisecond, "random extra latency per server write")
	drop := fs.Float64("drop", 0.01, "probability a server write blackholes and kills its connection")
	seed := fs.Int64("seed", 1, "fault-injection RNG seed")
	killAt := fs.Float64("kill-at", 0.5, "kill the primary server this far through the workload (0-1)")
	restart := fs.Bool("restart", false, "restart the killed server after the failover phase")
	reqTO := fs.Duration("timeout", 2*time.Second, "per-fetch-attempt timeout")
	retries := fs.Int("retries", 4, "retries beyond the first attempt")
	hedge := fs.Duration("hedge", 0, "duplicate a fetch to the replica after this delay (0 = off)")
	debug := fs.String("debug", "", "serve /metrics, /healthz and pprof on this address (empty = off)")
	_ = fs.Parse(args)

	// The chaos demo runs the whole cluster in-process against internal
	// types, so the debug registry is wired directly: injector, directory
	// and both page servers all report into one /metrics page.
	var reg *obs.Registry
	if *debug != "" {
		reg = obs.NewRegistry()
		ds, err := obs.StartDebugServer(*debug, reg)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Printf("debug listener on http://%s (/metrics, /healthz, /debug/pprof)\n", ds.Addr())
	}

	dir, err := remote.ListenDirectory("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer dir.Close()
	dir.SetMetrics(reg)
	nw := chaos.New(chaos.Config{
		Latency:  *latency,
		Jitter:   *jitter,
		DropRate: *drop,
		Seed:     *seed,
	})
	nw.SetMetrics(reg)
	startServer := func() (*remote.Server, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		s := remote.ListenServerOn(nw.WrapListener(ln))
		s.SetMetrics(reg)
		for p := 0; p < *pages; p++ {
			s.Store(uint64(p), chaosPattern(uint64(p)))
		}
		return s, s.RegisterWith(dir.Addr())
	}
	primary, err := startServer()
	if err != nil {
		fatal(err)
	}
	defer primary.Close()
	replica, err := startServer()
	if err != nil {
		fatal(err)
	}
	defer replica.Close()
	fmt.Printf("cluster up: directory %s, primary %s, replica %s\n",
		dir.Addr(), primary.Addr(), replica.Addr())
	fmt.Printf("injecting: latency %v + jitter %v, drop rate %.2g, seed %d\n",
		*latency, *jitter, *drop, *seed)

	c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
		CachePages:     *cache,
		SubpageSize:    *subpage,
		Policy:         gmsubpage.Policy(*policy),
		RequestTimeout: *reqTO,
		MaxRetries:     *retries,
		Hedge:          *hedge,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	killPage := int(float64(*pages) * *killAt)
	restartPage := killPage + (*pages-killPage)/2
	var buf [64]byte
	failed := 0
	killed := false
	start := time.Now() //lint:allow simpurity chaos demo reports real elapsed time of the live cluster under faults
	for p := 0; p < *pages; p++ {
		if p == killPage {
			_ = primary.Close()
			killed = true
			fmt.Printf("page %4d: killed primary %s mid-workload\n", p, primary.Addr())
		}
		if *restart && p == restartPage {
			// The paper's GMS handles nodes leaving and (re)joining; a
			// restarted server comes back empty-handed for dirty state
			// but re-registers its pages and serves again.
			s, err := startServer()
			if err != nil {
				fmt.Printf("page %4d: restart failed: %v\n", p, err)
			} else {
				defer s.Close()
				fmt.Printf("page %4d: restarted a server as %s\n", p, s.Addr())
			}
		}
		off := uint64(p)*gmsubpage.PageSize + 3072
		if err := c.Read(buf[:], off); err != nil {
			fmt.Printf("page %4d: READ FAILED: %v\n", p, err)
			failed++
			continue
		}
		if want := chaosPattern(uint64(p))[3072 : 3072+64]; !bytes.Equal(buf[:], want) {
			fmt.Printf("page %4d: DATA MISMATCH\n", p)
			failed++
		}
	}
	elapsed := time.Since(start) //lint:allow simpurity chaos demo reports real elapsed time of the live cluster under faults

	st := c.Stats()
	fmt.Printf("workload done: %d pages in %v, %d failed reads\n", *pages, elapsed.Round(time.Millisecond), failed)
	fmt.Printf("  faults     %d\n", st.Faults)
	fmt.Printf("  retries    %d\n", st.Retries)
	fmt.Printf("  failovers  %d (reads redirected to the replica)\n", st.Failovers)
	fmt.Printf("  hedges     %d\n", st.Hedges)
	fmt.Printf("  drops      %d, resets %d (injected)\n", nw.Drops, nw.Resets)
	fmt.Printf("  subpage latency %.0f us (median), full page %.0f us\n",
		st.SubpageLatencyUs, st.FullLatencyUs)
	if failed > 0 {
		fmt.Println("FAIL: some reads did not survive the injected faults")
		os.Exit(1)
	}
	if killed {
		fmt.Println("OK: every read completed despite the injected faults and the crashed server")
	} else {
		fmt.Println("OK: every read completed despite the injected faults (no server was killed; -kill-at is outside the workload)")
	}
}

// chaosPattern is the per-page fill the demo verifies reads against.
func chaosPattern(page uint64) []byte {
	data := make([]byte, gmsubpage.PageSize)
	for i := range data {
		data[i] = byte(page*131 + uint64(i)*7)
	}
	return data
}
