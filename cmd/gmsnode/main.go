// Command gmsnode runs one node of the live remote-memory prototype.
//
// Start a global cache directory:
//
//	gmsnode dir -addr :7000
//
// Make it durable — registrations, seniority and epoch fences survive a
// crash via a write-ahead journal replayed on the next start:
//
//	gmsnode dir -addr :7000 -journal /var/lib/gms/dir -fsync always
//
// Donate memory as a page server (registers with the directory):
//
//	gmsnode server -addr :7001 -dir localhost:7000 -pages 4096
//
// Run a faulting client benchmark against the cluster:
//
//	gmsnode client -dir localhost:7000 -pages 4096 -subpage 1024 -policy eager
//
// The client measures what the paper's prototype measured: the time from
// fault to faulted-subpage arrival versus the time to the complete page.
//
// Run one shard of a sharded directory deployment (start one process per
// entry in -shards, with -self naming this process's entry; clients and
// servers point at any shard and discover the rest):
//
//	gmsnode dirshard -addr :7000 -shards host0:7000,host1:7000 -self 0
//	gmsnode dirshard -addr :7000 -shards host0:7000,host1:7000 -self 1
//
// Gracefully decommission a page server: the directory copies every page
// the server holds the only live copy of to a surviving server, then
// expunges it behind an epoch fence, so concurrent clients never lose a
// page:
//
//	gmsnode drain -dir localhost:7000 -server host2:7001
//
// Run the self-contained resilience demo — a directory, two replica page
// servers behind a fault injector, and a client workload during which the
// primary server is killed (and optionally restarted):
//
//	gmsnode chaos -pages 256 -jitter 2ms -drop 0.01 -kill-at 0.5 -restart
//
// Every read must complete via failover to the replica; the exit status is
// non-zero if any read fails or returns wrong data.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "dir":
		runDir(os.Args[2:])
	case "dirshard":
		runDirShard(os.Args[2:])
	case "server":
		runServer(os.Args[2:])
	case "client":
		runClient(os.Args[2:])
	case "drain":
		runDrain(os.Args[2:])
	case "chaos":
		runChaos(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gmsnode dir|dirshard|server|client|drain|chaos [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmsnode:", err)
	os.Exit(1)
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

// startDebug starts the opt-in observability listener on addr and returns
// it with the registry the node's components report into.
func startDebug(addr string) (*gmsubpage.DebugServer, *gmsubpage.Metrics, error) {
	m := gmsubpage.NewMetrics()
	d, err := gmsubpage.StartDebug(addr, m)
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("debug listener on http://%s (/metrics, /healthz, /debug/pprof)\n", d.Addr())
	return d, m, nil
}

// debugMetrics handles the per-command -debug flag: empty addr disables
// observability (nil metrics), anything else starts the listener or dies.
func debugMetrics(addr string) *gmsubpage.Metrics {
	if addr == "" {
		return nil
	}
	_, m, err := startDebug(addr)
	if err != nil {
		fatal(err)
	}
	return m
}

// durabilityFlags registers the journal flag group shared by the dir and
// dirshard commands and returns a builder for the resulting options.
func durabilityFlags(fs *flag.FlagSet) func(ttl time.Duration) gmsubpage.DirectoryOptions {
	journal := fs.String("journal", "", "write-ahead journal directory; state survives a restart (empty = in-memory only)")
	fsync := fs.String("fsync", "interval", "journal fsync policy: always, interval, or never")
	snapEvery := fs.Int("snap-every", 0, "journal records between compacting snapshots (0 = default)")
	grace := fs.Duration("grace", 0, "how long recovered leases live before their first heartbeat must land (0 = lease TTL)")
	return func(ttl time.Duration) gmsubpage.DirectoryOptions {
		return gmsubpage.DirectoryOptions{
			LeaseTTL:      ttl,
			JournalDir:    *journal,
			Fsync:         *fsync,
			SnapshotEvery: *snapEvery,
			RestartGrace:  *grace,
		}
	}
}

func runDir(args []string) {
	fs := flag.NewFlagSet("dir", flag.ExitOnError)
	addr := fs.String("addr", ":7000", "listen address")
	ttl := fs.Duration("ttl", 0, "lease TTL for server registrations (0 = default 30s)")
	opts := durabilityFlags(fs)
	debug := fs.String("debug", "", "serve /metrics, /healthz and pprof on this address (empty = off)")
	_ = fs.Parse(args)
	d, err := gmsubpage.StartDirectoryWith(*addr, opts(*ttl))
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	if m := debugMetrics(*debug); m != nil {
		d.SetMetrics(m)
	}
	fmt.Println("directory listening on", d.Addr())
	if n := d.RecoveredServers(); n > 0 {
		fmt.Printf("recovered %d server registrations from the journal\n", n)
	}
	waitForInterrupt()
}

func runDrain(args []string) {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	dir := fs.String("dir", "localhost:7000", "directory address")
	server := fs.String("server", "", "page server address to decommission (required)")
	timeout := fs.Duration("timeout", 0, "overall drain deadline (0 = default 1m)")
	_ = fs.Parse(args)
	if *server == "" {
		fatal(fmt.Errorf("drain: -server names the page server to decommission"))
	}
	moved, err := gmsubpage.DrainServer(*dir, *server, *timeout)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("drained %s: %d sole-copy pages moved, registration expunged behind an epoch fence\n",
		*server, moved)
}

func runDirShard(args []string) {
	fs := flag.NewFlagSet("dirshard", flag.ExitOnError)
	addr := fs.String("addr", ":7000", "listen address")
	shards := fs.String("shards", "", "comma-separated addresses of every shard, in map order (required)")
	self := fs.Int("self", 0, "this process's index into -shards")
	version := fs.Uint64("version", 1, "shard map version")
	ttl := fs.Duration("ttl", 0, "lease TTL for server registrations (0 = default 30s)")
	opts := durabilityFlags(fs)
	debug := fs.String("debug", "", "serve /metrics, /healthz and pprof on this address (empty = off)")
	_ = fs.Parse(args)
	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("dirshard: -shards must list every shard address"))
	}
	d, err := gmsubpage.StartDirectoryShardWith(*addr, addrs, *self, *version, opts(*ttl))
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	if m := debugMetrics(*debug); m != nil {
		d.SetMetrics(m)
	}
	fmt.Printf("directory shard %d/%d (map v%d) listening on %s\n",
		*self, len(addrs), *version, d.Addr())
	if n := d.RecoveredServers(); n > 0 {
		fmt.Printf("recovered %d server registrations from the journal\n", n)
	}
	waitForInterrupt()
}

func runServer(args []string) {
	fs := flag.NewFlagSet("server", flag.ExitOnError)
	addr := fs.String("addr", ":7001", "listen address")
	dir := fs.String("dir", "localhost:7000", "directory address")
	pages := fs.Int("pages", 4096, "pages of memory to donate (8 KB each)")
	first := fs.Uint64("first", 0, "first page number to serve")
	wire := fs.Float64("wire", 0, "emulate a link of this many Mb/s (0 = none; 155 = the paper's AN2)")
	debug := fs.String("debug", "", "serve /metrics, /healthz and pprof on this address (empty = off)")
	_ = fs.Parse(args)
	s, err := gmsubpage.StartServer(*addr)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if m := debugMetrics(*debug); m != nil {
		s.SetMetrics(m)
	}
	s.SetWireMbps(*wire)
	s.StoreRange(*first, *pages)
	if err := s.Register(*dir); err != nil {
		fatal(err)
	}
	fmt.Printf("page server on %s donating %d pages (%d MB), registered with %s\n",
		s.Addr(), *pages, *pages*gmsubpage.PageSize/(1<<20), *dir)
	waitForInterrupt()
}

func runClient(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	dir := fs.String("dir", "localhost:7000", "directory address")
	pages := fs.Int("pages", 1024, "pages to touch")
	cache := fs.Int("cache", 128, "local cache size in pages")
	subpage := fs.Int("subpage", 1024, "subpage size in bytes")
	policy := fs.String("policy", "eager", "fullpage|lazy|eager|pipelined")
	workload := fs.String("workload", "", "replay a paper workload (modula3|ld|atom|render|gdb) instead of the page sweep")
	scale := fs.Float64("scale", 0.1, "workload trace scale for -workload")
	readahead := fs.Bool("readahead", false, "prefetch the next page on sequential fault runs")
	dialTO := fs.Duration("dial-timeout", 0, "per-dial timeout (0 = default 1s)")
	reqTO := fs.Duration("timeout", 0, "per-lookup / per-fetch-attempt timeout (0 = default 2s)")
	retries := fs.Int("retries", 0, "retries beyond the first attempt (0 = default 3, negative = none)")
	hedge := fs.Duration("hedge", 0, "duplicate a fetch to a replica after this delay (0 = off)")
	debug := fs.String("debug", "", "serve /metrics, /healthz and pprof on this address (empty = off)")
	_ = fs.Parse(args)

	c, err := gmsubpage.DialClient(*dir, gmsubpage.ClientOptions{
		CachePages:     *cache,
		SubpageSize:    *subpage,
		Policy:         gmsubpage.Policy(*policy),
		Readahead:      *readahead,
		DialTimeout:    *dialTO,
		RequestTimeout: *reqTO,
		MaxRetries:     *retries,
		Hedge:          *hedge,
		Metrics:        debugMetrics(*debug),
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if *workload != "" {
		need, err := gmsubpage.WorkloadPages(*workload, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replaying %s (scale %g, %d pages of remote memory) with %s at %d-byte subpages...\n",
			*workload, *scale, need, *policy, *subpage)
		rep, err := c.ReplayWorkload(*workload, *scale, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d references in %v\n", rep.Refs, rep.Elapsed.Round(time.Millisecond))
		fmt.Printf("  faults            %d (%.0f/s), prefetches %d, evictions %d\n",
			rep.Faults, rep.FaultsPerSecond(), rep.Prefetches, rep.Evictions)
		fmt.Printf("  subpage latency   %.0f us (median)\n", rep.SubpageLatencyUs)
		fmt.Printf("  full-page latency %.0f us (median)\n", rep.FullLatencyUs)
		fmt.Printf("  bytes in          %.1f MB\n", float64(rep.BytesIn)/(1<<20))
		return
	}

	fmt.Printf("faulting %d pages with %s at %d-byte subpages...\n",
		*pages, *policy, *subpage)
	var buf [64]byte
	start := time.Now() //lint:allow simpurity prototype timing path: the replay is measured in wall-clock time
	for p := 0; p < *pages; p++ {
		// Touch an interior offset: the faulted subpage arrives first.
		if err := c.Read(buf[:], uint64(p)*gmsubpage.PageSize+3072); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start) //lint:allow simpurity prototype timing path: the replay is measured in wall-clock time
	st := c.Stats()
	fmt.Printf("touched %d pages in %v (%.0f faults/s)\n",
		*pages, elapsed.Round(time.Millisecond),
		float64(st.Faults)/elapsed.Seconds())
	fmt.Printf("  faults            %d\n", st.Faults)
	fmt.Printf("  subpage latency   %.0f us (median, fault -> faulted subpage usable)\n", st.SubpageLatencyUs)
	fmt.Printf("  full-page latency %.0f us (median, fault -> entire page resident)\n", st.FullLatencyUs)
	fmt.Printf("  bytes in          %.1f MB\n", float64(st.BytesIn)/(1<<20))
}
