package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

// TestDebugListenerSmoke drives the -debug plumbing end to end: start the
// listener, point a live directory's metrics at its registry, generate
// traffic, and scrape /metrics and /healthz over HTTP.
func TestDebugListenerSmoke(t *testing.T) {
	ds, m, err := startDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })

	dir, err := gmsubpage.StartDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	dir.SetMetrics(m)

	srv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.StoreRange(0, 4)
	if err := srv.Register(dir.Addr()); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if got := get("/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	metrics := get("/metrics")
	for _, want := range []string{"gms_dir_registers_total", "gms_dir_pages 4"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestDebugMetricsDisabled pins that an empty -debug keeps observability
// fully off (nil metrics, no listener).
func TestDebugMetricsDisabled(t *testing.T) {
	if m := debugMetrics(""); m != nil {
		t.Fatalf("debugMetrics(\"\") = %v, want nil", m)
	}
}
