// Command subpagesim runs the paper's experiments and ad-hoc simulations.
//
// Regenerate paper artifacts:
//
//	subpagesim -list
//	subpagesim -run table2
//	subpagesim -run all -scale 1.0        # full paper-scale traces
//	subpagesim -run all -j 8              # 8 parallel workers
//	subpagesim -run all -benchout BENCH_experiments.json
//
// Ad-hoc simulation:
//
//	subpagesim -app render -mem 0.5 -policy pipelined -subpage 1024
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	gmsubpage "github.com/gms-sim/gmsubpage"
	"github.com/gms-sim/gmsubpage/internal/experiments"
	"github.com/gms-sim/gmsubpage/internal/par"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// allFlags lists every flag name in display order, so conflict errors
// name the offending flags deterministically.
var allFlags = []string{"list", "run", "scale", "j", "benchout",
	"app", "trace", "mem", "policy", "subpage", "disk", "pal", "json",
	"traceout", "tracejsonl"}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("subpagesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list experiments and exit")
		runID    = fs.String("run", "", "experiment id to regenerate, or \"all\"")
		scale    = fs.Float64("scale", 0.25, "trace scale (1.0 = paper-sized traces)")
		workers  = fs.Int("j", 0, "parallel workers for -run (0 = GOMAXPROCS, 1 = sequential)")
		benchOut = fs.String("benchout", "", "write per-experiment wall-clock JSON to this file (-run only)")
		app      = fs.String("app", "", "run one simulation of this workload instead of an experiment")
		traceIn  = fs.String("trace", "", "simulate a trace file saved by tracegen instead of a workload")
		mem      = fs.Float64("mem", 1.0, "local memory as a fraction of the workload footprint")
		policy   = fs.String("policy", "eager", "transfer policy")
		subpage  = fs.Int("subpage", 1024, "subpage size in bytes")
		disk     = fs.Bool("disk", false, "serve faults from disk instead of network memory")
		pal      = fs.Bool("pal", false, "charge PALcode software valid-bit emulation costs")
		asJSON   = fs.Bool("json", false, "emit -app/-trace results as JSON")
		traceOut = fs.String("traceout", "", "write the run's fault timeline as a Chrome trace_event file (-app/-trace)")
		traceJL  = fs.String("tracejsonl", "", "write the run's fault timeline as JSONL, one span per line (-app/-trace)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := conflictErr(set); err != nil {
		_, _ = fmt.Fprintln(stderr, "subpagesim:", err)
		return 2
	}

	fail := func(err error) int {
		_, _ = fmt.Fprintln(stderr, "subpagesim:", err)
		return 1
	}
	switch {
	case *list:
		for _, id := range gmsubpage.Experiments() {
			_, _ = fmt.Fprintln(stdout, id)
		}
	case *runID != "":
		ids := []string{*runID}
		if *runID == "all" {
			ids = experiments.IDs()
		}
		for _, id := range ids {
			if _, ok := experiments.ByID(id); !ok {
				return fail(fmt.Errorf("unknown experiment %q (have %v)", id, experiments.IDs()))
			}
		}
		// One pool serves both levels of the fan-out: whole experiments
		// run concurrently, and the sweep cells inside each experiment
		// fan out onto the same workers. Results are collected by index,
		// so the printed output is identical at any -j width.
		pool := par.New(*workers)
		outs := make([]string, len(ids))
		dursMs := make([]float64, len(ids))
		wallStart := time.Now() //lint:allow simpurity benchmark snapshot: experiment wall-clock is the measurement, not model time
		pool.ForEach(len(ids), func(i int) {
			e, _ := experiments.ByID(ids[i])
			start := time.Now() //lint:allow simpurity benchmark snapshot: experiment wall-clock is the measurement, not model time
			outs[i] = e.Run(experiments.Config{Scale: *scale, Pool: pool}).String()
			dursMs[i] = float64(time.Since(start).Nanoseconds()) / 1e6 //lint:allow simpurity benchmark snapshot: experiment wall-clock is the measurement, not model time
		})
		totalMs := float64(time.Since(wallStart).Nanoseconds()) / 1e6 //lint:allow simpurity benchmark snapshot: experiment wall-clock is the measurement, not model time
		for _, out := range outs {
			_, _ = fmt.Fprintln(stdout, out)
		}
		if *benchOut != "" {
			// When the run covered the prefetch experiment, snapshot its
			// coverage/accuracy/stall numbers as a first-class section —
			// the wall-clock list above only records how long it took.
			var prefetchSec any
			for _, id := range ids {
				if id == "prefetch" {
					prefetchSec = experiments.PrefetchBenchSection(experiments.Config{Scale: *scale, Pool: pool})
					break
				}
			}
			if err := writeBench(*benchOut, *scale, pool.Workers(), ids, dursMs, totalMs, prefetchSec); err != nil {
				return fail(err)
			}
		}
	case *app != "" || *traceIn != "":
		cfg := gmsubpage.Config{
			Workload:       *app,
			Scale:          *scale,
			MemoryFraction: *mem,
			Policy:         gmsubpage.Policy(*policy),
			SubpageSize:    *subpage,
			DiskBacking:    *disk,
			PALEmulation:   *pal,
		}
		if *traceOut != "" || *traceJL != "" {
			node := *app
			if node == "" {
				node = *traceIn
			}
			cfg.FaultTrace = gmsubpage.NewFaultTrace(node)
		}
		var rep *gmsubpage.Report
		var err error
		if *traceIn != "" {
			rep, err = gmsubpage.SimulateTraceFile(*traceIn, cfg)
		} else {
			rep, err = gmsubpage.Simulate(cfg)
		}
		if err != nil {
			return fail(err)
		}
		if err := exportTrace(cfg.FaultTrace, *traceOut, *traceJL); err != nil {
			return fail(err)
		}
		if *asJSON {
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return fail(err)
			}
			_, _ = fmt.Fprintln(stdout, string(out))
			return 0
		}
		_, _ = fmt.Fprintf(stdout, "%s %s subpage=%d mem=%d pages\n", rep.Workload, rep.Policy,
			rep.SubpageSize, rep.MemoryPages)
		_, _ = fmt.Fprintf(stdout, "  runtime   %10.1f ms\n", rep.RuntimeMs)
		_, _ = fmt.Fprintf(stdout, "  exec      %10.1f ms\n", rep.ExecMs)
		_, _ = fmt.Fprintf(stdout, "  sp wait   %10.1f ms\n", rep.SubpageWaitMs)
		_, _ = fmt.Fprintf(stdout, "  page wait %10.1f ms\n", rep.PageWaitMs)
		_, _ = fmt.Fprintf(stdout, "  disk wait %10.1f ms\n", rep.DiskWaitMs)
		_, _ = fmt.Fprintf(stdout, "  faults    %10d (+%d subpage refetches)\n", rep.Faults, rep.SubpageFaults)
		_, _ = fmt.Fprintf(stdout, "  moved     %10.1f MB, io-overlap share %.0f%%\n",
			float64(rep.BytesMoved)/(1<<20), rep.IOOverlapShare*100)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// exportTrace writes the recorded fault timeline to the requested files.
// tr is nil when neither export flag was given.
func exportTrace(tr *gmsubpage.FaultTrace, chromePath, jsonlPath string) error {
	if tr == nil {
		return nil
	}
	write := func(path string, render func(io.Writer, ...*gmsubpage.FaultTrace) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f, tr); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(chromePath, gmsubpage.WriteTraceChrome); err != nil {
		return err
	}
	return write(jsonlPath, gmsubpage.WriteTraceJSONL)
}

// conflictErr rejects flag combinations that the command would otherwise
// silently ignore: each mode (-list, -run, -app/-trace) accepts only its
// own flags.
func conflictErr(set map[string]bool) error {
	others := func(allowed ...string) []string {
		ok := make(map[string]bool, len(allowed))
		for _, a := range allowed {
			ok[a] = true
		}
		var bad []string
		for _, f := range allFlags {
			if set[f] && !ok[f] {
				bad = append(bad, "-"+f)
			}
		}
		return bad
	}
	switch {
	case set["list"]:
		if bad := others("list"); len(bad) > 0 {
			return fmt.Errorf("-list takes no other flags (got %s)", strings.Join(bad, " "))
		}
	case set["run"]:
		if bad := others("run", "scale", "j", "benchout"); len(bad) > 0 {
			return fmt.Errorf("-run regenerates experiments and ignores the single-simulation flags; drop %s or drop -run", strings.Join(bad, " "))
		}
	case set["app"] && set["trace"]:
		return fmt.Errorf("-app and -trace both name a reference stream; give exactly one")
	case set["app"]:
		if bad := others("app", "scale", "mem", "policy", "subpage", "disk", "pal", "json", "traceout", "tracejsonl"); len(bad) > 0 {
			return fmt.Errorf("%s only applies to -run; drop it or use -run", strings.Join(bad, " "))
		}
	case set["trace"]:
		if bad := others("trace", "mem", "policy", "subpage", "disk", "pal", "json", "traceout", "tracejsonl"); len(bad) > 0 {
			if set["scale"] {
				return fmt.Errorf("-scale does not apply to -trace: the file fixes the reference stream")
			}
			return fmt.Errorf("%s only applies to -run; drop it or use -run", strings.Join(bad, " "))
		}
	default:
		if len(set) > 0 {
			return fmt.Errorf("no mode selected: give -list, -run, -app or -trace")
		}
	}
	return nil
}

// benchSnapshot is the BENCH_experiments.json schema: one wall-clock
// sample per experiment plus the whole-run wall time at the recorded
// scale and pool width.
type benchSnapshot struct {
	Schema      string            `json:"schema"`
	Scale       float64           `json:"scale"`
	Workers     int               `json:"workers"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	TotalMs     float64           `json:"total_ms"`
	Experiments []benchExperiment `json:"experiments"`
}

type benchExperiment struct {
	ID string  `json:"id"`
	Ms float64 `json:"ms"`
}

// writeBench is a read-modify-write: other tools share the snapshot file
// (gmsload merges a "loadtest" section), so keys this tool does not own
// must survive a bench refresh. A missing or unparsable file starts fresh.
// prefetchSec, when non-nil, replaces the "prefetch" section (the learned
// prefetcher's coverage/accuracy/stall snapshot).
func writeBench(path string, scale float64, workers int, ids []string, dursMs []float64, totalMs float64, prefetchSec any) error {
	top := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &top)
	}
	exps := make([]benchExperiment, 0, len(ids))
	for i, id := range ids {
		exps = append(exps, benchExperiment{ID: id, Ms: round1(dursMs[i])})
	}
	top["schema"] = "gmsubpage-bench-experiments/v1"
	top["scale"] = scale
	top["workers"] = workers
	top["gomaxprocs"] = runtime.GOMAXPROCS(0)
	top["total_ms"] = round1(totalMs)
	top["experiments"] = exps
	if prefetchSec != nil {
		top["prefetch"] = prefetchSec
	}
	out, err := json.MarshalIndent(top, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// round1 keeps the snapshot readable: wall-clock at 0.1 ms granularity.
func round1(ms float64) float64 {
	return float64(int64(ms*10+0.5)) / 10
}
