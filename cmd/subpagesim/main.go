// Command subpagesim runs the paper's experiments and ad-hoc simulations.
//
// Regenerate paper artifacts:
//
//	subpagesim -list
//	subpagesim -run table2
//	subpagesim -run all -scale 1.0        # full paper-scale traces
//
// Ad-hoc simulation:
//
//	subpagesim -app render -mem 0.5 -policy pipelined -subpage 1024
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		runID   = flag.String("run", "", "experiment id to regenerate, or \"all\"")
		scale   = flag.Float64("scale", 0.25, "trace scale (1.0 = paper-sized traces)")
		app     = flag.String("app", "", "run one simulation of this workload instead of an experiment")
		traceIn = flag.String("trace", "", "simulate a trace file saved by tracegen instead of a workload")
		mem     = flag.Float64("mem", 1.0, "local memory as a fraction of the workload footprint")
		policy  = flag.String("policy", "eager", "transfer policy")
		subpage = flag.Int("subpage", 1024, "subpage size in bytes")
		disk    = flag.Bool("disk", false, "serve faults from disk instead of network memory")
		pal     = flag.Bool("pal", false, "charge PALcode software valid-bit emulation costs")
		asJSON  = flag.Bool("json", false, "emit -app/-trace results as JSON")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range gmsubpage.Experiments() {
			fmt.Println(id)
		}
	case *runID == "all":
		for _, id := range gmsubpage.Experiments() {
			mustRun(id, *scale)
		}
	case *runID != "":
		mustRun(*runID, *scale)
	case *app != "" || *traceIn != "":
		cfg := gmsubpage.Config{
			Workload:       *app,
			Scale:          *scale,
			MemoryFraction: *mem,
			Policy:         gmsubpage.Policy(*policy),
			SubpageSize:    *subpage,
			DiskBacking:    *disk,
			PALEmulation:   *pal,
		}
		var rep *gmsubpage.Report
		var err error
		if *traceIn != "" {
			rep, err = gmsubpage.SimulateTraceFile(*traceIn, cfg)
		} else {
			rep, err = gmsubpage.Simulate(cfg)
		}
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("%s %s subpage=%d mem=%d pages\n", rep.Workload, rep.Policy,
			rep.SubpageSize, rep.MemoryPages)
		fmt.Printf("  runtime   %10.1f ms\n", rep.RuntimeMs)
		fmt.Printf("  exec      %10.1f ms\n", rep.ExecMs)
		fmt.Printf("  sp wait   %10.1f ms\n", rep.SubpageWaitMs)
		fmt.Printf("  page wait %10.1f ms\n", rep.PageWaitMs)
		fmt.Printf("  disk wait %10.1f ms\n", rep.DiskWaitMs)
		fmt.Printf("  faults    %10d (+%d subpage refetches)\n", rep.Faults, rep.SubpageFaults)
		fmt.Printf("  moved     %10.1f MB, io-overlap share %.0f%%\n",
			float64(rep.BytesMoved)/(1<<20), rep.IOOverlapShare*100)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mustRun(id string, scale float64) {
	out, err := gmsubpage.RunExperiment(id, scale)
	if err != nil {
		fatal(err)
	}
	fmt.Println(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "subpagesim:", err)
	os.Exit(1)
}
