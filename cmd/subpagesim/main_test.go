package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConflictingFlagsRejected pins the fix for the silent-ignore bug:
// flags outside the selected mode used to be dropped without a word (e.g.
// `-run fig1 -json` ran the experiment and ignored -json). Every such
// combination must now fail with exit code 2 and an error on stderr.
func TestConflictingFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		argv []string
	}{
		{"run+app", []string{"-run", "fig1", "-app", "render"}},
		{"run+json", []string{"-run", "fig1", "-json"}},
		{"run+policy", []string{"-run", "all", "-policy", "pipelined"}},
		{"run+mem", []string{"-run", "all", "-mem", "0.5"}},
		{"run+subpage", []string{"-run", "fig3", "-subpage", "512"}},
		{"run+disk", []string{"-run", "fig1", "-disk"}},
		{"run+pal", []string{"-run", "fig1", "-pal"}},
		{"run+trace", []string{"-run", "fig1", "-trace", "x.trc"}},
		{"list+run", []string{"-list", "-run", "all"}},
		{"list+scale", []string{"-list", "-scale", "1"}},
		{"app+trace", []string{"-app", "render", "-trace", "x.trc"}},
		{"app+j", []string{"-app", "render", "-j", "4"}},
		{"app+benchout", []string{"-app", "render", "-benchout", "b.json"}},
		{"trace+scale", []string{"-trace", "x.trc", "-scale", "0.5"}},
		{"j alone", []string{"-j", "4"}},
		{"benchout alone", []string{"-benchout", "b.json"}},
		{"json alone", []string{"-json"}},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.argv, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit = %d, want 2 (stderr: %s)", c.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), "subpagesim:") {
			t.Errorf("%s: no error on stderr, got %q", c.name, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%s: rejected invocation still wrote output: %q", c.name, stdout.String())
		}
	}
}

func TestListMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	for _, id := range []string{"fig1", "table2", "cluster"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing %q:\n%s", id, stdout.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestRunWithBenchout runs one cheap experiment through the pool path and
// checks the benchmark snapshot it writes.
func TestRunWithBenchout(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "eventtime", "-scale", "0.05", "-j", "2", "-benchout", benchPath},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Event-time derivation") {
		t.Errorf("experiment output missing:\n%s", stdout.String())
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("bad bench JSON: %v\n%s", err, raw)
	}
	if snap.Schema != "gmsubpage-bench-experiments/v1" {
		t.Errorf("schema = %q", snap.Schema)
	}
	if snap.Scale != 0.05 || snap.Workers != 2 {
		t.Errorf("scale/workers = %v/%d, want 0.05/2", snap.Scale, snap.Workers)
	}
	if len(snap.Experiments) != 1 || snap.Experiments[0].ID != "eventtime" {
		t.Errorf("experiments = %+v", snap.Experiments)
	}
	if snap.TotalMs <= 0 {
		t.Errorf("total_ms = %v, want > 0", snap.TotalMs)
	}
}

// TestRunOutputIdenticalAcrossWidths checks the CLI-level determinism
// guarantee on a sweep experiment: same bytes at -j 1 and -j 8.
func TestRunOutputIdenticalAcrossWidths(t *testing.T) {
	outAt := func(j string) string {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-run", "smallpage", "-scale", "0.05", "-j", j}, &stdout, &stderr); code != 0 {
			t.Fatalf("-j %s: exit = %d, stderr: %s", j, code, stderr.String())
		}
		return stdout.String()
	}
	if seq, par := outAt("1"), outAt("8"); seq != par {
		t.Errorf("-j 1 and -j 8 outputs differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
}
