package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConflictingFlagsRejected pins the fix for the silent-ignore bug:
// flags outside the selected mode used to be dropped without a word (e.g.
// `-run fig1 -json` ran the experiment and ignored -json). Every such
// combination must now fail with exit code 2 and an error on stderr.
func TestConflictingFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		argv []string
	}{
		{"run+app", []string{"-run", "fig1", "-app", "render"}},
		{"run+json", []string{"-run", "fig1", "-json"}},
		{"run+policy", []string{"-run", "all", "-policy", "pipelined"}},
		{"run+mem", []string{"-run", "all", "-mem", "0.5"}},
		{"run+subpage", []string{"-run", "fig3", "-subpage", "512"}},
		{"run+disk", []string{"-run", "fig1", "-disk"}},
		{"run+pal", []string{"-run", "fig1", "-pal"}},
		{"run+trace", []string{"-run", "fig1", "-trace", "x.trc"}},
		{"list+run", []string{"-list", "-run", "all"}},
		{"list+scale", []string{"-list", "-scale", "1"}},
		{"app+trace", []string{"-app", "render", "-trace", "x.trc"}},
		{"app+j", []string{"-app", "render", "-j", "4"}},
		{"app+benchout", []string{"-app", "render", "-benchout", "b.json"}},
		{"trace+scale", []string{"-trace", "x.trc", "-scale", "0.5"}},
		{"run+traceout", []string{"-run", "fig1", "-traceout", "t.json"}},
		{"traceout alone", []string{"-traceout", "t.json"}},
		{"j alone", []string{"-j", "4"}},
		{"benchout alone", []string{"-benchout", "b.json"}},
		{"json alone", []string{"-json"}},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.argv, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit = %d, want 2 (stderr: %s)", c.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), "subpagesim:") {
			t.Errorf("%s: no error on stderr, got %q", c.name, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%s: rejected invocation still wrote output: %q", c.name, stdout.String())
		}
	}
}

func TestListMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	for _, id := range []string{"fig1", "table2", "cluster"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing %q:\n%s", id, stdout.String())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestRunWithBenchout runs one cheap experiment through the pool path and
// checks the benchmark snapshot it writes.
func TestRunWithBenchout(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "eventtime", "-scale", "0.05", "-j", "2", "-benchout", benchPath},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Event-time derivation") {
		t.Errorf("experiment output missing:\n%s", stdout.String())
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("bad bench JSON: %v\n%s", err, raw)
	}
	if snap.Schema != "gmsubpage-bench-experiments/v1" {
		t.Errorf("schema = %q", snap.Schema)
	}
	if snap.Scale != 0.05 || snap.Workers != 2 {
		t.Errorf("scale/workers = %v/%d, want 0.05/2", snap.Scale, snap.Workers)
	}
	if len(snap.Experiments) != 1 || snap.Experiments[0].ID != "eventtime" {
		t.Errorf("experiments = %+v", snap.Experiments)
	}
	if snap.TotalMs <= 0 {
		t.Errorf("total_ms = %v, want > 0", snap.TotalMs)
	}
}

// TestBenchoutPreservesForeignKeys pins that -benchout is a
// read-modify-write: sections other tools merge into the snapshot (gmsload
// writes "loadtest") survive a bench refresh.
func TestBenchoutPreservesForeignKeys(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	seed := `{"schema":"gmsubpage-bench-experiments/v1","loadtest":{"scaling_x":3.4}}` + "\n"
	if err := os.WriteFile(benchPath, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-run", "eventtime", "-scale", "0.05", "-j", "1", "-benchout", benchPath},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatalf("bad bench JSON: %v\n%s", err, raw)
	}
	lt, ok := top["loadtest"].(map[string]any)
	if !ok || lt["scaling_x"] != 3.4 {
		t.Fatalf("bench refresh clobbered the loadtest section: %v", top)
	}
	if _, ok := top["experiments"]; !ok {
		t.Fatalf("refresh did not write its own keys: %v", top)
	}
}

// TestAppModeTraceExport runs one small simulation with both trace export
// flags and checks the files: the Chrome file is valid trace_event JSON,
// the JSONL file has one parseable object per line, and a rerun produces
// byte-identical files (the tracer's determinism contract at the CLI).
func TestAppModeTraceExport(t *testing.T) {
	dir := t.TempDir()
	export := func(tag string) (string, string) {
		chrome := filepath.Join(dir, tag+".chrome.json")
		jsonl := filepath.Join(dir, tag+".jsonl")
		var stdout, stderr bytes.Buffer
		code := run([]string{"-app", "modula3", "-scale", "0.05", "-mem", "0.5",
			"-policy", "lazy", "-traceout", chrome, "-tracejsonl", jsonl},
			&stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
		}
		cb, err := os.ReadFile(chrome)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		return string(cb), string(jb)
	}
	chrome, jsonl := export("a")

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 4 {
		t.Fatalf("suspiciously few trace events: %d", len(doc.TraceEvents))
	}
	lines := strings.Split(strings.TrimRight(jsonl, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("suspiciously few JSONL spans: %d", len(lines))
	}
	for i, ln := range lines {
		var span map[string]any
		if err := json.Unmarshal([]byte(ln), &span); err != nil {
			t.Fatalf("JSONL line %d is not valid JSON: %v\n%s", i+1, err, ln)
		}
		if span["node"] != "modula3" {
			t.Fatalf("line %d node = %v, want modula3", i+1, span["node"])
		}
	}

	chrome2, jsonl2 := export("b")
	if chrome != chrome2 || jsonl != jsonl2 {
		t.Error("trace export differs across identical reruns")
	}
}

// TestRunOutputIdenticalAcrossWidths checks the CLI-level determinism
// guarantee on a sweep experiment: same bytes at -j 1 and -j 8.
func TestRunOutputIdenticalAcrossWidths(t *testing.T) {
	outAt := func(j string) string {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-run", "smallpage", "-scale", "0.05", "-j", j}, &stdout, &stderr); code != 0 {
			t.Fatalf("-j %s: exit = %d, stderr: %s", j, code, stderr.String())
		}
		return stdout.String()
	}
	if seq, par := outAt("1"), outAt("8"); seq != par {
		t.Errorf("-j 1 and -j 8 outputs differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
}
