// Command tracegen generates and inspects the synthetic application
// traces that drive the simulator.
//
//	tracegen -app modula3 -scale 0.25 -stats
//	tracegen -app gdb -scale 1.0 -out gdb.trace
//	tracegen -in gdb.trace -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func main() {
	var (
		app   = flag.String("app", "", "workload to generate (modula3|ld|atom|render|gdb)")
		scale = flag.Float64("scale", 0.25, "trace scale (1.0 = paper-sized)")
		out   = flag.String("out", "", "write the trace to this file")
		in    = flag.String("in", "", "read a previously saved trace instead of generating")
		stats = flag.Bool("stats", false, "print trace statistics")
		list  = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range trace.Apps(*scale) {
			fmt.Printf("%-8s %12d refs  %6d pages (%d MB footprint)\n",
				a.Name, a.TotalRefs(), a.TotalPages,
				a.TotalPages*units.PageSize/(1<<20))
		}
		return
	}

	reader, name := openReader(*app, *scale, *in)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		n, err := trace.Write(f, reader)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d references of %s to %s\n", n, name, *out)
		return
	}

	if !*stats {
		fmt.Fprintln(os.Stderr, "tracegen: nothing to do (use -stats, -out or -list)")
		os.Exit(2)
	}
	p := trace.ProfileOf(reader)
	fmt.Printf("trace %s:\n", name)
	fmt.Printf("  references     %d\n", p.Refs)
	fmt.Printf("  distinct pages %d (%.1f MB footprint)\n", p.Pages,
		float64(p.Pages*units.PageSize)/(1<<20))
	fmt.Printf("  store fraction %.1f%%\n", p.StoreFrac()*100)
	if len(p.FirstTouch) > 1 {
		spread := float64(p.FirstTouch[len(p.FirstTouch)-1]) / float64(p.Refs)
		fmt.Printf("  footprint growth spans %.0f%% of the trace\n", spread*100)
	}
}

func openReader(app string, scale float64, in string) (trace.Reader, string) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		r, err := trace.Open(f)
		if err != nil {
			fatal(err)
		}
		return r, in
	}
	a := trace.ByName(app, scale)
	if a == nil {
		fmt.Fprintf(os.Stderr, "tracegen: unknown app %q (try -list)\n", app)
		os.Exit(2)
	}
	return a.NewReader(), a.Name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
