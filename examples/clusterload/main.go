// Clusterload: the full GMS picture the paper's experiments sit inside.
// Several workstations page against the same finite pool of idle-node
// memory with epoch-based global replacement; as active nodes are added,
// global memory fills, old pages get discarded, and refaults start hitting
// disk — but subpage transfer keeps its advantage at every load level.
package main

import (
	"fmt"
	"log"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

func main() {
	fmt.Println("GMS cluster under increasing load (per-node 1/2 memory)")
	fmt.Println()
	fmt.Printf("%-7s %-10s %12s %12s %10s %8s\n",
		"active", "policy", "makespan", "disk-faults", "discards", "epochs")

	for _, active := range []int{1, 2, 3, 4} {
		workloads := make([]string, active)
		for i := range workloads {
			workloads[i] = "modula3"
		}
		for _, policy := range []gmsubpage.Policy{gmsubpage.FullPage, gmsubpage.Eager} {
			sub := 1024
			if policy == gmsubpage.FullPage {
				sub = gmsubpage.PageSize
			}
			rep, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{
				Workloads:           workloads,
				Scale:               0.2,
				MemoryFraction:      0.5,
				Policy:              policy,
				SubpageSize:         sub,
				IdleNodes:           2,
				DonatedPagesPerIdle: 100, // each idle node donates ~0.8 MB
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7d %-10s %10.0fms %12d %10d %8d\n",
				active, policy, rep.MakespanMs, rep.DiskFaults, rep.Discards, rep.Epochs)
		}
	}
	fmt.Println()
	fmt.Println("once the donated memory overflows, the epoch algorithm discards the")
	fmt.Println("globally-oldest pages and their next faults pay the disk penalty;")
	fmt.Println("eager subpage fetch still beats full pages at every load level.")
}
