// Compileburst: a build machine whose compiles outgrow local memory — the
// paper's Modula-3 scenario. The example finds the best subpage size for
// the workload and shows the latency/page-wait trade-off that makes 1-2 KB
// optimal (Figures 3 and 4).
package main

import (
	"fmt"
	"log"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

func main() {
	fmt.Println("compile under memory pressure: choosing a subpage size")
	fmt.Println()

	full, err := gmsubpage.Simulate(gmsubpage.Config{
		Workload:       "modula3",
		Scale:          0.25,
		MemoryFraction: 0.5,
		Policy:         gmsubpage.FullPage,
		SubpageSize:    gmsubpage.PageSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s %10s %12s %12s %10s\n",
		"subpage", "runtime", "subpage-wait", "page-wait", "gain")
	fmt.Printf("%-9s %8.0fms %10.0fms %10.0fms %10s\n",
		"8192", full.RuntimeMs, full.SubpageWaitMs, full.PageWaitMs, "-")

	bestSize, bestMs := 0, full.RuntimeMs
	for _, size := range []int{4096, 2048, 1024, 512, 256} {
		rep, err := gmsubpage.Simulate(gmsubpage.Config{
			Workload:       "modula3",
			Scale:          0.25,
			MemoryFraction: 0.5,
			Policy:         gmsubpage.Eager,
			SubpageSize:    size,
		})
		if err != nil {
			log.Fatal(err)
		}
		gain := (full.RuntimeMs - rep.RuntimeMs) / full.RuntimeMs * 100
		fmt.Printf("%-9d %8.0fms %10.0fms %10.0fms %9.1f%%\n",
			size, rep.RuntimeMs, rep.SubpageWaitMs, rep.PageWaitMs, gain)
		if rep.RuntimeMs < bestMs {
			bestSize, bestMs = size, rep.RuntimeMs
		}
	}
	fmt.Println()
	fmt.Printf("best subpage size: %d bytes (the paper found 1-2 KB optimal)\n", bestSize)
	fmt.Println("small subpages cut the restart latency but stall on the rest of the page;")
	fmt.Println("large ones transfer more before the program may continue.")

	// Subpage pipelining recovers most of the small-subpage page waits.
	pipe, err := gmsubpage.Simulate(gmsubpage.Config{
		Workload:       "modula3",
		Scale:          0.25,
		MemoryFraction: 0.5,
		Policy:         gmsubpage.Pipelined,
		SubpageSize:    512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith pipelining at 512 B: %.0f ms (page wait %.0f ms)\n",
		pipe.RuntimeMs, pipe.PageWaitMs)
}
