// Netpager: a live remote-memory cluster in one process. Two page servers
// donate memory, a directory tracks page placement, and a client with a
// tiny local cache runs a computation over a dataset that lives entirely
// in "network memory" — then compares fault latency across transfer
// policies, reproducing the prototype measurement of the paper's §3.1
// (subpage faults complete in a fraction of a full-page fault).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

const (
	datasetPages = 512 // 4 MB dataset
	cachePages   = 32  // local memory: 16x smaller
)

func main() {
	// Assemble the cluster: directory + two donating servers.
	dir, err := gmsubpage.StartDirectory("127.0.0.1:0")
	must(err)
	defer dir.Close()

	srvA, err := gmsubpage.StartServer("127.0.0.1:0")
	must(err)
	defer srvA.Close()
	srvB, err := gmsubpage.StartServer("127.0.0.1:0")
	must(err)
	defer srvB.Close()

	// The dataset: one uint64 counter per 8 bytes, split across servers.
	page := make([]byte, gmsubpage.PageSize)
	next := uint64(0)
	for p := uint64(0); p < datasetPages; p++ {
		for i := 0; i < gmsubpage.PageSize; i += 8 {
			binary.LittleEndian.PutUint64(page[i:], next)
			next++
		}
		if p < datasetPages/2 {
			srvA.Store(p, page)
		} else {
			srvB.Store(p, page)
		}
	}
	must(srvA.Register(dir.Addr()))
	must(srvB.Register(dir.Addr()))
	fmt.Printf("cluster up: %d pages (%d MB) across 2 servers, directory at %s\n",
		dir.Pages(), datasetPages*gmsubpage.PageSize/(1<<20), dir.Addr())

	// A client with 16x less local memory sums the whole dataset.
	client, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
		CachePages:  cachePages,
		SubpageSize: 1024,
		Policy:      gmsubpage.Eager,
	})
	must(err)
	defer client.Close()

	var sum, want uint64
	buf := make([]byte, gmsubpage.PageSize)
	for p := uint64(0); p < datasetPages; p++ {
		must(client.Read(buf, p*gmsubpage.PageSize))
		for i := 0; i < len(buf); i += 8 {
			sum += binary.LittleEndian.Uint64(buf[i:])
		}
	}
	n := uint64(datasetPages * gmsubpage.PageSize / 8)
	want = n * (n - 1) / 2
	if sum != want {
		log.Fatalf("checksum mismatch: %d != %d", sum, want)
	}
	st := client.Stats()
	fmt.Printf("summed %d counters from remote memory: ok (%d faults, %d evictions, %.1f MB in)\n\n",
		n, st.Faults, st.Evictions, float64(st.BytesIn)/(1<<20))

	// The §3.1 measurement: fault latency per policy. Loopback TCP is
	// effectively an infinite-speed wire, so we emulate a real link rate
	// for this phase; each client faults fresh pages at an interior
	// offset and reports the median time until the faulted subpage is
	// usable vs. until the whole page is resident. (10 Mb/s keeps the
	// serialization times far above single-CPU scheduler noise; on a
	// multicore machine try 155 for the paper's AN2 rate.)
	const wireMbps = 10
	srvA.SetWireMbps(wireMbps)
	srvB.SetWireMbps(wireMbps)
	fmt.Printf("fault latency by policy (median over fresh faults, emulated %d Mb/s link):\n", wireMbps)
	fmt.Printf("  %-10s %14s %14s\n", "policy", "subpage usable", "page complete")
	for _, pol := range []gmsubpage.Policy{gmsubpage.FullPage, gmsubpage.Eager, gmsubpage.Pipelined} {
		c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
			CachePages:  datasetPages,
			SubpageSize: 1024,
			Policy:      pol,
		})
		must(err)
		// Pace the probes — complete each page before the next fault —
		// so the medians measure isolated fault latency, not queueing.
		var probe [64]byte
		for p := uint64(0); p < 64; p++ {
			must(c.Read(probe[:], p*gmsubpage.PageSize+4000))
			must(c.Read(buf, p*gmsubpage.PageSize))
		}
		s := c.Stats()
		fmt.Printf("  %-10s %11.0f us %11.0f us\n", pol, s.SubpageLatencyUs, s.FullLatencyUs)
		_ = c.Close()
	}
	fmt.Println("\nwith subpage policies the program resumes before the page finishes arriving,")
	fmt.Println("exactly as on the paper's Alpha/AN2 prototype (0.52 ms vs 1.48 ms there).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
