// Quickstart: simulate one memory-intensive workload in a global memory
// environment and compare the paper's transfer policies, then regenerate a
// paper table.
package main

import (
	"fmt"
	"log"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

func main() {
	// A Modula-3 compile running in one quarter of its memory, paging to
	// network memory over the modelled AN2 ATM network.
	base := gmsubpage.Config{
		Workload:       "modula3",
		Scale:          0.25, // quarter-length trace; shapes are preserved
		MemoryFraction: 0.25,
		SubpageSize:    1024,
	}

	fmt.Println("modula3 at 1/4 memory, 1K subpages:")
	var fullpage *gmsubpage.Report
	for _, policy := range []gmsubpage.Policy{
		gmsubpage.FullPage, gmsubpage.Eager, gmsubpage.Pipelined,
	} {
		cfg := base
		cfg.Policy = policy
		rep, err := gmsubpage.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("  %-18s %8.0f ms  (exec %.0f + subpage wait %.0f + page wait %.0f)",
			policy, rep.RuntimeMs, rep.ExecMs, rep.SubpageWaitMs, rep.PageWaitMs)
		if fullpage == nil {
			fullpage = rep
		} else {
			line += fmt.Sprintf("  %.2fx faster than full pages", rep.Speedup(fullpage))
		}
		fmt.Println(line)
	}

	// The same workload paging to disk: the reason network memory exists.
	diskCfg := base
	diskCfg.Policy = gmsubpage.FullPage
	diskCfg.DiskBacking = true
	disk, err := gmsubpage.Simulate(diskCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-18s %8.0f ms\n\n", "disk paging", disk.RuntimeMs)

	// Regenerate Table 2 of the paper: fault latencies per subpage size.
	out, err := gmsubpage.RunExperiment("table2", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
