// Renderfarm: the paper's motivating scenario for Render — a graphics
// workstation walking a scene database far larger than its local memory,
// with idle cluster nodes holding the overflow.
//
// The example sweeps local memory from ample to scarce and shows how the
// choice of transfer policy changes the frame-walk time, including the
// per-fault waiting profile behind the paper's Figure 5.
package main

import (
	"fmt"
	"log"
	"sort"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

func main() {
	fmt.Println("scene walkthrough over network memory (render workload)")
	fmt.Println()
	fmt.Printf("%-10s %-12s %10s %10s %10s\n",
		"memory", "policy", "runtime", "vs full", "io-share")

	for _, mem := range []float64{1, 0.5, 0.25} {
		var full *gmsubpage.Report
		for _, policy := range []gmsubpage.Policy{
			gmsubpage.FullPage, gmsubpage.Eager, gmsubpage.Pipelined,
		} {
			rep, err := gmsubpage.Simulate(gmsubpage.Config{
				Workload:       "render",
				Scale:          0.25,
				MemoryFraction: mem,
				Policy:         policy,
				SubpageSize:    1024,
			})
			if err != nil {
				log.Fatal(err)
			}
			speed := "-"
			if full == nil {
				full = rep
			} else {
				speed = fmt.Sprintf("%.2fx", rep.Speedup(full))
			}
			fmt.Printf("%-10.2f %-12s %8.0fms %10s %9.0f%%\n",
				mem, policy, rep.RuntimeMs, speed, rep.IOOverlapShare*100)
		}
	}

	// Per-fault waiting profile at the stressed configuration: how many
	// frame-walk faults got the best case (waited only for one subpage)?
	rep, err := gmsubpage.Simulate(gmsubpage.Config{
		Workload:       "render",
		Scale:          0.25,
		MemoryFraction: 0.25,
		Policy:         gmsubpage.Eager,
		SubpageSize:    1024,
		TrackPerFault:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	waits := append([]float64(nil), rep.PerFaultWaitMs...)
	sort.Float64s(waits)
	fmt.Println()
	fmt.Printf("per-fault wait (eager, 1/4 memory, %d faults):\n", len(waits))
	for _, p := range []int{10, 50, 90, 99} {
		fmt.Printf("  p%-3d %6.2f ms\n", p, waits[(len(waits)-1)*p/100])
	}
	fmt.Printf("  best case is one 1K subpage (~0.55 ms); worst case is the full page (~1.4 ms)\n")
}
