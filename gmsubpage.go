// Package gmsubpage reproduces "Reducing Network Latency Using Subpages in
// a Global Memory Environment" (Jamrozik et al., ASPLOS 1996).
//
// It provides three things:
//
//   - a calibrated trace-driven simulator of subpage transfer policies
//     (full-page, lazy, eager fullpage fetch, subpage pipelining) in a
//     global memory system, with the paper's five application workloads
//     (Simulate, Workloads), custom trace replay (SimulateTraceFile,
//     WriteWorkloadTrace), and a multi-node cluster mode with GMS's
//     epoch-based global replacement (SimulateCluster);
//   - the complete experiment harness regenerating every table and figure
//     of the paper's evaluation, plus ablations, validations and the
//     paper's future-work predictions (Experiments, RunExperiment);
//   - a real networked remote-memory prototype over TCP — directory, page
//     servers, and a faulting client with subpage valid bits, sequential
//     readahead, io.ReaderAt/io.WriterAt paging, and live workload replay
//     (StartDirectory, StartServer, DialClient).
//
// The simulator's latency model is calibrated to the paper's DEC Alpha
// 250 / AN2 ATM prototype: a 1 KB subpage fault completes in ~0.55 ms
// versus ~1.48 ms for a full 8 KB page.
package gmsubpage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/experiments"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// PageSize is the modelled full page size (8 KB, as on the Alpha).
const PageSize = units.PageSize

// Policy names a subpage transfer policy.
type Policy string

// The available policies.
const (
	// FullPage transfers the whole 8 KB page: the classical GMS baseline.
	FullPage Policy = "fullpage"
	// Lazy transfers only the faulted subpage; other subpages fault in
	// on demand (≈ small pages).
	Lazy Policy = "lazy"
	// Eager transfers the faulted subpage, restarts the program, and
	// sends the rest of the page as one follow-on message.
	Eager Policy = "eager"
	// Pipelined sends the faulted subpage, then the +1 and -1 neighbour
	// subpages, then the remainder, assuming an intelligent controller.
	Pipelined Policy = "pipelined"
	// PipelinedDouble doubles each pipelined follow-on transfer (§4.3).
	PipelinedDouble Policy = "pipelined-double"
	// PipelinedSW charges the receiving CPU per pipelined subpage,
	// modelling the AN2 prototype's interrupt costs.
	PipelinedSW Policy = "pipelined-sw"
	// WideFault doubles the initial transfer, picking the preceding or
	// following neighbour from the fault's offset (§4.3).
	WideFault Policy = "widefault"
	// Prefetch is the Leap-style learned prefetcher: a per-page-group
	// majority-vote stride detector over recent fault offsets emits a
	// confidence-scaled prefetch window, falling back to Pipelined when
	// no trend is confident. Stateful: each simulation run learns from
	// its own fault stream. Extension beyond the paper.
	Prefetch Policy = "prefetch"
)

// Policies lists every policy name.
func Policies() []Policy {
	return []Policy{FullPage, Lazy, Eager, Pipelined, PipelinedDouble, PipelinedSW, WideFault, Prefetch}
}

// Workloads lists the paper's five applications.
func Workloads() []string {
	names := make([]string, 0, 5)
	for _, a := range trace.Apps(1) {
		names = append(names, a.Name)
	}
	return names
}

// Config describes one simulation run.
type Config struct {
	// Workload is one of Workloads() (default "modula3").
	Workload string
	// Scale shrinks the trace and footprint proportionally; 1.0 is the
	// paper's full trace (default 0.25).
	Scale float64
	// MemoryFraction sizes local memory relative to the workload's
	// footprint: 1, 0.5 or 0.25 in the paper (default 1).
	MemoryFraction float64
	// Policy selects the transfer policy (default Eager).
	Policy Policy
	// SubpageSize in bytes: a power of two in [256, 8192] (default 1024).
	SubpageSize int
	// DiskBacking serves all faults from disk instead of network memory
	// (the paper's disk_8192 baseline).
	DiskBacking bool
	// PALEmulation charges the prototype's software valid-bit costs
	// (Table 1) instead of assuming TLB hardware support.
	PALEmulation bool
	// TrackPerFault retains per-fault arrays (Figures 5-7) in the report.
	TrackPerFault bool
	// FaultTrace, when non-nil, records every fault's anatomy during the
	// run for export with WriteTraceChrome / WriteTraceJSONL. Tracing
	// never changes the simulated result.
	FaultTrace *FaultTrace
}

// Report is the outcome of a simulation run.
type Report struct {
	Workload    string
	Policy      Policy
	SubpageSize int
	MemoryPages int

	// RuntimeMs is the modelled execution time in milliseconds; the
	// next four fields decompose it.
	RuntimeMs     float64
	ExecMs        float64 // references executing (12 ns each)
	SubpageWaitMs float64 // stalls for the faulted subpage
	PageWaitMs    float64 // stalls for the rest of a page
	DiskWaitMs    float64

	Faults        int64
	SubpageFaults int64
	Evictions     int64
	BytesMoved    int64

	// IOOverlapShare is the fraction of the asynchronous-transfer
	// benefit attributable to overlapped I/O rather than overlapped
	// computation.
	IOOverlapShare float64

	// Per-fault data (TrackPerFault only).
	PerFaultWaitMs []float64
	FaultEvents    []int64
	// NextSubpageDistance[d] is the share of faults whose next access
	// on the page was d subpages away (Figure 7).
	NextSubpageDistance map[int]float64
}

// policyFor maps a Policy name to its implementation.
func policyFor(p Policy) (core.Policy, error) {
	if p == "" {
		p = Eager
	}
	return core.ByName(string(p))
}

// Simulate runs one configuration and reports the paging behaviour.
func Simulate(cfg Config) (*Report, error) {
	if cfg.Workload == "" {
		cfg.Workload = "modula3"
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.25
	}
	if cfg.SubpageSize == 0 {
		cfg.SubpageSize = 1024
	}
	if cfg.MemoryFraction == 0 {
		cfg.MemoryFraction = 1
	}
	app := trace.ByName(cfg.Workload, cfg.Scale)
	if app == nil {
		return nil, fmt.Errorf("gmsubpage: unknown workload %q (have %v)", cfg.Workload, Workloads())
	}
	if !units.ValidSubpageSize(cfg.SubpageSize) {
		return nil, fmt.Errorf("gmsubpage: invalid subpage size %d", cfg.SubpageSize)
	}
	pol, err := policyFor(cfg.Policy)
	if err != nil {
		return nil, err
	}
	backing := sim.GlobalMemory
	if cfg.DiskBacking {
		backing = sim.Disk
	}
	r := sim.Run(sim.Config{
		App:           app,
		MemFraction:   cfg.MemoryFraction,
		Policy:        pol,
		SubpageSize:   cfg.SubpageSize,
		Backing:       backing,
		PALEmulation:  cfg.PALEmulation,
		TrackPerFault: cfg.TrackPerFault,
		Trace:         cfg.FaultTrace,
	})
	return reportFrom(r, cfg.TrackPerFault), nil
}

// reportFrom converts a simulator result to the public report shape.
func reportFrom(r *sim.Result, tracked bool) *Report {
	rep := &Report{
		Workload:       r.AppName,
		Policy:         Policy(r.Policy),
		SubpageSize:    r.Subpage,
		MemoryPages:    r.MemPages,
		RuntimeMs:      r.Runtime.Ms(),
		ExecMs:         units.Ticks(r.Events).Ms(),
		SubpageWaitMs:  r.SpLatency.Ms(),
		PageWaitMs:     r.PageWait.Ms(),
		DiskWaitMs:     r.DiskWait.Ms(),
		Faults:         r.Faults,
		SubpageFaults:  r.SubpageFaults,
		Evictions:      r.Evictions,
		BytesMoved:     r.BytesMoved,
		IOOverlapShare: r.IOOverlapShare,
	}
	if tracked {
		rep.PerFaultWaitMs = make([]float64, len(r.PerFaultWait))
		for i, w := range r.PerFaultWait {
			rep.PerFaultWaitMs[i] = w.Ms()
		}
		rep.FaultEvents = append(rep.FaultEvents, r.FaultEvents...)
		rep.NextSubpageDistance = make(map[int]float64)
		for _, k := range r.NextDistance.Keys() {
			rep.NextSubpageDistance[k] = r.NextDistance.Fraction(k)
		}
	}
	return rep
}

// Speedup returns how much faster this run is than other.
func (r *Report) Speedup(other *Report) float64 {
	if r.RuntimeMs == 0 {
		return 0
	}
	return other.RuntimeMs / r.RuntimeMs
}

// WriteWorkloadTrace serializes a built-in workload's reference trace to w
// in the tracegen file format, returning the number of references written.
// SimulateTraceFile replays such files.
func WriteWorkloadTrace(w io.Writer, workload string, scale float64) (int64, error) {
	if scale == 0 {
		scale = 0.25
	}
	app := trace.ByName(workload, scale)
	if app == nil {
		return 0, fmt.Errorf("gmsubpage: unknown workload %q (have %v)", workload, Workloads())
	}
	return trace.Write(w, app.NewReader())
}

// SimulateTraceFile runs the simulator over a reference trace previously
// saved with cmd/tracegen, instead of a built-in workload. Config's
// Workload and Scale fields are ignored; everything else applies.
func SimulateTraceFile(path string, cfg Config) (*Report, error) {
	// Profile once for the footprint (and to validate the file).
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	rd, err := trace.Open(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	prof := trace.ProfileOf(rd)
	_ = f.Close()
	if prof.Refs == 0 {
		return nil, fmt.Errorf("gmsubpage: trace %s is empty", path)
	}

	if cfg.SubpageSize == 0 {
		cfg.SubpageSize = 1024
	}
	if cfg.MemoryFraction == 0 {
		cfg.MemoryFraction = 1
	}
	if !units.ValidSubpageSize(cfg.SubpageSize) {
		return nil, fmt.Errorf("gmsubpage: invalid subpage size %d", cfg.SubpageSize)
	}
	pol, err := policyFor(cfg.Policy)
	if err != nil {
		return nil, err
	}
	backing := sim.GlobalMemory
	if cfg.DiskBacking {
		backing = sim.Disk
	}
	src := &sim.TraceSource{
		Name:  filepath.Base(path),
		Pages: prof.Pages,
		NewReader: func() trace.Reader {
			f, err := os.Open(path)
			if err != nil {
				return &trace.SliceReader{}
			}
			rd, err := trace.Open(f)
			if err != nil {
				_ = f.Close()
				return &trace.SliceReader{}
			}
			return &closingReader{r: rd, f: f}
		},
	}
	r := sim.Run(sim.Config{
		Source:        src,
		MemFraction:   cfg.MemoryFraction,
		Policy:        pol,
		SubpageSize:   cfg.SubpageSize,
		Backing:       backing,
		PALEmulation:  cfg.PALEmulation,
		TrackPerFault: cfg.TrackPerFault,
		Trace:         cfg.FaultTrace,
	})
	return reportFrom(r, cfg.TrackPerFault), nil
}

// closingReader closes the backing file when the stream ends.
type closingReader struct {
	r trace.Reader
	f *os.File
}

func (c *closingReader) Read(buf []trace.Ref) int {
	n := c.r.Read(buf)
	if n == 0 && c.f != nil {
		_ = c.f.Close()
		c.f = nil
	}
	return n
}

// Experiments lists the paper artifacts the harness can regenerate
// ("fig1" ... "fig10", "table1", "table2", plus ablations).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact at the given trace scale
// (0 means the fast default, 1.0 the paper's full traces) and returns its
// rendered tables.
func RunExperiment(id string, scale float64) (string, error) {
	return RunExperimentParallel(id, scale, 1)
}

// RunExperimentParallel is RunExperiment with the independent simulation
// cells inside the experiment fanned out onto a bounded worker pool of
// the given width (0 selects GOMAXPROCS, 1 is sequential). The rendered
// output is byte-identical at every width.
func RunExperimentParallel(id string, scale float64, workers int) (string, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("gmsubpage: unknown experiment %q (have %v)", id, Experiments())
	}
	return e.Run(experiments.Config{Scale: scale, Pool: par.New(workers)}).String(), nil
}
