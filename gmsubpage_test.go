package gmsubpage_test

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	gmsubpage "github.com/gms-sim/gmsubpage"
)

func TestWorkloadsAndPolicies(t *testing.T) {
	w := gmsubpage.Workloads()
	if len(w) != 5 || w[0] != "modula3" || w[4] != "gdb" {
		t.Fatalf("Workloads = %v", w)
	}
	pols := gmsubpage.Policies()
	if len(pols) != 8 || pols[len(pols)-1] != gmsubpage.Prefetch {
		t.Fatalf("Policies = %v", pols)
	}
}

func TestSimulateDefaults(t *testing.T) {
	rep, err := gmsubpage.Simulate(gmsubpage.Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "modula3" || rep.Policy != "eager" || rep.SubpageSize != 1024 {
		t.Fatalf("defaults not applied: %+v", rep)
	}
	if rep.RuntimeMs <= 0 || rep.Faults == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	// The decomposition adds up.
	sum := rep.ExecMs + rep.SubpageWaitMs + rep.PageWaitMs + rep.DiskWaitMs
	if diff := rep.RuntimeMs - sum; diff > 0.01 || diff < -0.01 {
		t.Fatalf("runtime %v != decomposition %v", rep.RuntimeMs, sum)
	}
}

func TestSimulateHeadlineResult(t *testing.T) {
	// The paper's headline: memory-intensive applications run faster
	// with 1K subpages than with full 8K pages, and much faster than
	// with disk backing.
	base := gmsubpage.Config{Workload: "modula3", Scale: 0.1, MemoryFraction: 0.25}

	diskCfg := base
	diskCfg.DiskBacking = true
	diskCfg.Policy = gmsubpage.FullPage
	disk, err := gmsubpage.Simulate(diskCfg)
	if err != nil {
		t.Fatal(err)
	}

	fullCfg := base
	fullCfg.Policy = gmsubpage.FullPage
	fullCfg.SubpageSize = gmsubpage.PageSize
	full, err := gmsubpage.Simulate(fullCfg)
	if err != nil {
		t.Fatal(err)
	}

	eagerCfg := base
	eagerCfg.Policy = gmsubpage.Eager
	eager, err := gmsubpage.Simulate(eagerCfg)
	if err != nil {
		t.Fatal(err)
	}

	if s := eager.Speedup(full); s < 1.05 || s > 2.2 {
		t.Errorf("eager vs fullpage speedup = %.2f, want within the paper's band (up to ~1.8)", s)
	}
	if s := eager.Speedup(disk); s < 1.5 || s > 6 {
		t.Errorf("eager vs disk speedup = %.2f, want roughly 2-4x", s)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := gmsubpage.Simulate(gmsubpage.Config{Workload: "nope"}); err == nil {
		t.Error("unknown workload should fail")
	}
	if _, err := gmsubpage.Simulate(gmsubpage.Config{SubpageSize: 100, Scale: 0.05}); err == nil {
		t.Error("bad subpage size should fail")
	}
	if _, err := gmsubpage.Simulate(gmsubpage.Config{Policy: "warp", Scale: 0.05}); err == nil {
		t.Error("bad policy should fail")
	}
}

func TestPerFaultTracking(t *testing.T) {
	rep, err := gmsubpage.Simulate(gmsubpage.Config{
		Scale: 0.05, MemoryFraction: 0.5, TrackPerFault: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerFaultWaitMs) == 0 || len(rep.FaultEvents) == 0 {
		t.Fatal("per-fault arrays missing")
	}
	if len(rep.NextSubpageDistance) == 0 {
		t.Fatal("distance distribution missing")
	}
	if rep.NextSubpageDistance[1] < 0.3 {
		t.Errorf("+1 distance share = %v, should dominate", rep.NextSubpageDistance[1])
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := gmsubpage.Experiments()
	if len(ids) < 14 {
		t.Fatalf("Experiments = %v", ids)
	}
	out, err := gmsubpage.RunExperiment("table2", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2", "fullpage", "1.48"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q:\n%s", want, out)
		}
	}
	if _, err := gmsubpage.RunExperiment("nope", 0); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRemotePrototypeEndToEnd(t *testing.T) {
	dir, err := gmsubpage.StartDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	srv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.StoreRange(0, 16)
	if err := srv.Register(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	if dir.Pages() != 16 {
		t.Fatalf("directory pages = %d", dir.Pages())
	}

	c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
		Policy: gmsubpage.Pipelined, SubpageSize: 1024, CachePages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := []byte("global memory says hello")
	if err := c.Write(msg, 3*gmsubpage.PageSize+500); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := c.Read(got, 3*gmsubpage.PageSize+500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	st := c.Stats()
	if st.Faults == 0 || st.BytesIn == 0 {
		t.Fatalf("no faults recorded: %+v", st)
	}
}

func TestDialClientRejectsUnsupportedPolicy(t *testing.T) {
	if _, err := gmsubpage.DialClient("127.0.0.1:1", gmsubpage.ClientOptions{
		Policy: gmsubpage.WideFault,
	}); err == nil {
		t.Fatal("widefault is not a wire policy")
	}
}

func TestFacadePagerAndReadahead(t *testing.T) {
	dir, err := gmsubpage.StartDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.StoreRange(0, 8)
	if err := srv.Register(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
		Readahead: true, CachePages: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pg, err := c.NewPager(0, 4*gmsubpage.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the pager")
	if _, err := pg.WriteAt(msg, 2*gmsubpage.PageSize+17); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := pg.ReadAt(got, 2*gmsubpage.PageSize+17); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("pager round trip: %q", got)
	}
	// Sequential faults through the pager trigger readahead.
	buf := make([]byte, gmsubpage.PageSize)
	for off := int64(0); off < pg.Size(); off += gmsubpage.PageSize {
		if _, err := pg.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Prefetches == 0 {
		t.Fatalf("no prefetches recorded: %+v", st)
	}
}

func TestSimulateCluster(t *testing.T) {
	rep, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{
		Workloads:           []string{"gdb", "gdb"},
		Scale:               1.0,
		MemoryFraction:      0.5,
		IdleNodes:           2,
		DonatedPagesPerIdle: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(rep.Nodes))
	}
	if rep.MakespanMs <= 0 || rep.GlobalHits == 0 {
		t.Fatalf("implausible cluster report: %+v", rep)
	}
	if rep.Epochs == 0 {
		t.Fatal("epoch replacement should have run")
	}
	for _, n := range rep.Nodes {
		if n.Faults == 0 {
			t.Fatalf("idle node in %+v", n)
		}
	}
}

func TestSimulateClusterNoIdleNodes(t *testing.T) {
	// The all-disk baseline must be expressible: zero idle nodes, no
	// global hits, every refault falls through to disk.
	base := gmsubpage.ClusterConfig{
		Workloads:      []string{"gdb"},
		Scale:          0.5,
		MemoryFraction: 0.5,
	}
	cfg := base
	cfg.NoIdleNodes = true
	rep, err := gmsubpage.SimulateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GlobalHits != 0 {
		t.Fatalf("no-idle cluster hit network memory: %+v", rep)
	}
	if rep.DiskFaults == 0 {
		t.Fatal("no-idle cluster should fault to disk")
	}
	// IdleNodes: -1 is the equivalent spelling.
	cfg = base
	cfg.IdleNodes = -1
	neg, err := gmsubpage.SimulateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if neg.GlobalHits != 0 || neg.DiskFaults != rep.DiskFaults {
		t.Fatalf("IdleNodes:-1 should match NoIdleNodes: %+v vs %+v", neg, rep)
	}
	// The zero value still means "default donors", not "none".
	def, err := gmsubpage.SimulateCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	if def.GlobalHits == 0 {
		t.Fatalf("default cluster should use network memory: %+v", def)
	}
	if def.MakespanMs >= rep.MakespanMs {
		t.Fatalf("network memory (%.1fms) should beat all-disk (%.1fms)",
			def.MakespanMs, rep.MakespanMs)
	}
}

func TestSimulateClusterErrors(t *testing.T) {
	if _, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{}); err == nil {
		t.Error("empty cluster should fail")
	}
	if _, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{
		Workloads: []string{"nope"},
	}); err == nil {
		t.Error("unknown workload should fail")
	}
	if _, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{
		Workloads: []string{"gdb"}, SubpageSize: 100,
	}); err == nil {
		t.Error("bad subpage size should fail")
	}
	if _, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{
		Workloads: []string{"gdb"}, NoIdleNodes: true,
		NodeFailures: []gmsubpage.FailureEvent{{Node: 0}},
	}); err == nil {
		t.Error("NodeFailures without idle nodes should fail")
	}
	if _, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{
		Workloads: []string{"gdb"}, IdleNodes: 2,
		NodeFailures: []gmsubpage.FailureEvent{{Node: 5}},
	}); err == nil {
		t.Error("out-of-range failure node should fail")
	}
	if _, err := gmsubpage.SimulateCluster(gmsubpage.ClusterConfig{
		Workloads: []string{"gdb"}, IdleNodes: 2,
		NodeFailures: []gmsubpage.FailureEvent{{Node: 0, AtMs: -1}},
	}); err == nil {
		t.Error("negative failure time should fail")
	}
}

func TestSimulateClusterNodeFailures(t *testing.T) {
	base := gmsubpage.ClusterConfig{
		Workloads:      []string{"gdb", "gdb"},
		Scale:          0.5,
		MemoryFraction: 0.5,
		IdleNodes:      2,
	}
	healthy, err := gmsubpage.SimulateCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.DroppedPages != 0 {
		t.Fatalf("healthy run dropped pages: %+v", healthy)
	}

	cfg := base
	cfg.NodeFailures = []gmsubpage.FailureEvent{{Node: 0, AtMs: healthy.MakespanMs / 2}}
	degraded, err := gmsubpage.SimulateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.DroppedPages == 0 {
		t.Fatalf("failure should drop the dead donor's pages: %+v", degraded)
	}
	if degraded.MakespanMs <= healthy.MakespanMs {
		t.Fatalf("losing a donor mid-run should cost time: %.1fms vs healthy %.1fms",
			degraded.MakespanMs, healthy.MakespanMs)
	}
}

func TestSimulateTraceFile(t *testing.T) {
	// Round trip: save a workload's trace, replay it through the
	// simulator, and match the in-memory run exactly.
	dir := t.TempDir()
	path := dir + "/gdb.trace"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	app := gmsubpage.Config{Workload: "gdb", Scale: 0.5, MemoryFraction: 0.5}
	inMem, err := gmsubpage.Simulate(app)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := gmsubpage.WriteWorkloadTrace(f, "gdb", 0.5); err != nil || n == 0 {
		t.Fatalf("WriteWorkloadTrace: %d, %v", n, err)
	}
	f.Close()

	rep, err := gmsubpage.SimulateTraceFile(path, gmsubpage.Config{MemoryFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != inMem.Faults || rep.RuntimeMs != inMem.RuntimeMs {
		t.Fatalf("trace replay differs: %+v vs %+v", rep, inMem)
	}
	if rep.Workload != "gdb.trace" {
		t.Fatalf("Workload = %q", rep.Workload)
	}
	if _, err := gmsubpage.SimulateTraceFile(dir+"/missing", gmsubpage.Config{}); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestReplayWorkloadLive(t *testing.T) {
	dir, err := gmsubpage.StartDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pages, err := gmsubpage.WorkloadPages("gdb", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	srv.StoreRange(0, pages+4)
	if err := srv.Register(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{
		CachePages:  pages / 2, // run the debugger in half its memory
		SubpageSize: 1024,
		Policy:      gmsubpage.Eager,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.ReplayWorkload("gdb", 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refs == 0 || rep.Faults == 0 {
		t.Fatalf("empty replay: %+v", rep)
	}
	// Half-memory gdb refaults: more faults than its footprint.
	if rep.Faults <= int64(pages) {
		t.Errorf("faults %d should exceed footprint %d at half memory", rep.Faults, pages)
	}
	if rep.Evictions == 0 {
		t.Error("half-memory replay should evict")
	}
	if rep.FaultsPerSecond() <= 0 {
		t.Error("fault rate should be positive")
	}
	if _, err := c.ReplayWorkload("nope", 1, 0); err == nil {
		t.Error("unknown workload should fail")
	}
}

// TestFacadeDurableDirectoryAndDrain exercises the durability surface the
// gmsnode CLI exposes: a journaled directory recovers its registrations
// across a restart, and DrainServer decommissions a page server over the
// wire without losing its sole-copy pages.
func TestFacadeDurableDirectoryAndDrain(t *testing.T) {
	jdir := t.TempDir()
	opts := gmsubpage.DirectoryOptions{JournalDir: jdir, Fsync: "always"}
	dir, err := gmsubpage.StartDirectoryWith("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	if _, err := gmsubpage.StartDirectoryWith("127.0.0.1:0", gmsubpage.DirectoryOptions{JournalDir: jdir, Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}

	srcSrv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srcSrv.Close()
	srcSrv.StoreRange(0, 8)
	if err := srcSrv.Register(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	dstSrv, err := gmsubpage.StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dstSrv.Close()
	if err := dstSrv.Register(dir.Addr()); err != nil {
		t.Fatal(err)
	}

	// Restart the directory from its journal: the registrations must be
	// there before any heartbeat lands.
	addr := dir.Addr()
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		dir, err = gmsubpage.StartDirectoryWith(addr, opts)
		if err == nil {
			break
		}
		if i == 40 {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer dir.Close()
	if n := dir.RecoveredServers(); n != 2 {
		t.Fatalf("recovered %d registrations, want 2", n)
	}
	if dir.Pages() != 8 {
		t.Fatalf("recovered directory pages = %d, want 8", dir.Pages())
	}

	// Drain the sole holder over the wire: its 8 pages move to dstSrv and
	// a client can still read them.
	moved, err := gmsubpage.DrainServer(dir.Addr(), srcSrv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 8 || dstSrv.Pages() != 8 {
		t.Fatalf("drain moved %d pages, dest holds %d, want 8/8", moved, dstSrv.Pages())
	}
	c, err := gmsubpage.DialClient(dir.Addr(), gmsubpage.ClientOptions{CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 32)
	for p := uint64(0); p < 8; p++ {
		if err := c.Read(buf, p*gmsubpage.PageSize); err != nil {
			t.Fatalf("read page %d after drain: %v", p, err)
		}
	}
}
