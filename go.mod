module github.com/gms-sim/gmsubpage

go 1.22
