// Package analytic provides closed-form bounds on the performance of
// subpage policies, derived only from the network model and a workload's
// (execution time, fault count) pair. The paper reasons with exactly these
// quantities: §2 observes that GMS speedups were "close to the maximum
// achievable, given the ratio of disk access to remote memory access
// time", and §2.2's overlap discussion brackets eager fullpage fetch
// between the all-best-case and all-worst-case extremes.
//
// The simulator is validated against these bounds (the `bounds`
// experiment): every simulated runtime must fall between BestCase and
// WorstCase, and the position within the band is the achieved overlap.
package analytic

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Workload is the pair of inputs the closed forms need.
type Workload struct {
	// ExecTicks is pure execution time (one tick per reference).
	ExecTicks units.Ticks
	// Faults is the number of page faults.
	Faults int64
}

// Model computes bounds for one network and subpage size.
type Model struct {
	Net     *netmodel.Params
	Subpage int

	sub  units.Ticks // faulted-subpage latency
	rest units.Ticks // rest-of-page arrival
	full units.Ticks // full-page latency
}

// NewModel derives the per-fault latencies once.
func NewModel(net *netmodel.Params, subpage int) *Model {
	if net == nil {
		net = netmodel.AN2ATM()
	}
	if !units.ValidSubpageSize(subpage) {
		panic(fmt.Sprintf("analytic: invalid subpage size %d", subpage))
	}
	sub, rest := net.EagerLatencies(subpage)
	return &Model{
		Net:     net,
		Subpage: subpage,
		sub:     sub.ToTicks(),
		rest:    rest.ToTicks(),
		full:    net.FetchLatency(units.PageSize).ToTicks(),
	}
}

// SubpageLatency returns the modelled fault-to-resume time.
func (m *Model) SubpageLatency() units.Ticks { return m.sub }

// RestLatency returns the modelled fault-to-page-complete time.
func (m *Model) RestLatency() units.Ticks { return m.rest }

// FullPageLatency returns the modelled full-page fault time.
func (m *Model) FullPageLatency() units.Ticks { return m.full }

// FullPage returns the runtime with classical full-page fetch: every fault
// stalls for the whole page.
func (m *Model) FullPage(w Workload) units.Ticks {
	return w.ExecTicks + units.Ticks(w.Faults)*m.full
}

// BestCase returns the eager-fetch lower bound: every fault waits only for
// its subpage and the rest of every page arrives entirely under overlap.
func (m *Model) BestCase(w Workload) units.Ticks {
	return w.ExecTicks + units.Ticks(w.Faults)*m.sub
}

// WorstCase returns the eager-fetch upper bound: every fault immediately
// touches an uncovered subpage and stalls until the rest of the page
// arrives (slightly above the full-page fetch time, since the split
// transfer can finish later than one message for small subpages).
func (m *Model) WorstCase(w Workload) units.Ticks {
	return w.ExecTicks + units.Ticks(w.Faults)*m.rest
}

// Predict returns the expected eager runtime when a fraction bestFrac of
// faults achieve the best case and the rest stall for the full window.
func (m *Model) Predict(w Workload, bestFrac float64) units.Ticks {
	if bestFrac < 0 {
		bestFrac = 0
	}
	if bestFrac > 1 {
		bestFrac = 1
	}
	perFault := float64(m.sub)*bestFrac + float64(m.rest)*(1-bestFrac)
	return w.ExecTicks + units.Ticks(float64(w.Faults)*perFault)
}

// AchievedOverlap inverts Predict: given a measured eager runtime, it
// returns the implied fraction of faults that achieved best-case overlap
// (0 = all worst case, 1 = all best case), clamped to [0, 1].
func (m *Model) AchievedOverlap(w Workload, measured units.Ticks) float64 {
	lo, hi := m.BestCase(w), m.WorstCase(w)
	if hi <= lo {
		return 1
	}
	f := float64(hi-measured) / float64(hi-lo)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// MaxSpeedup returns the paper's ceiling on eager-fetch speedup over
// full-page fetch: achieved when every fault is best case.
func (m *Model) MaxSpeedup(w Workload) float64 {
	best := m.BestCase(w)
	if best == 0 {
		return 1
	}
	return float64(m.FullPage(w)) / float64(best)
}

// MaxDiskSpeedup returns §2's "maximum achievable" speedup of remote
// memory over disk paging, given an average disk service time.
func MaxDiskSpeedup(w Workload, avgDisk units.Nanos, net *netmodel.Params) float64 {
	if net == nil {
		net = netmodel.AN2ATM()
	}
	remote := w.ExecTicks + units.Ticks(w.Faults)*net.FetchLatency(units.PageSize).ToTicks()
	diskRt := w.ExecTicks + units.Ticks(w.Faults)*avgDisk.ToTicks()
	if remote == 0 {
		return 1
	}
	return float64(diskRt) / float64(remote)
}
