package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func testModel() *Model { return NewModel(nil, 1024) }

func TestLatencyOrdering(t *testing.T) {
	m := testModel()
	if !(m.SubpageLatency() < m.FullPageLatency()) {
		t.Fatal("subpage latency should be below full-page latency")
	}
	if !(m.SubpageLatency() < m.RestLatency()) {
		t.Fatal("rest arrival follows the subpage")
	}
}

func TestBoundsBracketPrediction(t *testing.T) {
	m := testModel()
	w := Workload{ExecTicks: 1_000_000, Faults: 500}
	lo, hi := m.BestCase(w), m.WorstCase(w)
	if lo >= hi {
		t.Fatalf("bounds inverted: %d >= %d", lo, hi)
	}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := m.Predict(w, f)
		if p < lo || p > hi {
			t.Fatalf("Predict(%v) = %d outside [%d, %d]", f, p, lo, hi)
		}
	}
	if m.Predict(w, 1) != lo || m.Predict(w, 0) != hi {
		t.Fatal("prediction endpoints should hit the bounds")
	}
	// Out-of-range fractions clamp.
	if m.Predict(w, -1) != hi || m.Predict(w, 2) != lo {
		t.Fatal("fraction clamping broken")
	}
}

func TestAchievedOverlapInvertsPredict(t *testing.T) {
	m := testModel()
	w := Workload{ExecTicks: 2_000_000, Faults: 1000}
	f := func(raw uint8) bool {
		frac := float64(raw) / 255
		rt := m.Predict(w, frac)
		got := m.AchievedOverlap(w, rt)
		return math.Abs(got-frac) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Clamping beyond the band.
	if m.AchievedOverlap(w, m.BestCase(w)-1000) != 1 {
		t.Fatal("below-best runtime should clamp to 1")
	}
	if m.AchievedOverlap(w, m.WorstCase(w)+1000) != 0 {
		t.Fatal("above-worst runtime should clamp to 0")
	}
}

func TestMaxSpeedupMatchesPaperHeadline(t *testing.T) {
	// With execution negligible and all faults best case, the ceiling is
	// the fullpage/subpage latency ratio: ~2.7 for 1K (the abstract's
	// "one third the time").
	m := testModel()
	w := Workload{ExecTicks: 1, Faults: 100000}
	s := m.MaxSpeedup(w)
	if s < 2.4 || s > 3.2 {
		t.Fatalf("fault-dominated max speedup = %.2f, want ~2.7", s)
	}
	// With no faults there is nothing to win.
	idle := Workload{ExecTicks: 1_000_000, Faults: 0}
	if got := m.MaxSpeedup(idle); got != 1 {
		t.Fatalf("no-fault speedup = %v", got)
	}
}

func TestMaxDiskSpeedup(t *testing.T) {
	w := Workload{ExecTicks: 87_000_000, Faults: 773} // paper's Modula-3 at full-mem
	s := MaxDiskSpeedup(w, units.FromMs(3.5), nil)
	// The paper reports GMS speedups of 1.7-2.2 over disk and calls them
	// "close to the maximum achievable".
	if s < 1.3 || s > 2.5 {
		t.Fatalf("max disk speedup = %.2f, want in the paper's band", s)
	}
	// More faults push the ceiling toward the latency ratio.
	stressed := Workload{ExecTicks: 87_000_000, Faults: 50000}
	if s2 := MaxDiskSpeedup(stressed, units.FromMs(3.5), nil); s2 <= s {
		t.Fatal("fault-dominated ceiling should be higher")
	}
}

func TestSubpageSweepMonotonicity(t *testing.T) {
	// Smaller subpages always lower the best case but raise (or hold)
	// the worst case relative to their own rest arrival ordering.
	w := Workload{ExecTicks: 1_000_000, Faults: 1000}
	var prevBest units.Ticks
	for _, s := range []int{4096, 2048, 1024, 512, 256} {
		m := NewModel(nil, s)
		best := m.BestCase(w)
		if prevBest != 0 && best >= prevBest {
			t.Errorf("best case should improve as subpages shrink: %d at %d", best, s)
		}
		prevBest = best
		if m.WorstCase(w) < m.BestCase(w) {
			t.Errorf("bounds inverted at %d", s)
		}
	}
}

func TestModelWithExplicitNet(t *testing.T) {
	m := NewModel(netmodel.Ethernet10(), 1024)
	if m.SubpageLatency() <= testModel().SubpageLatency() {
		t.Fatal("Ethernet latencies should exceed ATM")
	}
}

func TestInvalidSubpagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewModel(100) should panic")
		}
	}()
	NewModel(nil, 100)
}
