// Package cachesim models the processor cache hierarchy of the DEC Alpha
// 250 and reproduces the paper's §3.2 methodology for the simulator's
// clock: "we traced those applications and ran the traces through a cache
// simulator to model memory accesses ... we then calculated the average
// time per trace event (i.e., per memory access) for these programs ...
// about 12 nanoseconds".
//
// Replaying our synthetic traces through this hierarchy with the Table 1
// cycle costs (L1 hit 3 cycles, L2 hit 8, L2 miss 84, at 266 MHz) yields
// an average time per reference close to the paper's 12 ns, which is the
// constant the trace-driven simulator uses as its event length
// (units.EventNs).
package cachesim

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Config shapes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size.
	LineBytes int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
}

// Valid reports whether the geometry is usable.
func (c Config) Valid() bool {
	return c.SizeBytes > 0 && c.LineBytes > 0 && c.Assoc > 0 &&
		units.IsPow2(c.SizeBytes) && units.IsPow2(c.LineBytes) && units.IsPow2(c.Assoc) &&
		c.SizeBytes >= c.LineBytes*c.Assoc
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Alpha250L1 is the 21064A's 16 KB direct-mapped data cache with 32-byte
// lines.
func Alpha250L1() Config { return Config{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1} }

// Alpha250L2 is the board-level 2 MB direct-mapped secondary cache with
// 64-byte lines.
func Alpha250L2() Config { return Config{SizeBytes: 2 << 20, LineBytes: 64, Assoc: 1} }

// Cache is one level: a set-associative array of tags with LRU within
// each set.
type Cache struct {
	cfg       Config
	tags      [][]uint64 // [set][way], tag 0 = empty (tags are shifted+1)
	hits      int64
	misses    int64
	setShift  uint
	setMask   uint64
	lineShift uint
}

// New builds a cache. It panics on invalid geometry; geometry is
// configuration, not data.
func New(cfg Config) *Cache {
	if !cfg.Valid() {
		panic(fmt.Sprintf("cachesim: invalid geometry %+v", cfg))
	}
	sets := cfg.Sets()
	tags := make([][]uint64, sets)
	backing := make([]uint64, sets*cfg.Assoc)
	for i := range tags {
		tags[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{
		cfg:       cfg,
		tags:      tags,
		lineShift: log2(cfg.LineBytes),
		setShift:  log2(cfg.LineBytes),
		setMask:   uint64(sets - 1),
	}
}

func log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Access looks an address up, filling on miss, and reports a hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.tags[line&c.setMask]
	tag := line + 1 // avoid the zero (empty) tag
	for i, t := range set {
		if t == tag {
			// Move to front: LRU within the set.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			return true
		}
	}
	c.misses++
	copy(set[1:], set)
	set[0] = tag
	return false
}

// Hits reports the hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports the miss count.
func (c *Cache) Misses() int64 { return c.misses }

// Hierarchy is an L1 + L2 pair with per-access timing from the Table 1
// cycle costs.
type Hierarchy struct {
	L1, L2 *Cache
	costs  *memmodel.PALCosts

	accesses    int64
	totalCycles int64
}

// NewHierarchy builds the Alpha 250 hierarchy with the given cost table
// (nil means memmodel.Alpha250()).
func NewHierarchy(costs *memmodel.PALCosts) *Hierarchy {
	if costs == nil {
		costs = memmodel.Alpha250()
	}
	return &Hierarchy{L1: New(Alpha250L1()), L2: New(Alpha250L2()), costs: costs}
}

// Access charges one memory reference and returns its cycle cost.
func (h *Hierarchy) Access(addr uint64) int {
	h.accesses++
	var cycles int
	switch {
	case h.L1.Access(addr):
		cycles = h.costs.L1HitCycles
	case h.L2.Access(addr):
		cycles = h.costs.L2HitCycles
	default:
		cycles = h.costs.L2MissCycles
	}
	h.totalCycles += int64(cycles)
	return cycles
}

// Accesses reports the reference count.
func (h *Hierarchy) Accesses() int64 { return h.accesses }

// AvgNsPerAccess returns the average time per memory reference — the
// paper's "time per simulation event".
func (h *Hierarchy) AvgNsPerAccess() float64 {
	if h.accesses == 0 {
		return 0
	}
	avgCycles := float64(h.totalCycles) / float64(h.accesses)
	return avgCycles * 1000 / float64(h.costs.CPUMHz)
}

// L1MissRate returns the fraction of references missing L1.
func (h *Hierarchy) L1MissRate() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.L1.Misses()) / float64(h.accesses)
}

// L2MissRate returns the fraction of references missing both levels.
func (h *Hierarchy) L2MissRate() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.L2.Misses()) / float64(h.accesses)
}

// Replay runs a full trace through a fresh Alpha 250 hierarchy and returns
// it for inspection.
func Replay(r trace.Reader) *Hierarchy {
	h := NewHierarchy(nil)
	buf := make([]trace.Ref, 8192)
	for {
		n := r.Read(buf)
		if n == 0 {
			return h
		}
		for _, ref := range buf[:n] {
			h.Access(ref.Addr)
		}
	}
}
