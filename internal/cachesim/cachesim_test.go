package cachesim

import (
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func TestConfigValidation(t *testing.T) {
	if !Alpha250L1().Valid() || !Alpha250L2().Valid() {
		t.Fatal("stock geometries should be valid")
	}
	bad := []Config{
		{},
		{SizeBytes: 100, LineBytes: 32, Assoc: 1},   // not a power of two
		{SizeBytes: 1024, LineBytes: 32, Assoc: 64}, // assoc exceeds capacity
		{SizeBytes: 1024, LineBytes: 0, Assoc: 1},
	}
	for _, c := range bad {
		if c.Valid() {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on invalid geometry")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 32, Assoc: 1})
}

func TestCacheHitMiss(t *testing.T) {
	c := New(Config{SizeBytes: 128, LineBytes: 32, Assoc: 2}) // 2 sets
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) || !c.Access(31) {
		t.Fatal("same line should hit")
	}
	if c.Access(32) {
		t.Fatal("next line should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way, 2 sets, 32B lines: lines 0 and 2 map to set 0.
	c := New(Config{SizeBytes: 128, LineBytes: 32, Assoc: 2})
	c.Access(0 * 32) // set0: [0]
	c.Access(2 * 32) // set0: [2 0]
	c.Access(0 * 32) // hit, set0: [0 2]
	c.Access(4 * 32) // miss, evicts LRU line 2: [4 0]
	if !c.Access(0 * 32) {
		t.Fatal("line 0 (recently used) should have survived")
	}
	if c.Access(2 * 32) {
		t.Fatal("line 2 (LRU) should have been evicted")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	// Direct-mapped 64B cache, 32B lines: 2 sets. Lines 0 and 2 conflict.
	c := New(Config{SizeBytes: 64, LineBytes: 32, Assoc: 1})
	c.Access(0)
	c.Access(2 * 32)
	if c.Access(0) {
		t.Fatal("direct-mapped conflict should evict")
	}
}

func TestHierarchyCosts(t *testing.T) {
	h := NewHierarchy(nil)
	first := h.Access(0) // cold: L2 miss
	if first != 84 {
		t.Fatalf("cold access = %d cycles, want 84", first)
	}
	again := h.Access(8) // same L1 line
	if again != 3 {
		t.Fatalf("L1 hit = %d cycles, want 3", again)
	}
	// Evict from L1 (16KB direct-mapped) but not L2: address 16KB away
	// conflicts in L1; the original line stays in L2.
	h.Access(16 << 10)
	l2hit := h.Access(0)
	if l2hit != 8 {
		t.Fatalf("L2 hit = %d cycles, want 8", l2hit)
	}
	if h.Accesses() != 4 {
		t.Fatalf("Accesses = %d", h.Accesses())
	}
}

func TestAvgNsEmptyIsZero(t *testing.T) {
	h := NewHierarchy(nil)
	if h.AvgNsPerAccess() != 0 || h.L1MissRate() != 0 || h.L2MissRate() != 0 {
		t.Fatal("empty hierarchy should report zeros")
	}
}

func TestPaperEventTimeDerivation(t *testing.T) {
	// §3.2: the paper derived ~12 ns per memory reference by replaying
	// its traces through a cache simulator. Our synthetic traces must
	// land in the same regime for the simulator's EventNs constant to be
	// justified.
	for _, app := range []*trace.App{
		trace.Modula3(0.05), trace.Ld(0.05), trace.Atom(0.05), trace.Render(0.02),
	} {
		h := Replay(app.NewReader())
		ns := h.AvgNsPerAccess()
		if ns < 8 || ns > 20 {
			t.Errorf("%s: %.1f ns per reference, paper derived ~%d ns",
				app.Name, ns, units.EventNs)
		}
	}
}

func TestSequentialBeatsRandomMissRate(t *testing.T) {
	seq := NewHierarchy(nil)
	for a := uint64(0); a < 1<<20; a += 8 {
		seq.Access(a)
	}
	random := NewHierarchy(nil)
	state := uint64(88172645463325252)
	for i := 0; i < 1<<17; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		random.Access(state % (64 << 20))
	}
	if seq.L1MissRate() >= random.L1MissRate() {
		t.Fatalf("sequential miss rate %.3f should beat random %.3f",
			seq.L1MissRate(), random.L1MissRate())
	}
}

func TestCacheNeverDoubleCounts(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Hits()+c.Misses() == int64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedAccessAlwaysHits(t *testing.T) {
	f := func(addr uint32) bool {
		c := New(Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
		c.Access(uint64(addr))
		return c.Access(uint64(addr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(nil)
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i) * 8)
	}
}
