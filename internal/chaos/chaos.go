// Package chaos injects network faults into the remote-memory prototype.
//
// A Network wraps net.Conn, net.Listener and dial functions with
// configurable misbehaviour: added latency and jitter, bandwidth caps,
// probabilistic loss (a write is blackholed and the connection dies, the
// stream-level shadow of an unrecovered packet loss), probabilistic
// connection resets, one-way write stalls, and full partitions. The
// directory, page servers and clients can all be started behind the same
// Network, so failure-path behaviour — deadlines, retries, failover,
// hedging — is testable without leaving the process.
//
// The paper's prototype assumes a lossless, always-up AN2 interconnect;
// this package exists to take that assumption away on demand.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/gms-sim/gmsubpage/internal/obs"
)

// Errors surfaced by injected faults.
var (
	// ErrPartitioned reports an operation attempted across an active
	// partition.
	ErrPartitioned = errors.New("chaos: network partitioned")
	// ErrReset reports an injected connection reset.
	ErrReset = errors.New("chaos: connection reset")
	// ErrClosed reports use of a connection the injector has killed.
	ErrClosed = errors.New("chaos: connection closed")
)

// Config shapes the faults a Network injects. The zero value injects
// nothing: wrapped connections behave like the real ones underneath.
type Config struct {
	// Latency is added to every write (the serialization+propagation
	// side of the emulated link).
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) to
	// every write.
	Jitter time.Duration
	// BandwidthBps caps throughput: each write of n bytes is delayed by
	// n/BandwidthBps seconds. Zero means uncapped.
	BandwidthBps int64
	// DropRate is the per-write probability that the data is blackholed
	// and the connection then dies — the stream-level consequence of a
	// lost packet with nobody retransmitting. The write itself reports
	// success, as a kernel handing a frame to a dying NIC would.
	DropRate float64
	// ResetRate is the per-operation probability of an immediate
	// connection reset.
	ResetRate float64
	// Seed makes the fault sequence reproducible; 0 seeds from 1.
	Seed int64
}

// Network is a shared fault domain: every connection dialed, accepted or
// wrapped through it observes the same injected conditions, and the
// control methods (Partition, StallWrites, KillActive) act on all of them
// at once.
type Network struct {
	mu          sync.Mutex
	cfg         Config
	rng         *rand.Rand
	partitioned bool
	stalled     bool
	conns       map[*Conn]struct{}

	// Counters for assertions and reports.
	Drops  int64
	Resets int64

	// Metric handles (nil-safe no-ops until SetMetrics).
	dropsM  *obs.Counter
	resetsM *obs.Counter
}

// New returns a Network injecting cfg.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*Conn]struct{}),
	}
}

// SetMetrics registers the injector's gms_chaos_* metrics on r (nil
// disables them).
func (n *Network) SetMetrics(r *obs.Registry) {
	n.mu.Lock()
	n.dropsM = r.Counter("gms_chaos_drops_total", "writes blackholed by the injector")
	n.resetsM = r.Counter("gms_chaos_resets_total", "connection resets injected")
	n.mu.Unlock()
}

// SetConfig replaces the fault configuration; existing connections pick it
// up on their next operation.
func (n *Network) SetConfig(cfg Config) {
	n.mu.Lock()
	n.cfg = cfg
	n.mu.Unlock()
}

// Partition opens (true) or heals (false) a full partition: new dials fail
// and operations on existing connections fail after killing them.
func (n *Network) Partition(on bool) {
	n.mu.Lock()
	n.partitioned = on
	n.mu.Unlock()
}

// StallWrites starts (true) or releases (false) a one-way stall: writes
// block while the stall holds, but reads keep flowing — the failure mode
// of a half-broken link, distinct from a clean disconnect.
func (n *Network) StallWrites(on bool) {
	n.mu.Lock()
	n.stalled = on
	n.mu.Unlock()
}

// KillActive closes every connection currently tracked by the Network (a
// crash of the emulated switch), returning how many it killed. New
// connections are unaffected unless a partition is also up.
func (n *Network) KillActive() int {
	n.mu.Lock()
	victims := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	for _, c := range victims {
		_ = c.Close()
	}
	return len(victims)
}

// Dial connects through the Network, observing any active partition. Its
// signature matches the client's dial hook.
func (n *Network) Dial(network, addr string) (net.Conn, error) {
	n.mu.Lock()
	parted := n.partitioned
	n.mu.Unlock()
	if parted {
		return nil, fmt.Errorf("chaos: dial %s: %w", addr, ErrPartitioned)
	}
	d := net.Dialer{Timeout: 5 * time.Second}
	c, err := d.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return n.WrapConn(c), nil
}

// WrapConn places an existing connection under the Network's control.
func (n *Network) WrapConn(c net.Conn) net.Conn {
	cc := &Conn{inner: c, netw: n}
	n.mu.Lock()
	n.conns[cc] = struct{}{}
	n.mu.Unlock()
	return cc
}

// WrapListener returns a listener whose accepted connections are under the
// Network's control, so a server started on it serves through the
// injector.
func (n *Network) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, netw: n}
}

type listener struct {
	net.Listener
	netw *Network
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.netw.WrapConn(c), nil
}

// Conn is one connection under fault injection. All misbehaviour happens
// on the write side (where the emulated link serializes data); reads pass
// through, seeing faults only as the peer's writes fail to arrive.
type Conn struct {
	inner net.Conn
	netw  *Network

	mu     sync.Mutex
	closed bool
}

// writePlan is the set of decisions the Network makes for one write.
type writePlan struct {
	delay time.Duration
	drop  bool
	reset bool
}

// plan rolls the dice for an n-byte write under the current config.
// Returns an error when the network is partitioned.
func (nw *Network) plan(n int) (writePlan, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.partitioned {
		return writePlan{}, ErrPartitioned
	}
	p := writePlan{delay: nw.cfg.Latency}
	if nw.cfg.Jitter > 0 {
		p.delay += time.Duration(nw.rng.Int63n(int64(nw.cfg.Jitter)))
	}
	if nw.cfg.BandwidthBps > 0 {
		p.delay += time.Duration(float64(n) / float64(nw.cfg.BandwidthBps) * float64(time.Second))
	}
	if nw.cfg.DropRate > 0 && nw.rng.Float64() < nw.cfg.DropRate {
		p.drop = true
		nw.Drops++
		nw.dropsM.Inc()
	}
	if nw.cfg.ResetRate > 0 && nw.rng.Float64() < nw.cfg.ResetRate {
		p.reset = true
		nw.Resets++
		nw.resetsM.Inc()
	}
	return p, nil
}

// waitStall blocks while a one-way stall holds, polling so a concurrent
// Close or partition can break the wait.
func (c *Conn) waitStall() error {
	for {
		c.netw.mu.Lock()
		stalled, parted := c.netw.stalled, c.netw.partitioned
		c.netw.mu.Unlock()
		if parted {
			return ErrPartitioned
		}
		if !stalled {
			return nil
		}
		if c.isClosed() {
			return ErrClosed
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (c *Conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Read passes through to the underlying connection; a partition kills the
// connection so blocked reads terminate rather than waiting for data that
// can never arrive.
func (c *Conn) Read(b []byte) (int, error) {
	c.netw.mu.Lock()
	parted := c.netw.partitioned
	c.netw.mu.Unlock()
	if parted {
		_ = c.Close()
		return 0, ErrPartitioned
	}
	return c.inner.Read(b)
}

// Write applies the Network's faults, then forwards to the underlying
// connection.
func (c *Conn) Write(b []byte) (int, error) {
	if c.isClosed() {
		return 0, ErrClosed
	}
	if err := c.waitStall(); err != nil {
		_ = c.Close()
		return 0, err
	}
	p, err := c.netw.plan(len(b))
	if err != nil {
		_ = c.Close()
		return 0, err
	}
	if p.reset {
		_ = c.Close()
		return 0, ErrReset
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if p.drop {
		// The bytes vanish and the link dies: the caller sees success
		// now and errors on the next use, the peer sees EOF.
		_ = c.Close()
		return len(b), nil
	}
	return c.inner.Write(b)
}

// Close closes the underlying connection and unregisters from the
// Network. Safe to call repeatedly and concurrently.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.netw.mu.Lock()
	delete(c.netw.conns, c)
	c.netw.mu.Unlock()
	return c.inner.Close()
}

// The remaining net.Conn methods pass through.

func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
