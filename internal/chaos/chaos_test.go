package chaos

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoPair builds a wrapped client conn talking to a plain echo server
// through nw's listener wrapper, so server-side writes pass the injector.
func echoPair(t *testing.T, nw *Network) net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := nw.WrapListener(ln)
	t.Cleanup(func() { wrapped.Close() })
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	conn, err := nw.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func roundTrip(conn net.Conn, msg []byte) error {
	if _, err := conn.Write(msg); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	_, err := io.ReadFull(conn, buf)
	return err
}

func TestCleanPassThrough(t *testing.T) {
	nw := New(Config{})
	conn := echoPair(t, nw)
	if err := roundTrip(conn, []byte("hello")); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyInjection(t *testing.T) {
	nw := New(Config{Latency: 20 * time.Millisecond})
	conn := echoPair(t, nw)
	start := time.Now()
	if err := roundTrip(conn, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	// Client write + echoed server write: at least 2x the latency.
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 40ms of injected latency", el)
	}
}

func TestBandwidthCap(t *testing.T) {
	nw := New(Config{BandwidthBps: 100_000}) // 10 KB takes >= 100ms one way
	conn := echoPair(t, nw)
	start := time.Now()
	if err := roundTrip(conn, make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("10KB round trip took %v, want >= 150ms at 100KB/s", el)
	}
}

func TestDropKillsConnection(t *testing.T) {
	nw := New(Config{DropRate: 1})
	conn := echoPair(t, nw)
	// The dropped write itself reports success...
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatalf("blackholed write should report success, got %v", err)
	}
	// ...but the connection is dead: the echo never comes back.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read after a drop should fail")
	}
	if nw.Drops == 0 {
		t.Fatal("drop counter should have incremented")
	}
}

func TestResetInjection(t *testing.T) {
	nw := New(Config{ResetRate: 1})
	conn := echoPair(t, nw)
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("write = %v, want ErrReset", err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on reset conn = %v, want ErrClosed", err)
	}
}

func TestPartition(t *testing.T) {
	nw := New(Config{})
	conn := echoPair(t, nw)
	if err := roundTrip(conn, []byte("before")); err != nil {
		t.Fatal(err)
	}
	nw.Partition(true)
	if _, err := nw.Dial("tcp", conn.RemoteAddr().String()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial across partition = %v, want ErrPartitioned", err)
	}
	if _, err := conn.Write([]byte("during")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write across partition = %v, want ErrPartitioned", err)
	}
	// Healing lets new connections through again.
	nw.Partition(false)
	conn2 := echoPair(t, nw)
	if err := roundTrip(conn2, []byte("after")); err != nil {
		t.Fatalf("healed network should carry traffic: %v", err)
	}
}

func TestStallWritesBlocksUntilReleased(t *testing.T) {
	nw := New(Config{})
	conn := echoPair(t, nw)
	nw.StallWrites(true)
	done := make(chan error, 1)
	go func() { done <- roundTrip(conn, []byte("stalled")) }()
	select {
	case err := <-done:
		t.Fatalf("write completed during stall: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	nw.StallWrites(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write never completed after stall release")
	}
}

func TestKillActive(t *testing.T) {
	nw := New(Config{})
	conn := echoPair(t, nw)
	if n := nw.KillActive(); n == 0 {
		t.Fatal("expected at least one tracked connection")
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write on killed connection should fail")
	}
}

func TestDeterministicSequence(t *testing.T) {
	// Same seed, same fault decisions.
	outcomes := func(seed int64) []bool {
		nw := New(Config{DropRate: 0.5, Seed: seed})
		var out []bool
		for i := 0; i < 32; i++ {
			p, err := nw.plan(1)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p.drop)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded sequences diverge at %d", i)
		}
	}
}

func TestScenarioRunsStepsInOrder(t *testing.T) {
	var got []string
	mark := func(name string) func() {
		return func() { got = append(got, name) } // runner goroutine only
	}
	s := Start([]Step{
		{After: 20 * time.Millisecond, Name: "second", Do: mark("second")},
		{After: 5 * time.Millisecond, Name: "first", Do: mark("first")},
	})
	s.Wait()
	log := s.Log()
	if len(log) != 2 || log[0] != "first" || log[1] != "second" {
		t.Fatalf("scenario log = %v", log)
	}
	if len(got) != 2 || got[0] != "first" {
		t.Fatalf("steps ran out of order: %v", got)
	}
}

func TestScenarioStopCancelsPending(t *testing.T) {
	ran := make(chan struct{}, 1)
	s := Start([]Step{
		{After: time.Hour, Name: "never", Do: func() { ran <- struct{}{} }},
	})
	s.Stop()
	select {
	case <-ran:
		t.Fatal("stopped scenario ran its step")
	default:
	}
	if len(s.Log()) != 0 {
		t.Fatalf("log = %v, want empty", s.Log())
	}
}
