package chaos

import (
	"sort"
	"sync"
	"time"
)

// Step is one timed action in a scripted scenario: Do runs After the
// scenario starts. Name labels the step in the scenario's log.
type Step struct {
	After time.Duration
	Name  string
	Do    func()
}

// Scenario runs a script of timed faults — kill a server at t=2s, heal the
// partition at t=5s — alongside a workload. Steps execute in After order
// on one goroutine, so a step never overlaps the next.
type Scenario struct {
	mu       sync.Mutex
	log      []string
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Start launches the steps and returns immediately.
func Start(steps []Step) *Scenario {
	ordered := make([]Step, len(steps))
	copy(ordered, steps)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].After < ordered[j].After })
	s := &Scenario{stop: make(chan struct{}), done: make(chan struct{})}
	go s.run(ordered)
	return s
}

func (s *Scenario) run(steps []Step) {
	defer close(s.done)
	start := time.Now() //lint:allow simpurity scenario steps are scheduled against the real clock of the live prototype
	for _, st := range steps {
		wait := st.After - time.Since(start) //lint:allow simpurity step deadlines are wall-clock offsets into the live run
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-s.stop:
				return
			}
		} else {
			select {
			case <-s.stop:
				return
			default:
			}
		}
		st.Do()
		s.mu.Lock()
		s.log = append(s.log, st.Name)
		s.mu.Unlock()
	}
}

// Wait blocks until every step has run (or the scenario was stopped).
func (s *Scenario) Wait() { <-s.done }

// Stop cancels steps that have not started yet and waits for the runner to
// exit.
func (s *Scenario) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Log returns the names of the steps executed so far, in order.
func (s *Scenario) Log() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.log))
	copy(out, s.log)
	return out
}
