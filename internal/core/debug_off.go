//go:build !gmsdebug

package core

// debugEnabled gates the runtime invariant assertions. Build with
// `-tags gmsdebug` to enable them; this default build compiles them away.
const debugEnabled = false

func debugAssert(bool, string) {}
