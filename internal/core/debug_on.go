//go:build gmsdebug

package core

// debugEnabled gates the runtime invariant assertions. Build with
// `-tags gmsdebug` to enable them; the default build compiles them away.
const debugEnabled = true

func debugAssert(cond bool, msg string) {
	if !cond {
		panic("core: invariant violated: " + msg)
	}
}
