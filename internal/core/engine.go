package core

import (
	"sort"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Transfer is one in-flight remote fetch: the messages planned by the
// policy plus their scheduled arrival times on the simulator clock.
type Transfer struct {
	Page     memmodel.PageID
	FaultIdx int // subpage index of the faulted word

	// FirstArrival is when the faulted subpage is usable and the program
	// resumes; CompleteAt is when the last message lands.
	Started      units.Ticks
	FirstArrival units.Ticks
	CompleteAt   units.Ticks

	// PageWait accumulates stalls on this page after the program first
	// resumed (waits for not-yet-arrived subpages).
	PageWait units.Ticks

	covers   []memmodel.Bitmap
	arrivals []units.Ticks
	demand   memmodel.Bitmap // the faulted subpage's blocks
	pending  int             // messages not yet applied to the frame
	traceID  int64           // span id in the engine's tracer; 0 when untraced
}

// Demand returns the blocks of the faulted subpage — the part of the
// transfer the program demanded, as opposed to what the policy chose to
// send speculatively alongside it.
func (t *Transfer) Demand() memmodel.Bitmap { return t.demand }

// TraceID returns the transfer's span id in the engine's tracer (0 when
// tracing is disabled). The runner uses it to reclassify or cancel spans.
func (t *Transfer) TraceID() int64 { return t.traceID }

// ArrivalCovering returns when the byte at offset off becomes valid, and
// false if no planned message covers it (lazy fetch).
func (t *Transfer) ArrivalCovering(off int) (units.Ticks, bool) {
	best := units.Ticks(0)
	found := false
	for i, c := range t.covers {
		if !c.Has(off) {
			continue
		}
		if !found || t.arrivals[i] < best {
			best = t.arrivals[i]
			found = true
		}
	}
	return best, found
}

// ApplyArrived returns the valid bits of all messages that have landed by
// now and marks them applied. Done reports completion afterwards.
func (t *Transfer) ApplyArrived(now units.Ticks) memmodel.Bitmap {
	var got memmodel.Bitmap
	for i := range t.arrivals {
		if t.arrivals[i] == 0 {
			continue // already applied
		}
		if t.arrivals[i] <= now {
			got |= t.covers[i]
			t.arrivals[i] = 0
			t.pending--
		}
	}
	return got
}

// Done reports whether every message has been applied.
func (t *Transfer) Done() bool { return t.pending == 0 }

// Covered returns the union of all planned valid bits (what the transfer
// will eventually deliver).
func (t *Transfer) Covered() memmodel.Bitmap {
	var all memmodel.Bitmap
	for _, c := range t.covers {
		all |= c
	}
	return all
}

// Engine schedules fault transfers for one faulting node, models contention
// on its network resources, and attributes overlap benefit.
type Engine struct {
	net     *netmodel.Params
	policy  Policy
	subpage int
	res     netmodel.Resources

	// Stall bookkeeping for overlap attribution: the disjoint, ordered
	// stall intervals of the (serial) program, with a prefix sum of
	// durations for O(log n) window queries.
	stallStart []units.Ticks
	stallEnd   []units.Ticks
	stallSum   []units.Ticks // stallSum[i] = total stall before interval i
	cumStall   units.Ticks

	// Aggregate overlap attribution (see FinishTransfer).
	IOOverlap   units.Ticks
	CompOverlap units.Ticks
	Faults      int64
	BytesMoved  int64

	// PrefetchIssued counts the MinSubpage blocks transferred beyond each
	// fault's demanded subpage — the speculative part of every plan,
	// whatever the policy (an eager remainder and a stride prediction both
	// count). The runner pairs it with the used-block count to report
	// prefetch accuracy.
	PrefetchIssued int64

	// trace, when non-nil, records every fault's anatomy (transfer plan,
	// stall re-entries, close-out attribution) on the event clock.
	trace *obs.SimTrace
}

// NewEngine returns an engine for the given network, policy and subpage
// size. SubpageSize must be a valid subpage size.
func NewEngine(net *netmodel.Params, policy Policy, subpageSize int) *Engine {
	if !units.ValidSubpageSize(subpageSize) {
		panic("core: invalid subpage size")
	}
	return &Engine{net: net, policy: policy, subpage: subpageSize}
}

// SubpageSize returns the configured subpage size.
func (e *Engine) SubpageSize() int { return e.subpage }

// Policy returns the configured policy.
func (e *Engine) Policy() Policy { return e.policy }

// SetTrace attaches a fault tracer. A nil tracer (the default) disables
// tracing; the only residual cost is one nil check per hook.
func (e *Engine) SetTrace(t *obs.SimTrace) { e.trace = t }

// StartFault plans and schedules the transfer for a fault at byte offset
// faultOff of page, issued at time now. The returned transfer's
// FirstArrival is when the program may resume.
func (e *Engine) StartFault(now units.Ticks, page memmodel.PageID, faultOff int) *Transfer {
	var plan []PlannedMessage
	if sp, ok := e.policy.(StatefulPolicy); ok {
		sp.Record(uint64(page), faultOff)
		plan = sp.PlanPage(uint64(page), e.subpage, faultOff)
	} else {
		plan = e.policy.Plan(e.subpage, faultOff)
	}
	msgs := make([]netmodel.Message, len(plan))
	for i, m := range plan {
		msgs[i] = netmodel.Message{Bytes: m.Bytes, Deliver: m.Deliver}
		e.BytesMoved += int64(m.Bytes)
	}
	arr := e.net.Transfer(now.ToNanos(), &e.res, msgs)

	t := &Transfer{
		Page:     page,
		FaultIdx: memmodel.SubpageIndex(e.subpage, faultOff),
		Started:  now,
		covers:   make([]memmodel.Bitmap, len(plan)),
		arrivals: make([]units.Ticks, len(plan)),
		pending:  len(plan),
	}
	for i := range plan {
		t.covers[i] = plan[i].Covers
		at := arr[i].At.ToTicks()
		if at <= now {
			at = now + 1 // a transfer is never free on the event clock
		}
		t.arrivals[i] = at
		if at > t.CompleteAt {
			t.CompleteAt = at
		}
	}
	t.FirstArrival = t.arrivals[0]
	t.demand = memmodel.MaskFor(e.subpage, t.FaultIdx)
	e.PrefetchIssued += int64((t.Covered() &^ t.demand).Count())
	if debugEnabled {
		e.checkTransferInvariants(t, plan, now, faultOff)
	}
	if e.trace != nil {
		tmsgs := make([]obs.TraceMsg, len(plan))
		for i := range plan {
			tmsgs[i] = obs.TraceMsg{At: t.arrivals[i], Bytes: msgs[i].Bytes, Deliver: msgs[i].Deliver}
		}
		t.traceID = e.trace.BeginTransfer(uint64(page), t.FaultIdx, now, t.FirstArrival, t.CompleteAt, tmsgs)
	}
	e.Faults++
	return t
}

// RecordUse feeds a stateful policy the first demand touch of a block that
// arrived speculatively. Faults alone under-represent the access pattern
// once prefetching works — a correct prediction suppresses the fault that
// would have recorded it — so the owner reports consumed prefetches here
// and the history tracks the demand stream, not the (policy-dependent)
// fault stream. No-op for stateless policies.
func (e *Engine) RecordUse(page memmodel.PageID, off int) {
	if sp, ok := e.policy.(StatefulPolicy); ok {
		sp.Record(uint64(page), off)
	}
}

// Stateful reports whether the engine's policy keeps fault history (and
// therefore needs prefetch-usage tracking to see the full demand stream).
func (e *Engine) Stateful() bool {
	_, ok := e.policy.(StatefulPolicy)
	return ok
}

// checkTransferInvariants verifies, under -tags gmsdebug, the properties
// every planned transfer must satisfy. Arrivals are monotone only within a
// delivery class: Deliver=true messages serialize on the receiving CPU,
// Deliver=false deposits on the controller's DMA engine, and the two
// streams may interleave freely on the global clock.
func (e *Engine) checkTransferInvariants(t *Transfer, plan []PlannedMessage, now units.Ticks, faultOff int) {
	debugAssert(len(plan) > 0, "transfer plan is empty")
	debugAssert(plan[0].Deliver, "first planned message is not CPU-delivered")
	debugAssert(t.covers[0].Has(faultOff),
		"first planned message does not cover the faulted subpage")
	var lastCPU, lastDMA units.Ticks
	for i := range plan {
		debugAssert(t.arrivals[i] > now, "message arrival not after fault issue")
		if plan[i].Deliver {
			debugAssert(t.arrivals[i] >= lastCPU, "CPU-delivered arrivals out of order")
			debugAssert(t.arrivals[i] >= t.FirstArrival,
				"faulted subpage does not arrive first among CPU deliveries")
			lastCPU = t.arrivals[i]
		} else {
			debugAssert(t.arrivals[i] >= lastDMA, "controller-deposit arrivals out of order")
			lastDMA = t.arrivals[i]
		}
	}
}

// NoteStall records that the program stalled from 'from' to 'to' waiting
// for an arrival of tr. initial marks the resume-from-fault stall (the
// subpage latency); later stalls are page waits and are charged to the
// transfer for overlap accounting.
func (e *Engine) NoteStall(from, to units.Ticks, tr *Transfer, initial bool) {
	if to <= from {
		return
	}
	if debugEnabled && len(e.stallEnd) > 0 {
		debugAssert(from >= e.stallEnd[len(e.stallEnd)-1],
			"stall interval overlaps an earlier one (double-counted stall time)")
	}
	d := to - from
	e.stallStart = append(e.stallStart, from)
	e.stallEnd = append(e.stallEnd, to)
	e.stallSum = append(e.stallSum, e.cumStall)
	e.cumStall += d
	if !initial && tr != nil {
		tr.PageWait += d
	}
	if e.trace != nil && tr != nil {
		e.trace.Stall(tr.traceID, from, to, initial)
	}
}

// stallBetween returns the exact stall time within [a, b]. Stalls are
// disjoint and appended in time order, so the overlapping run is a
// contiguous range of intervals.
func (e *Engine) stallBetween(a, b units.Ticks) units.Ticks {
	if b <= a || len(e.stallStart) == 0 {
		return 0
	}
	// First interval ending after a; last interval starting before b.
	i := sort.Search(len(e.stallEnd), func(k int) bool { return e.stallEnd[k] > a })
	j := sort.Search(len(e.stallStart), func(k int) bool { return e.stallStart[k] >= b }) - 1
	if i > j {
		return 0
	}
	// Total duration of intervals i..j, then clip the two edges.
	total := e.stallSum[j] + (e.stallEnd[j] - e.stallStart[j]) - e.stallSum[i]
	if e.stallStart[i] < a {
		total -= a - e.stallStart[i]
	}
	if e.stallEnd[j] > b {
		total -= e.stallEnd[j] - b
	}
	return total
}

// FinishTransfer attributes the transfer's asynchronous window — the time
// between program resumption and full-page arrival — to its three possible
// uses: waiting on this page (no benefit; already in tr.PageWait), waiting
// on other pages' transfers (overlapped I/O), and executing (overlapped
// computation). Call it when the simulation clock has passed
// tr.CompleteAt, or at end of trace with the final clock value.
func (e *Engine) FinishTransfer(tr *Transfer, now units.Ticks) {
	a, b := tr.FirstArrival, tr.CompleteAt
	if b > now {
		b = now
	}
	if b <= a {
		if e.trace != nil {
			e.trace.EndTransfer(tr.traceID, now, 0, 0)
		}
		return
	}
	window := b - a
	stalled := e.stallBetween(a, b)
	if stalled > window {
		stalled = window
	}
	other := stalled - tr.PageWait
	if other < 0 {
		other = 0
	}
	e.IOOverlap += other
	e.CompOverlap += window - stalled
	if e.trace != nil {
		e.trace.EndTransfer(tr.traceID, now, stalled, window-stalled)
	}
}

// IOOverlapShare returns the fraction of overlap benefit attributable to
// overlapped I/O rather than overlapped computation (Figure 9's companion
// measurement), or 0 when there was no overlap at all.
func (e *Engine) IOOverlapShare() float64 {
	total := e.IOOverlap + e.CompOverlap
	if total == 0 {
		return 0
	}
	return float64(e.IOOverlap) / float64(total)
}
