package core

import (
	"testing"

	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func newTestEngine(p Policy, subpage int) *Engine {
	return NewEngine(netmodel.AN2ATM(), p, subpage)
}

func TestStartFaultEagerTimes(t *testing.T) {
	e := newTestEngine(Eager{}, 1024)
	tr := e.StartFault(0, 42, 0)
	if tr.Page != 42 || tr.FaultIdx != 0 {
		t.Fatalf("bad transfer identity: %+v", tr)
	}
	// Times should match the netmodel's Table 2 values (±10%).
	sub, rest := netmodel.AN2ATM().EagerLatencies(1024)
	if got, want := tr.FirstArrival, sub.ToTicks(); absDiff(got, want)*10 > want {
		t.Errorf("FirstArrival = %d ticks, want ~%d", got, want)
	}
	if got, want := tr.CompleteAt, rest.ToTicks(); absDiff(got, want)*10 > want {
		t.Errorf("CompleteAt = %d ticks, want ~%d", got, want)
	}
}

func absDiff(a, b units.Ticks) units.Ticks {
	if a > b {
		return a - b
	}
	return b - a
}

func TestArrivalCovering(t *testing.T) {
	e := newTestEngine(Eager{}, 1024)
	tr := e.StartFault(0, 1, 2048) // fault in subpage 2
	// The faulted subpage arrives first.
	at, ok := tr.ArrivalCovering(2100)
	if !ok || at != tr.FirstArrival {
		t.Fatalf("faulted subpage arrival = %d, %v", at, ok)
	}
	// Another subpage arrives with the rest.
	at, ok = tr.ArrivalCovering(0)
	if !ok || at != tr.CompleteAt {
		t.Fatalf("other subpage arrival = %d, %v (complete %d)", at, ok, tr.CompleteAt)
	}
}

func TestLazyDoesNotCoverOtherSubpages(t *testing.T) {
	e := newTestEngine(Lazy{}, 1024)
	tr := e.StartFault(0, 1, 0)
	if _, ok := tr.ArrivalCovering(4096); ok {
		t.Fatal("lazy transfer should not cover other subpages")
	}
	if tr.Covered().Full() {
		t.Fatal("lazy covers the full page?")
	}
}

func TestApplyArrivedProgression(t *testing.T) {
	e := newTestEngine(Eager{}, 1024)
	tr := e.StartFault(0, 1, 0)
	if got := tr.ApplyArrived(tr.FirstArrival - 1); got != 0 {
		t.Fatalf("nothing should have arrived yet, got %s", got)
	}
	first := tr.ApplyArrived(tr.FirstArrival)
	if !first.Has(0) || first.Full() {
		t.Fatalf("first arrival should be just the subpage: %s", first)
	}
	if tr.Done() {
		t.Fatal("transfer not done after first message")
	}
	rest := tr.ApplyArrived(tr.CompleteAt)
	if first|rest != 0xFFFFFFFF {
		t.Fatalf("arrivals should cover the page: %s", first|rest)
	}
	if !tr.Done() {
		t.Fatal("transfer should be done")
	}
	// Re-applying yields nothing.
	if tr.ApplyArrived(tr.CompleteAt+1000) != 0 {
		t.Fatal("already-applied messages reapplied")
	}
}

func TestConcurrentFaultsContend(t *testing.T) {
	e := newTestEngine(Eager{}, 1024)
	a := e.StartFault(0, 1, 0)
	b := e.StartFault(0, 2, 0)
	if b.FirstArrival <= a.FirstArrival {
		t.Fatalf("second concurrent fault should land later: %d vs %d",
			b.FirstArrival, a.FirstArrival)
	}
	// But engine state resets per engine: a fresh engine sees no queue.
	e2 := newTestEngine(Eager{}, 1024)
	c := e2.StartFault(0, 1, 0)
	if c.FirstArrival != a.FirstArrival {
		t.Fatalf("fresh engine should match first fault: %d vs %d",
			c.FirstArrival, a.FirstArrival)
	}
}

func TestArrivalsNeverAtOrBeforeStart(t *testing.T) {
	e := newTestEngine(Pipelined{}, 256)
	now := units.Ticks(12345)
	tr := e.StartFault(now, 1, 0)
	if tr.FirstArrival <= now || tr.CompleteAt < tr.FirstArrival {
		t.Fatalf("bad arrival ordering: start %d first %d complete %d",
			now, tr.FirstArrival, tr.CompleteAt)
	}
}

func TestOverlapAttributionIO(t *testing.T) {
	// Two faults back to back: while A's rest is in flight, the program
	// stalls on B's subpage. That stall is I/O overlap for A.
	e := newTestEngine(Eager{}, 1024)
	a := e.StartFault(0, 1, 0)
	nowAfterA := a.FirstArrival
	b := e.StartFault(nowAfterA, 2, 0)
	e.NoteStall(nowAfterA, b.FirstArrival, b, true)
	e.FinishTransfer(a, a.CompleteAt)
	if e.IOOverlap == 0 {
		t.Fatal("stall on B during A's window should count as I/O overlap")
	}
}

func TestOverlapAttributionComp(t *testing.T) {
	// One fault, program executes through the whole window: all benefit
	// is computational.
	e := newTestEngine(Eager{}, 1024)
	a := e.StartFault(0, 1, 0)
	e.FinishTransfer(a, a.CompleteAt+1000)
	if e.IOOverlap != 0 {
		t.Fatalf("no other I/O: IOOverlap = %d", e.IOOverlap)
	}
	if want := a.CompleteAt - a.FirstArrival; e.CompOverlap != want {
		t.Fatalf("CompOverlap = %d, want %d", e.CompOverlap, want)
	}
}

func TestOverlapAttributionSelfWaitIsNotBenefit(t *testing.T) {
	// The program immediately stalls for the rest of its own page: no
	// overlap benefit at all.
	e := newTestEngine(Eager{}, 1024)
	a := e.StartFault(0, 1, 0)
	e.NoteStall(a.FirstArrival, a.CompleteAt, a, false)
	e.FinishTransfer(a, a.CompleteAt)
	if e.IOOverlap != 0 || e.CompOverlap != 0 {
		t.Fatalf("self-wait should give no overlap: io=%d comp=%d",
			e.IOOverlap, e.CompOverlap)
	}
	if a.PageWait != a.CompleteAt-a.FirstArrival {
		t.Fatalf("PageWait = %d", a.PageWait)
	}
}

func TestIOOverlapShare(t *testing.T) {
	e := newTestEngine(Eager{}, 1024)
	if e.IOOverlapShare() != 0 {
		t.Fatal("empty engine share should be 0")
	}
	e.IOOverlap = 30
	e.CompOverlap = 70
	if got := e.IOOverlapShare(); got != 0.3 {
		t.Fatalf("share = %v, want 0.3", got)
	}
}

func TestFinishTransferClampsToNow(t *testing.T) {
	// Trace ends before the transfer completes: window clamps.
	e := newTestEngine(Eager{}, 1024)
	a := e.StartFault(0, 1, 0)
	mid := (a.FirstArrival + a.CompleteAt) / 2
	e.FinishTransfer(a, mid)
	if e.CompOverlap != mid-a.FirstArrival {
		t.Fatalf("clamped CompOverlap = %d, want %d", e.CompOverlap, mid-a.FirstArrival)
	}
}

func TestNoteStallIgnoresEmpty(t *testing.T) {
	e := newTestEngine(Eager{}, 1024)
	e.NoteStall(100, 100, nil, true)
	e.NoteStall(100, 50, nil, true)
	if e.cumStall != 0 {
		t.Fatal("empty stalls should be ignored")
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	e := newTestEngine(Eager{}, 1024)
	e.StartFault(0, 1, 0)
	if e.BytesMoved != units.PageSize {
		t.Fatalf("BytesMoved = %d, want %d", e.BytesMoved, units.PageSize)
	}
	eLazy := newTestEngine(Lazy{}, 1024)
	eLazy.StartFault(0, 1, 0)
	if eLazy.BytesMoved != 1024 {
		t.Fatalf("lazy BytesMoved = %d, want 1024", eLazy.BytesMoved)
	}
}

func TestInvalidSubpagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine with bad subpage size should panic")
		}
	}()
	NewEngine(netmodel.AN2ATM(), Eager{}, 100)
}
