//go:build gmsdebug

package core

import (
	"testing"

	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// TestDebugAssertionsHoldOnRealPolicies drives every policy through the
// assertion-instrumented StartFault/NoteStall paths: a clean run must not
// panic, which is the whole point of `go test -tags gmsdebug`.
func TestDebugAssertionsHoldOnRealPolicies(t *testing.T) {
	if !debugEnabled {
		t.Fatal("gmsdebug build tag set but debugEnabled is false")
	}
	policies := []Policy{
		FullPage{}, Lazy{}, Eager{},
		Pipelined{}, Pipelined{DoubleFollowOn: true}, Pipelined{SoftwareDelivery: true},
		WideFault{},
	}
	for _, p := range policies {
		for _, sub := range []int{256, 1024, 4096} {
			e := NewEngine(netmodel.AN2ATM(), p, sub)
			now := units.Ticks(100)
			for _, off := range []int{0, sub - 1, 2048, 4095} {
				tr := e.StartFault(now, 1, off)
				e.NoteStall(now, tr.FirstArrival, tr, true)
				e.NoteStall(tr.FirstArrival+50, tr.FirstArrival+80, tr, false)
				e.FinishTransfer(tr, tr.CompleteAt+1)
				now = tr.CompleteAt + 1000
			}
		}
	}
}

func TestDebugAssertCatchesOverlappingStalls(t *testing.T) {
	e := NewEngine(netmodel.AN2ATM(), Eager{}, 1024)
	e.NoteStall(100, 200, nil, true)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping NoteStall did not panic under gmsdebug")
		}
	}()
	e.NoteStall(150, 300, nil, true) // starts inside the previous interval
}

func TestDebugAssertMessage(t *testing.T) {
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || s != "core: invariant violated: boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	debugAssert(false, "boom")
}
