// Package core implements the paper's contribution: subpage transfer
// policies for remote-memory page faults, and the fault engine that
// schedules their transfers, tracks per-subpage arrival, and attributes the
// resulting benefit to overlapped I/O versus overlapped computation.
//
// A Policy decides, for a fault at a given offset, which messages to
// transfer: the whole page (the classical GMS baseline), just the faulted
// subpage (lazy fetch / small pages), the faulted subpage followed by the
// rest of the page as one large message (eager fullpage fetch), or the
// faulted subpage followed by pipelined neighbour subpages and then the
// remainder (subpage pipelining), including the §4.3 variants.
package core

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// PlannedMessage is one message of a fault's transfer plan.
type PlannedMessage struct {
	// Bytes is the payload size.
	Bytes int
	// Deliver reports whether the receiving CPU takes an interrupt and
	// copy for this message (false models the intelligent controller
	// that deposits pipelined subpages and updates valid bits directly).
	Deliver bool
	// Covers is the set of subpage valid bits this message supplies.
	Covers memmodel.Bitmap
}

// Policy plans the messages for a fault at byte offset faultOff within a
// page, with the system configured for the given subpage size. The first
// message must cover the faulted offset; together the messages may cover
// any subset of the page (lazy fetch covers only the faulted subpage).
type Policy interface {
	Name() string
	Plan(subpageSize, faultOff int) []PlannedMessage
}

// FullPage is the classical GMS baseline: the entire page in one transfer.
type FullPage struct{}

// Name implements Policy.
func (FullPage) Name() string { return "fullpage" }

// Plan implements Policy.
func (FullPage) Plan(subpageSize, faultOff int) []PlannedMessage {
	return []PlannedMessage{{
		Bytes:   units.PageSize,
		Deliver: true,
		Covers:  memmodel.FullBitmap,
	}}
}

// Lazy transfers only the faulted subpage; the remaining subpages fault in
// on demand, each with a full request round-trip. Equivalent in most
// respects to shrinking the page size (§2.1); implemented as a baseline.
type Lazy struct{}

// Name implements Policy.
func (Lazy) Name() string { return "lazy" }

// Plan implements Policy.
func (Lazy) Plan(subpageSize, faultOff int) []PlannedMessage {
	idx := memmodel.SubpageIndex(subpageSize, faultOff)
	return []PlannedMessage{{
		Bytes:   subpageSize,
		Deliver: true,
		Covers:  memmodel.MaskFor(subpageSize, idx),
	}}
}

// Eager is eager fullpage fetch: transfer the faulted subpage, restart the
// program, and send the remainder of the page as one large follow-on
// message.
type Eager struct{}

// Name implements Policy.
func (Eager) Name() string { return "eager" }

// Plan implements Policy.
func (Eager) Plan(subpageSize, faultOff int) []PlannedMessage {
	if subpageSize >= units.PageSize {
		return FullPage{}.Plan(subpageSize, faultOff)
	}
	idx := memmodel.SubpageIndex(subpageSize, faultOff)
	first := memmodel.MaskFor(subpageSize, idx)
	return []PlannedMessage{
		{Bytes: subpageSize, Deliver: true, Covers: first},
		{Bytes: units.PageSize - subpageSize, Deliver: true, Covers: memmodel.FullBitmap &^ first},
	}
}

// Pipelined is subpage pipelining: after the faulted subpage, the sender
// pipelines the neighbouring subpages — most-likely-next first (+1, then
// -1, per the Figure 7 distance distribution) — and then the remainder of
// the page in one message.
type Pipelined struct {
	// Neighbors is how many subpages to pipeline on each side of the
	// fault (default 1: the +1 and -1 subpages).
	Neighbors int
	// DoubleFollowOn doubles the size of each pipelined transfer (the
	// §4.3 variant: "we doubled the size of the pipeline transfers").
	DoubleFollowOn bool
	// SoftwareDelivery charges the receiving CPU for every pipelined
	// subpage, modelling the AN2 prototype (where per-interrupt cost
	// made pipelining unprofitable) instead of the intelligent
	// controller the simulations assume.
	SoftwareDelivery bool
}

// Name implements Policy.
func (p Pipelined) Name() string {
	name := "pipelined"
	if p.DoubleFollowOn {
		name += "-double"
	}
	if p.SoftwareDelivery {
		name += "-sw"
	}
	return name
}

// Plan implements Policy.
func (p Pipelined) Plan(subpageSize, faultOff int) []PlannedMessage {
	if subpageSize >= units.PageSize {
		return FullPage{}.Plan(subpageSize, faultOff)
	}
	n := units.SubpagesPerPage(subpageSize)
	idx := memmodel.SubpageIndex(subpageSize, faultOff)
	first := memmodel.MaskFor(subpageSize, idx)
	msgs := []PlannedMessage{{Bytes: subpageSize, Deliver: true, Covers: first}}
	covered := first

	neighbors := p.Neighbors
	if neighbors <= 0 {
		neighbors = 1
	}
	span := 1
	if p.DoubleFollowOn {
		span = 2
	}
	// Walk outward from the fault, +direction first (the next consecutive
	// subpage dominates the Figure 7 distance distribution), sending span
	// subpages per pipelined message.
	up, down := idx+1, idx-1
	emit := func(start int) {
		var covers memmodel.Bitmap
		bytes := 0
		for k := 0; k < span; k++ {
			j := start + k
			if j < 0 || j >= n {
				continue
			}
			m := memmodel.MaskFor(subpageSize, j)
			if covered&m != 0 {
				continue
			}
			covers |= m
			bytes += subpageSize
		}
		if bytes == 0 {
			return
		}
		covered |= covers
		msgs = append(msgs, PlannedMessage{
			Bytes:   bytes,
			Deliver: p.SoftwareDelivery,
			Covers:  covers,
		})
	}
	for d := 0; d < neighbors; d++ {
		emit(up)
		up += span
		emit(down - span + 1)
		down -= span
	}
	if rest := memmodel.FullBitmap &^ covered; rest != 0 {
		msgs = append(msgs, PlannedMessage{
			Bytes:   rest.Count() * units.MinSubpage,
			Deliver: p.SoftwareDelivery,
			Covers:  rest,
		})
	}
	return msgs
}

// WideFault is the §4.3 variant that doubles the *initial* transfer: the
// faulted subpage plus either its preceding or following neighbour,
// depending on where in the subpage the faulted word lies, followed by the
// rest of the page as in eager fullpage fetch.
type WideFault struct{}

// Name implements Policy.
func (WideFault) Name() string { return "widefault" }

// Plan implements Policy.
func (WideFault) Plan(subpageSize, faultOff int) []PlannedMessage {
	if subpageSize >= units.PageSize {
		return FullPage{}.Plan(subpageSize, faultOff)
	}
	n := units.SubpagesPerPage(subpageSize)
	idx := memmodel.SubpageIndex(subpageSize, faultOff)
	first := memmodel.MaskFor(subpageSize, idx)
	bytes := subpageSize

	// A fault early in the subpage suggests a forward walk beginning
	// here (include the following subpage); a fault late in the subpage
	// suggests the program landed mid-object and may reach backward.
	within := faultOff - idx*subpageSize
	nb := idx + 1
	if within >= subpageSize/2 {
		nb = idx - 1
	}
	if nb >= 0 && nb < n {
		first |= memmodel.MaskFor(subpageSize, nb)
		bytes += subpageSize
	}
	msgs := []PlannedMessage{{Bytes: bytes, Deliver: true, Covers: first}}
	if rest := memmodel.FullBitmap &^ first; rest != 0 {
		msgs = append(msgs, PlannedMessage{
			Bytes:   rest.Count() * units.MinSubpage,
			Deliver: true,
			Covers:  rest,
		})
	}
	return msgs
}

// policyFactories enumerates the registered policies in presentation order.
// Entries are constructors, not instances: a stateful policy (the
// Prefetcher) must come out fresh per lookup so callers never share fault
// history, and the server's per-request lookup should not build policies it
// will not return.
var policyFactories = []func() Policy{
	func() Policy { return FullPage{} },
	func() Policy { return Lazy{} },
	func() Policy { return Eager{} },
	func() Policy { return Pipelined{} },
	func() Policy { return Pipelined{DoubleFollowOn: true} },
	func() Policy { return Pipelined{SoftwareDelivery: true} },
	func() Policy { return WideFault{} },
	func() Policy { return NewPrefetcher() },
}

// ByName returns the policy with the given Name, or an error listing the
// valid names. Stateful policies come back fresh on every call.
func ByName(name string) (Policy, error) {
	for _, mk := range policyFactories {
		if p := mk(); p.Name() == name {
			return p, nil
		}
	}
	valid := make([]string, len(policyFactories))
	for i, mk := range policyFactories {
		valid[i] = mk().Name()
	}
	return nil, fmt.Errorf("core: unknown policy %q (valid: %v)", name, valid)
}
