package core

import (
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

var allPolicies = []Policy{
	FullPage{}, Lazy{}, Eager{},
	Pipelined{}, Pipelined{DoubleFollowOn: true}, Pipelined{SoftwareDelivery: true},
	Pipelined{Neighbors: 2}, WideFault{}, NewPrefetcher(),
}

var testSubpageSizes = []int{256, 512, 1024, 2048, 4096}

// checkPlanInvariants verifies the properties every plan must satisfy.
func checkPlanInvariants(t *testing.T, p Policy, subpage, off int) {
	t.Helper()
	checkPlan(t, p.Name(), p.Plan(subpage, off), subpage, off)
}

// checkPlan verifies an already-produced plan (PlanPage plans included).
func checkPlan(t *testing.T, name string, plan []PlannedMessage, subpage, off int) {
	t.Helper()
	if len(plan) == 0 {
		t.Fatalf("%s: empty plan", name)
	}
	if !plan[0].Covers.Has(off) {
		t.Fatalf("%s(sub=%d, off=%d): first message does not cover the fault",
			name, subpage, off)
	}
	if !plan[0].Deliver {
		t.Fatalf("%s: first message must be CPU-delivered (it resumes the program)", name)
	}
	var union memmodel.Bitmap
	totalBytes := 0
	for i, m := range plan {
		if m.Bytes <= 0 || m.Bytes > units.PageSize {
			t.Fatalf("%s: message %d has %d bytes", name, i, m.Bytes)
		}
		if m.Covers == 0 {
			t.Fatalf("%s: message %d covers nothing", name, i)
		}
		if union&m.Covers != 0 {
			t.Fatalf("%s: message %d re-covers bits", name, i)
		}
		if want := m.Covers.Count() * units.MinSubpage; want != m.Bytes {
			t.Fatalf("%s: message %d has %d bytes but covers %d bytes",
				name, i, m.Bytes, want)
		}
		union |= m.Covers
		totalBytes += m.Bytes
	}
	if totalBytes > units.PageSize {
		t.Fatalf("%s: plan moves %d bytes > page size", name, totalBytes)
	}
}

func TestPlanInvariantsExhaustive(t *testing.T) {
	for _, p := range allPolicies {
		for _, sub := range testSubpageSizes {
			for off := 0; off < units.PageSize; off += 128 {
				checkPlanInvariants(t, p, sub, off)
			}
			// Edge offsets.
			for _, off := range []int{0, sub - 1, units.PageSize - 1} {
				checkPlanInvariants(t, p, sub, off)
			}
		}
	}
}

func TestFullPageCoversEverythingInOneMessage(t *testing.T) {
	plan := FullPage{}.Plan(1024, 5000)
	if len(plan) != 1 || !plan[0].Covers.Full() || plan[0].Bytes != units.PageSize {
		t.Fatalf("bad fullpage plan: %+v", plan)
	}
}

func TestLazyCoversExactlyOneSubpage(t *testing.T) {
	for _, sub := range testSubpageSizes {
		plan := Lazy{}.Plan(sub, sub+1) // inside subpage 1
		if len(plan) != 1 {
			t.Fatalf("lazy plan has %d messages", len(plan))
		}
		if plan[0].Bytes != sub {
			t.Fatalf("lazy bytes = %d, want %d", plan[0].Bytes, sub)
		}
		if plan[0].Covers != memmodel.MaskFor(sub, 1) {
			t.Fatalf("lazy covers %s", plan[0].Covers)
		}
	}
}

func TestEagerCoversWholePageInTwoMessages(t *testing.T) {
	for _, sub := range testSubpageSizes {
		plan := Eager{}.Plan(sub, 0)
		if len(plan) != 2 {
			t.Fatalf("eager(%d) plan has %d messages", sub, len(plan))
		}
		if plan[0].Bytes != sub || plan[1].Bytes != units.PageSize-sub {
			t.Fatalf("eager(%d) sizes: %d + %d", sub, plan[0].Bytes, plan[1].Bytes)
		}
		if plan[0].Covers|plan[1].Covers != memmodel.FullBitmap {
			t.Fatal("eager should cover the whole page")
		}
		if !plan[1].Deliver {
			t.Fatal("eager rest-of-page is a normal CPU-delivered message")
		}
	}
}

func TestEagerFullPageSizeDegenerates(t *testing.T) {
	plan := Eager{}.Plan(units.PageSize, 100)
	if len(plan) != 1 || plan[0].Bytes != units.PageSize {
		t.Fatalf("eager at 8K should degenerate to fullpage: %+v", plan)
	}
}

func TestPipelinedOrderAndDelivery(t *testing.T) {
	// Fault in subpage 3 of 8 (1K subpages): expect subpage 3, then +1
	// (4), then -1 (2), then the remainder, with follow-ons
	// controller-delivered.
	plan := Pipelined{}.Plan(1024, 3*1024+100)
	if len(plan) != 4 {
		t.Fatalf("plan has %d messages: %+v", len(plan), plan)
	}
	if plan[1].Covers != memmodel.MaskFor(1024, 4) {
		t.Fatalf("second message should be the +1 subpage, covers %s", plan[1].Covers)
	}
	if plan[2].Covers != memmodel.MaskFor(1024, 2) {
		t.Fatalf("third message should be the -1 subpage, covers %s", plan[2].Covers)
	}
	for i, m := range plan {
		wantDeliver := i == 0
		if m.Deliver != wantDeliver {
			t.Errorf("message %d Deliver = %v", i, m.Deliver)
		}
	}
	rest := plan[3]
	if rest.Bytes != units.PageSize-3*1024 {
		t.Errorf("remainder = %d bytes", rest.Bytes)
	}
}

func TestPipelinedAtPageEdges(t *testing.T) {
	// Fault in subpage 0: no -1 neighbour exists.
	plan := Pipelined{}.Plan(1024, 0)
	if len(plan) != 3 {
		t.Fatalf("edge plan has %d messages: %+v", len(plan), plan)
	}
	// Fault in last subpage: no +1 neighbour.
	plan = Pipelined{}.Plan(1024, units.PageSize-1)
	if len(plan) != 3 {
		t.Fatalf("edge plan has %d messages: %+v", len(plan), plan)
	}
}

func TestPipelinedDoubleFollowOn(t *testing.T) {
	// 512B subpages, fault in subpage 4: the +1 transfer is 1K (subpages
	// 5 and 6).
	plan := Pipelined{DoubleFollowOn: true}.Plan(512, 4*512)
	if plan[1].Bytes != 1024 {
		t.Fatalf("doubled follow-on = %d bytes, want 1024", plan[1].Bytes)
	}
	want := memmodel.MaskFor(512, 5) | memmodel.MaskFor(512, 6)
	if plan[1].Covers != want {
		t.Fatalf("doubled follow-on covers %s, want %s", plan[1].Covers, want)
	}
}

func TestPipelinedSoftwareDelivery(t *testing.T) {
	plan := Pipelined{SoftwareDelivery: true}.Plan(1024, 0)
	for i, m := range plan {
		if !m.Deliver {
			t.Errorf("software delivery: message %d should be CPU-delivered", i)
		}
	}
}

func TestPipelinedTwoNeighbors(t *testing.T) {
	plan := Pipelined{Neighbors: 2}.Plan(1024, 4*1024)
	// subpage 4, then 5, 3, 6, 2, rest.
	wantOrder := []int{4, 5, 3, 6, 2}
	if len(plan) != 6 {
		t.Fatalf("plan has %d messages", len(plan))
	}
	for i, idx := range wantOrder {
		if plan[i].Covers != memmodel.MaskFor(1024, idx) {
			t.Errorf("message %d covers %s, want subpage %d", i, plan[i].Covers, idx)
		}
	}
}

func TestWideFaultDirection(t *testing.T) {
	// Fault early in subpage 3 (a forward walk starts here) -> include
	// subpage 4.
	plan := WideFault{}.Plan(1024, 3*1024+10)
	want := memmodel.MaskFor(1024, 3) | memmodel.MaskFor(1024, 4)
	if plan[0].Covers != want {
		t.Fatalf("early fault: first covers %s, want %s", plan[0].Covers, want)
	}
	// Fault late in subpage 3 (landed mid-object) -> include subpage 2.
	plan = WideFault{}.Plan(1024, 3*1024+900)
	want = memmodel.MaskFor(1024, 3) | memmodel.MaskFor(1024, 2)
	if plan[0].Covers != want {
		t.Fatalf("late fault: first covers %s, want %s", plan[0].Covers, want)
	}
	if plan[0].Bytes != 2048 {
		t.Fatalf("initial transfer = %d bytes, want 2048", plan[0].Bytes)
	}
}

func TestWideFaultAtEdges(t *testing.T) {
	// Late fault in subpage 0 has no preceding neighbour.
	plan := WideFault{}.Plan(1024, 1000)
	if plan[0].Bytes != 1024 {
		t.Fatalf("edge initial = %d bytes, want 1024", plan[0].Bytes)
	}
	// Early fault in the last subpage has no following neighbour.
	plan = WideFault{}.Plan(1024, units.PageSize-1000)
	if plan[0].Bytes != 1024 {
		t.Fatalf("edge initial = %d bytes, want 1024", plan[0].Bytes)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fullpage", "lazy", "eager", "pipelined", "widefault", "prefetch"} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
}

func TestPlanInvariantsQuick(t *testing.T) {
	f := func(polIdx, sizeIdx uint8, rawOff uint16) bool {
		p := allPolicies[int(polIdx)%len(allPolicies)]
		sub := testSubpageSizes[int(sizeIdx)%len(testSubpageSizes)]
		off := int(rawOff) % units.PageSize
		plan := p.Plan(sub, off)
		if len(plan) == 0 || !plan[0].Covers.Has(off) {
			return false
		}
		var union memmodel.Bitmap
		for _, m := range plan {
			if union&m.Covers != 0 {
				return false
			}
			union |= m.Covers
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
