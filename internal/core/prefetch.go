package core

import (
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// StatefulPolicy is a Policy whose plans depend on observed fault history.
// The engine feeds it every fault via Record and asks for page-aware plans
// via PlanPage; the embedded stateless Plan remains the history-free
// fallback so a StatefulPolicy is still usable anywhere a Policy is.
type StatefulPolicy interface {
	Policy
	// Record feeds one observed fault (page number and byte offset within
	// the page) into the policy's history. The engine calls it exactly
	// once per fault, before PlanPage.
	Record(page uint64, faultOff int)
	// PlanPage plans the messages for a fault on a specific page, using
	// whatever history Record has accumulated. The same contract as
	// Policy.Plan applies: the first message covers faultOff and is
	// CPU-delivered.
	PlanPage(page uint64, subpageSize, faultOff int) []PlannedMessage
}

// Prefetcher is a Leap-style online prefetch policy (PAPERS.md,
// "Effectively Prefetching Remote Memory with Leap"): instead of the
// paper's hardcoded +1/−1 pipeline window, it detects the majority trend
// (stride) in the recent fault history of each page group with a
// Boyer–Moore majority vote over a fixed-size delta ring, and prefetches a
// confidence-scaled window of subpages along that stride. Below the
// confidence threshold — or when the detected stride carries no
// information about the faulted page (it jumps straight out of it) — it
// falls back to the paper's Pipelined planning, so the +1-dominated
// workloads of Figure 7 see exactly the baseline behaviour.
//
// Everything is integer arithmetic over fault offsets, so simulation
// results stay deterministic; positions are tracked in MinSubpage blocks
// (the prototype's 256-byte valid-bit granularity), making the detector
// independent of the configured subpage size.
type Prefetcher struct {
	// GroupShift is log2 of the pages per history group (default 4:
	// 16-page / 128 KB groups). Grouping keeps interleaved streams from
	// different regions out of each other's delta history.
	GroupShift uint
	// Window is the per-group delta ring size (default 16).
	Window int
	// MinSamples is the smallest delta window the majority vote runs on
	// (default 4); fewer observed deltas always fall back.
	MinSamples int
	// MaxPrefetch caps the predicted window in subpages per fault
	// (default 4). The emitted window scales with vote confidence.
	MaxPrefetch int
	// MaxGroups bounds the tracked group map (default 1024); the oldest
	// group is evicted first, deterministically.
	MaxGroups int
	// Fallback plans faults with no confident trend (default the paper's
	// Pipelined policy).
	Fallback Policy

	groups map[uint64]*groupHist
	order  []uint64 // group insertion order, for bounded deterministic eviction
	head   int      // index of the oldest live entry in order

	// Confident / Fallbacks count how PlanPage decided, for reporting.
	Confident int64
	Fallbacks int64
}

// groupHist is one page group's recent fault history: a ring of deltas
// between consecutive fault positions, in MinSubpage blocks.
type groupHist struct {
	deltas  []int64
	next    int
	n       int
	last    int64
	hasLast bool
}

// NewPrefetcher returns a Prefetcher with the default parameters.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{
		GroupShift:  4,
		Window:      16,
		MinSamples:  4,
		MaxPrefetch: 4,
		MaxGroups:   1024,
		Fallback:    Pipelined{},
	}
}

// Name implements Policy.
func (p *Prefetcher) Name() string { return "prefetch" }

// Plan implements Policy: with no page identity there is no usable
// history, so the stateless call is always the fallback plan.
func (p *Prefetcher) Plan(subpageSize, faultOff int) []PlannedMessage {
	return p.fallback().Plan(subpageSize, faultOff)
}

func (p *Prefetcher) fallback() Policy {
	if p.Fallback != nil {
		return p.Fallback
	}
	return Pipelined{}
}

// Record implements StatefulPolicy: append the delta from the previous
// fault position in the page's group to the group's ring.
func (p *Prefetcher) Record(page uint64, faultOff int) {
	pos := int64(page)*int64(units.ValidBitsPerPage) + int64(faultOff/units.MinSubpage)
	g := p.group(page >> p.groupShift())
	if g.hasLast {
		if len(g.deltas) == 0 {
			g.deltas = make([]int64, p.window())
		}
		g.deltas[g.next] = pos - g.last
		g.next = (g.next + 1) % len(g.deltas)
		if g.n < len(g.deltas) {
			g.n++
		}
	}
	g.last = pos
	g.hasLast = true
}

func (p *Prefetcher) groupShift() uint {
	return p.GroupShift
}

func (p *Prefetcher) window() int {
	if p.Window > 0 {
		return p.Window
	}
	return 16
}

func (p *Prefetcher) minSamples() int {
	if p.MinSamples > 0 {
		return p.MinSamples
	}
	return 4
}

func (p *Prefetcher) maxPrefetch() int {
	if p.MaxPrefetch > 0 {
		return p.MaxPrefetch
	}
	return 4
}

// group returns the history for a group id, creating it (and evicting the
// oldest group beyond MaxGroups) as needed.
func (p *Prefetcher) group(id uint64) *groupHist {
	if p.groups == nil {
		p.groups = make(map[uint64]*groupHist)
	}
	if g, ok := p.groups[id]; ok {
		return g
	}
	max := p.MaxGroups
	if max <= 0 {
		max = 1024
	}
	if len(p.groups) >= max {
		delete(p.groups, p.order[p.head])
		p.head++
		if p.head > len(p.order)/2 && p.head > 64 {
			p.order = append(p.order[:0], p.order[p.head:]...)
			p.head = 0
		}
	}
	g := &groupHist{}
	p.groups[id] = g
	p.order = append(p.order, id)
	return g
}

// trend runs the Leap majority vote on a group: starting from the smallest
// window (MinSamples) and doubling up to the full ring, find the first
// window whose most recent deltas have a strict majority element. It
// returns that stride plus the vote count and window size (the confidence
// ratio count/w), or ok=false when no window has a majority.
func (g *groupHist) trend(minSamples int) (stride int64, count, w int, ok bool) {
	for w = minSamples; ; w *= 2 {
		if w > g.n {
			w = g.n
		}
		if w < minSamples {
			return 0, 0, 0, false
		}
		// Boyer–Moore majority candidate over the w most recent deltas,
		// then one verifying scan for the true count.
		var cand int64
		lead := 0
		for i := 0; i < w; i++ {
			d := g.at(i)
			switch {
			case lead == 0:
				cand, lead = d, 1
			case d == cand:
				lead++
			default:
				lead--
			}
		}
		count = 0
		for i := 0; i < w; i++ {
			if g.at(i) == cand {
				count++
			}
		}
		if 2*count > w {
			return cand, count, w, true
		}
		if w == g.n {
			return 0, 0, 0, false
		}
	}
}

// at returns the i-th most recent delta (0 = newest).
func (g *groupHist) at(i int) int64 {
	return g.deltas[((g.next-1-i)%len(g.deltas)+len(g.deltas))%len(g.deltas)]
}

// Predict returns the predicted subpage mask for a fault at faultOff of
// page — the confidence-scaled stride window, excluding the faulted
// subpage itself — and whether the group's history supports a confident
// in-page prediction. It does not modify history.
func (p *Prefetcher) Predict(page uint64, subpageSize, faultOff int) (memmodel.Bitmap, bool) {
	idxs, _, ok := p.predict(page, subpageSize, faultOff)
	if !ok {
		return 0, false
	}
	var mask memmodel.Bitmap
	for _, idx := range idxs {
		mask |= memmodel.MaskFor(subpageSize, idx)
	}
	return mask, true
}

// predict computes the predicted subpage indices in stride order (nearest
// along the trend first, deduplicated, excluding the faulted subpage),
// plus the detected block stride.
func (p *Prefetcher) predict(page uint64, subpageSize, faultOff int) ([]int, int64, bool) {
	g, ok := p.groups[page>>p.groupShift()]
	if !ok {
		return nil, 0, false
	}
	stride, count, w, ok := g.trend(p.minSamples())
	if !ok || stride == 0 {
		return nil, 0, false
	}
	// Scale the window with how decisive the vote was: a bare majority
	// prefetches one stride ahead, a unanimous ring the full MaxPrefetch.
	max := p.maxPrefetch()
	k := max * (2*count - w) / w
	if k < 1 {
		k = 1
	}
	blocksPerPage := int64(units.ValidBitsPerPage)
	pos := int64(page)*blocksPerPage + int64(faultOff/units.MinSubpage)
	faultIdx := memmodel.SubpageIndex(subpageSize, faultOff)
	var idxs []int
	var seen memmodel.Bitmap
	for i := 1; i <= k; i++ {
		q := pos + stride*int64(i)
		if q < 0 || q/blocksPerPage != int64(page) {
			// The trend leaves the page: nothing further on this page is
			// implied by the history.
			break
		}
		blk := int(q % blocksPerPage)
		idx := memmodel.SubpageIndex(subpageSize, blk*units.MinSubpage)
		if idx == faultIdx {
			continue
		}
		m := memmodel.MaskFor(subpageSize, idx)
		if seen&m != 0 {
			continue
		}
		seen |= m
		idxs = append(idxs, idx)
	}
	if len(idxs) == 0 {
		// A confident trend that predicts nothing on this page (e.g. a
		// whole-page stride) is not a within-page prediction.
		return nil, 0, false
	}
	return idxs, stride, true
}

// PlanPage implements StatefulPolicy: the faulted subpage first, then each
// predicted subpage as a controller-deposited pipelined message, in stride
// order. A dense trend — a stride no larger than one subpage, meaning the
// program is walking contiguously and will reach the whole page — keeps
// the paper's remainder message after the window, exactly as Pipelined
// does; a sparse trend (a real stride that skips subpages) trims it, and
// the bandwidth the prediction saves is the point: unpredicted subpages
// fault in lazily if the trend was wrong. Without a confident in-page
// prediction the fallback policy plans the fault.
func (p *Prefetcher) PlanPage(page uint64, subpageSize, faultOff int) []PlannedMessage {
	if subpageSize >= units.PageSize {
		return FullPage{}.Plan(subpageSize, faultOff)
	}
	idxs, stride, ok := p.predict(page, subpageSize, faultOff)
	if !ok {
		p.Fallbacks++
		return p.fallback().Plan(subpageSize, faultOff)
	}
	p.Confident++
	idx := memmodel.SubpageIndex(subpageSize, faultOff)
	first := memmodel.MaskFor(subpageSize, idx)
	msgs := []PlannedMessage{{Bytes: subpageSize, Deliver: true, Covers: first}}
	covered := first
	for _, j := range idxs {
		m := memmodel.MaskFor(subpageSize, j)
		msgs = append(msgs, PlannedMessage{Bytes: subpageSize, Deliver: false, Covers: m})
		covered |= m
	}
	bps := int64(subpageSize / units.MinSubpage)
	dense := stride >= -bps && stride <= bps
	if dense {
		if rest := memmodel.FullBitmap &^ covered; rest != 0 {
			msgs = append(msgs, PlannedMessage{
				Bytes:   rest.Count() * units.MinSubpage,
				Deliver: false,
				Covers:  rest,
			})
		}
	}
	return msgs
}
