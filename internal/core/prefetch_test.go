package core

import (
	"reflect"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/rng"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// feed records a sequence of (page, byte-offset) faults.
func feed(p *Prefetcher, faults [][2]int) {
	for _, f := range faults {
		p.Record(uint64(f[0]), f[1])
	}
}

// strideFaults builds a fault sequence walking positions by a fixed block
// stride from block position start, n faults long.
func strideFaults(start, strideBlocks, n int) [][2]int {
	out := make([][2]int, n)
	pos := start
	for i := range out {
		out[i] = [2]int{pos / units.ValidBitsPerPage,
			(pos % units.ValidBitsPerPage) * units.MinSubpage}
		pos += strideBlocks
	}
	return out
}

func TestPrefetcherColdStartFallsBack(t *testing.T) {
	p := NewPrefetcher()
	plan := p.PlanPage(7, 1024, 3*1024)
	want := Pipelined{}.Plan(1024, 3*1024)
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("cold-start plan should be the pipelined fallback:\n got %+v\nwant %+v", plan, want)
	}
	if p.Fallbacks != 1 || p.Confident != 0 {
		t.Fatalf("counters: fallbacks=%d confident=%d", p.Fallbacks, p.Confident)
	}
}

func TestPrefetcherLearnsInPageStride(t *testing.T) {
	p := NewPrefetcher()
	// Stride of 10 blocks (2.5 KB), like a strided array sweep. 16
	// faults make the trend unanimous at every vote window and leave the
	// next fault at the start of a page (block 160 = page 5, block 0).
	faults := strideFaults(0, 10, 16)
	feed(p, faults)
	// Next fault continues the walk: position of the 17th element.
	pos := 16 * 10
	page, off := pos/units.ValidBitsPerPage, (pos%units.ValidBitsPerPage)*units.MinSubpage
	mask, ok := p.Predict(uint64(page), 1024, off)
	if !ok {
		t.Fatal("unanimous stride history should predict")
	}
	// With a 1 KB subpage, predictions land at +10, +20 and +30 blocks
	// from the fault (the +40 step leaves the page).
	blk := pos % units.ValidBitsPerPage
	var want memmodel.Bitmap
	for _, d := range []int{10, 20, 30} {
		if blk+d < units.ValidBitsPerPage {
			want |= memmodel.MaskFor(1024, (blk+d)*units.MinSubpage/1024)
		}
	}
	want &^= memmodel.MaskFor(1024, off/1024)
	if mask != want {
		t.Fatalf("predicted %s, want %s (fault blk %d)", mask, want, blk)
	}

	plan := p.PlanPage(uint64(page), 1024, off)
	if len(plan) < 2 {
		t.Fatalf("confident plan should prefetch: %+v", plan)
	}
	checkPlan(t, "prefetch", plan, 1024, off)
	var got memmodel.Bitmap
	for _, m := range plan[1:] {
		if m.Deliver {
			t.Fatalf("prefetched subpages are controller-deposited: %+v", m)
		}
		got |= m.Covers
	}
	if got != mask {
		t.Fatalf("plan covers %s beyond the fault, Predict said %s", got, mask)
	}
	// No remainder message: everything not predicted stays unfetched.
	if all := plan[0].Covers | got; all == memmodel.FullBitmap {
		t.Fatal("a targeted prediction should not cover the whole page")
	}
}

func TestPrefetcherWholePageStrideFallsBack(t *testing.T) {
	p := NewPrefetcher()
	// Stride of exactly one page: every next position is off-page, so the
	// trend says nothing about the faulted page.
	feed(p, strideFaults(0, units.ValidBitsPerPage, 12))
	pos := 12 * units.ValidBitsPerPage
	plan := p.PlanPage(uint64(pos/units.ValidBitsPerPage), 1024, 0)
	want := Pipelined{}.Plan(1024, 0)
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("whole-page stride should fall back to pipelined:\n got %+v\nwant %+v", plan, want)
	}
}

func TestPrefetcherNoMajorityFallsBack(t *testing.T) {
	p := NewPrefetcher()
	// Alternating +3/+7 deltas: no strict majority at any window size.
	pos := 0
	for i := 0; i < 20; i++ {
		p.Record(uint64(pos/units.ValidBitsPerPage),
			(pos%units.ValidBitsPerPage)*units.MinSubpage)
		if i%2 == 0 {
			pos += 3
		} else {
			pos += 7
		}
	}
	if _, ok := p.Predict(uint64(pos/units.ValidBitsPerPage), 1024,
		(pos%units.ValidBitsPerPage)*units.MinSubpage); ok {
		t.Fatal("alternating deltas must not produce a confident prediction")
	}
}

func TestPrefetcherConfidenceScalesWindow(t *testing.T) {
	// A unanimous ring predicts the full MaxPrefetch window; a bare
	// majority predicts a single stride.
	p := NewPrefetcher()
	p.MaxPrefetch = 3
	feed(p, strideFaults(0, 1, 20)) // unanimous +1 blocks
	mask, ok := p.Predict(0, 256, 0)
	if !ok {
		t.Fatal("unanimous history should predict")
	}
	if got := mask.Count(); got != 3 {
		t.Fatalf("unanimous vote should predict MaxPrefetch=3 subpages, got %d (%s)", got, mask)
	}

	// 5 of 8 recent deltas are +1 (the other 3 are +9): majority but far
	// from unanimous, so the window shrinks.
	p2 := NewPrefetcher()
	p2.MaxPrefetch = 3
	p2.MinSamples = 8
	pos := 0
	deltas := []int{1, 9, 1, 9, 1, 9, 1, 1, 1}
	for _, d := range deltas {
		p2.Record(uint64(pos/units.ValidBitsPerPage),
			(pos%units.ValidBitsPerPage)*units.MinSubpage)
		pos += d
	}
	mask, ok = p2.Predict(0, 256, 0)
	if !ok {
		t.Fatal("5/8 majority should predict")
	}
	if got := mask.Count(); got >= 3 {
		t.Fatalf("a slim majority should predict a smaller window, got %d subpages", got)
	}
}

func TestPrefetcherGroupsIsolateStreams(t *testing.T) {
	p := NewPrefetcher() // GroupShift 4: pages 0-15 vs 1000+ are distinct groups
	feed(p, strideFaults(0, 10, 12))
	// A page in a far-away group has no history: no prediction.
	if _, ok := p.Predict(1000, 1024, 0); ok {
		t.Fatal("an untouched group must not inherit another group's trend")
	}
}

func TestPrefetcherGroupBoundEvictsOldest(t *testing.T) {
	p := NewPrefetcher()
	p.MaxGroups = 8
	p.GroupShift = 0
	for page := 0; page < 100; page++ {
		for i := 0; i < 3; i++ {
			p.Record(uint64(page), i*1024)
		}
	}
	if len(p.groups) > 8 {
		t.Fatalf("group map grew to %d entries, bound is 8", len(p.groups))
	}
	if _, ok := p.groups[0]; ok {
		t.Fatal("the oldest group should have been evicted")
	}
	if _, ok := p.groups[99]; !ok {
		t.Fatal("the newest group should survive")
	}
}

// TestPrefetcherPlanPageInvariants drives random fault streams through the
// stateful planner and checks every emitted plan against the same
// invariants the stateless policies satisfy.
func TestPrefetcherPlanPageInvariants(t *testing.T) {
	rnd := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		p := NewPrefetcher()
		sub := testSubpageSizes[rnd.Intn(len(testSubpageSizes))]
		stride := rnd.Intn(65) - 32 // block stride in [-32, 32]
		pos := rnd.Intn(64 * units.ValidBitsPerPage)
		for i := 0; i < 200; i++ {
			if rnd.Intn(4) == 0 { // noise: jump somewhere else
				pos = rnd.Intn(64 * units.ValidBitsPerPage)
			} else {
				pos += stride
				if pos < 0 {
					pos += 64 * units.ValidBitsPerPage
				}
			}
			page := uint64(pos / units.ValidBitsPerPage)
			off := (pos % units.ValidBitsPerPage) * units.MinSubpage
			p.Record(page, off)
			plan := p.PlanPage(page, sub, off)
			checkPlan(t, "prefetch", plan, sub, off)
		}
	}
}

// TestPrefetcherDeterministic pins that two prefetchers fed the same
// stream plan identically (no map-order or clock dependence).
func TestPrefetcherDeterministic(t *testing.T) {
	mk := func() []([]PlannedMessage) {
		p := NewPrefetcher()
		rnd := rng.New(7)
		var plans [][]PlannedMessage
		for i := 0; i < 500; i++ {
			pos := rnd.Intn(256 * units.ValidBitsPerPage)
			page := uint64(pos / units.ValidBitsPerPage)
			off := (pos % units.ValidBitsPerPage) * units.MinSubpage
			p.Record(page, off)
			plans = append(plans, p.PlanPage(page, 1024, off))
		}
		return plans
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("identical fault streams must produce identical plans")
	}
}

func TestPrefetcherFullPageSubpageDegenerates(t *testing.T) {
	p := NewPrefetcher()
	feed(p, strideFaults(0, 1, 12))
	plan := p.PlanPage(0, units.PageSize, 100)
	if len(plan) != 1 || plan[0].Bytes != units.PageSize {
		t.Fatalf("8K subpage should degenerate to fullpage: %+v", plan)
	}
}
