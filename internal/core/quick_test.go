package core

import (
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Property tests over the fault engine: random interleavings of faults
// must preserve the structural invariants the simulator relies on.

func TestQuickTransfersAlwaysCoverFault(t *testing.T) {
	f := func(polIdx, sizeIdx uint8, rawOff uint16, rawNow uint32) bool {
		p := allPolicies[int(polIdx)%len(allPolicies)]
		sub := testSubpageSizes[int(sizeIdx)%len(testSubpageSizes)]
		off := int(rawOff) % units.PageSize
		now := units.Ticks(rawNow)
		e := NewEngine(netmodel.AN2ATM(), p, sub)
		tr := e.StartFault(now, 1, off)
		// The faulted byte is always covered, and arrives first.
		at, ok := tr.ArrivalCovering(off)
		if !ok || at != tr.FirstArrival {
			return false
		}
		// Arrivals are strictly after issue and complete no earlier
		// than the first arrival.
		return tr.FirstArrival > now && tr.CompleteAt >= tr.FirstArrival
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickApplyArrivedConvergesToCovered(t *testing.T) {
	f := func(polIdx, sizeIdx uint8, rawOff uint16) bool {
		p := allPolicies[int(polIdx)%len(allPolicies)]
		sub := testSubpageSizes[int(sizeIdx)%len(testSubpageSizes)]
		off := int(rawOff) % units.PageSize
		e := NewEngine(netmodel.AN2ATM(), p, sub)
		tr := e.StartFault(0, 1, off)
		covered := tr.Covered()
		// Applying at CompleteAt yields exactly the covered bits, once.
		got := tr.ApplyArrived(tr.CompleteAt)
		if got != covered || !tr.Done() {
			return false
		}
		return tr.ApplyArrived(tr.CompleteAt+1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConcurrentFaultsFIFOPerEngine(t *testing.T) {
	// Issuing faults in time order on a shared engine must produce
	// non-decreasing first arrivals (the network link is FIFO).
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 || len(offsets) > 24 {
			return true
		}
		e := NewEngine(netmodel.AN2ATM(), Eager{}, 1024)
		now := units.Ticks(0)
		prevArrival := units.Ticks(0)
		for i, raw := range offsets {
			tr := e.StartFault(now, memmodel.PageID(i), int(raw)%units.PageSize)
			if tr.FirstArrival < prevArrival {
				return false
			}
			prevArrival = tr.FirstArrival
			now += units.Ticks(raw % 1000)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapNeverNegative(t *testing.T) {
	f := func(gaps []uint16) bool {
		if len(gaps) == 0 || len(gaps) > 16 {
			return true
		}
		e := NewEngine(netmodel.AN2ATM(), Eager{}, 1024)
		now := units.Ticks(0)
		var open []*Transfer
		for i, g := range gaps {
			tr := e.StartFault(now, memmodel.PageID(i), 0)
			e.NoteStall(now, tr.FirstArrival, tr, true)
			now = tr.FirstArrival + units.Ticks(g)
			open = append(open, tr)
		}
		for _, tr := range open {
			e.FinishTransfer(tr, now+1_000_000)
		}
		return e.IOOverlap >= 0 && e.CompOverlap >= 0 &&
			e.IOOverlapShare() >= 0 && e.IOOverlapShare() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
