package dirlog

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// BenchPoint is one journal length's durability measurements: how fast a
// directory restart replays a wal of that many records, and how much a
// compacting snapshot shrinks it. The `make bench` "dirlog" section of
// BENCH_experiments.json is a list of these.
type BenchPoint struct {
	Records          int     `json:"records"`             // wal records replayed
	WalBytes         int64   `json:"wal_bytes"`           // wal size on disk
	RecoverMs        float64 `json:"recover_ms"`          // Open-to-serving wall time
	ReplayRecsPerSec float64 `json:"replay_recs_per_sec"` // replay throughput
	SnapshotMs       float64 `json:"snapshot_ms"`         // compacting rotation wall time
	SnapshotBytes    int64   `json:"snapshot_bytes"`      // resulting snapshot size
	CompactionX      float64 `json:"compaction_x"`        // wal bytes over snapshot bytes
}

// Bench writes a synthetic-but-realistic journal of each given length
// under root (one subdirectory per point, left behind for inspection),
// then measures recovery and compaction. The record mix models a steady
// 64-server fleet: mostly renew batches, a registration re-arriving every
// tenth record, an expiry every tenth — the same shape a long-lived
// directory accumulates between snapshots, which is what makes the
// compaction ratio meaningful.
func Bench(root string, sizes []int) ([]BenchPoint, error) {
	pts := make([]BenchPoint, 0, len(sizes))
	for _, n := range sizes {
		pt, err := benchOne(filepath.Join(root, fmt.Sprintf("wal-%d", n)), n)
		if err != nil {
			return nil, fmt.Errorf("dirlog bench n=%d: %w", n, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

func benchOne(dir string, n int) (BenchPoint, error) {
	var pt BenchPoint
	j, _, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		return pt, err
	}
	const fleet = 64
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("s%03d:1", i%fleet)
		epoch := uint64(i/fleet + 1)
		switch {
		case i%10 == 0:
			pages := make([]uint64, 16)
			for k := range pages {
				pages[k] = uint64((i%fleet)*16 + k)
			}
			err = j.Append(Register{Addr: addr, Epoch: epoch, Seq: uint64(i + 1), Expires: int64(i+1) * 1e6, Pages: pages})
		case i%10 == 5:
			err = j.Append(Expunge{Addrs: []string{addr}})
		default:
			rs := make([]Renew, 8)
			for k := range rs {
				rs[k] = Renew{Addr: fmt.Sprintf("s%03d:1", (i+k)%fleet), Epoch: epoch, Expires: int64(i+2) * 1e6}
			}
			err = j.Append(RenewBatch{Renews: rs})
		}
		if err != nil {
			return pt, err
		}
	}
	if err := j.Close(); err != nil {
		return pt, err
	}

	t0 := time.Now()
	j2, st, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		return pt, err
	}
	defer func() { _ = j2.Close() }()
	recover := time.Since(t0)
	info := j2.Info()
	pt.Records = info.WalRecords
	pt.WalBytes = info.WalBytes
	pt.RecoverMs = float64(recover.Nanoseconds()) / 1e6
	if secs := recover.Seconds(); secs > 0 {
		pt.ReplayRecsPerSec = float64(pt.Records) / secs
	}

	t1 := time.Now()
	if err := j2.Snapshot(st); err != nil {
		return pt, err
	}
	pt.SnapshotMs = float64(time.Since(t1).Nanoseconds()) / 1e6
	fi, err := os.Stat(filepath.Join(dir, snapName(j2.Gen())))
	if err != nil {
		return pt, err
	}
	pt.SnapshotBytes = fi.Size()
	if pt.SnapshotBytes > 0 {
		pt.CompactionX = float64(pt.WalBytes) / float64(pt.SnapshotBytes)
	}
	return pt, nil
}
