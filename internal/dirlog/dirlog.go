// Package dirlog makes directory state durable: a CRC-framed write-ahead
// journal of lease-table transitions plus periodic compacting snapshots,
// so a crashed directory recovers its epochs, registrations and shard
// assignment instead of healing through a re-registration storm.
//
// On disk a journal is a directory holding at most one generation pair:
//
//	snap-<gen>.snap   compacted state at the moment of rotation
//	wal-<gen>.log     every transition applied since
//
// Both files carry the record framing defined in record.go. Rotation
// writes the next generation's snapshot to a temporary name, fsyncs,
// renames it into place, starts a fresh wal, and only then deletes the
// previous generation — so every crash point leaves either the old
// generation intact or the new one complete. Recovery picks the highest
// generation whose snapshot is whole (terminated by RecSnapEnd), replays
// its wal, and truncates the wal's torn tail if the crash interrupted a
// write.
//
// Durability is tunable per deployment (Options.Fsync): fsync every
// append, fsync on a background interval (the default — bounded loss,
// negligible overhead), or never (leave flushing to the kernel).
package dirlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy uint8

const (
	// FsyncInterval flushes on a background timer (Options.FsyncEvery):
	// a crash loses at most one interval of transitions, all of which
	// the restart grace window and re-registration heal.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways flushes after every append batch.
	FsyncAlways
	// FsyncNever leaves flushing to the operating system.
	FsyncNever
)

// String names the policy (the flag spelling accepted by ParseFsync).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// ParseFsync parses a policy name: "always", "interval" or "never".
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncInterval, fmt.Errorf("dirlog: unknown fsync policy %q (want always, interval or never)", s)
}

// DefaultFsyncEvery is the background flush period under FsyncInterval.
const DefaultFsyncEvery = 100 * time.Millisecond

// DefaultSnapshotEvery is how many wal records accumulate before the
// owner is told to compact (ShouldSnapshot).
const DefaultSnapshotEvery = 4096

// Options configures a journal.
type Options struct {
	// Dir is the journal directory, created if absent. Each directory
	// (each shard) owns its journal directory exclusively.
	Dir string

	// Fsync selects the flush policy; FsyncEvery is the FsyncInterval
	// period (DefaultFsyncEvery when zero).
	Fsync      FsyncPolicy
	FsyncEvery time.Duration

	// SnapshotEvery is the wal record count after which ShouldSnapshot
	// reports true (DefaultSnapshotEvery when zero, never when negative).
	SnapshotEvery int

	// Meta stamps new journal files with the owner's shard identity.
	// Ignored when recovering — the recovered identity wins and the
	// caller validates it against its own configuration.
	Meta Meta

	// CrashAfter is a deterministic crash-injection hook for tests: once
	// this many records have been appended in this process, every further
	// append is silently dropped — exactly what a crash between the
	// in-memory apply and the disk write loses. Zero disables; a negative
	// value crashes before the first append (zero records survive).
	CrashAfter int
}

// Info reports what recovery found.
type Info struct {
	Recovered       bool   // prior journal files existed
	Gen             uint64 // generation being appended to
	SnapshotRecords int    // records replayed from the snapshot
	WalRecords      int    // records replayed from the wal
	SnapshotBytes   int64
	WalBytes        int64
	TruncatedBytes  int64 // torn tail cut from the wal on open
}

// A Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	meta      Meta // identity stamped on new files (gen field updated per rotation)
	f         *os.File
	gen       uint64
	appended  int // records appended this process (CrashAfter counter)
	sinceSnap int // records in the current wal
	walBytes  int64
	dirty     bool  // appended since the last fsync
	failed    error // sticky: a torn frame is on disk and could not be rolled back
	crashed   bool
	closed    bool
	info      Info
	buf       []byte

	stop chan struct{}
	wg   sync.WaitGroup
}

func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x.snap", gen) }

// Open opens (or creates) the journal in o.Dir and replays it: the
// returned State is the recovered lease table (empty for a fresh
// journal), ready for the caller to install with its restart grace rule.
func Open(o Options) (*Journal, *State, error) {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = DefaultFsyncEvery
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := o.Meta.Validate(); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("dirlog: %w", err)
	}
	j := &Journal{dir: o.Dir, opts: o, meta: o.Meta, stop: make(chan struct{})}

	st, err := j.recover()
	if err != nil {
		return nil, nil, err
	}
	if j.opts.Fsync == FsyncInterval {
		j.wg.Add(1)
		go j.syncLoop()
	}
	return j, st, nil
}

// recover scans the journal directory, replays the newest whole
// generation, truncates the wal's torn tail, and leaves j appending to
// that generation (creating generation 1 for a fresh directory).
func (j *Journal) recover() (*State, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("dirlog: %w", err)
	}
	snaps := make(map[uint64]bool)
	wals := make(map[uint64]bool)
	maxGen := uint64(0)
	for _, e := range entries {
		var gen uint64
		switch {
		case parseGen(e.Name(), "snap-", ".snap", &gen):
			snaps[gen] = true
		case parseGen(e.Name(), "wal-", ".log", &gen):
			wals[gen] = true
		default:
			continue
		}
		if gen > maxGen {
			maxGen = gen
		}
	}
	j.info.Recovered = maxGen > 0

	st := NewState()
	gens := make([]uint64, 0, len(snaps))
	for g := range snaps {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, k int) bool { return gens[i] > gens[k] })
	chosen := uint64(0)
	for _, g := range gens {
		snapSt, n, ok := replaySnapshot(filepath.Join(j.dir, snapName(g)))
		if !ok {
			continue // torn or corrupt snapshot: fall back a generation
		}
		st = snapSt
		chosen = g
		j.info.SnapshotRecords = n
		break
	}
	if chosen == 0 {
		// No usable snapshot: replay the oldest wal (a fresh journal's
		// generation 1, or whatever survives of it).
		for g := range wals {
			if chosen == 0 || g < chosen {
				chosen = g
			}
		}
		if chosen == 0 {
			chosen = maxGen + 1 // fresh directory (or nothing salvageable)
		}
	}
	j.gen = chosen
	if j.info.Recovered && st.Meta.Sharded() {
		j.meta = st.Meta // recovered identity wins; caller validates
	}

	walPath := filepath.Join(j.dir, walName(chosen))
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dirlog: %w", err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("dirlog: %w", err)
	}
	recs, clean, _ := Decode(data)
	// A decode error here is corruption past the clean point; for
	// recovery it is handled the same way as a torn tail — the journal
	// resumes at the last whole record. The typed distinction matters to
	// tools and fuzzing, not to crash recovery.
	for _, r := range recs {
		st.Apply(r)
	}
	j.info.Gen = chosen
	j.info.WalBytes = int64(clean)
	j.info.TruncatedBytes = int64(len(data) - clean)
	if clean < len(data) {
		if err := f.Truncate(int64(clean)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("dirlog: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(clean), 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("dirlog: %w", err)
	}
	j.f = f
	j.walBytes = int64(clean)
	j.sinceSnap = len(recs)
	if len(recs) > 0 {
		if _, isMeta := recs[0].(Meta); isMeta {
			j.sinceSnap-- // the identity record is framing, not a transition
		}
	}
	j.info.WalRecords = j.sinceSnap
	if len(data) == 0 {
		// Fresh wal: open it with the identity record.
		j.meta.Gen = chosen
		j.buf = appendRecord(j.buf[:0], j.meta)
		if _, err := f.Write(j.buf); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("dirlog: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("dirlog: %w", err)
		}
		j.walBytes = int64(len(j.buf))
		j.sinceSnap = 0
	}
	// Clean up generations the chosen one supersedes (best effort; a
	// leftover older pair is re-deleted on the next rotation's sweep).
	j.removeOthers(chosen)
	return st, nil
}

func parseGen(name, prefix, suffix string, gen *uint64) bool {
	if len(name) != len(prefix)+16+len(suffix) || name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	_, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", gen)
	return err == nil
}

// replaySnapshot loads one snapshot file. ok is false when the file is
// missing, torn (no SnapEnd terminator) or corrupt — recovery then falls
// back to the previous generation.
func replaySnapshot(path string) (*State, int, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	recs, clean, derr := Decode(data)
	if derr != nil || clean != len(data) || len(recs) == 0 {
		return nil, 0, false
	}
	if _, isEnd := recs[len(recs)-1].(SnapEnd); !isEnd {
		return nil, 0, false
	}
	st := NewState()
	for _, r := range recs {
		st.Apply(r)
	}
	if !st.Complete {
		return nil, 0, false
	}
	return st, len(recs), true
}

// removeOthers deletes every journal file not of generation keep.
func (j *Journal) removeOthers(keep uint64) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var gen uint64
		if parseGen(e.Name(), "snap-", ".snap", &gen) || parseGen(e.Name(), "wal-", ".log", &gen) {
			if gen != keep {
				_ = os.Remove(filepath.Join(j.dir, e.Name()))
			}
		}
	}
}

// Info reports what recovery found when the journal was opened.
func (j *Journal) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// Gen reports the generation currently being appended to.
func (j *Journal) Gen() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.gen
}

// Crashed reports whether the journal stopped persisting — the
// CrashAfter hook fired or Crash was called.
func (j *Journal) Crashed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.crashed
}

// SinceSnapshot reports how many transitions the current wal holds.
func (j *Journal) SinceSnapshot() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceSnap
}

// ShouldSnapshot reports whether the wal has grown past the configured
// compaction threshold.
func (j *Journal) ShouldSnapshot() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.opts.SnapshotEvery > 0 && j.sinceSnap >= j.opts.SnapshotEvery
}

// Append journals records, in order, honoring the fsync policy. Appends
// after the crash-injection point (or after Crash/Close) are dropped
// silently — precisely the writes a real crash at that moment would
// lose; the caller's in-memory state stays ahead of the journal, which
// is what the recovery tests exercise.
//
// A failed write is rolled back by truncating the file to the last whole
// record, so the torn frame never strands later appends behind it (Decode
// stops at the first bad frame). If the rollback itself fails the journal
// latches a sticky error and every further Append returns it — durability
// is gone and the caller must know, not a crash to paper over.
func (j *Journal) Append(recs ...Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	if j.crashed || j.closed {
		return nil
	}
	j.buf = j.buf[:0]
	wrote := 0
	for _, r := range recs {
		if j.opts.CrashAfter != 0 && (j.opts.CrashAfter < 0 || j.appended+wrote >= j.opts.CrashAfter) {
			j.crashed = true
			break
		}
		j.buf = appendRecord(j.buf, r)
		wrote++
	}
	if wrote == 0 {
		return nil
	}
	if n, err := j.f.Write(j.buf); err != nil || n != len(j.buf) {
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(j.buf))
		}
		if terr := j.rollbackLocked(); terr != nil {
			j.failed = fmt.Errorf("dirlog: append: %w (rollback failed: %v)", err, terr)
			return j.failed
		}
		return fmt.Errorf("dirlog: append: %w", err)
	}
	j.walBytes += int64(len(j.buf))
	j.appended += wrote
	j.sinceSnap += wrote
	if j.opts.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("dirlog: fsync: %w", err)
		}
	} else {
		j.dirty = true
	}
	return nil
}

// rollbackLocked cuts a torn frame off the wal, restoring the file to
// the last whole record at j.walBytes.
func (j *Journal) rollbackLocked() error {
	if err := j.f.Truncate(j.walBytes); err != nil {
		return err
	}
	_, err := j.f.Seek(j.walBytes, 0)
	return err
}

// Snapshot compacts the journal: writes st as the next generation's
// snapshot, rotates to a fresh wal, and deletes the previous generation.
// The caller must pass a state at least as new as every appended record
// (the directory captures it under the same lock it journals under).
func (j *Journal) Snapshot(st *State) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	if j.crashed || j.closed {
		return nil
	}
	newGen := j.gen + 1
	j.meta.Gen = newGen

	j.buf = j.buf[:0]
	j.buf = appendRecord(j.buf, j.meta)
	for _, r := range st.Records() {
		j.buf = appendRecord(j.buf, r)
	}
	j.buf = appendRecord(j.buf, SnapEnd{})

	tmp := filepath.Join(j.dir, "snap-tmp")
	if err := writeFileSync(tmp, j.buf); err != nil {
		return fmt.Errorf("dirlog: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName(newGen))); err != nil {
		return fmt.Errorf("dirlog: snapshot: %w", err)
	}

	j.buf = j.buf[:0]
	j.buf = appendRecord(j.buf, j.meta)
	walPath := filepath.Join(j.dir, walName(newGen))
	if err := writeFileSync(walPath, j.buf); err != nil {
		return fmt.Errorf("dirlog: rotate: %w", err)
	}
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dirlog: rotate: %w", err)
	}
	syncDir(j.dir)

	old := j.f
	oldGen := j.gen
	j.f = f
	j.gen = newGen
	j.walBytes = int64(len(j.buf))
	j.sinceSnap = 0
	_ = old.Close()
	_ = os.Remove(filepath.Join(j.dir, walName(oldGen)))
	_ = os.Remove(filepath.Join(j.dir, snapName(oldGen)))
	return nil
}

// writeFileSync writes data to path and forces it to stable storage
// before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable. Best
// effort: some filesystems refuse directory fsync, and the rename is
// still crash-atomic there.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Sync forces buffered appends to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.failed != nil {
		return j.failed
	}
	if j.crashed || j.closed || !j.dirty {
		return nil
	}
	j.dirty = false
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dirlog: fsync: %w", err)
	}
	return nil
}

// syncLoop is the FsyncInterval flusher.
func (j *Journal) syncLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			_ = j.Sync() // a failing flush retries next tick; Close surfaces the final one
		}
	}
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	return j.shutdown(true)
}

// Crash closes the journal without flushing — the kill path of the
// crash tests and Directory.Kill. Buffered (un-fsynced) appends may or
// may not survive, exactly as in a real crash.
func (j *Journal) Crash() error {
	return j.shutdown(false)
}

func (j *Journal) shutdown(flush bool) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	var err error
	if flush && !j.crashed && j.dirty {
		j.dirty = false
		err = j.f.Sync()
	}
	if !flush {
		j.crashed = true
	}
	cerr := j.f.Close()
	j.mu.Unlock()
	close(j.stop)
	j.wg.Wait()
	if err != nil {
		return fmt.Errorf("dirlog: close: %w", err)
	}
	if cerr != nil && flush {
		return fmt.Errorf("dirlog: close: %w", cerr)
	}
	return nil
}
