package dirlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scenario is a record sequence exercising every transition type.
func scenario() []Record {
	return []Record{
		Register{Addr: "a:1", Epoch: 10, Seq: 1, Expires: 1000, Pages: []uint64{1, 2, 3}},
		Register{Addr: "b:1", Epoch: 20, Seq: 2, Expires: 1000, Pages: []uint64{4, 5}},
		RenewBatch{Renews: []Renew{{Addr: "a:1", Epoch: 10, Expires: 2000}, {Addr: "b:1", Epoch: 20, Expires: 2000}}},
		Register{Addr: "a:1", Epoch: 11, Seq: 3, Expires: 3000, Pages: []uint64{1, 7}}, // new incarnation fences pages 2,3
		Drain{Addr: "b:1"},
		Expunge{Addrs: []string{"b:1"}},
		Fence{Addr: "b:1", Epoch: 21},
		Register{Addr: "c:1", Epoch: 5, Seq: 4, Expires: 3000, Pages: []uint64{9}},
	}
}

func applyAll(recs []Record) *State {
	st := NewState()
	for _, r := range recs {
		st.Apply(r)
	}
	return st
}

func mustOpen(t *testing.T, o Options) (*Journal, *State) {
	t.Helper()
	j, st, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return j, st
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st := mustOpen(t, Options{Dir: dir})
	if len(st.Servers) != 0 || j.Info().Recovered {
		t.Fatalf("fresh journal recovered state: %+v info %+v", st, j.Info())
	}
	for _, r := range scenario() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpen(t, Options{Dir: dir})
	defer func() { _ = j2.Close() }()
	want := applyAll(scenario())
	if !got.Equal(want, true) {
		t.Fatalf("recovered state differs:\n got %+v\nwant %+v", got, want)
	}
	if !j2.Info().Recovered || j2.Info().WalRecords != len(scenario()) {
		t.Fatalf("info: %+v", j2.Info())
	}
	// Spot-check the semantics: a:1's old incarnation pages are fenced,
	// b:1 is expunged but epoch-remembered at the fenced value.
	s := got.Servers["a:1"]
	if s == nil || s.Epoch != 11 || len(s.Pages) != 2 {
		t.Fatalf("a:1 state: %+v", s)
	}
	if got.Servers["b:1"] != nil || got.Epochs["b:1"] != 21 || got.Draining["b:1"] {
		t.Fatalf("b:1 not cleanly expunged+fenced: %+v", got)
	}
}

// TestTornTailEveryByte is the crash-consistency core: for every possible
// truncation point of the wal, recovery must come back with exactly the
// whole-record prefix and no error.
func TestTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	for _, r := range scenario() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName(1))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, walName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got, err := Open(Options{Dir: sub})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		recs, clean, derr := Decode(full[:cut])
		if derr != nil {
			t.Fatalf("cut %d: decode of writer output corrupt: %v", cut, derr)
		}
		// Recovery replays exactly the whole-record prefix; skip the meta
		// framing record when counting transitions.
		wantRecs := recs
		if len(wantRecs) > 0 {
			if _, isMeta := wantRecs[0].(Meta); isMeta {
				wantRecs = wantRecs[1:]
			}
		}
		if !got.Equal(applyAll(wantRecs), true) {
			t.Fatalf("cut %d: recovered state != prefix state", cut)
		}
		if j2.Info().TruncatedBytes != int64(cut-clean) {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, j2.Info().TruncatedBytes, cut-clean)
		}
		// The journal must keep working after truncation: append and
		// recover once more.
		if err := j2.Append(Fence{Addr: "z:1", Epoch: 99}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		j3, again, err := Open(Options{Dir: sub})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if again.Epochs["z:1"] != 99 {
			t.Fatalf("cut %d: append after truncation lost", cut)
		}
		if err := j3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	// Oversized length field: structurally impossible, typed error.
	big := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	var ce *CorruptError
	if _, clean, err := Decode(big); !errors.As(err, &ce) || clean != 0 {
		t.Fatalf("oversized length: clean=%d err=%v", clean, err)
	}
	// Valid checksum over an undecodable body: also corrupt, not torn.
	bad := appendRecord(nil, Fence{Addr: "a", Epoch: 1})
	bad[frameHeader] = 0xEE // undeclared record type; recompute the CRC
	crc := crc32.Checksum(bad[frameHeader:], crcTable)
	binary.LittleEndian.PutUint32(bad[4:], crc)
	if _, _, err := Decode(bad); !errors.As(err, &ce) {
		t.Fatalf("undeclared type under valid crc: %v", err)
	}
	// Flipped payload bit without fixing the CRC: indistinguishable from
	// a torn write, so it is a clean truncation, not an error.
	torn := appendRecord(nil, Fence{Addr: "a", Epoch: 1})
	torn[len(torn)-1] ^= 1
	if recs, clean, err := Decode(torn); err != nil || clean != 0 || len(recs) != 0 {
		t.Fatalf("crc mismatch: recs=%d clean=%d err=%v", len(recs), clean, err)
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	half := scenario()[:4]
	for _, r := range half {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot(applyAll(half)); err != nil {
		t.Fatal(err)
	}
	if j.Gen() != 2 || j.SinceSnapshot() != 0 {
		t.Fatalf("rotation: gen=%d since=%d", j.Gen(), j.SinceSnapshot())
	}
	// The old generation is gone.
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("old wal survives rotation: %v", err)
	}
	for _, r := range scenario()[4:] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpen(t, Options{Dir: dir})
	defer func() { _ = j2.Close() }()
	if !got.Equal(applyAll(scenario()), true) {
		t.Fatal("snapshot+wal recovery differs from full replay")
	}
	if info := j2.Info(); info.SnapshotRecords == 0 || info.WalRecords != len(scenario())-4 {
		t.Fatalf("info: %+v", info)
	}
}

// TestTornSnapshotFallsBack pins the rotation crash window: a snapshot
// missing its terminator (torn mid-write, before the rename would have
// happened) is ignored in favor of the previous generation.
func TestTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	for _, r := range scenario() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-plant a gen-2 snapshot with no SnapEnd.
	torn := appendRecord(nil, Meta{Gen: 2})
	torn = appendRecord(torn, Fence{Addr: "x:1", Epoch: 1})
	if err := os.WriteFile(filepath.Join(dir, snapName(2)), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, got, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if !got.Equal(applyAll(scenario()), true) {
		t.Fatal("torn snapshot was trusted")
	}
	if _, ok := got.Epochs["x:1"]; ok {
		t.Fatal("records of the torn snapshot leaked into recovery")
	}
}

// TestCrashAfter pins the deterministic crash-injection hook: with
// CrashAfter=n, exactly the first n records survive to recovery,
// whatever else was appended.
func TestCrashAfter(t *testing.T) {
	recs := scenario()
	for n := 0; n <= len(recs); n++ {
		crashAfter := n
		if n == 0 {
			crashAfter = -1 // crash before the first append
		}
		dir := t.TempDir()
		j, _ := mustOpen(t, Options{Dir: dir, CrashAfter: crashAfter, Fsync: FsyncAlways})
		for _, r := range recs {
			if err := j.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if (n < len(recs)) != j.Crashed() {
			t.Fatalf("n=%d: crashed=%v", n, j.Crashed())
		}
		if err := j.Crash(); err != nil {
			t.Fatal(err)
		}
		j2, got := mustOpen(t, Options{Dir: dir})
		if !got.Equal(applyAll(recs[:n]), true) {
			t.Fatalf("n=%d: recovered state is not the %d-record prefix", n, n)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardIdentityRecovered(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{ShardVersion: 3, Shards: []string{"s0", "s1"}, Self: 1}
	j, _ := mustOpen(t, Options{Dir: dir, Meta: meta})
	if err := j.Append(Fence{Addr: "a", Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, got := mustOpen(t, Options{Dir: dir, Meta: Meta{Self: -1}})
	defer func() { _ = j2.Close() }()
	if !got.Meta.SameShard(meta) {
		t.Fatalf("shard identity not recovered: %+v", got.Meta)
	}
	if got.Meta.SameShard(Meta{Self: -1}) {
		t.Fatal("SameShard confuses distinct identities")
	}
}

// TestAppendWriteFailureLatches pins the torn-frame durability hole: a
// failed write whose rollback also fails must leave the journal in a
// sticky failed state, because any further append would land behind the
// torn frame and be silently discarded by Decode at recovery.
func TestAppendWriteFailureLatches(t *testing.T) {
	dir := t.TempDir()
	recs := scenario()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	if err := j.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	// Sever the descriptor out from under the journal: the next write
	// fails, and so does the rollback truncate.
	j.mu.Lock()
	_ = j.f.Close()
	j.mu.Unlock()
	if err := j.Append(recs[1]); err == nil {
		t.Fatal("append over a dead file must fail")
	}
	if err := j.Append(recs[2]); err == nil {
		t.Fatal("append after a failed rollback must keep failing, not silently lose durability")
	}
	if err := j.Snapshot(applyAll(recs[:1])); err == nil {
		t.Fatal("snapshot after a failed rollback must fail")
	}
	if err := j.Sync(); err == nil {
		t.Fatal("sync after a failed rollback must fail")
	}
	_ = j.Crash() // Close would re-fail on the severed descriptor

	j2, got := mustOpen(t, Options{Dir: dir})
	defer func() { _ = j2.Close() }()
	if !got.Equal(applyAll(recs[:1]), true) {
		t.Fatalf("recovered state is not the pre-failure prefix: %+v", got)
	}
}

// TestAppendRollbackCutsTornFrame: after a failed write, the rollback
// truncates the torn frame so later appends stay decodable instead of
// being stranded behind it.
func TestAppendRollbackCutsTornFrame(t *testing.T) {
	dir := t.TempDir()
	recs := scenario()
	j, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	if err := j.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	// Plant the half-frame a failed write leaves behind, then run the
	// rollback Append performs on write error.
	j.mu.Lock()
	if _, err := j.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		j.mu.Unlock()
		t.Fatal(err)
	}
	if err := j.rollbackLocked(); err != nil {
		j.mu.Unlock()
		t.Fatal(err)
	}
	j.mu.Unlock()
	if err := j.Append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpen(t, Options{Dir: dir})
	defer func() { _ = j2.Close() }()
	if j2.Info().TruncatedBytes != 0 {
		t.Fatalf("rollback left a torn tail on disk: %+v", j2.Info())
	}
	if !got.Equal(applyAll(recs[:2]), true) {
		t.Fatalf("append after rollback was lost at recovery: %+v", got)
	}
}

// TestOpenRejectsUnencodableMeta: the journal's one-byte shard count and
// string lengths must refuse a configuration they cannot represent
// instead of silently truncating the journaled shard identity.
func TestOpenRejectsUnencodableMeta(t *testing.T) {
	shards := make([]string, 256)
	for i := range shards {
		shards[i] = fmt.Sprintf("s%d:1", i)
	}
	if _, _, err := Open(Options{Dir: t.TempDir(), Meta: Meta{ShardVersion: 1, Shards: shards, Self: 0}}); err == nil {
		t.Fatal("256 shards accepted: the count would wrap to 0 in the frame")
	}
	long := strings.Repeat("x", 256)
	if _, _, err := Open(Options{Dir: t.TempDir(), Meta: Meta{ShardVersion: 1, Shards: []string{long}, Self: 0}}); err == nil {
		t.Fatal("256-byte shard address accepted: it would be truncated in the frame")
	}
}

func TestParseFsync(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsync(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("String round trip: %q != %q", got.String(), s)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestBench smoke-tests the durability benchmark at small sizes: every
// point must report a replayed journal, positive throughput, and a
// snapshot that actually compacts the renew-heavy stream.
func TestBench(t *testing.T) {
	pts, err := Bench(t.TempDir(), []int{200, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for i, pt := range pts {
		if pt.Records < []int{200, 800}[i] {
			t.Fatalf("point %d replayed %d records, want >= %d", i, pt.Records, []int{200, 800}[i])
		}
		if pt.WalBytes <= 0 || pt.ReplayRecsPerSec <= 0 || pt.SnapshotBytes <= 0 {
			t.Fatalf("point %d has empty measurements: %+v", i, pt)
		}
		if pt.CompactionX <= 1 {
			t.Fatalf("point %d compaction %.2fx: snapshot did not shrink the wal", i, pt.CompactionX)
		}
	}
	if pts[1].WalBytes <= pts[0].WalBytes {
		t.Fatalf("wal bytes not monotone with journal length: %+v", pts)
	}
}
