package dirlog

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode holds the journal framing to the same contract as the wire
// protocol's FuzzDecode: arbitrary bytes never panic, and every input
// yields either a clean truncation point (what crash recovery truncates
// to) or a typed *CorruptError — never a partial parse that loses the
// distinction. Replay through State.Apply must likewise never panic,
// whatever values the records carry.
func FuzzDecode(f *testing.F) {
	// Well-formed streams: every record type, singly and combined.
	f.Add(appendRecord(nil, Meta{Gen: 1, ShardVersion: 2, Shards: []string{"a:1", "b:2"}, Self: 1}))
	f.Add(appendRecord(nil, Register{Addr: "a:1", Epoch: 7, Seq: 3, Expires: -1, Pages: []uint64{0, 1, 1 << 60}}))
	f.Add(appendRecord(nil, RenewBatch{Renews: []Renew{{Addr: "a:1", Epoch: 7, Expires: 9}}}))
	f.Add(appendRecord(nil, Expunge{Addrs: []string{"a:1", ""}}))
	f.Add(appendRecord(nil, Drain{Addr: "a:1"}))
	f.Add(appendRecord(nil, DrainAbort{Addr: "a:1"}))
	f.Add(appendRecord(nil, Fence{Addr: "a:1", Epoch: 8}))
	f.Add(appendRecord(nil, SnapEnd{}))
	var stream []byte
	for _, r := range scenario() {
		stream = appendRecord(stream, r)
	}
	f.Add(stream)
	// Malformed shapes: torn header, torn payload, oversized length,
	// zeroed CRC, truncated mid-stream.
	f.Add([]byte{3, 0, 0})
	f.Add([]byte{8, 0, 0, 0, 1, 2, 3, 4, 9})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add(append([]byte{2, 0, 0, 0, 0, 0, 0, 0}, 1, 2))
	f.Add(stream[:len(stream)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := Decode(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("truncation point %d outside input of %d bytes", clean, len(data))
		}
		var ce *CorruptError
		if err != nil && !errors.As(err, &ce) {
			t.Fatalf("error is not a typed *CorruptError: %v", err)
		}
		if err == nil {
			// The clean prefix must re-decode to the same records: the
			// truncation point is a real frame boundary.
			recs2, clean2, err2 := Decode(data[:clean])
			if err2 != nil || clean2 != clean || len(recs2) != len(recs) {
				t.Fatalf("clean prefix does not re-decode: clean=%d/%d recs=%d/%d err=%v",
					clean2, clean, len(recs2), len(recs), err2)
			}
		}
		// Whatever decoded must replay without panicking, and the result
		// must be writable back out as a snapshot stream.
		st := NewState()
		for _, r := range recs {
			st.Apply(r)
		}
		var out []byte
		for _, r := range st.Records() {
			out = appendRecord(out, r)
		}
		if recs2, clean2, err2 := Decode(out); err2 != nil || clean2 != len(out) {
			t.Fatalf("canonical records do not round trip: %v", err2)
		} else {
			st2 := NewState()
			for _, r := range recs2 {
				st2.Apply(r)
			}
			if !st.Equal(st2, true) {
				t.Fatal("state changed across a Records() round trip")
			}
		}
	})
}

// FuzzRecordRoundTrip drives the encoder from fuzzed field values: any
// record we can construct must decode back to itself.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("addr:1", uint64(7), uint64(3), int64(1000), uint64(42))
	f.Add("", uint64(0), uint64(0), int64(-5), uint64(0))
	f.Fuzz(func(t *testing.T, addr string, epoch, seq uint64, expires int64, page uint64) {
		if len(addr) > 255 {
			addr = addr[:255]
		}
		recs := []Record{
			Register{Addr: addr, Epoch: epoch, Seq: seq, Expires: expires, Pages: []uint64{page}},
			RenewBatch{Renews: []Renew{{Addr: addr, Epoch: epoch, Expires: expires}}},
			Expunge{Addrs: []string{addr}},
			Drain{Addr: addr},
			DrainAbort{Addr: addr},
			Fence{Addr: addr, Epoch: epoch},
		}
		var buf []byte
		for _, r := range recs {
			buf = appendRecord(buf, r)
		}
		got, clean, err := Decode(buf)
		if err != nil || clean != len(buf) || len(got) != len(recs) {
			t.Fatalf("round trip: clean=%d/%d n=%d err=%v", clean, len(buf), len(got), err)
		}
		reg, ok := got[0].(Register)
		if !ok || reg.Addr != addr || reg.Epoch != epoch || reg.Seq != seq || reg.Expires != expires || reg.Pages[0] != page {
			t.Fatalf("register did not round trip: %+v", got[0])
		}
		var again []byte
		for _, r := range got {
			again = appendRecord(again, r)
		}
		if !bytes.Equal(buf, again) {
			t.Fatal("re-encoding is not byte-identical")
		}
	})
}
