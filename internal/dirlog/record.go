// Record encoding for the directory journal.
//
// A journal file — write-ahead log and snapshot alike — is a stream of
// CRC-framed records (little endian):
//
//	bytes 0-3  payload length n
//	bytes 4-7  CRC-32C (Castagnoli) of the payload
//	bytes 8..  payload (n bytes)
//
// The payload's first byte is the record type, followed by a fixed
// per-type body documented on each record struct. Strings are
// length-prefixed with one byte, matching the wire protocol's convention.
//
// The framing distinguishes two failure shapes. A *torn tail* — the
// stream ends mid-frame, or the final frame's checksum does not match
// because the crash interrupted the write — is expected after any crash
// and is handled by truncating to the last whole record. A *corrupt
// frame* — a length field beyond MaxRecord, an undeclared record type, or
// a body that fails to parse under a valid checksum — cannot be produced
// by a torn write and reports a typed *CorruptError instead.
package dirlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// RecType identifies a journal record.
type RecType uint8

// Record types. The journal replays these in order to rebuild directory
// state; State.Apply defines the exact semantics of each.
const (
	// RecMeta opens every journal file: the file's generation and the
	// shard identity of the directory that wrote it, so recovery can
	// refuse a journal written by a different shard assignment.
	RecMeta RecType = iota + 1
	// RecRegister is one applied registration: the server's address,
	// epoch, seniority sequence, absolute lease expiry, and the owned
	// pages the registration added.
	RecRegister
	// RecRenewBatch carries a batch of lease renewals. Heartbeats are
	// far too frequent to journal one record each; the directory buffers
	// renewals and flushes them as one record per janitor sweep.
	RecRenewBatch
	// RecExpunge removes servers whose leases expired (or were drained).
	// The address's epoch memory survives, exactly as in live operation.
	RecExpunge
	// RecDrain marks a server as draining: an admin asked the directory
	// to move its pages away before dropping the lease.
	RecDrain
	// RecDrainAbort clears a draining mark after a failed transfer.
	RecDrainAbort
	// RecFence raises the remembered epoch for an address without a
	// registration — the drain path's fence, so the drained incarnation
	// stays rejected even though it never re-registered.
	RecFence
	// RecSnapEnd terminates a snapshot stream. A snapshot file whose
	// last record is not RecSnapEnd was torn mid-write and is ignored in
	// favor of the previous generation.
	RecSnapEnd
)

// String names the record type for diagnostics.
func (t RecType) String() string {
	switch t {
	case RecMeta:
		return "Meta"
	case RecRegister:
		return "Register"
	case RecRenewBatch:
		return "RenewBatch"
	case RecExpunge:
		return "Expunge"
	case RecDrain:
		return "Drain"
	case RecDrainAbort:
		return "DrainAbort"
	case RecFence:
		return "Fence"
	case RecSnapEnd:
		return "SnapEnd"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// MaxRecord bounds one record's payload. The largest legitimate record is
// a RecRegister carrying one registration batch of pages; 1 MiB is far
// above any batch the wire protocol can deliver, so a larger length field
// can only come from corruption.
const MaxRecord = 1 << 20

const frameHeader = 8 // u32 length + u32 crc

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journal entry. The concrete types are Meta, Register,
// RenewBatch, Expunge, Drain, DrainAbort, Fence and SnapEnd.
type Record interface{ recType() RecType }

// Meta identifies a journal file: its generation and the shard assignment
// of the directory that wrote it. Self is -1 for an unsharded directory.
type Meta struct {
	Gen          uint64
	ShardVersion uint64
	Shards       []string
	Self         int
}

func (Meta) recType() RecType { return RecMeta }

// SameShard reports whether two metas describe the same shard identity
// (generation excluded — that differs across rotations by design).
func (m Meta) SameShard(o Meta) bool {
	if m.ShardVersion != o.ShardVersion || m.Self != o.Self || len(m.Shards) != len(o.Shards) {
		return false
	}
	for i, a := range m.Shards {
		if o.Shards[i] != a {
			return false
		}
	}
	return true
}

// Sharded reports whether the meta describes one shard of a sharded
// deployment.
func (m Meta) Sharded() bool { return len(m.Shards) > 0 }

// Validate rejects a meta the frame encoding cannot represent: the shard
// count and each shard address carry one-byte length prefixes, so a
// deployment past either bound would journal a silently-wrong identity
// that SameShard later trusts. Open refuses such a configuration up
// front instead.
func (m Meta) Validate() error {
	if len(m.Shards) > 255 {
		return fmt.Errorf("dirlog: %d shards exceed the journal's one-byte shard count", len(m.Shards))
	}
	for _, a := range m.Shards {
		if len(a) > 255 {
			return fmt.Errorf("dirlog: shard address %.16q… exceeds the journal's 255-byte string bound", a)
		}
	}
	return nil
}

// Register is one applied registration. Expires is absolute wall time in
// Unix nanoseconds; Seq is the directory's seniority counter at the time
// the server first registered, preserved so primary ordering survives
// recovery.
type Register struct {
	Addr    string
	Epoch   uint64
	Seq     uint64
	Expires int64
	Pages   []uint64
}

func (Register) recType() RecType { return RecRegister }

// Renew is one lease renewal inside a RenewBatch.
type Renew struct {
	Addr    string
	Epoch   uint64
	Expires int64
}

// RenewBatch carries buffered lease renewals.
type RenewBatch struct{ Renews []Renew }

func (RenewBatch) recType() RecType { return RecRenewBatch }

// Expunge removes the named servers' registrations.
type Expunge struct{ Addrs []string }

func (Expunge) recType() RecType { return RecExpunge }

// Drain marks Addr as draining.
type Drain struct{ Addr string }

func (Drain) recType() RecType { return RecDrain }

// DrainAbort clears Addr's draining mark.
type DrainAbort struct{ Addr string }

func (DrainAbort) recType() RecType { return RecDrainAbort }

// Fence raises Addr's remembered epoch to Epoch.
type Fence struct {
	Addr  string
	Epoch uint64
}

func (Fence) recType() RecType { return RecFence }

// SnapEnd terminates a snapshot stream.
type SnapEnd struct{}

func (SnapEnd) recType() RecType { return RecSnapEnd }

// CorruptError reports a structurally impossible frame: not the torn tail
// a crash leaves behind, but a stream no writer of this package produced.
type CorruptError struct {
	Offset int    // byte offset of the offending frame
	Reason string // what was impossible about it
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("dirlog: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// appendRecord appends r's CRC-framed encoding to buf.
func appendRecord(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = appendBody(buf, r)
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

func appendBody(buf []byte, r Record) []byte {
	buf = append(buf, byte(r.recType()))
	switch m := r.(type) {
	case Meta:
		buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
		buf = binary.LittleEndian.AppendUint64(buf, m.ShardVersion)
		self := uint32(0xFFFFFFFF)
		if m.Self >= 0 {
			self = uint32(m.Self)
		}
		buf = binary.LittleEndian.AppendUint32(buf, self)
		buf = append(buf, byte(len(m.Shards)))
		for _, a := range m.Shards {
			buf = appendString(buf, a)
		}
	case Register:
		buf = appendString(buf, m.Addr)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Expires))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Pages)))
		for _, p := range m.Pages {
			buf = binary.LittleEndian.AppendUint64(buf, p)
		}
	case RenewBatch:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Renews)))
		for _, rn := range m.Renews {
			buf = appendString(buf, rn.Addr)
			buf = binary.LittleEndian.AppendUint64(buf, rn.Epoch)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(rn.Expires))
		}
	case Expunge:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Addrs)))
		for _, a := range m.Addrs {
			buf = appendString(buf, a)
		}
	case Drain:
		buf = appendString(buf, m.Addr)
	case DrainAbort:
		buf = appendString(buf, m.Addr)
	case Fence:
		buf = appendString(buf, m.Addr)
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	case SnapEnd:
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	if len(s) > 255 {
		// Unreachable for a validated journal: wire-decoded addresses
		// carry one-byte length prefixes and Open rejects oversized
		// shard metas (Meta.Validate). Clamp rather than corrupt the
		// frame if a future caller slips one through.
		s = s[:255]
	}
	buf = append(buf, byte(len(s)))
	return append(buf, s...)
}

// Decode parses a record stream. It returns the decoded records, the
// clean length — the byte offset up to which the stream parsed as whole,
// checksummed frames — and an error.
//
// A nil error with clean < len(data) is a torn tail: the input ends
// mid-frame or the last frame's checksum fails, which is what a crash
// mid-write leaves behind; the caller truncates at clean and continues. A
// *CorruptError reports a frame no writer produced (oversized length,
// undeclared type, or an unparseable body under a valid checksum) at
// offset clean. Decode never panics, whatever the input.
func Decode(data []byte) (recs []Record, clean int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, off, nil // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > MaxRecord {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("length %d exceeds max %d", n, MaxRecord)}
		}
		if len(data)-off-frameHeader < n {
			return recs, off, nil // torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+4:]) {
			return recs, off, nil // checksum mismatch: a torn or half-written frame
		}
		rec, derr := decodeBody(payload)
		if derr != nil {
			// The checksum matched, so the bytes arrived as written — a
			// frame that still fails to parse was never valid.
			return recs, off, &CorruptError{Offset: off, Reason: derr.Error()}
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, off, nil
}

// decodeBody parses one record payload (type byte + body). It requires
// the body to be consumed exactly.
func decodeBody(p []byte) (Record, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("empty payload")
	}
	t, body := RecType(p[0]), p[1:]
	d := &decoder{p: body}
	var rec Record
	switch t {
	case RecMeta:
		m := Meta{Gen: d.u64(), ShardVersion: d.u64()}
		self := d.u32()
		m.Self = -1
		if self != 0xFFFFFFFF {
			m.Self = int(self)
		}
		for i, n := 0, int(d.u8()); i < n && d.err == nil; i++ {
			m.Shards = append(m.Shards, d.str())
		}
		rec = m
	case RecRegister:
		m := Register{Addr: d.str(), Epoch: d.u64(), Seq: d.u64(), Expires: int64(d.u64())}
		n := int(d.u32())
		if d.err == nil && n > len(d.p)/8+1 {
			return nil, fmt.Errorf("register page count %d exceeds body", n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			m.Pages = append(m.Pages, d.u64())
		}
		rec = m
	case RecRenewBatch:
		var m RenewBatch
		n := int(d.u32())
		if d.err == nil && n > len(d.p)/17+1 {
			return nil, fmt.Errorf("renew count %d exceeds body", n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			m.Renews = append(m.Renews, Renew{Addr: d.str(), Epoch: d.u64(), Expires: int64(d.u64())})
		}
		rec = m
	case RecExpunge:
		var m Expunge
		n := int(d.u32())
		if d.err == nil && n > len(d.p)+1 {
			return nil, fmt.Errorf("expunge count %d exceeds body", n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			m.Addrs = append(m.Addrs, d.str())
		}
		rec = m
	case RecDrain:
		rec = Drain{Addr: d.str()}
	case RecDrainAbort:
		rec = DrainAbort{Addr: d.str()}
	case RecFence:
		rec = Fence{Addr: d.str(), Epoch: d.u64()}
	case RecSnapEnd:
		rec = SnapEnd{}
	default:
		return nil, fmt.Errorf("undeclared record type %d", p[0])
	}
	if d.err != nil {
		return nil, fmt.Errorf("short %v body", t)
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("trailing bytes in %v", t)
	}
	return rec, nil
}

// decoder consumes a record body left to right, latching the first
// under-run instead of panicking.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || len(d.p) < n {
		d.err = fmt.Errorf("short body")
		return nil
	}
	b := d.p[:n]
	d.p = d.p[n:]
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u8())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
