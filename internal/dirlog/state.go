package dirlog

import "sort"

// State is the durable portion of a directory's lease table: what a
// replayed journal reconstructs and what a snapshot compacts. It mirrors
// the directory's in-memory maps — servers with their epochs, seniority
// and pages; the per-address epoch memory that survives lease expiry; and
// draining marks — but not the volatile parts (connections, metrics,
// service-time emulation), which recovery rebuilds empty.
type State struct {
	Meta     Meta
	Seq      uint64 // high-water registration seniority counter
	Epochs   map[string]uint64
	Servers  map[string]*ServerState
	Draining map[string]bool
	Complete bool // a replayed snapshot carried its SnapEnd terminator
}

// ServerState is one recorded registration.
type ServerState struct {
	Epoch   uint64
	Seq     uint64
	Expires int64 // absolute lease expiry, Unix nanoseconds
	Pages   map[uint64]struct{}
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Epochs:   make(map[string]uint64),
		Servers:  make(map[string]*ServerState),
		Draining: make(map[string]bool),
	}
}

// Apply folds one record into the state. The semantics deliberately
// mirror the live directory's: a Register below the remembered epoch is
// ignored, a higher epoch fences out the old incarnation, renewals only
// extend a matching live registration, and expunge keeps the epoch
// memory. Replaying a journal therefore lands on the same lease table the
// directory held when the journal was written.
func (st *State) Apply(r Record) {
	switch m := r.(type) {
	case Meta:
		st.Meta = m
	case Register:
		cur := st.Epochs[m.Addr]
		if m.Epoch < cur {
			return // stale incarnation; rejected live, rejected on replay
		}
		if m.Epoch > cur {
			st.expunge(m.Addr)
			st.Epochs[m.Addr] = m.Epoch
		}
		s := st.Servers[m.Addr]
		if s == nil {
			s = &ServerState{Epoch: m.Epoch, Seq: m.Seq, Pages: make(map[uint64]struct{})}
			st.Servers[m.Addr] = s
		}
		s.Expires = m.Expires
		for _, p := range m.Pages {
			s.Pages[p] = struct{}{}
		}
		if m.Seq > st.Seq {
			st.Seq = m.Seq
		}
	case RenewBatch:
		for _, rn := range m.Renews {
			if s := st.Servers[rn.Addr]; s != nil && s.Epoch == rn.Epoch && rn.Expires > s.Expires {
				s.Expires = rn.Expires
			}
		}
	case Expunge:
		for _, a := range m.Addrs {
			st.expunge(a)
		}
	case Drain:
		st.Draining[m.Addr] = true
	case DrainAbort:
		delete(st.Draining, m.Addr)
	case Fence:
		if m.Epoch > st.Epochs[m.Addr] {
			st.Epochs[m.Addr] = m.Epoch
		}
		if s := st.Servers[m.Addr]; s != nil && s.Epoch < m.Epoch {
			st.expunge(m.Addr)
		}
	case SnapEnd:
		st.Complete = true
	}
}

func (st *State) expunge(addr string) {
	delete(st.Servers, addr)
	delete(st.Draining, addr)
}

// Records returns the canonical compacted encoding of the state: the
// record stream a snapshot writes (meta and terminator excluded — the
// snapshot writer frames those). Deterministic: entries are emitted in
// sorted address order with sorted page lists.
func (st *State) Records() []Record {
	var recs []Record
	// Epoch memory first: fences for every address, so a Register replayed
	// after them can never be out-fenced by ordering.
	for _, addr := range sortedKeys(st.Epochs) {
		recs = append(recs, Fence{Addr: addr, Epoch: st.Epochs[addr]})
	}
	addrs := make([]string, 0, len(st.Servers))
	for a := range st.Servers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		s := st.Servers[addr]
		pages := make([]uint64, 0, len(s.Pages))
		for p := range s.Pages {
			pages = append(pages, p)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		recs = append(recs, Register{Addr: addr, Epoch: s.Epoch, Seq: s.Seq, Expires: s.Expires, Pages: pages})
	}
	for _, addr := range sortedKeys(st.Draining) {
		recs = append(recs, Drain{Addr: addr})
	}
	return recs
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Equal reports whether two states hold the same lease table: epochs,
// registrations (epoch, seniority, pages) and draining marks. Expiry
// times are compared only when withExpiry is set — recovery rewrites them
// with the restart grace window, so equivalence checks usually exclude
// them. Meta and Complete are excluded.
func (st *State) Equal(o *State, withExpiry bool) bool {
	if len(st.Epochs) != len(o.Epochs) || len(st.Servers) != len(o.Servers) || len(st.Draining) != len(o.Draining) {
		return false
	}
	for a, e := range st.Epochs {
		if o.Epochs[a] != e {
			return false
		}
	}
	for a := range st.Draining {
		if !o.Draining[a] {
			return false
		}
	}
	for a, s := range st.Servers {
		os := o.Servers[a]
		if os == nil || os.Epoch != s.Epoch || os.Seq != s.Seq || len(os.Pages) != len(s.Pages) {
			return false
		}
		if withExpiry && os.Expires != s.Expires {
			return false
		}
		for p := range s.Pages {
			if _, ok := os.Pages[p]; !ok {
				return false
			}
		}
	}
	return true
}
