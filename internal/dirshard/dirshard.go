// Package dirshard runs the sharded directory service: N independent
// directory processes, each owning a deterministic slice of the page-ID
// space under a versioned consistent-hash shard map (internal/proto's
// Ring). Each shard is a full remote.Directory — leases, epoch fencing,
// heartbeats, and the janitor all work per shard exactly as they do for
// the classic single directory — plus shard-mode behavior: lookups for
// pages another shard owns answer TWrongShard carrying the current map,
// so a stale client re-routes in one extra round trip.
//
// The package offers two entry points: StartShard brings up one shard
// process (what `gmsnode dirshard` runs, one per node), and StartCluster
// brings up a whole map's worth of shards in-process on ephemeral ports
// (what tests and the gmsload harness use).
package dirshard

import (
	"fmt"
	"net"
	"time"

	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/remote"
)

// Config tunes every shard a constructor starts.
type Config struct {
	// LeaseTTL is each shard's lease duration (zero selects the
	// directory's default). Shards track server liveness independently:
	// a page server leases itself to every shard and a dead one expires
	// from each within one TTL.
	LeaseTTL time.Duration

	// LookupService, when positive, emulates each shard's bounded
	// per-lookup service capacity (see remote.DirectoryConfig). Scale
	// experiments on one machine set this so N shards exhibit N service
	// slots, the way N real directory nodes would.
	LookupService time.Duration
}

// StartShard starts one directory shard on addr serving shard index self
// of map m. The listen address must match m.Shards[self] in a real
// deployment — clients and servers will route page traffic there — but
// this is not enforced, so tests can stand up a shard behind a proxy.
func StartShard(addr string, m proto.ShardMap, self int, cfg Config) (*remote.Directory, error) {
	if !m.Sharded() {
		return nil, fmt.Errorf("dirshard: shard map is empty")
	}
	if self < 0 || self >= len(m.Shards) {
		return nil, fmt.Errorf("dirshard: self index %d outside map of %d shards", self, len(m.Shards))
	}
	return remote.ListenDirectoryWith(addr, remote.DirectoryConfig{
		LeaseTTL:      cfg.LeaseTTL,
		LookupService: cfg.LookupService,
		Shard:         &remote.ShardConfig{Map: m, Self: self},
	})
}

// Cluster is a full sharded directory deployment running in-process: one
// remote.Directory per shard map entry, all serving the same map.
type Cluster struct {
	m      proto.ShardMap
	shards []*remote.Directory
}

// StartCluster starts n directory shards on ephemeral loopback ports and
// builds the version-1 shard map from their real addresses. n = 1 yields
// a single-shard map, which still exercises the shard-mode protocol
// (useful as the baseline arm of scale experiments); use the plain
// directory constructors for a truly unsharded deployment.
func StartCluster(n int, cfg Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dirshard: cluster needs at least 1 shard, got %d", n)
	}
	lns := make([]net.Listener, 0, n)
	closeAll := func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}
	m := proto.ShardMap{Version: 1}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dirshard: shard %d listen: %w", i, err)
		}
		lns = append(lns, ln)
		m.Shards = append(m.Shards, ln.Addr().String())
	}
	c := &Cluster{m: m}
	for i, ln := range lns {
		c.shards = append(c.shards, remote.ListenDirectoryOnWith(ln, remote.DirectoryConfig{
			LeaseTTL:      cfg.LeaseTTL,
			LookupService: cfg.LookupService,
			Shard:         &remote.ShardConfig{Map: m, Self: i},
		}))
	}
	return c, nil
}

// N reports the number of shards.
func (c *Cluster) N() int { return len(c.shards) }

// Map returns the shard map the cluster serves.
func (c *Cluster) Map() proto.ShardMap { return c.m }

// Bootstrap returns the address clients and servers should be pointed at:
// shard 0. Any shard works — each serves the full map — but a fixed
// choice keeps experiments deterministic.
func (c *Cluster) Bootstrap() string { return c.m.Shards[0] }

// Shard returns shard i's directory, for tests that kill, interrogate, or
// instrument an individual shard.
func (c *Cluster) Shard(i int) *remote.Directory { return c.shards[i] }

// SetMetrics registers shard i's gms_dir_* and gms_dirshard_* metrics on
// r (nil disables them). Each shard gets its own registry in a real
// deployment; passing distinct registries here models that.
func (c *Cluster) SetMetrics(i int, r *obs.Registry) { c.shards[i].SetMetrics(r) }

// Close shuts every shard down. Idempotent per shard; the first error
// wins.
func (c *Cluster) Close() error {
	var first error
	for _, d := range c.shards {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
