// Package dirshard runs the sharded directory service: N independent
// directory processes, each owning a deterministic slice of the page-ID
// space under a versioned consistent-hash shard map (internal/proto's
// Ring). Each shard is a full remote.Directory — leases, epoch fencing,
// heartbeats, and the janitor all work per shard exactly as they do for
// the classic single directory — plus shard-mode behavior: lookups for
// pages another shard owns answer TWrongShard carrying the current map,
// so a stale client re-routes in one extra round trip.
//
// The package offers two entry points: StartShard brings up one shard
// process (what `gmsnode dirshard` runs, one per node), and StartCluster
// brings up a whole map's worth of shards in-process on ephemeral ports
// (what tests and the gmsload harness use).
package dirshard

import (
	"fmt"
	"net"
	"path/filepath"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/remote"
)

// Config tunes every shard a constructor starts.
type Config struct {
	// LeaseTTL is each shard's lease duration (zero selects the
	// directory's default). Shards track server liveness independently:
	// a page server leases itself to every shard and a dead one expires
	// from each within one TTL.
	LeaseTTL time.Duration

	// LookupService, when positive, emulates each shard's bounded
	// per-lookup service capacity (see remote.DirectoryConfig). Scale
	// experiments on one machine set this so N shards exhibit N service
	// slots, the way N real directory nodes would.
	LookupService time.Duration

	// Journal, when non-nil, makes each shard durable. StartShard uses
	// the options verbatim (one shard per process owns its directory);
	// StartCluster treats Journal.Dir as a root and gives shard i the
	// subdirectory shard-NNN, so an in-process cluster's journals never
	// collide. Each journal records its shard's identity (map version and
	// self index) and recovery refuses a journal written by a different
	// shard, so swapped data directories fail loudly instead of serving
	// another shard's pages.
	Journal *dirlog.Options

	// RestartGrace bounds how long recovered registrations survive after
	// a shard restart without a fresh heartbeat (see
	// remote.DirectoryConfig; zero selects one lease TTL).
	RestartGrace time.Duration
}

// shardJournal derives shard i's journal options from cfg, or nil when
// the cluster is not durable.
func (cfg Config) shardJournal(i int) *dirlog.Options {
	if cfg.Journal == nil {
		return nil
	}
	o := *cfg.Journal
	o.Dir = filepath.Join(cfg.Journal.Dir, fmt.Sprintf("shard-%03d", i))
	return &o
}

// StartShard starts one directory shard on addr serving shard index self
// of map m. The listen address must match m.Shards[self] in a real
// deployment — clients and servers will route page traffic there — but
// this is not enforced, so tests can stand up a shard behind a proxy.
func StartShard(addr string, m proto.ShardMap, self int, cfg Config) (*remote.Directory, error) {
	if !m.Sharded() {
		return nil, fmt.Errorf("dirshard: shard map is empty")
	}
	if self < 0 || self >= len(m.Shards) {
		return nil, fmt.Errorf("dirshard: self index %d outside map of %d shards", self, len(m.Shards))
	}
	return remote.ListenDirectoryWith(addr, remote.DirectoryConfig{
		LeaseTTL:      cfg.LeaseTTL,
		LookupService: cfg.LookupService,
		Shard:         &remote.ShardConfig{Map: m, Self: self},
		Journal:       cfg.Journal,
		RestartGrace:  cfg.RestartGrace,
	})
}

// Cluster is a full sharded directory deployment running in-process: one
// remote.Directory per shard map entry, all serving the same map.
type Cluster struct {
	m      proto.ShardMap
	cfg    Config
	shards []*remote.Directory
}

// StartCluster starts n directory shards on ephemeral loopback ports and
// builds the version-1 shard map from their real addresses. n = 1 yields
// a single-shard map, which still exercises the shard-mode protocol
// (useful as the baseline arm of scale experiments); use the plain
// directory constructors for a truly unsharded deployment.
func StartCluster(n int, cfg Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dirshard: cluster needs at least 1 shard, got %d", n)
	}
	lns := make([]net.Listener, 0, n)
	closeAll := func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}
	m := proto.ShardMap{Version: 1}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dirshard: shard %d listen: %w", i, err)
		}
		lns = append(lns, ln)
		m.Shards = append(m.Shards, ln.Addr().String())
	}
	c := &Cluster{m: m, cfg: cfg}
	for i, ln := range lns {
		d, err := remote.ListenDirectoryOnWith(ln, remote.DirectoryConfig{
			LeaseTTL:      cfg.LeaseTTL,
			LookupService: cfg.LookupService,
			Shard:         &remote.ShardConfig{Map: m, Self: i},
			Journal:       cfg.shardJournal(i),
			RestartGrace:  cfg.RestartGrace,
		})
		if err != nil {
			closeAll()
			for _, prev := range c.shards {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("dirshard: shard %d: %w", i, err)
		}
		c.shards = append(c.shards, d)
	}
	return c, nil
}

// N reports the number of shards.
func (c *Cluster) N() int { return len(c.shards) }

// Map returns the shard map the cluster serves.
func (c *Cluster) Map() proto.ShardMap { return c.m }

// Bootstrap returns the address clients and servers should be pointed at:
// shard 0. Any shard works — each serves the full map — but a fixed
// choice keeps experiments deterministic.
func (c *Cluster) Bootstrap() string { return c.m.Shards[0] }

// Shard returns shard i's directory, for tests that kill, interrogate, or
// instrument an individual shard.
func (c *Cluster) Shard(i int) *remote.Directory { return c.shards[i] }

// CrashShard simulates shard i dying mid-flight: the process goes away
// without flushing buffered journal records or closing its journal
// cleanly. Follow with RestartShard to model recovery. Only meaningful
// for durable clusters, but harmless otherwise.
func (c *Cluster) CrashShard(i int) error { return c.shards[i].Kill() }

// RestartShard brings shard i back on its original address with its
// original journal directory, replaying whatever the crash (or clean
// shutdown) left behind. The address was chosen by the OS at StartCluster
// time; rebinding it can briefly collide with TIME_WAIT or a lingering
// socket, so the listen is retried for ~2s before giving up.
func (c *Cluster) RestartShard(i int) error {
	addr := c.m.Shards[i]
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 40; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("dirshard: rebind shard %d on %s: %w", i, addr, err)
	}
	d, err := remote.ListenDirectoryOnWith(ln, remote.DirectoryConfig{
		LeaseTTL:      c.cfg.LeaseTTL,
		LookupService: c.cfg.LookupService,
		Shard:         &remote.ShardConfig{Map: c.m, Self: i},
		Journal:       c.cfg.shardJournal(i),
		RestartGrace:  c.cfg.RestartGrace,
	})
	if err != nil {
		_ = ln.Close()
		return fmt.Errorf("dirshard: restart shard %d: %w", i, err)
	}
	c.shards[i] = d
	return nil
}

// SetMetrics registers shard i's gms_dir_* and gms_dirshard_* metrics on
// r (nil disables them). Each shard gets its own registry in a real
// deployment; passing distinct registries here models that.
func (c *Cluster) SetMetrics(i int, r *obs.Registry) { c.shards[i].SetMetrics(r) }

// Close shuts every shard down. Idempotent per shard; the first error
// wins.
func (c *Cluster) Close() error {
	var first error
	for _, d := range c.shards {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
