package dirshard

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/remote"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func pagePattern(page uint64) []byte {
	data := make([]byte, units.PageSize)
	for i := range data {
		data[i] = byte(page*131 + uint64(i)*7)
	}
	return data
}

// fetchMap asks the shard at addr for its map over a raw protocol
// connection, the way an external node would.
func fetchMap(t *testing.T, addr string) proto.ShardMap {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.NewWriter(conn).SendGetShardMap(); err != nil {
		t.Fatal(err)
	}
	f, err := proto.NewReader(conn).Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TShardMap {
		t.Fatalf("shard answered %v, want TShardMap", f.Type)
	}
	m, err := proto.DecodeShardMap(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStartClusterServesOneMap verifies every shard of a cluster serves
// the same version-1 map built from the shards' real listen addresses.
func TestStartClusterServesOneMap(t *testing.T) {
	c, err := StartCluster(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.Map()
	if m.Version != 1 || len(m.Shards) != 4 {
		t.Fatalf("cluster map = %+v, want version 1 with 4 shards", m)
	}
	if c.Bootstrap() != m.Shards[0] {
		t.Fatalf("Bootstrap = %q, want shard 0 %q", c.Bootstrap(), m.Shards[0])
	}
	for i := 0; i < c.N(); i++ {
		got := fetchMap(t, m.Shards[i])
		if got.Version != m.Version || len(got.Shards) != len(m.Shards) {
			t.Fatalf("shard %d serves map %+v, want %+v", i, got, m)
		}
		for j := range m.Shards {
			if got.Shards[j] != m.Shards[j] {
				t.Fatalf("shard %d map entry %d = %q, want %q", i, j, got.Shards[j], m.Shards[j])
			}
		}
	}
}

// TestClusterEndToEnd runs the full data path against a 4-shard cluster:
// a server registers through the bootstrap, a client faults every page.
// Per-shard metrics must show the lookups landing on every shard.
func TestClusterEndToEnd(t *testing.T) {
	const npages = 48
	c, err := StartCluster(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	regs := make([]*obs.Registry, c.N())
	for i := range regs {
		regs[i] = obs.NewRegistry()
		c.SetMetrics(i, regs[i])
	}

	srv, err := remote.ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for p := uint64(0); p < npages; p++ {
		srv.Store(p, pagePattern(p))
	}
	if err := srv.RegisterWith(c.Bootstrap()); err != nil {
		t.Fatal(err)
	}

	cl, err := remote.Dial(remote.ClientConfig{
		Directory:  c.Bootstrap(),
		Policy:     proto.PolicyEager,
		CachePages: npages,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	buf := make([]byte, 128)
	for p := uint64(0); p < npages; p++ {
		if err := cl.Read(buf, p*uint64(units.PageSize)); err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		if !bytes.Equal(buf, pagePattern(p)[:128]) {
			t.Fatalf("page %d data mismatch", p)
		}
	}
	for i, r := range regs {
		var text bytes.Buffer
		if err := r.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		served := false
		for _, line := range strings.Split(text.String(), "\n") {
			var v int64
			if n, _ := fmt.Sscanf(line, "gms_dir_lookups_total %d", &v); n == 1 && v > 0 {
				served = true
			}
		}
		if !served {
			t.Fatalf("shard %d served no lookups; npages=%d should spread across 4 shards", i, npages)
		}
	}
}

// TestShardFailureIsScoped kills one shard and verifies the blast radius:
// pages owned by the dead shard become unavailable, pages owned by the
// survivors keep working.
func TestShardFailureIsScoped(t *testing.T) {
	const npages = 48
	c, err := StartCluster(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := remote.ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for p := uint64(0); p < npages; p++ {
		srv.Store(p, pagePattern(p))
	}
	if err := srv.RegisterWith(c.Bootstrap()); err != nil {
		t.Fatal(err)
	}
	cl, err := remote.Dial(remote.ClientConfig{
		Directory:      c.Bootstrap(),
		Policy:         proto.PolicyEager,
		CachePages:     npages,
		MaxRetries:     1,
		RetryBackoff:   time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Kill shard 2 (not the bootstrap — the client dialed it already).
	ring := proto.NewRing(c.Map())
	if err := c.Shard(2).Close(); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 16)
	okPages, deadPages := 0, 0
	for p := uint64(0); p < npages; p++ {
		err := cl.Read(buf, p*uint64(units.PageSize))
		if ring.Owner(p) == 2 {
			deadPages++
			if err == nil {
				t.Fatalf("page %d owned by dead shard 2 read successfully", p)
			}
			if !errors.Is(err, remote.ErrPageUnavailable) {
				t.Fatalf("page %d: error %v, want ErrPageUnavailable", p, err)
			}
		} else {
			okPages++
			if err != nil {
				t.Fatalf("page %d owned by live shard %d failed: %v", p, ring.Owner(p), err)
			}
		}
	}
	if okPages == 0 || deadPages == 0 {
		t.Fatalf("degenerate split: ok=%d dead=%d — pick more pages", okPages, deadPages)
	}
}

// TestStartShardValidation pins the constructor's error cases.
func TestStartShardValidation(t *testing.T) {
	if _, err := StartShard("127.0.0.1:0", proto.ShardMap{}, 0, Config{}); err == nil {
		t.Fatal("empty map accepted")
	}
	m := proto.ShardMap{Version: 1, Shards: []string{"127.0.0.1:1", "127.0.0.1:2"}}
	if _, err := StartShard("127.0.0.1:0", m, 2, Config{}); err == nil {
		t.Fatal("out-of-range self accepted")
	}
	if _, err := StartCluster(0, Config{}); err == nil {
		t.Fatal("zero-shard cluster accepted")
	}
	d, err := StartShard("127.0.0.1:0", m, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got := d.ShardMap()
	if got.Version != 1 || len(got.Shards) != 2 {
		t.Fatalf("shard serves map %+v, want %+v", got, m)
	}
}

// TestShardJournalRecovery crashes one shard of a durable cluster and
// restarts it in place: registrations owned by that shard must come back
// from its own journal, without the server re-registering and without
// disturbing the other shards' state.
func TestShardJournalRecovery(t *testing.T) {
	const npages = 32
	c, err := StartCluster(3, Config{
		LeaseTTL: time.Minute,
		Journal:  &dirlog.Options{Dir: t.TempDir(), Fsync: dirlog.FsyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srv, err := remote.ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for p := uint64(0); p < npages; p++ {
		srv.Store(p, pagePattern(p))
	}
	if err := srv.RegisterWith(c.Bootstrap()); err != nil {
		t.Fatal(err)
	}

	// Crash shard 1 mid-flight and bring it back from its journal. The
	// server's heartbeats are off (default interval is long), so any
	// recovered entry must come from disk, not a re-registration.
	if err := c.CrashShard(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	if !c.Shard(1).JournalInfo().Recovered {
		t.Fatal("restarted shard did not recover from its journal")
	}
	ring := proto.NewRing(c.Map())
	owned := 0
	for p := uint64(0); p < npages; p++ {
		if ring.Owner(p) != 1 {
			continue
		}
		owned++
		if got, ok := c.Shard(1).Lookup(p); !ok || got != srv.Addr() {
			t.Fatalf("shard 1 lost page %d through the crash: Lookup = %q,%v", p, got, ok)
		}
	}
	if owned == 0 {
		t.Fatalf("no pages of %d hashed to shard 1; grow npages", npages)
	}
	// The whole data path works against the recovered shard.
	cl, err := remote.Dial(remote.ClientConfig{Directory: c.Bootstrap(), CachePages: npages})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	buf := make([]byte, 64)
	for p := uint64(0); p < npages; p++ {
		if err := cl.Read(buf, p*uint64(units.PageSize)); err != nil {
			t.Fatalf("read page %d after shard recovery: %v", p, err)
		}
	}
}

// TestShardJournalIdentityEnforced proves a shard refuses a journal
// written by a different shard: swapped data directories must fail
// loudly, not serve another shard's pages.
func TestShardJournalIdentityEnforced(t *testing.T) {
	root := t.TempDir()
	c, err := StartCluster(2, Config{
		LeaseTTL: time.Minute,
		Journal:  &dirlog.Options{Dir: root, Fsync: dirlog.FsyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.Map()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Point shard 1's identity at shard 0's journal directory.
	_, err = StartShard("127.0.0.1:0", m, 1, Config{
		Journal: &dirlog.Options{Dir: filepath.Join(root, "shard-000"), Fsync: dirlog.FsyncAlways},
	})
	if err == nil {
		t.Fatal("shard 1 accepted shard 0's journal")
	}
	if !strings.Contains(err.Error(), "belongs to shard 0") {
		t.Fatalf("error %q does not name the journal's true owner", err)
	}
}
