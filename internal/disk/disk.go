// Package disk models the magnetic disk subsystem that serves page faults
// when there is no network memory (the paper's disk_8192 baseline and the
// disk curve of Figure 1).
//
// The model is a classic seek + rotation + media-transfer decomposition.
// Sequential accesses skip the seek and most rotational delay, which yields
// the paper's observed 4–14 ms range ("an average local disk access takes
// 4 to 14 ms on the same system, depending on the nature of the access -
// sequential or random").
package disk

import "github.com/gms-sim/gmsubpage/internal/units"

// Params describes a disk plus its software path.
type Params struct {
	Name string

	// Overhead is the fixed software cost of a disk request: fault
	// handling, file system, driver, interrupt.
	Overhead units.Nanos

	// AvgSeek is the average seek time for a random access.
	AvgSeek units.Nanos

	// AvgRotation is the average rotational delay for a random access
	// (half a revolution).
	AvgRotation units.Nanos

	// TrackSkip is the small head-settle cost charged for a sequential
	// access in place of seek + rotation.
	TrackSkip units.Nanos

	// PerKiB is the media transfer time per KiB.
	PerKiB units.Nanos
}

// Default returns parameters representative of the paper's mid-90s
// workstation disk: roughly 9 ms average random service time for an 8 KB
// page and about 4 ms sequential.
func Default() *Params {
	return &Params{
		Name:        "disk",
		Overhead:    units.FromMs(1.0),
		AvgSeek:     units.FromMs(5.2),
		AvgRotation: units.FromMs(2.0), // 5.4k rpm: half revolution
		TrackSkip:   units.FromMs(2.2),
		PerKiB:      units.FromMs(0.10), // ~10 MB/s media rate
	}
}

// RandomLatency returns the service time for a random access of n bytes.
func (p *Params) RandomLatency(n int) units.Nanos {
	return p.Overhead + p.AvgSeek + p.AvgRotation + p.transfer(n)
}

// SequentialLatency returns the service time for an access that follows the
// previous one on disk.
func (p *Params) SequentialLatency(n int) units.Nanos {
	return p.Overhead + p.TrackSkip + p.transfer(n)
}

func (p *Params) transfer(n int) units.Nanos {
	if n < 0 {
		n = 0
	}
	return units.Nanos(int64(p.PerKiB) * int64(n) / units.KiB)
}

// nearbyWindow is how many pages of distance still count as a short head
// movement rather than a full random seek: VM backing store is clustered
// and the paging path does cluster read-ahead, so faults in roughly
// ascending order land on nearby disk blocks.
const nearbyWindow = 12

// trackedStreams is how many concurrent sequential streams the model
// recognizes: real paging I/O interleaves reads of several files/segments,
// each individually sequential, and per-file read-ahead keeps each stream
// cheap.
const trackedStreams = 4

// Tracker serves a stream of page accesses and charges sequential or random
// latency depending on whether the accessed page is near a recently
// accessed one. The zero value treats the first access as random.
type Tracker struct {
	p      *Params
	recent [trackedStreams]int64 // last position of each recognized stream
	used   int
	next   int // round-robin replacement cursor
}

// NewTracker returns a Tracker over the given disk.
func NewTracker(p *Params) *Tracker { return &Tracker{p: p} }

// Access returns the latency to read n bytes at the given page number.
func (t *Tracker) Access(page int64, n int) units.Nanos {
	for i := 0; i < t.used; i++ {
		d := page - t.recent[i]
		if d < 0 {
			d = -d
		}
		if d <= nearbyWindow {
			t.recent[i] = page // the stream advances
			return t.p.SequentialLatency(n)
		}
	}
	// A new stream: replace the oldest tracked one.
	if t.used < trackedStreams {
		t.recent[t.used] = page
		t.used++
	} else {
		t.recent[t.next] = page
		t.next = (t.next + 1) % trackedStreams
	}
	return t.p.RandomLatency(n)
}
