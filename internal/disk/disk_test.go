package disk

import (
	"testing"

	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func TestPaperLatencyRange(t *testing.T) {
	// Paper: "an average local disk access takes 4 to 14 ms ... depending
	// on the nature of the access - sequential or random."
	p := Default()
	seq := p.SequentialLatency(units.PageSize).Ms()
	rnd := p.RandomLatency(units.PageSize).Ms()
	if seq < 3 || seq > 6 {
		t.Errorf("sequential 8K latency = %.2f ms, want ~4 ms", seq)
	}
	if rnd < 7 || rnd > 14 {
		t.Errorf("random 8K latency = %.2f ms, want ~9 ms", rnd)
	}
	if seq >= rnd {
		t.Errorf("sequential %.2f ms should beat random %.2f ms", seq, rnd)
	}
}

func TestHighInterceptVsNetworks(t *testing.T) {
	// Figure 1: "the disk subsystem exhibits high latency even for a
	// 'zero-length' page"; networks have much lower initial overhead.
	d := Default()
	atm := netmodel.AN2ATM()
	eth := netmodel.Ethernet10()
	if d.RandomLatency(0) < 4*atm.FetchLatency(0) {
		t.Errorf("disk zero-length latency %.2f ms should dwarf ATM %.2f ms",
			d.RandomLatency(0).Ms(), atm.FetchLatency(0).Ms())
	}
	// Even Ethernet beats disk for very small pages...
	if eth.FetchLatency(256) >= d.RandomLatency(256) {
		t.Errorf("Ethernet 256B %.2f ms should beat disk %.2f ms",
			eth.FetchLatency(256).Ms(), d.RandomLatency(256).Ms())
	}
	// ...while loaded Ethernet is much worse than disk for full pages.
	loaded := netmodel.LoadedEthernet10()
	if loaded.FetchLatency(units.PageSize) <= d.RandomLatency(units.PageSize) {
		t.Errorf("loaded Ethernet 8K %.2f ms should exceed disk %.2f ms",
			loaded.FetchLatency(units.PageSize).Ms(), d.RandomLatency(units.PageSize).Ms())
	}
}

func TestLatencyMonotonicInSize(t *testing.T) {
	p := Default()
	prev := units.Nanos(-1)
	for n := 0; n <= 64*units.KiB; n += 4 * units.KiB {
		l := p.RandomLatency(n)
		if l <= prev {
			t.Fatalf("latency not increasing at %d bytes", n)
		}
		prev = l
	}
}

func TestTrackerSequentialDetection(t *testing.T) {
	tr := NewTracker(Default())
	first := tr.Access(100, units.PageSize)
	next := tr.Access(101, units.PageSize)
	same := tr.Access(105, units.PageSize) // within the cluster window
	if first != Default().RandomLatency(units.PageSize) {
		t.Errorf("first access should be random")
	}
	if next != Default().SequentialLatency(units.PageSize) {
		t.Errorf("adjacent access should be sequential")
	}
	if same != Default().SequentialLatency(units.PageSize) {
		t.Errorf("near access should be sequential")
	}
	if far := tr.Access(500, units.PageSize); far != Default().RandomLatency(units.PageSize) {
		t.Errorf("distant access should be random")
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	p := Default()
	if p.RandomLatency(-100) != p.RandomLatency(0) {
		t.Error("negative size should clamp to zero transfer")
	}
}
