package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// SmallPage regenerates the §2.1 comparison the paper ran before dropping
// small pages and lazy subpage fetch: shrinking the VM page to the subpage
// size reduces TLB coverage (more misses) and pays a full request
// round-trip per small page, while eager fullpage fetch keeps 8K TLB
// coverage and fetches the remainder asynchronously.
func SmallPage(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	t := &stats.Table{
		Title: "Ablation: small pages / lazy subpage fetch vs. eager (Modula-3, 1/2-mem, 1K)",
		Header: []string{"config", "runtime(ms)", "faults", "subpage-faults",
			"tlb-misses", "tlb-cost(ms)", "bytes-moved(MB)"},
	}
	common := sim.Config{App: app, MemFraction: 0.5, SubpageSize: 1024}

	fullpage := common
	fullpage.Policy = core.FullPage{}
	fullpage.TLBEntries = memmodel.DefaultTLBEntries
	fullpage.TLBPageSize = units.PageSize

	eager := common
	eager.Policy = core.Eager{}
	eager.TLBEntries = memmodel.DefaultTLBEntries
	eager.TLBPageSize = units.PageSize

	// "Small pages": the VM page is the subpage. Lazy fetch models the
	// one-request-per-small-page cost; the TLB maps 1K pages, so its
	// coverage drops 8x.
	small := common
	small.Policy = core.Lazy{}
	small.TLBEntries = memmodel.DefaultTLBEntries
	small.TLBPageSize = 1024

	cases := []struct {
		name string
		cfg  sim.Config
	}{{"p_8192", fullpage}, {"eager_1024", eager}, {"smallpage_1024", small}}
	cells := par.Map(cfg.Pool, len(cases), func(i int) *sim.Result {
		return sim.Run(cases[i].cfg)
	})
	for ci, c := range cases {
		r := cells[ci]
		t.AddRow(c.name, stats.F(r.RuntimeMs(), 0), fmt.Sprint(r.Faults),
			fmt.Sprint(r.SubpageFaults), fmt.Sprint(r.TLBMisses),
			stats.F(r.TLBTicks.Ms(), 1),
			stats.F(float64(r.BytesMoved)/(1<<20), 1))
	}
	return &Result{ID: "smallpage", Title: "Small pages lose", Tables: []*stats.Table{t},
		Notes: []string{
			"lazy/small pages pay a full request per touched subpage and 8x less TLB coverage",
			"paper §2.1: increased per-request overhead outweighs the locality advantage",
		}}
}

// PipeVariants regenerates the §4.3 exploration of alternative pipelining
// schemes: doubling the follow-on transfers, doubling the initial transfer
// (direction chosen by fault offset), and the software-delivery variant
// that models the AN2 prototype's per-interrupt cost.
func PipeVariants(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	res := &Result{ID: "pipevariants", Title: "Pipelining variants"}
	sizes := []int{1024, 512}
	policies := []core.Policy{
		core.Eager{},
		core.Pipelined{},
		core.Pipelined{DoubleFollowOn: true},
		core.Pipelined{Neighbors: 2},
		core.WideFault{},
		core.Pipelined{SoftwareDelivery: true},
	}
	// One cell per size × policy; the eager baseline of each size is its
	// own first cell (policies[0]), so no extra baseline run is needed.
	cells := par.Map(cfg.Pool, len(sizes)*len(policies), func(i int) *sim.Result {
		return run(app, 0.5, policies[i%len(policies)], sizes[i/len(policies)], false)
	})
	for si, s := range sizes {
		t := &stats.Table{
			Title:  fmt.Sprintf("§4.3 variants at %d-byte subpages (Modula-3, 1/2-mem)", s),
			Header: []string{"policy", "runtime(ms)", "sp_latency(ms)", "page_wait(ms)", "gain vs eager"},
		}
		eager := cells[si*len(policies)]
		for pi, p := range policies {
			r := cells[si*len(policies)+pi]
			name := p.Name()
			if pp, ok := p.(core.Pipelined); ok && pp.Neighbors == 2 {
				name = "pipelined-2n"
			}
			t.AddRow(name, stats.F(r.RuntimeMs(), 0),
				stats.F(r.SpLatency.Ms(), 0), stats.F(r.PageWait.Ms(), 0),
				stats.Pct(improvement(eager.Runtime, r.Runtime)))
		}
		res.Tables = append(res.Tables, t)
	}
	res.Notes = append(res.Notes,
		"paper: all §4.3 variants improved on the basic scheme by varying amounts",
		"software delivery (AN2 prototype) pays an interrupt per pipelined subpage: pipelining stops paying off")
	return res
}
