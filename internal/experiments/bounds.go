package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/analytic"
	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Bounds validates the simulator against the closed-form model the way
// §3.2 validates it against the prototype: for every application, the
// simulated eager runtime must fall between the analytic best case (all
// faults overlap fully) and worst case (every fault stalls for the rest of
// its page). The position inside that band is the achieved overlap, which
// should track each application's fault burstiness.
func Bounds(cfg Config) *Result {
	cfg = cfg.withDefaults()
	model := analytic.NewModel(nil, 1024)
	t := &stats.Table{
		Title: "Simulator vs. analytic bounds (1/2-mem, 1K eager)",
		Header: []string{"app", "faults", "best(ms)", "simulated(ms)", "worst(ms)",
			"achieved-overlap", "in-band"},
	}
	res := &Result{ID: "bounds", Title: "Analytic validation"}
	apps := trace.Apps(cfg.Scale)
	cells := par.Map(cfg.Pool, len(apps), func(i int) *sim.Result {
		return run(apps[i], 0.5, core.Eager{}, 1024, false)
	})
	for ai, app := range apps {
		r := cells[ai]
		w := analytic.Workload{ExecTicks: units.Ticks(r.Events), Faults: r.Faults}
		lo, hi := model.BestCase(w), model.WorstCase(w)
		// Congestion during bursts can push the simulated runtime
		// slightly past the idle-network worst case; 2% headroom.
		inBand := r.Runtime >= lo && r.Runtime <= hi+hi/50
		t.AddRow(app.Name, fmt.Sprint(r.Faults),
			stats.F(lo.Ms(), 0), stats.F(r.Runtime.Ms(), 0), stats.F(hi.Ms(), 0),
			stats.Pct(model.AchievedOverlap(w, r.Runtime)),
			fmt.Sprint(inBand))
		if !inBand {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"WARNING: %s simulated runtime escapes the analytic band", app.Name))
		}
	}
	res.Tables = []*stats.Table{t}
	res.Notes = append(res.Notes,
		"achieved overlap between 0 (all faults stall for the page) and 1 (perfect overlap)",
		"burstier applications achieve more overlap, as in Figures 9 and 10")
	return res
}
