package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
)

// Cluster extends the paper's single-faulting-node experiments to the full
// GMS scenario it sits inside: several active workstations, each running a
// memory-stressed workload, sharing a *finite* pool of idle-node memory
// with epoch-based global replacement. As active nodes are added, global
// memory fills, the epoch algorithm discards the globally-oldest pages,
// and refaults start going to disk — yet subpages keep their advantage at
// every load level.
func Cluster(cfg Config) *Result {
	cfg = cfg.withDefaults()
	t := &stats.Table{
		Title: "GMS cluster under load (per-node 1/2-mem, 1K subpages, epoch replacement)",
		Header: []string{"active", "policy", "makespan(ms)", "disk-faults",
			"discards", "global-hits", "epochs"},
	}
	// Each idle node donates memory roughly the size of one workload's
	// footprint: two active nodes fit comfortably, four overflow.
	app := trace.Modula3(cfg.Scale)
	donate := app.TotalPages
	for _, active := range []int{1, 2, 4} {
		apps := make([]*trace.App, active)
		for i := range apps {
			apps[i] = app
		}
		for _, pol := range []core.Policy{core.FullPage{}, core.Eager{}} {
			sub := 1024
			if pol.Name() == "fullpage" {
				sub = 8192
			}
			res := sim.RunCluster(sim.ClusterConfig{
				Apps:               apps,
				MemFraction:        0.5,
				Policy:             pol,
				SubpageSize:        sub,
				IdleNodes:          2,
				GlobalPagesPerIdle: donate,
				UseEpoch:           true,
			})
			t.AddRow(fmt.Sprint(active), pol.Name(),
				stats.F(res.TotalRuntime().Ms(), 0),
				fmt.Sprint(res.DiskFaults()),
				fmt.Sprint(res.Discards),
				fmt.Sprint(res.GlobalHits),
				fmt.Sprint(res.Epochs))
		}
	}
	return &Result{
		ID: "cluster", Title: "Multi-node global memory under load",
		Tables: []*stats.Table{t},
		Notes: []string{
			"finite global memory: adding active nodes forces discards and disk refaults",
			"eager subpage fetch keeps its advantage at every load level",
			"extension beyond the paper: its experiments assume one faulting node and idle servers",
		},
	}
}
