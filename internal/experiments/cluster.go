package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
)

// Cluster extends the paper's single-faulting-node experiments to the full
// GMS scenario it sits inside: several active workstations, each running a
// memory-stressed workload, sharing a *finite* pool of idle-node memory
// with epoch-based global replacement. As active nodes are added, global
// memory fills, the epoch algorithm discards the globally-oldest pages,
// and refaults start going to disk — yet subpages keep their advantage at
// every load level.
func Cluster(cfg Config) *Result {
	cfg = cfg.withDefaults()
	t := &stats.Table{
		Title: "GMS cluster under load (per-node 1/2-mem, 1K subpages, epoch replacement)",
		Header: []string{"active", "policy", "makespan(ms)", "disk-faults",
			"discards", "global-hits", "epochs"},
	}
	// Each idle node donates memory roughly the size of one workload's
	// footprint: two active nodes fit comfortably, four overflow.
	app := trace.Modula3(cfg.Scale)
	donate := app.TotalPages
	actives := []int{1, 2, 4}
	policies := []core.Policy{core.FullPage{}, core.Eager{}}
	// Each active × policy cell is one full multi-node simulation with its
	// own private global cache; they fan out independently.
	cells := par.Map(cfg.Pool, len(actives)*len(policies), func(i int) *sim.ClusterResult {
		active := actives[i/len(policies)]
		pol := policies[i%len(policies)]
		apps := make([]*trace.App, active)
		for j := range apps {
			apps[j] = app
		}
		sub := 1024
		if pol.Name() == "fullpage" {
			sub = 8192
		}
		return sim.RunCluster(sim.ClusterConfig{
			Apps:               apps,
			MemFraction:        0.5,
			Policy:             pol,
			SubpageSize:        sub,
			IdleNodes:          2,
			GlobalPagesPerIdle: donate,
			UseEpoch:           true,
		})
	})
	for i, res := range cells {
		t.AddRow(fmt.Sprint(actives[i/len(policies)]), policies[i%len(policies)].Name(),
			stats.F(res.TotalRuntime().Ms(), 0),
			fmt.Sprint(res.DiskFaults()),
			fmt.Sprint(res.Discards),
			fmt.Sprint(res.GlobalHits),
			fmt.Sprint(res.Epochs))
	}
	return &Result{
		ID: "cluster", Title: "Multi-node global memory under load",
		Tables: []*stats.Table{t},
		Notes: []string{
			"finite global memory: adding active nodes forces discards and disk refaults",
			"eager subpage fetch keeps its advantage at every load level",
			"extension beyond the paper: its experiments assume one faulting node and idle servers",
		},
	}
}
