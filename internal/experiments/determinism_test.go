package experiments

import (
	"strings"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/par"
)

// TestSameSeedSameOutput is the determinism regression test backing the
// simpurity lint check: running an experiment twice with an identical
// Config must produce byte-identical output. Any wall-clock read, global
// rand call, or map-iteration-ordered print in the model packages would
// show up here as a diff.
func TestSameSeedSameOutput(t *testing.T) {
	cfg := Config{Scale: 0.05}
	// fig7 exercises the synthetic trace generator and the fault engine;
	// cluster exercises the multi-node path; table2 the analytic model;
	// reliability exercises the node-failure schedule; timeline exercises
	// the fault tracer; prefetch exercises the stateful planner (a fresh
	// Prefetcher per cell, whose history feed must replay identically).
	for _, id := range []string{"fig7", "cluster", "table2", "reliability", "timeline", "prefetch"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			first := e.Run(cfg).String()
			second := e.Run(cfg).String()
			if first != second {
				t.Fatalf("experiment %q is nondeterministic across identical runs:\n--- first ---\n%s\n--- second ---\n%s",
					id, first, second)
			}
			if len(first) < 100 {
				t.Fatalf("suspiciously short output:\n%s", first)
			}
		})
	}
}

// TestParallelOutputMatchesSequential is the parallel-engine determinism
// guarantee: RunAll over the full registry must render byte-identical
// output on a width-1 pool and a width-8 pool. Cells are collected by
// index, so any diff here means a cell read state owned by another cell.
// This deliberately stays enabled under -short so `make race` sweeps the
// whole parallel fan-out (every experiment, every cell) at small scale.
func TestParallelOutputMatchesSequential(t *testing.T) {
	render := func(pool *par.Pool) string {
		var b strings.Builder
		for _, r := range RunAll(Config{Scale: 0.05, Pool: pool}) {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	seq := render(par.New(1))
	con := render(par.New(8))
	if seq != con {
		i := 0
		for i < len(seq) && i < len(con) && seq[i] == con[i] {
			i++
		}
		lo := i - 200
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("parallel output diverges from sequential at byte %d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			i, seq[lo:min(i+200, len(seq))], con[lo:min(i+200, len(con))])
	}
	if len(seq) < 1000 {
		t.Fatalf("suspiciously short RunAll output (%d bytes)", len(seq))
	}
}

// TestTraceArtifactsByteIdentical pins the tracer's determinism contract
// end to end: the exported Chrome trace and JSONL dump must be
// byte-identical across pool widths and across same-seed reruns. Each
// cell owns its SimTrace and exports render in fixed cell order with
// integer tick values, so any diff means wall-clock, randomness, or
// cross-cell state leaked into the tracer.
func TestTraceArtifactsByteIdentical(t *testing.T) {
	export := func(pool *par.Pool) (string, string) {
		chrome, jsonl, err := TraceArtifacts(Config{Scale: 0.05, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		return string(chrome), string(jsonl)
	}
	c1, j1 := export(par.New(1))
	c8, j8 := export(par.New(8))
	if c1 != c8 {
		t.Error("Chrome trace differs between pool widths 1 and 8")
	}
	if j1 != j8 {
		t.Error("JSONL trace differs between pool widths 1 and 8")
	}
	c1b, j1b := export(par.New(1))
	if c1 != c1b || j1 != j1b {
		t.Error("trace export differs across same-seed reruns")
	}
	if len(j1) < 100 || !strings.Contains(j1, `"node":"lazy_1024"`) {
		t.Fatalf("suspiciously thin JSONL export:\n%.400s", j1)
	}
	if !strings.Contains(c1, `"traceEvents"`) {
		t.Fatalf("Chrome export missing traceEvents:\n%.400s", c1)
	}
}
