package experiments

import "testing"

// TestSameSeedSameOutput is the determinism regression test backing the
// simpurity lint check: running an experiment twice with an identical
// Config must produce byte-identical output. Any wall-clock read, global
// rand call, or map-iteration-ordered print in the model packages would
// show up here as a diff.
func TestSameSeedSameOutput(t *testing.T) {
	cfg := Config{Scale: 0.05}
	// fig7 exercises the synthetic trace generator and the fault engine;
	// cluster exercises the multi-node path; table2 the analytic model.
	for _, id := range []string{"fig7", "cluster", "table2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			first := e.Run(cfg).String()
			second := e.Run(cfg).String()
			if first != second {
				t.Fatalf("experiment %q is nondeterministic across identical runs:\n--- first ---\n%s\n--- second ---\n%s",
					id, first, second)
			}
			if len(first) < 100 {
				t.Fatalf("suspiciously short output:\n%s", first)
			}
		})
	}
}
