package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/cachesim"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// EventTime reproduces the §3.2 methodology that sets the simulator's
// clock: replay each application trace through a model of the Alpha 250's
// cache hierarchy (16 KB direct-mapped L1, 2 MB L2, Table 1 cycle costs)
// and compute the average time per memory reference. The paper derived
// "about 12 nanoseconds, i.e., 83,000 events correspond to one millisecond
// of execution time", which is the units.EventNs constant every simulation
// uses.
func EventTime(cfg Config) *Result {
	cfg = cfg.withDefaults()
	t := &stats.Table{
		Title:  "Event-time derivation: average time per memory reference (Alpha 250 caches)",
		Header: []string{"app", "refs", "L1 miss", "L2 miss", "avg ns/ref"},
	}
	var sum stats.Summary
	apps := trace.Apps(cfg.Scale)
	// One cache-hierarchy replay per application, fanned out.
	replays := par.Map(cfg.Pool, len(apps), func(i int) *cachesim.Hierarchy {
		return cachesim.Replay(apps[i].NewReader())
	})
	for ai, app := range apps {
		h := replays[ai]
		ns := h.AvgNsPerAccess()
		sum.Add(ns)
		t.AddRow(app.Name, fmt.Sprint(h.Accesses()),
			stats.Pct(h.L1MissRate()), stats.Pct(h.L2MissRate()),
			stats.F(ns, 1))
	}
	return &Result{
		ID: "eventtime", Title: "Average time per simulation event",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("mean %.1f ns per reference; the paper derived ~%d ns (83,000 events/ms)",
				sum.Mean(), units.EventNs),
			"this constant converts network/disk latencies into simulator events",
		},
	}
}
