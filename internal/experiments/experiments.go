// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations its text describes. Each experiment is
// registered by ID (e.g. "table2", "fig5") and produces a Result whose
// String form is the data behind the corresponding paper artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Config controls an experiment run.
type Config struct {
	// Scale is the trace scale: 1.0 regenerates at the paper's full trace
	// lengths (minutes of CPU); the default 0.25 keeps every shape while
	// running in seconds.
	Scale float64

	// Pool fans the independent simulation cells of the sweep experiments
	// out to a bounded worker pool. nil (and a width-1 pool) run fully
	// sequentially; every cell writes only its own result slot, so the
	// rendered output is byte-identical at any width.
	Pool *par.Pool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	return c
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
	Text   string // preformatted extra output (timelines etc.)
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Result
}

// registry in presentation order.
var registry = []Experiment{
	{"fig1", "Latency vs. page size for disks and networks", Fig1},
	{"table1", "PALcode load/store emulation performance", Table1},
	{"table2", "Page-fault latencies for eager fullpage fetch", Table2},
	{"fig2", "Remote page fetch timelines", Fig2},
	{"fig3", "Subpage performance for 3 memory sizes (Modula-3)", Fig3},
	{"fig4", "Runtime decomposition at 1/2 memory (Modula-3)", Fig4},
	{"fig5", "Sorted per-fault waiting times", Fig5},
	{"fig6", "Temporal clustering of page faults (Modula-3)", Fig6},
	{"fig7", "Distance to next accessed subpage", Fig7},
	{"fig8", "Eager fullpage fetch vs. subpage pipelining", Fig8},
	{"fig9", "Speedups for all applications (1/2-mem, 1K subpages)", Fig9},
	{"fig10", "Fault clustering: gdb vs. Atom", Fig10},
	{"smallpage", "Ablation: small pages / lazy fetch lose", SmallPage},
	{"pipevariants", "Ablation: pipelining variants (§4.3)", PipeVariants},
	{"eventtime", "Methodology: average time per simulation event (§3.2)", EventTime},
	{"prefetch", "Extension: learned prefetching vs. the static pipeline (Leap)", Prefetch},
	{"cluster", "Extension: multi-node global memory under load", Cluster},
	{"reliability", "Extension: graceful degradation under donor-node failures", Reliability},
	{"timeline", "Observability: per-fault timeline traces", Timeline},
	{"bounds", "Validation: simulator vs. closed-form bounds", Bounds},
	{"future", "Extension: faster networks shrink the optimal subpage", Future},
	{"tlbcover", "Motivation: TLB coverage vs. page size (§1)", TLBCoverage},
}

// All returns every experiment in presentation order.
func All() []Experiment { return append([]Experiment(nil), registry...) }

// RunAll regenerates every registered experiment, fanning whole experiments
// (and, inside the sweeps, their individual cells) out to cfg.Pool. Results
// come back in registry order regardless of completion order, so the
// concatenated output is byte-identical to a sequential pass.
func RunAll(cfg Config) []*Result {
	return par.Map(cfg.Pool, len(registry), func(i int) *Result {
		return registry[i].Run(cfg)
	})
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Shared vocabulary.

var subpageSizes = []int{4096, 2048, 1024, 512, 256}

var memoryConfigs = []struct {
	name string
	frac float64
}{
	{"full-mem", 1},
	{"1/2-mem", 0.5},
	{"1/4-mem", 0.25},
}

// halfMemIdx indexes the 1/2-mem entry of memoryConfigs.
const halfMemIdx = 1

// run executes one simulation with common defaults.
func run(app *trace.App, frac float64, policy core.Policy, subpage int, track bool) *sim.Result {
	return sim.Run(sim.Config{
		App:           app,
		MemFraction:   frac,
		Policy:        policy,
		SubpageSize:   subpage,
		TrackPerFault: track,
	})
}

// runDisk executes the disk_8192 baseline.
func runDisk(app *trace.App, frac float64) *sim.Result {
	return sim.Run(sim.Config{
		App:         app,
		MemFraction: frac,
		Policy:      core.FullPage{},
		Backing:     sim.Disk,
	})
}

// improvement formats the reduction in execution time of b relative to a:
// (a-b)/a, the paper's "performance increase due to subpages".
func improvement(a, b units.Ticks) float64 {
	if a == 0 {
		return 0
	}
	return float64(a-b) / float64(a)
}

// burstiness computes the fraction of faults falling in the busiest tenth
// of the run, measured in simulation events as the paper's Figures 6 and
// 10 do. The run is split into 100 equal event windows and the 10 densest
// are summed, so multiple separated bursts all count: ~0.1 means perfectly
// smooth arrival, ~1.0 means all faults happen in bursts.
func burstiness(faultEvents []int64, totalEvents int64) float64 {
	if len(faultEvents) == 0 || totalEvents == 0 {
		return 0
	}
	const windows = 100
	counts := make([]int, windows)
	for _, fe := range faultEvents {
		w := int(fe * windows / (totalEvents + 1))
		if w >= windows {
			w = windows - 1
		}
		counts[w]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for _, c := range counts[:windows/10] {
		top += c
	}
	return float64(top) / float64(len(faultEvents))
}

// sortedDesc returns a descending copy of per-fault waits in milliseconds.
func sortedDesc(waits []units.Ticks) []float64 {
	out := make([]float64, len(waits))
	for i, w := range waits {
		out[i] = w.Ms()
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
