package experiments

import (
	"strings"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// testCfg runs the experiments on short traces; every paper shape
// asserted here also holds at larger scales (see the sim shape tests).
var testCfg = Config{Scale: 0.08}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs/All mismatch: %d vs %d", len(ids), len(All()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %q", id)
		}
		seen[id] = true
		e, ok := ByID(id)
		if !ok || e.ID != id || e.Run == nil || e.Title == "" {
			t.Fatalf("broken registration for %q", id)
		}
	}
	for _, want := range []string{"fig1", "table1", "table2", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "smallpage", "pipevariants"} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

// TestAllExperimentsRender executes every experiment end to end and checks
// each produces presentable output.
func TestAllExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(testCfg)
			if res.ID != e.ID {
				t.Fatalf("result id %q != %q", res.ID, e.ID)
			}
			out := res.String()
			if len(out) < 100 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if !strings.Contains(out, e.ID) {
				t.Fatalf("output does not name the experiment:\n%s", out)
			}
			if len(res.Tables) == 0 && res.Text == "" {
				t.Fatal("no tables or text produced")
			}
		})
	}
}

func TestTable2AgainstPaperColumns(t *testing.T) {
	out := Table2(testCfg).String()
	// The paper's measured values appear alongside the model's.
	for _, v := range []string{"0.45", "1.49", "0.94", "1.23", "fullpage"} {
		if !strings.Contains(out, v) {
			t.Errorf("Table2 missing %q:\n%s", v, out)
		}
	}
}

func TestFig2ShowsBothAnomalies(t *testing.T) {
	res := Fig2(testCfg)
	out := res.String()
	if !strings.Contains(out, "Srv-DMA") || !strings.Contains(out, "Wire") {
		t.Fatalf("timeline resources missing:\n%s", out)
	}
	// The text includes resume/complete milestones for all three cases.
	if strings.Count(out, "program resumes at") != 3 {
		t.Fatalf("expected 3 timelines:\n%s", out)
	}
}

func TestBurstinessMetric(t *testing.T) {
	// Perfectly smooth arrival: ~10%.
	var smooth []int64
	for i := int64(0); i < 100; i++ {
		smooth = append(smooth, i*1000)
	}
	if b := burstiness(smooth, 100_000); b < 0.08 || b > 0.15 {
		t.Errorf("smooth burstiness = %v, want ~0.1", b)
	}
	// One tight burst: ~1.0.
	var burst []int64
	for i := int64(0); i < 100; i++ {
		burst = append(burst, 50_000+i)
	}
	if b := burstiness(burst, 100_000); b < 0.95 {
		t.Errorf("burst burstiness = %v, want ~1", b)
	}
	// Two separated bursts still count fully (top-10-of-100 windows).
	var two []int64
	for i := int64(0); i < 50; i++ {
		two = append(two, 10_000+i)
	}
	for i := int64(0); i < 50; i++ {
		two = append(two, 90_000+i)
	}
	if b := burstiness(two, 100_000); b < 0.95 {
		t.Errorf("two-burst burstiness = %v, want ~1", b)
	}
	if burstiness(nil, 100) != 0 || burstiness(smooth, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestSegmentFractions(t *testing.T) {
	// A classic fig-5 curve: half best case at 0.55ms, half at the full
	// 1.4ms, descending order.
	var waits []float64
	for i := 0; i < 50; i++ {
		waits = append(waits, 1.4)
	}
	for i := 0; i < 50; i++ {
		waits = append(waits, 0.55)
	}
	best, worst := segmentFractions(waits)
	if best < 0.45 || best > 0.55 {
		t.Errorf("best = %v, want ~0.5", best)
	}
	if worst < 0.45 || worst > 0.55 {
		t.Errorf("worst = %v, want ~0.5", worst)
	}
	if b, w := segmentFractions(nil); b != 0 || w != 0 {
		t.Error("empty input should give zeros")
	}
}

func TestImprovement(t *testing.T) {
	if improvement(100, 80) != 0.2 {
		t.Errorf("improvement(100,80) = %v", improvement(100, 80))
	}
	if improvement(0, 10) != 0 {
		t.Error("zero baseline should give 0")
	}
	if improvement(100, 120) != -0.2 {
		t.Error("regressions should be negative")
	}
}

func TestSortedDesc(t *testing.T) {
	waits := []units.Ticks{
		units.FromMs(0.5).ToTicks(),
		units.FromMs(1.5).ToTicks(),
		units.FromMs(1.0).ToTicks(),
	}
	out := sortedDesc(waits)
	if len(out) != 3 || out[0] < out[1] || out[1] < out[2] {
		t.Fatalf("not descending: %v", out)
	}
	if out[0] < 1.49 || out[0] > 1.51 {
		t.Fatalf("wrong ms conversion: %v", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 0.25 {
		t.Fatalf("default scale = %v", cfg.Scale)
	}
	cfg = Config{Scale: 1}.withDefaults()
	if cfg.Scale != 1 {
		t.Fatal("explicit scale overridden")
	}
}
