package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Fig3 regenerates Figure 3: Modula-3 runtime under disk paging, full-page
// global memory, and eager fullpage fetch at every subpage size, for the
// three memory configurations. The 3 × (2 + sizes) independent cells fan
// out to cfg.Pool and are collected by index.
func Fig3(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	t := &stats.Table{
		Title: "Figure 3: Modula-3 runtime (ms) by configuration",
		Header: []string{"memory", "faults", "disk_8192", "p_8192",
			"sp_4096", "sp_2048", "sp_1024", "sp_512", "sp_256", "best-sp-gain"},
	}
	// Per memory config: cell 0 disk, cell 1 fullpage, cells 2.. the
	// eager subpage sizes.
	perRow := 2 + len(subpageSizes)
	cells := par.Map(cfg.Pool, len(memoryConfigs)*perRow, func(i int) *sim.Result {
		mc := memoryConfigs[i/perRow]
		switch j := i % perRow; j {
		case 0:
			return runDisk(app, mc.frac)
		case 1:
			return run(app, mc.frac, core.FullPage{}, units.PageSize, false)
		default:
			return run(app, mc.frac, core.Eager{}, subpageSizes[j-2], false)
		}
	})
	var notes []string
	for mi, mc := range memoryConfigs {
		row := cells[mi*perRow : (mi+1)*perRow]
		diskRes, full := row[0], row[1]
		cols := []string{mc.name, fmt.Sprint(full.Faults),
			stats.F(diskRes.RuntimeMs(), 0), stats.F(full.RuntimeMs(), 0)}
		best := full.Runtime
		for _, r := range row[2:] {
			cols = append(cols, stats.F(r.RuntimeMs(), 0))
			if r.Runtime < best {
				best = r.Runtime
			}
		}
		cols = append(cols, stats.Pct(improvement(full.Runtime, best)))
		t.AddRow(cols...)
		notes = append(notes, fmt.Sprintf("%s: global memory is %.1fx faster than disk",
			mc.name, float64(diskRes.Runtime)/float64(full.Runtime)))
	}
	notes = append(notes,
		"subpage benefit grows as the program's memory is stressed (paper: 16%->38% for 1K)")

	// Figure 3's bars, rendered for the 1/2-mem configuration — the same
	// cells as that row, so reuse them instead of re-simulating.
	half := cells[halfMemIdx*perRow : (halfMemIdx+1)*perRow]
	chart := &stats.BarChart{
		Title: "1/2-mem runtime (ms):", Unit: "ms",
	}
	chart.Add("disk_8192", half[0].RuntimeMs())
	chart.Add("p_8192", half[1].RuntimeMs())
	for si, s := range subpageSizes {
		chart.Add(fmt.Sprintf("sp_%d", s), half[2+si].RuntimeMs())
	}
	return &Result{ID: "fig3", Title: "Subpage performance for 3 memory sizes",
		Tables: []*stats.Table{t}, Notes: notes, Text: chart.String()}
}

// Fig4 regenerates Figure 4: the decomposition of Modula-3's 1/2-memory
// runtime into execution, first-subpage latency, and page wait.
func Fig4(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	t := &stats.Table{
		Title: "Figure 4: Modula-3 runtime split at 1/2 memory (eager fullpage fetch)",
		Header: []string{"config", "runtime(ms)", "exec", "sp_latency", "page_wait",
			"exec%", "sp%", "pw%"},
	}
	addRow := func(name string, r *sim.Result) {
		exec := units.Ticks(r.Events)
		t.AddRow(name,
			stats.F(r.RuntimeMs(), 0),
			stats.F(exec.Ms(), 0),
			stats.F(r.SpLatency.Ms(), 0),
			stats.F(r.PageWait.Ms(), 0),
			stats.Pct(float64(exec)/float64(r.Runtime)),
			stats.Pct(float64(r.SpLatency)/float64(r.Runtime)),
			stats.Pct(float64(r.PageWait)/float64(r.Runtime)))
	}
	// Cell 0 is the fullpage baseline, cells 1.. the eager subpage sizes.
	cells := par.Map(cfg.Pool, 1+len(subpageSizes), func(i int) *sim.Result {
		if i == 0 {
			return run(app, 0.5, core.FullPage{}, units.PageSize, false)
		}
		return run(app, 0.5, core.Eager{}, subpageSizes[i-1], false)
	})
	addRow("p_8192", cells[0])
	for si, s := range subpageSizes {
		addRow(fmt.Sprintf("sp_%d", s), cells[1+si])
	}
	return &Result{ID: "fig4", Title: "Runtime decomposition", Tables: []*stats.Table{t},
		Notes: []string{
			"sp_latency shrinks with subpage size while page_wait grows: the paper's central trade-off",
		}}
}

// Fig5 regenerates Figure 5: per-fault waiting times, sorted descending,
// for several subpage sizes. We report the curve at fixed fractional
// positions plus the best-case/worst-case segment sizes.
func Fig5(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	t := &stats.Table{
		Title: "Figure 5: Sorted per-fault waiting times (ms), Modula-3 1/2-mem",
		Header: []string{"config", "faults", "max", "p10", "p25", "p50", "p75", "p90", "min",
			"worst-case", "best-case"},
	}
	configs := []struct {
		name    string
		policy  core.Policy
		subpage int
	}{
		{"p_8192", core.FullPage{}, units.PageSize},
		{"sp_4096", core.Eager{}, 4096},
		{"sp_2048", core.Eager{}, 2048},
		{"sp_1024", core.Eager{}, 1024},
		{"sp_512", core.Eager{}, 512},
		{"sp_256", core.Eager{}, 256},
	}
	cells := par.Map(cfg.Pool, len(configs), func(i int) *sim.Result {
		return run(app, 0.5, configs[i].policy, configs[i].subpage, true)
	})
	sorted := make([][]float64, len(configs))
	for ci, c := range configs {
		waits := sortedDesc(cells[ci].PerFaultWait)
		sorted[ci] = waits
		if len(waits) == 0 {
			continue
		}
		at := func(frac float64) float64 {
			i := int(frac * float64(len(waits)-1))
			return waits[i]
		}
		best, worst := segmentFractions(waits)
		t.AddRow(c.name, fmt.Sprint(len(waits)),
			stats.F(at(0), 2), stats.F(at(0.10), 2), stats.F(at(0.25), 2),
			stats.F(at(0.50), 2), stats.F(at(0.75), 2), stats.F(at(0.90), 2),
			stats.F(at(1), 2),
			stats.Pct(worst), stats.Pct(best))
	}
	plot := &stats.LinePlot{
		Title:  "Sorted per-fault waiting times (faults sorted by wait, descending)",
		XLabel: "fault rank", YLabel: "wait (ms)",
		Height: 14,
	}
	// The plotted configs are a subset of the table's rows; reuse their
	// (identical) results instead of re-simulating.
	for _, ci := range []int{1, 3, 5} { // sp_4096, sp_1024, sp_256
		waits := sorted[ci]
		series := &stats.Series{Name: configs[ci].name}
		for i := 0; i < len(waits); i += maxDiv(len(waits), 60) {
			series.Add(float64(i), waits[i])
		}
		plot.Series = append(plot.Series, series)
	}
	return &Result{ID: "fig5", Title: "Sorted per-fault waiting times",
		Tables: []*stats.Table{t},
		Text:   plot.String(),
		Notes: []string{
			"each curve has a best-case plateau (waited only the subpage latency) and a worst-case plateau (stalled until the full page arrived)",
			"smaller subpages lower the best-case wait but shrink the best-case segment",
		}}
}

// maxDiv returns n/parts, at least 1 (a sampling stride).
func maxDiv(n, parts int) int {
	if parts <= 0 || n <= parts {
		return 1
	}
	return n / parts
}

// segmentFractions estimates the best-case and worst-case plateau sizes of
// a descending wait curve: the fraction of faults within 15% of the
// minimum (subpage-only) wait and the fraction at or above ~the
// rest-of-page arrival time.
func segmentFractions(waits []float64) (best, worst float64) {
	if len(waits) == 0 {
		return 0, 0
	}
	minWait := waits[len(waits)-1]
	fullArrival := 1.38 // ms, rest-of-page scale for comparison
	nBest, nWorst := 0, 0
	for _, w := range waits {
		if w <= minWait*1.15 {
			nBest++
		}
		if w >= fullArrival*0.85 {
			nWorst++
		}
	}
	return float64(nBest) / float64(len(waits)), float64(nWorst) / float64(len(waits))
}

// Fig6 regenerates Figure 6: the temporal clustering of page faults for
// Modula-3 — cumulative faults sampled across the run plus a burstiness
// metric.
func Fig6(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return faultClustering(cfg, "fig6", "Temporal clustering of page faults (Modula-3)",
		[]*trace.App{trace.Modula3(cfg.Scale)})
}

// Fig10 regenerates Figure 10: fault clustering for gdb (bursty) versus
// Atom (smooth).
func Fig10(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return faultClustering(cfg, "fig10", "Temporal clustering: gdb vs. Atom",
		[]*trace.App{trace.Gdb(cfg.Scale), trace.Atom(cfg.Scale)})
}

func faultClustering(cfg Config, id, title string, apps []*trace.App) *Result {
	res := &Result{ID: id, Title: title}
	plot := &stats.LinePlot{
		Title:  "Cumulative fault share vs. execution progress",
		XLabel: "% of run's events", YLabel: "% of faults",
		Height: 14,
	}
	cells := par.Map(cfg.Pool, len(apps), func(i int) *sim.Result {
		return run(apps[i], 0.5, core.Eager{}, 1024, true)
	})
	for ai, app := range apps {
		r := cells[ai]
		t := &stats.Table{
			Title:  fmt.Sprintf("%s: cumulative page faults vs. simulation events (1/2-mem)", app.Name),
			Header: []string{"events%", "events(M)", "faults", "faults%"},
		}
		n := len(r.FaultEvents)
		for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
			cut := int64(float64(r.Events) * frac)
			count := 0
			for _, fe := range r.FaultEvents {
				if fe <= cut {
					count++
				}
			}
			t.AddRow(stats.Pct(frac), stats.F(float64(cut)/1e6, 1), fmt.Sprint(count),
				stats.Pct(float64(count)/float64(max(1, n))))
		}
		res.Tables = append(res.Tables, t)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: %.0f%% of faults fall in the busiest tenth of the run's events",
			app.Name, burstiness(r.FaultEvents, r.Events)*100))

		series := &stats.Series{Name: app.Name}
		for i := 0; i < len(r.FaultEvents); i += maxDiv(len(r.FaultEvents), 60) {
			series.Add(float64(r.FaultEvents[i])/float64(r.Events)*100,
				float64(i+1)/float64(len(r.FaultEvents))*100)
		}
		plot.Series = append(plot.Series, series)
	}
	res.Text = plot.String()
	res.Notes = append(res.Notes,
		"I/O overlap happens during high-fault periods; burstier apps benefit more from eager fetch")
	return res
}

// Fig7 regenerates Figure 7: the distribution of distances from the
// faulted subpage to the next accessed subpage on the same page, for 2K
// and 1K subpages.
func Fig7(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	res := &Result{ID: "fig7", Title: "Distance to next accessed subpage"}
	sizes := []int{2048, 1024}
	cells := par.Map(cfg.Pool, len(sizes), func(i int) *sim.Result {
		return run(app, 0.5, core.Eager{}, sizes[i], true)
	})
	for si, s := range sizes {
		r := cells[si]
		t := &stats.Table{
			Title:  fmt.Sprintf("subpage size %d: next-access distance distribution", s),
			Header: []string{"distance", "share"},
		}
		h := &r.NextDistance
		for _, k := range h.Keys() {
			if h.Fraction(k) < 0.01 {
				continue
			}
			t.AddRow(fmt.Sprintf("%+d", k), stats.Pct(h.Fraction(k)))
		}
		res.Tables = append(res.Tables, t)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%d-byte subpages: +1 holds %.0f%% of next accesses (n=%d)",
			s, h.Fraction(1)*100, h.Total()))
	}
	res.Notes = append(res.Notes,
		"the +1 subpage dominates: pipelining sends it first, then -1, then the remainder")
	return res
}

// Fig8 regenerates Figure 8: eager fullpage fetch versus subpage
// pipelining for Modula-3 at 1/2 memory, across subpage sizes.
func Fig8(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	t := &stats.Table{
		Title: "Figure 8: Eager fullpage fetch vs. subpage pipelining (Modula-3, 1/2-mem)",
		Header: []string{"subpage", "eager(ms)", "pipe(ms)", "eager pw(ms)", "pipe pw(ms)",
			"pw reduction", "extra gain"},
	}
	// Two cells per subpage size: eager and pipelined.
	cells := par.Map(cfg.Pool, 2*len(subpageSizes), func(i int) *sim.Result {
		s := subpageSizes[i/2]
		if i%2 == 0 {
			return run(app, 0.5, core.Eager{}, s, false)
		}
		return run(app, 0.5, core.Pipelined{}, s, false)
	})
	for si, s := range subpageSizes {
		eager, pipe := cells[2*si], cells[2*si+1]
		t.AddRow(fmt.Sprint(s),
			stats.F(eager.RuntimeMs(), 0), stats.F(pipe.RuntimeMs(), 0),
			stats.F(eager.PageWait.Ms(), 0), stats.F(pipe.PageWait.Ms(), 0),
			stats.Pct(improvement(eager.PageWait, pipe.PageWait)),
			stats.Pct(improvement(eager.Runtime, pipe.Runtime)))
	}
	return &Result{ID: "fig8", Title: "Pipelining vs. eager", Tables: []*stats.Table{t},
		Notes: []string{
			"pipelining only reduces waiting after the first subpage (page_wait), not sp_latency",
			"paper: at 1K, pipelining cut page_wait ~42% and total runtime ~10%",
		}}
}

// Fig9 regenerates Figure 9: the reduction in execution time from eager
// fullpage fetch and subpage pipelining for all five applications at
// 1/2 memory with 1K subpages, plus the share of benefit from overlapped
// I/O the paper reports alongside it.
func Fig9(cfg Config) *Result {
	cfg = cfg.withDefaults()
	t := &stats.Table{
		Title: "Figure 9: Reduction in execution time (1/2-mem, 1K subpages)",
		Header: []string{"app", "faults", "p_8192(ms)", "eager(ms)", "pipe(ms)",
			"eager gain", "pipe gain", "io-overlap share"},
	}
	apps := trace.Apps(cfg.Scale)
	// Three cells per application: fullpage, eager, pipelined.
	cells := par.Map(cfg.Pool, 3*len(apps), func(i int) *sim.Result {
		app := apps[i/3]
		switch i % 3 {
		case 0:
			return run(app, 0.5, core.FullPage{}, units.PageSize, false)
		case 1:
			return run(app, 0.5, core.Eager{}, 1024, false)
		default:
			return run(app, 0.5, core.Pipelined{}, 1024, false)
		}
	})
	for ai, app := range apps {
		full, eager, pipe := cells[3*ai], cells[3*ai+1], cells[3*ai+2]
		t.AddRow(app.Name, fmt.Sprint(full.Faults),
			stats.F(full.RuntimeMs(), 0),
			stats.F(eager.RuntimeMs(), 0),
			stats.F(pipe.RuntimeMs(), 0),
			stats.Pct(improvement(full.Runtime, eager.Runtime)),
			stats.Pct(improvement(full.Runtime, pipe.Runtime)),
			stats.Pct(eager.IOOverlapShare))
	}
	return &Result{ID: "fig9", Title: "All-application speedups", Tables: []*stats.Table{t},
		Notes: []string{
			"paper: eager gains 20-44%, pipelining 30-54%; I/O-overlap share 53% (Atom) to 83% (gdb)",
		}}
}
