package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Future tests the paper's closing prediction: "while for current
// technological parameters our simulations indicate that the optimal
// subpage size is about 2K, we might expect that size to decrease in the
// future, particularly for subpage pipelining, as the ratio of network
// speed to memory speed increases." We scale the data-path rates (wire and
// DMA per-byte costs) up by 1x..16x while holding software costs and the
// event clock fixed, and report each generation's best subpage size.
func Future(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	t := &stats.Table{
		Title: "Optimal subpage size as networks outpace memory (Modula-3, 1/2-mem)",
		Header: []string{"net-speed", "policy", "sp_4096", "sp_2048", "sp_1024",
			"sp_512", "sp_256", "best"},
	}
	res := &Result{ID: "future", Title: "Faster networks shrink the optimal subpage"}

	speeds := []int{1, 4, 16}
	policies := []core.Policy{core.Eager{}, core.Pipelined{}}
	// Flatten the speed × policy × size grid into independent cells; each
	// builds its own scaled Params so nothing is shared across workers.
	perPol := len(subpageSizes)
	perSpeed := len(policies) * perPol
	cells := par.Map(cfg.Pool, len(speeds)*perSpeed, func(i int) *sim.Result {
		return sim.Run(sim.Config{
			App: app, MemFraction: 0.5,
			Policy:      policies[i%perSpeed/perPol],
			SubpageSize: subpageSizes[i%perPol],
			Net:         scaledNet(speeds[i/perSpeed]),
		})
	})
	var bestEager []int
	for si, speed := range speeds {
		for pi, pol := range policies {
			row := []string{fmt.Sprintf("%dx", speed), pol.Name()}
			bestSize, bestRt := 0, units.Ticks(1)<<62
			for zi, size := range subpageSizes {
				r := cells[si*perSpeed+pi*perPol+zi]
				row = append(row, stats.F(r.RuntimeMs(), 0))
				if r.Runtime < bestRt {
					bestSize, bestRt = size, r.Runtime
				}
			}
			row = append(row, fmt.Sprint(bestSize))
			t.AddRow(row...)
			if pol.Name() == "eager" {
				bestEager = append(bestEager, bestSize)
			}
		}
	}
	res.Tables = []*stats.Table{t}
	res.Notes = append(res.Notes,
		"software request/delivery costs held constant; wire and DMA per-byte rates scaled",
		"the optimum moves toward smaller subpages as transfers get cheaper, as the paper predicts")
	if len(bestEager) >= 2 && bestEager[len(bestEager)-1] > bestEager[0] {
		res.Notes = append(res.Notes, "WARNING: optimum did not shrink with network speed")
	}
	return res
}

// scaledNet divides the per-byte costs of the AN2 model by factor,
// modelling a future network/controller generation; fixed software costs
// stay put.
func scaledNet(factor int) *netmodel.Params {
	p := netmodel.AN2ATM()
	p.Name = fmt.Sprintf("an2-x%d", factor)
	f := units.Nanos(int64(factor))
	p.SrvDMA.PerKiB /= f
	p.Wire.PerKiB /= f
	p.ReqDMA.PerKiB /= f
	p.Deliver.PerKiB /= f
	return p
}

// TLBCoverage regenerates the §1 motivation for large pages: with a fixed
// 32-entry TLB, shrinking the page size shrinks coverage and raises the
// miss rate on the same reference stream — which is exactly why the paper
// keeps 8 KB VM pages and transfers subpages, instead of shrinking the
// page itself.
func TLBCoverage(cfg Config) *Result {
	cfg = cfg.withDefaults()
	app := trace.Modula3(cfg.Scale)
	t := &stats.Table{
		Title: "TLB coverage vs. page size (32-entry TLB, Modula-3 reference stream)",
		Header: []string{"page size", "coverage", "misses", "miss rate",
			"miss overhead(ms)"},
	}
	pageSizes := []int{1024, 2048, 4096, 8192, 16384, 65536}
	// Each page size replays the full reference stream through its own
	// TLB model: an independent cell.
	tlbs := par.Map(cfg.Pool, len(pageSizes), func(i int) *memmodel.TLB {
		tlb := memmodel.NewTLB(memmodel.DefaultTLBEntries, pageSizes[i])
		buf := make([]trace.Ref, 8192)
		rd := app.NewReader()
		for {
			n := rd.Read(buf)
			if n == 0 {
				break
			}
			for _, ref := range buf[:n] {
				tlb.Access(ref.Addr)
			}
		}
		return tlb
	})
	for i, pageSize := range pageSizes {
		tlb := tlbs[i]
		overhead := units.Nanos(tlb.Misses()) * memmodel.TLBMissCost
		t.AddRow(
			fmt.Sprint(pageSize),
			fmt.Sprintf("%dKB", tlb.Coverage()/1024),
			fmt.Sprint(tlb.Misses()),
			stats.Pct(tlb.MissRate()),
			stats.F(overhead.Ms(), 1))
	}
	return &Result{
		ID: "tlbcover", Title: "TLB coverage motivates big pages",
		Tables: []*stats.Table{t},
		Notes: []string{
			"shrinking pages 8x multiplies TLB misses; subpages keep 8KB coverage while transferring 1KB",
			"the paper cites this trend (Alpha 8KB-1MB, UltraSPARC 8KB-4MB, R10000 4KB-16MB pages)",
		},
	}
}
