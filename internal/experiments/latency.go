package experiments

import (
	"fmt"
	"strings"

	"github.com/gms-sim/gmsubpage/internal/disk"
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Fig1 regenerates Figure 1: transfer latency as a function of page size
// for a disk subsystem, a heavily-loaded 10 Mb/s Ethernet, a lightly-loaded
// Ethernet, and an ATM network.
func Fig1(cfg Config) *Result {
	t := &stats.Table{
		Title: "Figure 1: Latency (ms) vs. Page Size",
		Header: []string{"bytes", "disk(rand)", "disk(seq)",
			"enet-loaded", "enet", "atm"},
	}
	d := disk.Default()
	atm, eth, loaded := netmodel.AN2ATM(), netmodel.Ethernet10(), netmodel.LoadedEthernet10()
	for _, n := range []int{0, 256, 512, 1024, 2048, 4096, 8192, 16384} {
		t.AddRow(fmt.Sprint(n),
			stats.F(d.RandomLatency(n).Ms(), 2),
			stats.F(d.SequentialLatency(n).Ms(), 2),
			stats.F(loaded.FetchLatency(n).Ms(), 2),
			stats.F(eth.FetchLatency(n).Ms(), 2),
			stats.F(atm.FetchLatency(n).Ms(), 2))
	}
	return &Result{
		ID: "fig1", Title: "Latency vs. page size",
		Tables: []*stats.Table{t},
		Notes: []string{
			"disk has high latency even for zero-length transfers; networks have low initial overhead",
			"even loaded Ethernet beats disk for very small pages; loses badly for full pages",
		},
	}
}

// Table1 regenerates Table 1: the PALcode load/store emulation cost model.
func Table1(cfg Config) *Result {
	return &Result{
		ID: "table1", Title: "PALcode load/store emulation",
		Tables: []*stats.Table{memmodel.Alpha250().Table1()},
		Notes: []string{
			"a fast load is ~6.5x an L2 hit and ~1.6x faster than an L2 miss",
		},
	}
}

// Table2 regenerates Table 2: subpage and rest-of-page latencies for eager
// fullpage fetch, with the improvement-potential columns, against the
// paper's measured values.
func Table2(cfg Config) *Result {
	p := netmodel.AN2ATM()
	t := &stats.Table{
		Title: "Table 2: Page-fault Latencies for Eager-Fullpage Fetch",
		Header: []string{"subpage", "sub(ms)", "paper", "rest(ms)", "paper",
			"overlap-exec", "sender-pipe"},
	}
	paper := map[int][2]float64{
		256: {0.45, 1.49}, 512: {0.47, 1.46}, 1024: {0.52, 1.38},
		2048: {0.66, 1.25}, 4096: {0.94, 1.23}, units.PageSize: {1.48, 1.48},
	}
	for _, s := range []int{256, 512, 1024, 2048, 4096, units.PageSize} {
		sub, rest := p.EagerLatencies(s)
		oe, sp := p.OverlapPotential(s)
		name := fmt.Sprint(s)
		if s == units.PageSize {
			name = "fullpage"
		}
		t.AddRow(name,
			stats.F(sub.Ms(), 2), stats.F(paper[s][0], 2),
			stats.F(rest.Ms(), 2), stats.F(paper[s][1], 2),
			stats.Pct(oe), stats.Pct(sp))
	}
	return &Result{ID: "table2", Title: "Page-fault latencies", Tables: []*stats.Table{t}}
}

// Fig2 regenerates Figure 2: the remote page fetch timelines for a full 8K
// page and for 2K and 1K subpages under eager fullpage fetch.
func Fig2(cfg Config) *Result {
	p := netmodel.AN2ATM()
	var b strings.Builder
	cases := []struct {
		title string
		msgs  []netmodel.Message
	}{
		{"1K subpages, eager fullpage fetch", []netmodel.Message{
			{Bytes: 1024, Deliver: true}, {Bytes: 7168, Deliver: true}}},
		{"2K subpages, eager fullpage fetch", []netmodel.Message{
			{Bytes: 2048, Deliver: true}, {Bytes: 6144, Deliver: true}}},
		{"fullpage (8K)", []netmodel.Message{{Bytes: 8192, Deliver: true}}},
	}
	for _, c := range cases {
		spans := p.Timeline(c.msgs)
		b.WriteString(netmodel.RenderTimeline(c.title, spans, 76))
		arr := p.Transfer(0, nil, c.msgs)
		fmt.Fprintf(&b, "  program resumes at %.2f ms; page complete at %.2f ms\n\n",
			arr[0].At.Ms(), arr[len(arr)-1].At.Ms())
	}
	return &Result{
		ID: "fig2", Title: "Remote page fetch timelines", Text: b.String(),
		Notes: []string{
			"2K: application restarts in half the fullpage time AND the whole page arrives sooner",
			"1K: total completion is slightly later than 2K (the small first message leaves a wire gap)",
		},
	}
}
