package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// The prefetch experiment evaluates the Leap-style learned prefetcher
// (core.Prefetcher) against the paper's static pipelining on the five
// application traces plus a strided synthetic the fixed +1/−1 window
// cannot cover: a 2.5 KB-stride sweep, the access shape of a large-row
// array walk, whose next touch is +10 blocks away — outside every paper
// variant's pipeline window but exactly what a majority-trend detector
// recovers.

// prefetchSubpage is the evaluation subpage size: the paper's 1 KB sweet
// spot.
const prefetchSubpage = 1024

// stridedApp builds the strided synthetic: repeated passes over a region
// about twice the 1/2-mem memory size, touching one word every 2.5 KB.
// Every page visit faults (LRU scan pathology), then touches two or three
// more subpages at +10-block strides.
func stridedApp(scale float64) *trace.App {
	pages := int(320*scale + 0.5)
	if pages < 16 {
		pages = 16
	}
	region := trace.Region{Base: 0, Pages: pages}
	const stride = 2560 // 10 blocks: not a multiple of any subpage size
	passes := int64(8)
	refs := int64(region.Bytes()/stride) * passes
	return trace.NewApp("strided", 0x57f1, pages, func() []trace.Phase {
		return []trace.Phase{
			{Name: "sweep", Refs: refs, Pattern: &trace.Seq{Region: region, Stride: stride}},
		}
	})
}

// prefetchPolicies returns the per-cell policy constructors. The
// prefetcher is built fresh per cell: it is stateful, and sharing one
// across concurrent cells would race and break run-to-run determinism.
var prefetchPolicies = []struct {
	name string
	mk   func() core.Policy
}{
	{"pipelined", func() core.Policy { return core.Pipelined{} }},
	{"pipelined-double", func() core.Policy { return core.Pipelined{DoubleFollowOn: true} }},
	{"prefetch", func() core.Policy { return core.NewPrefetcher() }},
}

// prefetchWorkloads is the evaluation set: the paper's five applications
// plus the strided synthetic.
func prefetchWorkloads(scale float64) []*trace.App {
	return append(trace.Apps(scale), stridedApp(scale))
}

// prefetchCells runs the full workload x policy grid at 1/2 memory,
// returning results indexed [workload][policy].
func prefetchCells(cfg Config) ([]*trace.App, [][]*sim.Result) {
	apps := prefetchWorkloads(cfg.Scale)
	np := len(prefetchPolicies)
	flat := par.Map(cfg.Pool, len(apps)*np, func(i int) *sim.Result {
		return sim.Run(sim.Config{
			App:           apps[i/np],
			MemFraction:   0.5,
			Policy:        prefetchPolicies[i%np].mk(),
			SubpageSize:   prefetchSubpage,
			TrackPrefetch: true,
		})
	})
	grid := make([][]*sim.Result, len(apps))
	for i := range grid {
		grid[i] = flat[i*np : (i+1)*np]
	}
	return apps, grid
}

// stallMs is the total transfer-stall time: faulted-subpage latency plus
// page waits (disk wait is zero in these warm-cache runs).
func stallMs(r *sim.Result) float64 {
	return (r.SpLatency + r.PageWait).Ms()
}

// coverage is the fraction of follow-on demand (blocks demanded after
// each fault's own subpage) that prefetching covered: used prefetched
// blocks over used plus the blocks refetched by subpage faults.
func coverage(r *sim.Result) float64 {
	refetched := r.SubpageFaults * int64(r.Subpage/units.MinSubpage)
	if r.PrefetchUsed+refetched == 0 {
		return 0
	}
	return float64(r.PrefetchUsed) / float64(r.PrefetchUsed+refetched)
}

// accuracy is the fraction of speculatively moved blocks the program went
// on to touch.
func accuracy(r *sim.Result) float64 {
	if r.PrefetchIssued == 0 {
		return 0
	}
	return float64(r.PrefetchUsed) / float64(r.PrefetchIssued)
}

// Prefetch is the learned-prefetcher evaluation (see ROADMAP: "Learned
// prefetching beyond the paper's static pipeline").
func Prefetch(cfg Config) *Result {
	cfg = cfg.withDefaults()
	apps, grid := prefetchCells(cfg)

	perf := &stats.Table{
		Title: fmt.Sprintf("Runtime and stall: learned prefetch vs. static pipelining (1/2-mem, %dB subpages)", prefetchSubpage),
		Header: []string{"workload", "faults", "pipe(ms)", "pipe2x(ms)", "pref(ms)",
			"pipe stall", "pref stall", "Δruntime"},
	}
	diag := &stats.Table{
		Title: "Prefetch diagnostics (speculative blocks beyond each fault's subpage)",
		Header: []string{"workload", "policy", "issued", "used", "accuracy", "coverage",
			"spfaults", "MB moved"},
	}
	var notes []string
	worstName, worstDelta := "", -1.0
	for ai, app := range apps {
		pipe, pipe2, pref := grid[ai][0], grid[ai][1], grid[ai][2]
		perf.AddRow(app.Name, fmt.Sprint(pipe.Faults),
			stats.F(pipe.RuntimeMs(), 1),
			stats.F(pipe2.RuntimeMs(), 1),
			stats.F(pref.RuntimeMs(), 1),
			stats.F(stallMs(pipe), 1),
			stats.F(stallMs(pref), 1),
			stats.Pct(improvement(pipe.Runtime, pref.Runtime)))
		for pi, r := range grid[ai] {
			diag.AddRow(app.Name, prefetchPolicies[pi].name,
				fmt.Sprint(r.PrefetchIssued), fmt.Sprint(r.PrefetchUsed),
				stats.Pct(accuracy(r)), stats.Pct(coverage(r)),
				fmt.Sprint(r.SubpageFaults),
				stats.F(float64(r.BytesMoved)/(1<<20), 1))
		}
		delta := float64(pref.Runtime-pipe.Runtime) / float64(pipe.Runtime)
		if delta > worstDelta {
			worstDelta, worstName = delta, app.Name
		}
		if app.Name == "strided" {
			notes = append(notes, fmt.Sprintf(
				"strided: stride detector cuts stall %.1fms -> %.1fms and bytes %.1fMB -> %.1fMB vs pipelined",
				stallMs(pipe), stallMs(pref),
				float64(pipe.BytesMoved)/(1<<20), float64(pref.BytesMoved)/(1<<20)))
		}
	}
	notes = append(notes, fmt.Sprintf(
		"gate: worst runtime delta vs pipelined is %+.1f%% (%s); the detector must win on strided and never lose the +1-dominated traces",
		100*worstDelta, worstName))
	return &Result{ID: "prefetch", Title: "Learned prefetching vs. the static pipeline",
		Tables: []*stats.Table{perf, diag}, Notes: notes}
}

// PrefetchBenchSection is the `prefetch` section of BENCH_experiments.json:
// the per-workload coverage/accuracy/stall snapshot `make bench` tracks
// across PRs.
func PrefetchBenchSection(cfg Config) any {
	cfg = cfg.withDefaults()
	apps, grid := prefetchCells(cfg)
	type row struct {
		Workload    string  `json:"workload"`
		PipelinedMs float64 `json:"pipelined_ms"`
		PrefetchMs  float64 `json:"prefetch_ms"`
		PipeStallMs float64 `json:"pipelined_stall_ms"`
		PrefStallMs float64 `json:"prefetch_stall_ms"`
		Coverage    float64 `json:"coverage"`
		Accuracy    float64 `json:"accuracy"`
		MBSaved     float64 `json:"mb_saved_vs_pipelined"`
	}
	rows := make([]row, len(apps))
	for ai, app := range apps {
		pipe, pref := grid[ai][0], grid[ai][2]
		rows[ai] = row{
			Workload:    app.Name,
			PipelinedMs: pipe.RuntimeMs(),
			PrefetchMs:  pref.RuntimeMs(),
			PipeStallMs: stallMs(pipe),
			PrefStallMs: stallMs(pref),
			Coverage:    coverage(pref),
			Accuracy:    accuracy(pref),
			MBSaved:     float64(pipe.BytesMoved-pref.BytesMoved) / (1 << 20),
		}
	}
	return map[string]any{
		"scale":     cfg.Scale,
		"subpage":   prefetchSubpage,
		"workloads": rows,
	}
}
