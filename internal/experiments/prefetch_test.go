package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrefetchGate pins the prefetch experiment's acceptance shape at small
// scale: the stride detector must beat static pipelining on the strided
// synthetic (stall time and bytes moved) while never degrading the paper's
// +1-dominated application traces beyond noise. If a detector change trips
// this, it is either prefetching junk on the apps or has lost the stride.
func TestPrefetchGate(t *testing.T) {
	apps, grid := prefetchCells(Config{Scale: 0.05})
	var sawStrided bool
	for ai, app := range apps {
		pipe, pref := grid[ai][0], grid[ai][2]
		if app.Name == "strided" {
			sawStrided = true
			if stallMs(pref) >= stallMs(pipe) {
				t.Errorf("strided: prefetch stall %.1fms not better than pipelined %.1fms",
					stallMs(pref), stallMs(pipe))
			}
			if pref.BytesMoved >= pipe.BytesMoved {
				t.Errorf("strided: prefetch moved %d bytes, pipelined %d — no bandwidth win",
					pref.BytesMoved, pipe.BytesMoved)
			}
			if acc := accuracy(pref); acc <= accuracy(pipe) {
				t.Errorf("strided: prefetch accuracy %.3f not better than pipelined %.3f",
					acc, accuracy(pipe))
			}
			continue
		}
		// Application traces: the detector must fall back to (or match)
		// pipelined behaviour; allow 1% runtime noise from the occasional
		// confident-but-harmless plan.
		delta := float64(pref.Runtime-pipe.Runtime) / float64(pipe.Runtime)
		if delta > 0.01 {
			t.Errorf("%s: prefetch runtime %.1fms is %+.2f%% vs pipelined %.1fms — degrades the paper baseline",
				app.Name, pref.RuntimeMs(), 100*delta, pipe.RuntimeMs())
		}
	}
	if !sawStrided {
		t.Fatal("strided workload missing from prefetch grid")
	}
}

// TestPrefetchBenchSection sanity-checks the bench artifact emitter: it must
// marshal cleanly with one row per workload and the strided bandwidth win
// visible in the numbers.
func TestPrefetchBenchSection(t *testing.T) {
	raw, err := json.Marshal(PrefetchBenchSection(Config{Scale: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	var sec struct {
		Scale     float64 `json:"scale"`
		Subpage   int     `json:"subpage"`
		Workloads []struct {
			Workload string  `json:"workload"`
			MBSaved  float64 `json:"mb_saved_vs_pipelined"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(raw, &sec); err != nil {
		t.Fatalf("bench section does not round-trip: %v\n%s", err, raw)
	}
	if sec.Subpage != prefetchSubpage {
		t.Fatalf("subpage = %d, want %d", sec.Subpage, prefetchSubpage)
	}
	if len(sec.Workloads) != 6 {
		t.Fatalf("expected 6 workload rows (5 apps + strided), got %d:\n%s", len(sec.Workloads), raw)
	}
	for _, w := range sec.Workloads {
		if w.Workload == "strided" {
			if w.MBSaved <= 0 {
				t.Errorf("strided mb_saved_vs_pipelined = %.2f, want > 0", w.MBSaved)
			}
			return
		}
	}
	t.Fatalf("no strided row in bench section:\n%s", raw)
}

// TestPrefetchResultRenders guards the rendered artifact: both tables and the
// gate note must appear so `subpagesim -run prefetch` stays reviewable.
func TestPrefetchResultRenders(t *testing.T) {
	out := Prefetch(Config{Scale: 0.05}).String()
	for _, want := range []string{
		"Runtime and stall: learned prefetch",
		"Prefetch diagnostics",
		"strided",
		"note: gate: worst runtime delta vs pipelined",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered prefetch result missing %q:\n%s", want, out)
		}
	}
}
