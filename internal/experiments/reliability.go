package experiments

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Reliability measures graceful degradation when donor nodes fail: the
// paper's latency numbers assume idle nodes that stay up, but a global
// memory system must survive losing them. Each scenario kills (and
// sometimes rejoins) donors on a schedule derived from the healthy run's
// makespan; dropped pages refault from disk, so the cost of a failure
// shows up directly as disk faults and lost time. The schedule is part of
// the simulation input, so every cell is deterministic at any pool width.
func Reliability(cfg Config) *Result {
	cfg = cfg.withDefaults()

	app := trace.Modula3(cfg.Scale)
	base := func() sim.ClusterConfig {
		return sim.ClusterConfig{
			Apps:               []*trace.App{app, app},
			MemFraction:        0.5,
			Policy:             core.Eager{},
			SubpageSize:        1024,
			IdleNodes:          2,
			GlobalPagesPerIdle: app.TotalPages,
			UseEpoch:           true,
		}
	}

	// The failure times are fractions of the healthy makespan, so the
	// schedule scales with the trace instead of being hard-coded ticks.
	healthy := sim.RunCluster(base())
	mid := healthy.TotalRuntime() / 2
	quarter := healthy.TotalRuntime() / 4

	scenarios := []struct {
		name     string
		failures []sim.FailureEvent
	}{
		{"healthy", nil},
		{"1-donor-dies@50%", []sim.FailureEvent{{Node: 0, At: mid}}},
		{"1-donor-dies@25%+rejoins@50%", []sim.FailureEvent{{Node: 0, At: quarter, RejoinAt: mid}}},
		{"both-donors-die@50%", []sim.FailureEvent{{Node: 0, At: mid}, {Node: 1, At: mid}}},
		{"both-donors-die@0 (=all-disk)", []sim.FailureEvent{{Node: 0, At: 0}, {Node: 1, At: 0}}},
	}

	cells := par.Map(cfg.Pool, len(scenarios), func(i int) *sim.ClusterResult {
		if scenarios[i].failures == nil {
			return healthy // already run; keeps the table's baseline identical
		}
		c := base()
		c.NodeFailures = scenarios[i].failures
		return sim.RunCluster(c)
	})

	t := &stats.Table{
		Title: "Donor-node failures (2 active modula3 nodes, 2 donors, eager 1K)",
		Header: []string{"scenario", "makespan(ms)", "slowdown", "disk-faults",
			"dropped", "global-hits"},
	}
	for i, res := range cells {
		t.AddRow(scenarios[i].name,
			stats.F(res.TotalRuntime().Ms(), 0),
			stats.F(slowdown(healthy.TotalRuntime(), res.TotalRuntime()), 2)+"x",
			fmt.Sprint(res.DiskFaults()),
			fmt.Sprint(res.DroppedPages),
			fmt.Sprint(res.GlobalHits))
	}
	return &Result{
		ID: "reliability", Title: "Graceful degradation under donor-node failures",
		Tables: []*stats.Table{t},
		Notes: []string{
			"a dead donor's pages refault from disk; survivors keep serving the rest",
			"a rejoined donor absorbs later evictions and claws back most of the loss",
			"killing every donor at t=0 degrades to the all-disk baseline exactly",
			"extension beyond the paper: its idle nodes never fail",
		},
	}
}

// slowdown expresses b as a multiple of a (1.00x = no degradation).
func slowdown(a, b units.Ticks) float64 {
	if a == 0 {
		return 0
	}
	return float64(b) / float64(a)
}
