package experiments

import (
	"bytes"
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/par"
	"github.com/gms-sim/gmsubpage/internal/sim"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// The timeline experiment traces the 1/2-memory Modula-3 run under the
// paper's main policy points and summarizes the recorded fault anatomy:
// how many spans of each kind, how much of each fault's asynchronous
// window the program spent stalled versus overlapped with execution. The
// same cells back TraceArtifacts, which exports the raw spans for
// chrome://tracing.

// timelineCell is one traced configuration.
type timelineCell struct {
	name    string
	policy  core.Policy
	subpage int
	disk    bool
}

var timelineCells = []timelineCell{
	{"disk_8192", core.FullPage{}, units.PageSize, true},
	{"p_8192", core.FullPage{}, units.PageSize, false},
	{"eager_1024", core.Eager{}, 1024, false},
	{"lazy_1024", core.Lazy{}, 1024, false},
}

// runTimelineCells simulates every cell with a tracer attached, fanning
// the independent cells out to cfg.Pool. Each cell owns its SimTrace, so
// results and traces are byte-identical at any pool width.
func runTimelineCells(cfg Config) ([]*sim.Result, []*obs.SimTrace) {
	app := trace.Modula3(cfg.Scale)
	type cellOut struct {
		res *sim.Result
		tr  *obs.SimTrace
	}
	out := par.Map(cfg.Pool, len(timelineCells), func(i int) cellOut {
		c := timelineCells[i]
		tr := &obs.SimTrace{Node: c.name}
		sc := sim.Config{
			App:         app,
			MemFraction: 0.5,
			Policy:      c.policy,
			SubpageSize: c.subpage,
			Trace:       tr,
		}
		if c.disk {
			sc.Backing = sim.Disk
		}
		return cellOut{sim.Run(sc), tr}
	})
	results := make([]*sim.Result, len(out))
	traces := make([]*obs.SimTrace, len(out))
	for i, o := range out {
		results[i], traces[i] = o.res, o.tr
	}
	return results, traces
}

// Timeline summarizes the traced fault anatomy of the timeline cells.
func Timeline(cfg Config) *Result {
	cfg = cfg.withDefaults()
	results, traces := runTimelineCells(cfg)
	t := &stats.Table{
		Title: "Traced fault anatomy, Modula-3 at 1/2-mem",
		Header: []string{"config", "spans", "page", "subpage", "disk",
			"canceled", "stalls", "stall_ms", "overlap"},
	}
	var notes []string
	for i, tr := range traces {
		var page, subpage, diskN, canceled, nstalls int64
		var stallTicks, stalled, overlapped units.Ticks
		for _, f := range tr.Faults() {
			switch f.Kind {
			case obs.FaultPage:
				page++
			case obs.FaultSubpage:
				subpage++
			case obs.FaultDisk:
				diskN++
			}
			if f.Canceled {
				canceled++
			}
			nstalls += int64(len(f.Stalls))
			for _, s := range f.Stalls {
				stallTicks += s.To - s.From
			}
			stalled += f.Stalled
			overlapped += f.Overlapped
		}
		overlap := 0.0
		if stalled+overlapped > 0 {
			overlap = float64(overlapped) / float64(stalled+overlapped)
		}
		t.AddRow(timelineCells[i].name,
			fmt.Sprint(len(tr.Faults())),
			fmt.Sprint(page), fmt.Sprint(subpage), fmt.Sprint(diskN),
			fmt.Sprint(canceled), fmt.Sprint(nstalls),
			stats.F(stallTicks.Ms(), 1), stats.Pct(overlap))

		// Cross-check: the tracer is passive, so its span counts must
		// reproduce the simulator's own fault counters exactly.
		r := results[i]
		if want := r.RemoteFaults + r.SubpageFaults + r.DiskFaults; int64(len(tr.Faults())) != want {
			notes = append(notes, fmt.Sprintf(
				"%s: tracer recorded %d spans but the simulator counted %d faults",
				timelineCells[i].name, len(tr.Faults()), want))
		}
	}
	if len(notes) == 0 {
		notes = append(notes, "tracer span counts match the simulator's fault counters in every cell")
	}
	notes = append(notes,
		"export raw spans with `subpagesim -app modula3 -mem 0.5 -policy lazy -traceout trace.json`")
	return &Result{ID: "timeline",
		Title:  "Observability: per-fault timeline traces",
		Tables: []*stats.Table{t}, Notes: notes}
}

// TraceArtifacts runs the timeline cells and exports the recorded spans:
// a Chrome trace_event file (load in chrome://tracing or Perfetto) and a
// JSONL dump, one object per fault span. Same-seed calls return
// byte-identical buffers at any cfg.Pool width.
func TraceArtifacts(cfg Config) (chrome, jsonl []byte, err error) {
	cfg = cfg.withDefaults()
	_, traces := runTimelineCells(cfg)
	var cb, jb bytes.Buffer
	if err := obs.WriteChromeTrace(&cb, traces...); err != nil {
		return nil, nil, err
	}
	if err := obs.WriteJSONL(&jb, traces...); err != nil {
		return nil, nil, err
	}
	return cb.Bytes(), jb.Bytes(), nil
}
