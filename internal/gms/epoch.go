package gms

import (
	"sort"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/rng"
)

// This file implements the epoch-based global replacement algorithm of the
// underlying GMS system (Feeley et al., SOSP '95), which the subpage paper
// builds on. Time is divided into epochs; at each epoch boundary an
// initiator gathers every node's page-age summary and computes, for the
// coming epoch, the expected number of evictions M and per-node weights —
// the fraction of the globally-oldest M pages each node holds. During the
// epoch, putpage traffic is spread across nodes in proportion to those
// weights, so the cluster approximates global LRU without a directory
// lookup per eviction.

// EpochConfig shapes the replacement algorithm.
type EpochConfig struct {
	// EvictionsPerEpoch is M: how many putpages an epoch is sized for.
	EvictionsPerEpoch int
	// Seed makes weighted placement deterministic.
	Seed uint64
}

// DefaultEpochConfig mirrors the GMS paper's choice of sizing epochs to a
// few hundred replacements.
func DefaultEpochConfig() EpochConfig {
	return EpochConfig{EvictionsPerEpoch: 256, Seed: 0x9e37}
}

// EpochManager drives weighted putpage placement for a Cluster.
type EpochManager struct {
	cfg     EpochConfig
	cluster *Cluster
	rand    *rng.Rand

	weights   []float64 // per node, sums to 1
	remaining int       // putpages until the next epoch boundary

	// Stats.
	Epochs int64
}

// NewEpochManager wraps a cluster with epoch-based placement.
func NewEpochManager(cluster *Cluster, cfg EpochConfig) *EpochManager {
	if cfg.EvictionsPerEpoch <= 0 {
		cfg.EvictionsPerEpoch = DefaultEpochConfig().EvictionsPerEpoch
	}
	m := &EpochManager{
		cfg:     cfg,
		cluster: cluster,
		rand:    rng.New(cfg.Seed),
	}
	m.newEpoch()
	return m
}

// newEpoch recomputes weights from the cluster's age distribution: node i
// receives evictions in proportion to the share of the globally-oldest M
// pages it stores. A node holding none of the old pages receives none
// (its memory is "hot"); empty nodes split weight evenly so a cold
// cluster fills uniformly.
func (m *EpochManager) newEpoch() {
	m.Epochs++
	m.remaining = m.cfg.EvictionsPerEpoch
	nodes := m.cluster.cfg.Nodes
	m.weights = make([]float64, nodes)

	type aged struct {
		node  NodeID
		epoch int64
	}
	ages := make([]aged, 0, len(m.cluster.directory))
	for _, e := range m.cluster.directory {
		ages = append(ages, aged{e.node, e.epoch})
	}
	if len(ages) == 0 {
		// Empty directory: split weight evenly among the alive nodes (a
		// dead node cannot accept placements). With none alive the weights
		// stay zero; Place drops stores before consulting them.
		if m.cluster.aliveCount == 0 {
			return
		}
		for i := range m.weights {
			if m.cluster.alive[i] {
				m.weights[i] = 1 / float64(m.cluster.aliveCount)
			}
		}
		return
	}
	// Oldest first.
	sort.Slice(ages, func(i, j int) bool { return ages[i].epoch < ages[j].epoch })
	mOldest := m.cfg.EvictionsPerEpoch
	if mOldest > len(ages) {
		mOldest = len(ages)
	}
	for _, a := range ages[:mOldest] {
		m.weights[a.node] += 1 / float64(mOldest)
	}
}

// Weights returns the current epoch's placement weights (per node).
func (m *EpochManager) Weights() []float64 {
	return append([]float64(nil), m.weights...)
}

// Place performs a putpage using weighted placement, starting a new epoch
// when the current one's eviction budget is spent. It returns the chosen
// node.
func (m *EpochManager) Place(page memmodel.PageID) NodeID {
	c := m.cluster
	if _, ok := c.directory[page]; ok {
		panic("gms: epoch Place of page already in global memory")
	}
	if c.aliveCount == 0 {
		// Every donor is down: drop the store, like Cluster.Store.
		return 0
	}
	if m.remaining <= 0 {
		m.newEpoch()
	}
	m.remaining--

	node := m.pick()
	if !c.alive[node] {
		// The weights predate a failure in this epoch; place on the
		// least-loaded survivor until the next boundary recomputes them.
		node = c.leastLoaded()
	}
	if c.cfg.GlobalPagesPerNode > 0 && c.load[node] >= c.cfg.GlobalPagesPerNode {
		// The target is full: discard its oldest page (the weighted
		// choice said this node holds old pages).
		c.discardOldestOn(node)
	}
	c.clock++
	c.directory[page] = entry{node: node, epoch: c.clock}
	c.load[node]++
	c.Stores++
	return node
}

// pick draws a node from the weight distribution.
func (m *EpochManager) pick() NodeID {
	u := m.rand.Float64()
	acc := 0.0
	for i, w := range m.weights {
		acc += w
		if u <= acc && w > 0 {
			return NodeID(i)
		}
	}
	// Weights may not sum exactly to 1, or all mass may sit on full
	// nodes; fall back to the least-loaded node.
	return m.cluster.leastLoaded()
}

// discardOldestOn drops the oldest page stored on one node.
func (c *Cluster) discardOldestOn(node NodeID) {
	var victim memmodel.PageID
	var victimEpoch int64 = -1
	for p, e := range c.directory {
		if e.node != node {
			continue
		}
		if victimEpoch < 0 || e.epoch < victimEpoch {
			victim, victimEpoch = p, e.epoch
		}
	}
	if victimEpoch < 0 {
		return
	}
	delete(c.directory, victim)
	c.load[node]--
	c.Discards++
}
