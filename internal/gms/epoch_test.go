package gms

import (
	"math"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
)

func TestEpochEmptyClusterSplitsEvenly(t *testing.T) {
	c := NewCluster(Config{Nodes: 4})
	m := NewEpochManager(c, DefaultEpochConfig())
	w := m.Weights()
	for i, v := range w {
		if math.Abs(v-0.25) > 1e-9 {
			t.Fatalf("weight[%d] = %v, want 0.25", i, v)
		}
	}
}

func TestEpochWeightsTrackOldPages(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	// Node 0 gets old pages, node 1 recent ones.
	for p := memmodel.PageID(0); p < 100; p++ {
		c.clock++
		c.directory[p] = entry{node: 0, epoch: c.clock}
		c.load[0]++
	}
	for p := memmodel.PageID(100); p < 200; p++ {
		c.clock++
		c.directory[p] = entry{node: 1, epoch: c.clock}
		c.load[1]++
	}
	m := NewEpochManager(c, EpochConfig{EvictionsPerEpoch: 100, Seed: 1})
	w := m.Weights()
	// The 100 globally-oldest pages all live on node 0.
	if w[0] < 0.99 || w[1] > 0.01 {
		t.Fatalf("weights = %v, want ~[1 0]", w)
	}
}

func TestEpochPlaceFollowsWeights(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	for p := memmodel.PageID(0); p < 200; p++ {
		c.clock++
		c.directory[p] = entry{node: 0, epoch: c.clock}
		c.load[0]++
	}
	// All old pages on node 0: placements this epoch go there.
	m := NewEpochManager(c, EpochConfig{EvictionsPerEpoch: 64, Seed: 7})
	toZero := 0
	for p := memmodel.PageID(1000); p < 1064; p++ {
		if m.Place(p) == 0 {
			toZero++
		}
	}
	if toZero < 60 {
		t.Fatalf("%d/64 placements on node 0, want nearly all", toZero)
	}
}

func TestEpochRotatesAfterBudget(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	m := NewEpochManager(c, EpochConfig{EvictionsPerEpoch: 10, Seed: 3})
	start := m.Epochs
	for p := memmodel.PageID(0); p < 25; p++ {
		m.Place(p)
	}
	if m.Epochs <= start {
		t.Fatalf("epochs did not advance: %d", m.Epochs)
	}
	// 25 placements at budget 10: epoch boundary crossed twice.
	if got := m.Epochs - start; got != 2 {
		t.Fatalf("epoch advances = %d, want 2", got)
	}
}

func TestEpochPlaceRespectsCapacity(t *testing.T) {
	c := NewCluster(Config{Nodes: 2, GlobalPagesPerNode: 10})
	m := NewEpochManager(c, EpochConfig{EvictionsPerEpoch: 8, Seed: 5})
	for p := memmodel.PageID(0); p < 60; p++ {
		m.Place(p)
	}
	if c.Load(0) > 10 || c.Load(1) > 10 {
		t.Fatalf("capacity exceeded: %d/%d", c.Load(0), c.Load(1))
	}
	if c.Discards == 0 {
		t.Fatal("over-capacity placement should discard old pages")
	}
	if c.Size() != c.Load(0)+c.Load(1) {
		t.Fatal("directory inconsistent with loads")
	}
}

func TestEpochPlaceDuplicatePanics(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	m := NewEpochManager(c, DefaultEpochConfig())
	m.Place(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Place should panic")
		}
	}()
	m.Place(1)
}

func TestDiscardOldestOn(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	c.Warm([]memmodel.PageID{1, 2, 3, 4}) // round robin: 1,3 on node0; 2,4 on node1
	c.discardOldestOn(1)
	if _, ok := c.Lookup(2); ok {
		t.Fatal("oldest page on node 1 (page 2) should be gone")
	}
	if _, ok := c.Lookup(1); !ok {
		t.Fatal("node 0 pages should be untouched")
	}
	// Discarding on an empty node is a no-op.
	before := c.Discards
	c.discardOldestOn(1)
	c.discardOldestOn(1)
	if c.Discards != before+1 {
		t.Fatalf("Discards = %d, want %d", c.Discards, before+1)
	}
}
