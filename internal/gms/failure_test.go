package gms

import (
	"testing"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
)

func TestFailNodeDropsItsPages(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	c.Warm([]memmodel.PageID{1, 2, 3, 4}) // round-robin: node0={1,3}, node1={2,4}
	dropped := c.FailNode(0)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if c.DroppedPages != 2 {
		t.Fatalf("DroppedPages = %d, want 2", c.DroppedPages)
	}
	if c.Discards != 0 {
		t.Fatalf("Discards = %d, want 0: a crash is not a replacement decision", c.Discards)
	}
	if c.Load(0) != 0 {
		t.Fatalf("dead node load = %d, want 0", c.Load(0))
	}
	if c.AliveNodes() != 1 {
		t.Fatalf("AliveNodes = %d, want 1", c.AliveNodes())
	}
	// The dead node's pages are gone; the survivor's remain.
	for _, p := range []memmodel.PageID{1, 3} {
		if _, ok := c.Lookup(p); ok {
			t.Errorf("page %d should have vanished with node 0", p)
		}
	}
	for _, p := range []memmodel.PageID{2, 4} {
		if _, ok := c.Lookup(p); !ok {
			t.Errorf("page %d on the surviving node should remain", p)
		}
	}
}

func TestFailNodeIdempotent(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	c.Warm([]memmodel.PageID{1, 2})
	c.FailNode(1)
	if again := c.FailNode(1); again != 0 {
		t.Fatalf("second FailNode dropped %d pages, want 0", again)
	}
	if c.AliveNodes() != 1 {
		t.Fatalf("AliveNodes = %d, want 1", c.AliveNodes())
	}
}

func TestFailNodeOutOfRangePanics(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("FailNode(2) on a 2-node cluster should panic")
		}
	}()
	c.FailNode(2)
}

func TestStoreSkipsDeadNodes(t *testing.T) {
	c := NewCluster(Config{Nodes: 3})
	c.FailNode(1)
	for p := memmodel.PageID(0); p < 10; p++ {
		if n := c.Store(p); n == 1 {
			t.Fatalf("Store(%d) placed on dead node 1", p)
		}
	}
	if c.Load(1) != 0 {
		t.Fatalf("dead node load = %d, want 0", c.Load(1))
	}
}

func TestStoreWithAllNodesDeadIsLostUncounted(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	c.FailNode(0)
	c.FailNode(1)
	c.Store(42)
	if c.Stores != 0 || c.Discards != 0 {
		t.Fatalf("Stores/Discards = %d/%d, want 0/0 (all-disk baseline counts neither)", c.Stores, c.Discards)
	}
	if _, ok := c.Lookup(42); ok {
		t.Fatal("store with every donor down should be dropped")
	}
	// Fetch still misses normally.
	if _, ok := c.Fetch(42); ok {
		t.Fatal("fetch should miss")
	}
	if c.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", c.Misses)
	}
}

func TestWarmSkipsDeadNodes(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	c.FailNode(0)
	c.Warm([]memmodel.PageID{1, 2, 3})
	if c.Load(0) != 0 || c.Load(1) != 3 {
		t.Fatalf("loads = %d/%d, want 0/3", c.Load(0), c.Load(1))
	}
	c.FailNode(1)
	c.Warm([]memmodel.PageID{4})
	if _, ok := c.Lookup(4); ok {
		t.Fatal("warming an all-dead cluster should be a no-op")
	}
}

func TestReviveNodeRejoinsEmpty(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	c.Warm([]memmodel.PageID{1, 2, 3, 4})
	c.FailNode(0)
	c.ReviveNode(0)
	if c.AliveNodes() != 2 {
		t.Fatalf("AliveNodes = %d, want 2", c.AliveNodes())
	}
	if c.Load(0) != 0 {
		t.Fatalf("revived node load = %d, want 0 (rejoins with empty memory)", c.Load(0))
	}
	// It accepts placements again: least-loaded prefers the empty rejoiner.
	if n := c.Store(10); n != 0 {
		t.Fatalf("Store placed on node %d, want the empty rejoined node 0", n)
	}
	// Reviving a live node is a no-op.
	c.ReviveNode(0)
	if c.AliveNodes() != 2 {
		t.Fatalf("AliveNodes = %d, want 2", c.AliveNodes())
	}
}

func TestEpochPlaceAvoidsDeadNodes(t *testing.T) {
	ec := NewEpochCluster(Config{Nodes: 3}, DefaultEpochConfig())
	// Warm so the first epoch's weights put mass on every node, then kill
	// one mid-epoch: placements must land on survivors without waiting for
	// the next boundary.
	pages := make([]memmodel.PageID, 30)
	for i := range pages {
		pages[i] = memmodel.PageID(i)
	}
	ec.Warm(pages)
	ec.FailNode(2)
	for p := memmodel.PageID(100); p < 160; p++ {
		if n := ec.Store(p); n == 2 {
			t.Fatalf("epoch Place(%d) chose dead node 2", p)
		}
	}
	if ec.Load(2) != 0 {
		t.Fatalf("dead node load = %d, want 0", ec.Load(2))
	}
}

func TestEpochPlaceWithAllNodesDeadDropsStore(t *testing.T) {
	ec := NewEpochCluster(Config{Nodes: 2}, DefaultEpochConfig())
	epochsBefore := ec.Epoch.Epochs
	ec.FailNode(0)
	ec.FailNode(1)
	ec.Store(7)
	if ec.Stores != 0 {
		t.Fatalf("Stores = %d, want 0", ec.Stores)
	}
	if _, ok := ec.Lookup(7); ok {
		t.Fatal("store with every donor down should be dropped")
	}
	if ec.Epoch.Epochs != epochsBefore {
		t.Fatalf("dropped stores must not burn epochs: %d -> %d", epochsBefore, ec.Epoch.Epochs)
	}
}

func TestEpochNewEpochSplitsAmongAlive(t *testing.T) {
	c := NewCluster(Config{Nodes: 4})
	c.FailNode(3)
	m := NewEpochManager(c, DefaultEpochConfig())
	w := m.Weights()
	if w[3] != 0 {
		t.Fatalf("dead node weight = %v, want 0", w[3])
	}
	for i := 0; i < 3; i++ {
		if w[i] == 0 {
			t.Errorf("alive node %d weight = 0, want an even share", i)
		}
	}
}
