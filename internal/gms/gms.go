// Package gms implements the global memory management substrate the
// subpage system runs on (Feeley et al., SOSP '95): cluster nodes donate
// idle memory as a "global cache" that holds pages evicted from other
// nodes' local memories, with a global cache directory (GCD) that maps each
// page to the node storing it.
//
// The simulator uses this package to answer, for every fault, whether the
// page is in network memory (and on which node) or must come from disk, and
// to place evicted pages. Replacement across the cluster approximates
// global LRU: when global memory is full, the globally oldest page is
// discarded, as in GMS's epoch-based algorithm.
package gms

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
)

// NodeID identifies a cluster node. The faulting workstation is by
// convention not a member of the serving set.
type NodeID int

// Config shapes a cluster.
type Config struct {
	// Nodes is the number of idle nodes donating memory.
	Nodes int
	// GlobalPagesPerNode is each node's donated capacity in pages;
	// 0 means unbounded (the paper's warm-cache assumption: network
	// memory always has room).
	GlobalPagesPerNode int
}

// DefaultConfig matches the paper's environment: a handful of idle
// workstations with ample free memory.
func DefaultConfig() Config { return Config{Nodes: 8, GlobalPagesPerNode: 0} }

// entry records where a page lives and when it entered global memory.
type entry struct {
	node  NodeID
	epoch int64
}

// Cluster is the global memory: a directory plus per-node occupancy.
type Cluster struct {
	cfg       Config
	directory map[memmodel.PageID]entry
	load      []int // pages stored per node
	clock     int64

	// Node liveness: a failed node's donated pages vanish (refaults go to
	// disk) and placement skips it until it rejoins. With every node dead
	// the cluster degrades to the all-disk baseline: fetches miss and
	// stores are dropped uncounted, exactly like the no-idle-nodes case.
	alive      []bool
	aliveCount int

	// Statistics.
	Hits     int64 // getpage satisfied from global memory
	Misses   int64 // getpage fell through to disk
	Stores   int64 // putpage accepted
	Discards int64 // globally-oldest pages dropped to make room
	// DroppedPages counts pages lost to node failures — not Discards,
	// because a crash is not a replacement decision.
	DroppedPages int64
}

// EpochCluster couples a Cluster with epoch-weighted putpage placement:
// Store goes through the epoch manager, everything else through the
// cluster.
type EpochCluster struct {
	*Cluster
	Epoch *EpochManager
}

// NewEpochCluster builds a cluster managed by the epoch algorithm.
func NewEpochCluster(cfg Config, ecfg EpochConfig) *EpochCluster {
	c := NewCluster(cfg)
	return &EpochCluster{Cluster: c, Epoch: NewEpochManager(c, ecfg)}
}

// Store places an evicted page using the current epoch's weights.
func (e *EpochCluster) Store(page memmodel.PageID) NodeID { return e.Epoch.Place(page) }

// NewCluster returns an empty cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("gms: cluster needs at least one node")
	}
	alive := make([]bool, cfg.Nodes)
	for i := range alive {
		alive[i] = true
	}
	return &Cluster{
		cfg:        cfg,
		directory:  make(map[memmodel.PageID]entry),
		load:       make([]int, cfg.Nodes),
		alive:      alive,
		aliveCount: cfg.Nodes,
	}
}

// FailNode kills node n: its donated pages vanish from global memory so
// subsequent refaults fall through to disk, and placement skips it. The
// number of pages dropped is returned and accumulated in DroppedPages.
// Failing an already-dead node is a no-op.
func (c *Cluster) FailNode(n NodeID) int {
	if n < 0 || int(n) >= c.cfg.Nodes {
		panic(fmt.Sprintf("gms: FailNode(%d) with %d nodes", n, c.cfg.Nodes))
	}
	if !c.alive[n] {
		return 0
	}
	c.alive[n] = false
	c.aliveCount--
	dropped := 0
	for p, e := range c.directory {
		if e.node == n {
			delete(c.directory, p)
			dropped++
		}
	}
	c.load[n] = 0
	c.DroppedPages += int64(dropped)
	return dropped
}

// ReviveNode rejoins node n with empty memory. Reviving a live node is a
// no-op.
func (c *Cluster) ReviveNode(n NodeID) {
	if n < 0 || int(n) >= c.cfg.Nodes {
		panic(fmt.Sprintf("gms: ReviveNode(%d) with %d nodes", n, c.cfg.Nodes))
	}
	if c.alive[n] {
		return
	}
	c.alive[n] = true
	c.aliveCount++
}

// AliveNodes reports how many donor nodes are currently alive.
func (c *Cluster) AliveNodes() int { return c.aliveCount }

// Warm preloads pages into global memory, spread round-robin across the
// alive nodes: the paper's "warm (global) cache situation, that is, all
// pages are assumed to initially reside in remote memory".
func (c *Cluster) Warm(pages []memmodel.PageID) {
	if c.aliveCount == 0 {
		return
	}
	targets := make([]NodeID, 0, c.aliveCount)
	for i, ok := range c.alive {
		if ok {
			targets = append(targets, NodeID(i))
		}
	}
	for i, p := range pages {
		n := targets[i%len(targets)]
		c.clock++
		c.directory[p] = entry{node: n, epoch: c.clock}
		c.load[n]++
	}
}

// Lookup reports which node stores page without changing any state.
func (c *Cluster) Lookup(page memmodel.PageID) (NodeID, bool) {
	e, ok := c.directory[page]
	return e.node, ok
}

// Fetch performs a getpage: it returns the node storing page and removes
// the global copy (the page migrates to the requester's local memory). The
// second result is false when the page is not in network memory and must be
// read from disk.
func (c *Cluster) Fetch(page memmodel.PageID) (NodeID, bool) {
	e, ok := c.directory[page]
	if !ok {
		c.Misses++
		return 0, false
	}
	delete(c.directory, page)
	c.load[e.node]--
	c.Hits++
	return e.node, true
}

// Store performs a putpage: an evicted page enters global memory on the
// least-loaded node. If every node is at capacity, the globally oldest
// page is discarded first. It returns the chosen node.
func (c *Cluster) Store(page memmodel.PageID) NodeID {
	if _, ok := c.directory[page]; ok {
		panic(fmt.Sprintf("gms: page %d already in global memory", page))
	}
	if c.aliveCount == 0 {
		// Every donor is down: the eviction is lost, exactly as in the
		// no-idle-nodes baseline (which counts neither a store nor a
		// discard).
		return 0
	}
	node := c.leastLoaded()
	if c.cfg.GlobalPagesPerNode > 0 && c.load[node] >= c.cfg.GlobalPagesPerNode {
		c.discardOldest()
		node = c.leastLoaded()
	}
	c.clock++
	c.directory[page] = entry{node: node, epoch: c.clock}
	c.load[node]++
	c.Stores++
	return node
}

// Size returns the number of pages in global memory.
func (c *Cluster) Size() int { return len(c.directory) }

// Load returns the number of pages stored on node.
func (c *Cluster) Load(node NodeID) int { return c.load[node] }

// leastLoaded returns the alive node with the fewest stored pages. It must
// not be called with every node dead.
func (c *Cluster) leastLoaded() NodeID {
	best := NodeID(-1)
	for i := 0; i < len(c.load); i++ {
		if !c.alive[i] {
			continue
		}
		if best < 0 || c.load[i] < c.load[best] {
			best = NodeID(i)
		}
	}
	if best < 0 {
		panic("gms: leastLoaded with no alive nodes")
	}
	return best
}

// discardOldest implements the simplified global-LRU replacement: the page
// with the smallest epoch leaves global memory (its next fault goes to
// disk).
func (c *Cluster) discardOldest() {
	var victim memmodel.PageID
	var victimEpoch int64 = -1
	for p, e := range c.directory {
		if victimEpoch < 0 || e.epoch < victimEpoch {
			victim, victimEpoch = p, e.epoch
		}
	}
	if victimEpoch < 0 {
		return
	}
	e := c.directory[victim]
	delete(c.directory, victim)
	c.load[e.node]--
	c.Discards++
}
