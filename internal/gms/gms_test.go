package gms

import (
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
)

func TestWarmThenFetch(t *testing.T) {
	c := NewCluster(Config{Nodes: 3})
	pages := []memmodel.PageID{1, 2, 3, 4, 5}
	c.Warm(pages)
	if c.Size() != 5 {
		t.Fatalf("Size = %d, want 5", c.Size())
	}
	for _, p := range pages {
		if _, ok := c.Fetch(p); !ok {
			t.Errorf("page %d should be warm", p)
		}
	}
	if c.Size() != 0 {
		t.Fatalf("Size after fetches = %d, want 0", c.Size())
	}
	if c.Hits != 5 || c.Misses != 0 {
		t.Fatalf("Hits/Misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestFetchRemovesCopy(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	c.Warm([]memmodel.PageID{7})
	if _, ok := c.Fetch(7); !ok {
		t.Fatal("first fetch should hit")
	}
	if _, ok := c.Fetch(7); ok {
		t.Fatal("second fetch should miss: the page migrated")
	}
	if c.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", c.Misses)
	}
}

func TestStoreBalancesLoad(t *testing.T) {
	c := NewCluster(Config{Nodes: 4})
	for p := memmodel.PageID(0); p < 40; p++ {
		c.Store(p)
	}
	for n := NodeID(0); n < 4; n++ {
		if c.Load(n) != 10 {
			t.Errorf("node %d load = %d, want 10", n, c.Load(n))
		}
	}
}

func TestStoreDuplicatePanics(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	c.Store(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Store should panic")
		}
	}()
	c.Store(1)
}

func TestCapacityDiscardsOldest(t *testing.T) {
	c := NewCluster(Config{Nodes: 2, GlobalPagesPerNode: 2})
	for p := memmodel.PageID(1); p <= 4; p++ {
		c.Store(p)
	}
	// Full: 4 pages across 2 nodes. Storing a fifth discards page 1.
	c.Store(5)
	if c.Discards != 1 {
		t.Fatalf("Discards = %d, want 1", c.Discards)
	}
	if _, ok := c.Lookup(1); ok {
		t.Fatal("oldest page should have been discarded")
	}
	if _, ok := c.Lookup(5); !ok {
		t.Fatal("new page should be stored")
	}
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4", c.Size())
	}
}

func TestFetchRefreshesAge(t *testing.T) {
	// A page fetched and re-stored becomes young again.
	c := NewCluster(Config{Nodes: 1, GlobalPagesPerNode: 2})
	c.Store(1)
	c.Store(2)
	c.Fetch(1)
	c.Store(1) // 1 is now younger than 2
	c.Store(3) // must discard 2, the oldest
	if _, ok := c.Lookup(2); ok {
		t.Fatal("page 2 should have been discarded")
	}
	if _, ok := c.Lookup(1); !ok {
		t.Fatal("page 1 should have survived")
	}
}

func TestLoadNeverNegativeAndDirectoryConsistent(t *testing.T) {
	type op struct {
		Page  uint8
		Fetch bool
	}
	f := func(ops []op) bool {
		c := NewCluster(Config{Nodes: 3, GlobalPagesPerNode: 4})
		for _, o := range ops {
			p := memmodel.PageID(o.Page % 32)
			if o.Fetch {
				c.Fetch(p)
			} else if _, ok := c.Lookup(p); !ok {
				c.Store(p)
			}
			total := 0
			for n := NodeID(0); n < 3; n++ {
				if c.Load(n) < 0 {
					return false
				}
				total += c.Load(n)
			}
			if total != c.Size() {
				return false
			}
			if c.Size() > 12 {
				return false // capacity respected
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster with zero nodes should panic")
		}
	}()
	NewCluster(Config{Nodes: 0})
}
