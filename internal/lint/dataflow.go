package lint

import "go/ast"

// flowFuncs bundles the transfer functions of one forward dataflow
// analysis over a function body. The shared walker implements the same
// cheap "on all paths" approximation lockio's held-set walk pioneered:
// state threads through straight-line statements in source order, and
// every conditionally executed body (if/else arms, loop bodies, switch
// cases, select arms) sees a private clone while the fall-through path
// keeps the pre-branch state. A fact established only inside a branch
// therefore never leaks past it — exactly the dominance discipline
// deadlinecheck needs — and a fact established before a branch survives
// into every arm.
//
// The walker is structural only; it knows nothing about the facts being
// tracked. Analyzers provide:
//
//   - clone: copy the state for a conditionally executed body.
//   - stmt:  optional statement hook, seen before the structural descent;
//     returning true claims the statement and suppresses the default
//     handling (used for assignments that union aliases, go statements
//     whose call must not count as sequential, ...).
//   - expr:  called for every expression evaluated on the current path.
//     The hook owns the descent into subexpressions (typically via
//     ast.Inspect), including the decision of what to do with function
//     literals — the walker never enters a FuncLit on its own.
//
// Defer statements are skipped entirely: their calls run at returns, not
// in sequence, and every current client is conservative without them
// (a deferred Unlock keeps the mutex in the held set for the rest of the
// function; a deferred Close performs no tracked I/O).
type flowFuncs[S any] struct {
	clone func(S) S
	stmt  func(ast.Stmt, S) bool
	expr  func(ast.Expr, S)
}

func (f flowFuncs[S]) walk(list []ast.Stmt, st S) {
	for _, s := range list {
		f.walkStmt(s, st)
	}
}

func (f flowFuncs[S]) walkStmt(s ast.Stmt, st S) {
	if s == nil {
		return
	}
	if f.stmt != nil && f.stmt(s, st) {
		return
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		f.expr(s.X, st)
	case *ast.SendStmt:
		f.expr(s.Chan, st)
		f.expr(s.Value, st)
	case *ast.IncDecStmt:
		f.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			f.expr(e, st)
		}
		for _, e := range s.Lhs {
			f.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						f.expr(e, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			f.expr(e, st)
		}
	case *ast.GoStmt:
		// The spawned call runs concurrently; by default only the call
		// expression itself (function value and arguments) is evaluated
		// on this path. Analyzers that care distinguish via the stmt hook.
		f.expr(s.Call, st)
	case *ast.DeferStmt:
		// Skipped; see the type comment.
	case *ast.LabeledStmt:
		f.walkStmt(s.Stmt, st)
	case *ast.BlockStmt:
		f.walk(s.List, st)
	case *ast.IfStmt:
		f.walkStmt(s.Init, st)
		f.expr(s.Cond, st)
		f.walk(s.Body.List, f.clone(st))
		if s.Else != nil {
			f.walkStmt(s.Else, f.clone(st))
		}
	case *ast.ForStmt:
		f.walkStmt(s.Init, st)
		if s.Cond != nil {
			f.expr(s.Cond, st)
		}
		body := f.clone(st)
		f.walk(s.Body.List, body)
		f.walkStmt(s.Post, body)
	case *ast.RangeStmt:
		f.expr(s.X, st)
		f.walk(s.Body.List, f.clone(st))
	case *ast.SwitchStmt:
		f.walkStmt(s.Init, st)
		if s.Tag != nil {
			f.expr(s.Tag, st)
		}
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			branch := f.clone(st)
			for _, e := range cc.List {
				f.expr(e, branch)
			}
			f.walk(cc.Body, branch)
		}
	case *ast.TypeSwitchStmt:
		f.walkStmt(s.Init, st)
		f.walkStmt(s.Assign, st)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				f.walk(cc.Body, f.clone(st))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				branch := f.clone(st)
				f.walkStmt(cc.Comm, branch)
				f.walk(cc.Body, branch)
			}
		}
	}
}
