package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Deadlinecheck proves the invariant the paper's latency story depends
// on: the live prototype never waits on the network without a bound.
// Every read or write of a connection reachable from the prototype
// packages must be dominated — on all paths, in the branch-local sense of
// the shared flow walker — by a SetDeadline/SetReadDeadline/
// SetWriteDeadline on that connection.
//
// The analysis is interprocedural one level deep, in both directions:
//
//   - A helper that arms a deadline satisfies its caller: summaries
//     record which parameters a function arms before returning.
//   - A helper that performs I/O on a handle it was given surfaces that
//     obligation at the call site: summaries record which parameters a
//     function reads or writes without arming them itself.
//
// Parameters and receivers are treated as armed at entry when checking a
// function body (the caller owns the deadline of a connection it hands
// over — that is what the io half of the summary enforces at the caller),
// and as unarmed when computing its summary. Handles that wrap other
// handles (proto.Writer/proto.Reader around a net.Conn, the srvConn and
// dirConn structs) are tracked by unioning aliases as they flow through
// assignments, so arming the connection covers the framing reader and
// writer built on top of it.
//
// Deliberately unbounded waits (the client's data-stream read loop, a
// server reading requests until the peer hangs up) carry a justified
// //lint:allow deadlinecheck.
var Deadlinecheck = &Analyzer{
	Name: "deadlinecheck",
	Doc:  "network reads and writes in the live prototype not bounded by a Set*Deadline on every path",
	Run:  runDeadlinecheck,
}

// deadlineSegments scopes the check to the packages that own live
// connections.
var deadlineSegments = []string{"internal/remote", "internal/dirshard", "internal/load", "cmd/gmsnode"}

func pathInSegments(path string, segs []string) bool {
	for _, seg := range segs {
		if pathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

// dlState is the flow fact: which handle roots have a deadline armed on
// the current path. A root is the base identifier of a handle expression
// ("sc" for both sc.conn and sc.w), and roots that alias — because one
// was built from or assigned the other — live in one union-find set, so
// arming any member arms them all. Reassigning a whole variable re-points
// it at a fresh set (a redialed connection does not inherit the old
// deadline).
type dlState struct {
	parent map[string]string
	armed  map[string]bool
	gen    *int
}

func newDLState() *dlState {
	gen := 0
	return &dlState{parent: map[string]string{}, armed: map[string]bool{}, gen: &gen}
}

func (s *dlState) clone() *dlState {
	c := &dlState{parent: make(map[string]string, len(s.parent)), armed: make(map[string]bool, len(s.armed)), gen: s.gen}
	for k, v := range s.parent {
		c.parent[k] = v
	}
	for k, v := range s.armed {
		c.armed[k] = v
	}
	return c
}

func (s *dlState) find(k string) string {
	for {
		p, ok := s.parent[k]
		if !ok || p == k {
			return k
		}
		k = p
	}
}

func (s *dlState) union(a, b string) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	s.parent[rb] = ra
	if s.armed[rb] {
		s.armed[ra] = true
		delete(s.armed, rb)
	}
}

// reset points k at a brand-new singleton set, severing old aliases and
// dropping any armed fact.
func (s *dlState) reset(k string) {
	*s.gen++
	fresh := k + "#" + strconv.Itoa(*s.gen)
	s.parent[fresh] = fresh
	s.parent[k] = fresh
}

func (s *dlState) arm(k string)          { s.armed[s.find(k)] = true }
func (s *dlState) isArmed(k string) bool { return s.armed[s.find(k)] }

// deadlineSummary is a function's deadline behavior at its boundary:
// arms holds the parameter indices (receiver = -1) guaranteed armed on
// the fall-through return path; io maps each parameter the function
// performs unarmed network I/O on to one representative description.
type deadlineSummary struct {
	arms map[int]bool
	io   map[int]string
}

var emptyDeadlineSummary = &deadlineSummary{}

func (p *Program) deadlineSummary(fn *types.Func) *deadlineSummary {
	if s, ok := p.dlSummaries[fn]; ok {
		return s
	}
	info := p.FuncOf(fn)
	if info == nil || info.Decl.Body == nil {
		p.dlSummaries[fn] = emptyDeadlineSummary
		return emptyDeadlineSummary
	}
	if p.dlInFlight[fn] {
		// Call cycle: stay conservative (no arms claimed, no io
		// surfaced) without memoizing the partial answer.
		return emptyDeadlineSummary
	}
	p.dlInFlight[fn] = true
	defer delete(p.dlInFlight, fn)

	sum := &deadlineSummary{arms: map[int]bool{}, io: map[int]string{}}
	w := &dlWalker{prog: p, info: info.Pkg.Info, params: paramIndexes(info.Decl), sum: sum}
	st := newDLState()
	for name := range w.params {
		st.parent[name] = name
	}
	w.flow().walk(info.Decl.Body.List, st)
	for name, idx := range w.params {
		if st.isArmed(name) {
			sum.arms[idx] = true
		}
	}
	p.dlSummaries[fn] = sum
	return sum
}

// paramIndexes maps receiver and parameter names to their summary index
// (receiver = -1, parameters from 0).
func paramIndexes(decl *ast.FuncDecl) map[string]int {
	params := map[string]int{}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		if n := decl.Recv.List[0].Names[0].Name; n != "_" {
			params[n] = -1
		}
	}
	if decl.Type.Params != nil {
		i := 0
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					params[name.Name] = i
				}
				i++
			}
		}
	}
	return params
}

// dlWalker runs one function body. Exactly one of report (check mode) and
// sum (summary mode) is set.
type dlWalker struct {
	prog   *Program
	info   *types.Info
	params map[string]int
	report func(pos token.Pos, root, what string)
	sum    *deadlineSummary
}

func (w *dlWalker) flow() flowFuncs[*dlState] {
	return flowFuncs[*dlState]{
		clone: (*dlState).clone,
		stmt:  w.stmt,
		expr:  w.scanExpr,
	}
}

// stmt claims assignments so handle aliases flow between variables.
func (w *dlWalker) stmt(s ast.Stmt, st *dlState) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, e := range as.Rhs {
		w.scanExpr(e, st)
	}
	for i, lhs := range as.Lhs {
		w.scanExpr(lhs, st)
		root := w.root(lhs)
		if root == "" {
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			// Whole-variable (re)binding: the old aliases and any armed
			// fact no longer describe this variable.
			st.reset(root)
		}
		var sources []ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			sources = []ast.Expr{as.Rhs[i]}
		} else {
			sources = as.Rhs
		}
		for _, src := range sources {
			for _, hr := range w.handleRoots(src) {
				st.union(root, hr)
			}
		}
	}
	return true
}

// scanExpr walks one expression on the current path, firing arm/IO/
// summary events at calls. Function literals run on a cloned state.
func (w *dlWalker) scanExpr(e ast.Expr, st *dlState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal's own parameters are handles its eventual
			// invoker hands over already armed (same caller-owns-the-
			// deadline convention as function parameters): exchange's
			// send callback writes on a writer exchange armed.
			inner := st.clone()
			if n.Type.Params != nil {
				for _, field := range n.Type.Params.List {
					for _, name := range field.Names {
						if name.Name != "_" {
							inner.parent[name.Name] = name.Name
							inner.arm(name.Name)
						}
					}
				}
			}
			w.flow().walk(n.Body.List, inner)
			return false
		case *ast.CallExpr:
			w.call(n, st)
		}
		return true
	})
}

func (w *dlWalker) call(call *ast.CallExpr, st *dlState) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if strings.HasPrefix(name, "Set") && strings.HasSuffix(name, "Deadline") {
			if root := w.root(sel.X); root != "" {
				st.arm(root)
			}
			return
		}
		if deadlineIOName(name) && w.handleish(sel.X) {
			w.site(call.Pos(), w.root(sel.X), name, st)
			return
		}
	}
	fn := staticCallee(w.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "io" && ioTransferFunc(fn.Name()) {
		for _, arg := range call.Args {
			if w.handleish(arg) {
				if root := w.root(arg); root != "" {
					w.site(call.Pos(), root, "io."+fn.Name(), st)
				}
			}
		}
		return
	}
	if w.prog == nil || w.prog.FuncOf(fn) == nil {
		return
	}
	sum := w.prog.deadlineSummary(fn)
	for idx := range sum.arms {
		if root := w.argRoot(call, idx); root != "" {
			st.arm(root)
		}
	}
	for idx, what := range sum.io {
		if root := w.argRoot(call, idx); root != "" {
			w.site(call.Pos(), root, fmt.Sprintf("call to %s, which does %s", fn.Name(), what), st)
		}
	}
}

// site handles one network-I/O event on root: in check mode an unarmed
// root is reported; in summary mode it is attributed to the parameter it
// aliases, if any.
func (w *dlWalker) site(pos token.Pos, root, what string, st *dlState) {
	if root == "" || st.isArmed(root) {
		return
	}
	if w.report != nil {
		w.report(pos, root, what)
		return
	}
	for name, idx := range w.params {
		if st.find(name) == st.find(root) {
			if _, dup := w.sum.io[idx]; !dup {
				w.sum.io[idx] = what
			}
		}
	}
}

// argRoot resolves the root of the argument bound to summary index idx
// (receiver for -1).
func (w *dlWalker) argRoot(call *ast.CallExpr, idx int) string {
	if idx < 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return w.root(sel.X)
		}
		return ""
	}
	if idx >= len(call.Args) {
		return ""
	}
	return w.root(call.Args[idx])
}

// root reduces a handle expression to its base identifier: sc.conn,
// sc.w and (*sc).r all root at "sc". A call rooted nowhere (such as
// proto.NewReader(conn).Next()) roots at its first handle argument.
func (w *dlWalker) root(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return ""
		}
		return e.Name
	case *ast.SelectorExpr:
		return w.root(e.X)
	case *ast.IndexExpr:
		return w.root(e.X)
	case *ast.StarExpr:
		return w.root(e.X)
	case *ast.TypeAssertExpr:
		return w.root(e.X)
	case *ast.UnaryExpr:
		return w.root(e.X)
	case *ast.CallExpr:
		for _, arg := range e.Args {
			if w.handleish(arg) {
				if r := w.root(arg); r != "" {
					return r
				}
			}
		}
	}
	return ""
}

// handleRoots collects the roots of every handle-typed expression inside
// e — the aliasing sources of an assignment's right-hand side.
func (w *dlWalker) handleRoots(e ast.Expr) []string {
	var roots []string
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		x, ok := n.(ast.Expr)
		if !ok || !w.handleish(x) {
			return true
		}
		if r := w.root(x); r != "" {
			roots = append(roots, r)
		}
		return true
	})
	return roots
}

// handleish reports whether e's static type is a deadline-bearing handle:
// anything with SetDeadline in its method set (net.Conn, *net.TCPConn,
// *tls.Conn, the fake conns in fixtures), or one of the prototype's
// framing types (proto.Reader/proto.Writer and structs embedding or
// holding them are reached via aliasing, not typing).
func (w *dlWalker) handleish(e ast.Expr) bool {
	tv, ok := w.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return deadlineHandleType(tv.Type)
}

func deadlineHandleType(t types.Type) bool {
	t = types.Unalias(t)
	elem := t
	if ptr, ok := elem.(*types.Pointer); ok {
		elem = types.Unalias(ptr.Elem())
	}
	named, isNamed := elem.(*types.Named)
	if isNamed && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os" {
		// os.File has SetDeadline too, but file reads (the timerfd
		// sleeper, pidfd plumbing) are not network waits.
		return false
	}
	if types.NewMethodSet(t).Lookup(nil, "SetDeadline") != nil {
		return true
	}
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	name, path := named.Obj().Name(), named.Obj().Pkg().Path()
	return (name == "Reader" || name == "Writer") && pathHasSegment(path, "internal/proto")
}

// deadlineIOName matches the blocking transfer methods of conns and the
// proto framing layer. Set*, Close, LocalAddr etc. fall through.
func deadlineIOName(name string) bool {
	for _, prefix := range []string{"Read", "Write", "Send", "Recv"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return name == "Next" || name == "Flush"
}

// ioTransferFunc matches the io package helpers that block on their
// reader/writer arguments.
func ioTransferFunc(name string) bool {
	switch name {
	case "ReadFull", "ReadAtLeast", "ReadAll", "Copy", "CopyN", "CopyBuffer", "WriteString":
		return true
	}
	return false
}

func runDeadlinecheck(pass *Pass) {
	if !pathInSegments(pass.Path, deadlineSegments) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &dlWalker{
				prog:   pass.Prog,
				info:   pass.Info,
				params: paramIndexes(fd),
				report: func(pos token.Pos, root, what string) {
					pass.Reportf(pos, "network I/O (%s) on %q is not bounded by a deadline on every path; arm the connection with SetDeadline/SetReadDeadline/SetWriteDeadline first, or justify an unbounded wait with //lint:allow deadlinecheck <why>", what, root)
				},
			}
			st := newDLState()
			for name := range w.params {
				st.parent[name] = name
				st.arm(name)
			}
			w.flow().walk(fd.Body.List, st)
		}
	}
}
