package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errdrop flags calls whose error result is silently discarded: a call
// used as a bare statement when its (last) result is an error. The repo's
// convention for a deliberate drop is an explicit `_ =`, which keeps the
// decision visible at the call site. Deferred calls are exempt (the
// `defer f.Close()` idiom), as are fmt's terminal printers and writes into
// in-memory buffers (strings.Builder, bytes.Buffer), which are documented
// never to fail.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "silently discarded error returns without an explicit _ =",
	Run:  runErrdrop,
}

func runErrdrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !lastResultIsError(pass, call) || errdropExempt(pass, call) {
				return true
			}
			name := types.ExprString(call.Fun)
			pass.Reportf(st.Pos(), "error result of %s is silently dropped; handle it or write `_ = %s(...)` to make the drop explicit", name, name)
			return true
		})
	}
}

func isErrorType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

func lastResultIsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || !tv.IsValue() {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len() > 0 && isErrorType(tuple.At(tuple.Len()-1).Type())
	}
	return isErrorType(tv.Type)
}

// inMemoryWriter reports whether t is a writer that cannot fail.
func inMemoryWriter(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func errdropExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Methods on in-memory buffers never return a non-nil error.
		return inMemoryWriter(sig.Recv().Type())
	}
	if pkg != "fmt" {
		return false
	}
	switch {
	case name == "Print", name == "Printf", name == "Println":
		return true // terminal output; nothing sane to do with the error
	case strings.HasPrefix(name, "Fprint") && len(call.Args) > 0:
		if inMemoryWriter(pass.Info.Types[call.Args[0]].Type) {
			return true
		}
		// Writes to the process's own stdio are as unhandleable as Print.
		dst := types.ExprString(call.Args[0])
		return dst == "os.Stdout" || dst == "os.Stderr"
	}
	return false
}
