package lint

import (
	"go/ast"
	"go/token"
)

// Goloop keeps every background goroutine of the live prototype
// stoppable. The janitor, heartbeat, accept and read loops are the
// population: each one must be able to reach an exit — a return (the
// idiomatic reaction to a closed stop channel or a dead connection), a
// break or goto out of the loop, a panic, or process exit. A goroutine
// whose body spins in a `for {}` with none of those can never be joined:
// Close hangs, tests leak, and the chaos harness cannot tear a node down.
//
// The check resolves the go statement's body statically — a function
// literal or the declaration of the called function — and follows one
// level of in-program calls from it (`go p.run()` and
// `go func() { p.run() }()` are both judged by run's body). Unresolvable
// calls (function values, out-of-program callees such as http.Server.
// Serve) are given the benefit of the doubt. Deliberately unstoppable
// goroutines carry a justified //lint:allow goloop.
var Goloop = &Analyzer{
	Name: "goloop",
	Doc:  "goroutines in the live prototype must have a reachable stop path",
	Run:  runGoloop,
}

var goloopSegments = []string{"internal/remote", "internal/dirshard", "internal/load", "internal/chaos", "internal/obs", "cmd/gmsnode", "internal/dirlog"}

func runGoloop(pass *Pass) {
	if !pathInSegments(pass.Path, goloopSegments) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if loop := unstoppableLoop(pass, g); loop != nil {
				pos := pass.Fset.Position(loop.Pos())
				pass.Reportf(g.Pos(), "goroutine has no reachable stop path: the loop at line %d never returns, breaks or exits; select on a done channel or context (or justify with //lint:allow goloop <why>)", pos.Line)
			}
			return true
		})
	}
}

// unstoppableLoop returns the first exitless infinite loop in the
// goroutine's resolved bodies, or nil.
func unstoppableLoop(pass *Pass, g *ast.GoStmt) *ast.ForStmt {
	seen := map[*ast.BlockStmt]bool{}
	var bodies []*ast.BlockStmt
	add := func(b *ast.BlockStmt) {
		if b != nil && !seen[b] {
			seen[b] = true
			bodies = append(bodies, b)
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		add(lit.Body)
	} else if info := pass.Prog.FuncOf(staticCallee(pass.Info, g.Call)); info != nil {
		add(info.Decl.Body)
	}
	// One level of in-program calls from the resolved bodies.
	for _, b := range bodies[:len(bodies):len(bodies)] {
		for _, call := range bodyCalls(b.List) {
			if info := pass.Prog.FuncOf(staticCallee(pass.Info, call)); info != nil {
				add(info.Decl.Body)
			}
		}
	}
	for _, b := range bodies {
		var found *ast.ForStmt
		ast.Inspect(b, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !loopHasExit(pass, loop) {
				found = loop
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// loopHasExit reports whether anything inside the loop body (not counting
// nested function literals) can leave the enclosing function or the loop:
// return, break, goto, panic, or process exit.
func loopHasExit(pass *Pass, loop *ast.ForStmt) bool {
	exit := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			if tok := n.Tok; tok == token.BREAK || tok == token.GOTO {
				exit = true
			}
		case *ast.CallExpr:
			if isFailCall(pass, n) {
				exit = true
			}
		}
		return !exit
	})
	return exit
}
