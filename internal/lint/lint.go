// Package lint implements gmslint, the repository's static analyzer suite.
//
// The simulator's credibility rests on invariants the Go compiler cannot
// see: the event clock (units.Ticks, one 12 ns memory-reference event) must
// never mix with physical durations (units.Nanos, time.Duration), model
// code must be bit-reproducible (seeded internal/rng, no wall clock, no
// map-ordered output), and the concurrent remote client must not hold
// mutexes across blocking I/O. Each of those is a project-specific
// analyzer here; cmd/gmslint runs them all and exits nonzero on findings,
// which is what `make lint` (and so `make ci`) gates on.
//
// A finding is suppressed with a comment on the same line or the line
// above:
//
//	//lint:allow <check> <justification>
//
// The justification is mandatory: a bare //lint:allow still suppresses the
// finding but is itself reported, so the build stays red until the reason
// is written down.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Msg)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package and collects its
// findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	Files    []*ast.File
	Info     *types.Info
	Path     string // import path
	// Prog is the whole-program view over every package of this Run;
	// the interprocedural analyzers resolve call edges and summaries
	// through it.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:   p.Fset.Position(pos),
		Check: p.Analyzer.Name,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Unitsafety, Simpurity, Lockio, Errdrop,
		Deadlinecheck, Tagswitch, Goloop, Lockorder}
}

// ByName resolves a comma-separated list of analyzer names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
	}
	return out, nil
}

// allowMark is one parsed //lint:allow comment.
type allowMark struct {
	check     string
	justified bool
}

// Allow is one //lint:allow suppression found in the source, for the
// suppression-audit tooling (gmslint -allows).
type Allow struct {
	Pos           token.Position
	Check         string
	Justification string
}

const allowPrefix = "//lint:allow"

// knownCheck reports whether name is an analyzer of the suite. An allow
// naming anything else is a stale suppression (usually left behind when a
// check was renamed or removed) and is itself a finding.
func knownCheck(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

func knownCheckNames() string {
	names := make([]string, 0, len(All()))
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// scanAllows parses every //lint:allow comment of the package, in file
// order, plus a diagnostic for every mark missing its mandatory
// justification or naming a check that does not exist.
func scanAllows(pkg *Package) ([]Allow, []Diagnostic) {
	var allows []Allow
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{Pos: pos, Check: "allow",
						Msg: "lint:allow needs a check name and a justification"})
					continue
				}
				a := Allow{Pos: pos, Check: fields[0],
					Justification: strings.Join(fields[1:], " ")}
				if a.Justification == "" {
					diags = append(diags, Diagnostic{Pos: pos, Check: "allow",
						Msg: fmt.Sprintf("lint:allow %s needs a justification (//lint:allow %s <why>)", a.Check, a.Check)})
				}
				if !knownCheck(a.Check) {
					diags = append(diags, Diagnostic{Pos: pos, Check: "allow",
						Msg: fmt.Sprintf("lint:allow names unknown check %q (stale suppression?); known checks: %s", a.Check, knownCheckNames())})
				}
				allows = append(allows, a)
			}
		}
	}
	return allows, diags
}

// Allows lists every //lint:allow suppression of pkgs in file/line order.
func Allows(pkgs []*Package) []Allow {
	var out []Allow
	for _, pkg := range pkgs {
		allows, _ := scanAllows(pkg)
		out = append(out, allows...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// collectAllows converts the package's allows into the line-keyed lookup
// suppression uses: each mark covers the comment's own line and the next,
// so both trailing and standalone placement work.
func collectAllows(pkg *Package) (map[string]map[int][]allowMark, []Diagnostic) {
	allows, diags := scanAllows(pkg)
	marks := make(map[string]map[int][]allowMark)
	for _, a := range allows {
		m := allowMark{check: a.Check, justified: a.Justification != ""}
		byLine := marks[a.Pos.Filename]
		if byLine == nil {
			byLine = make(map[int][]allowMark)
			marks[a.Pos.Filename] = byLine
		}
		byLine[a.Pos.Line] = append(byLine[a.Pos.Line], m)
		byLine[a.Pos.Line+1] = append(byLine[a.Pos.Line+1], m)
	}
	return marks, diags
}

func suppressed(marks map[string]map[int][]allowMark, d Diagnostic) bool {
	for _, m := range marks[d.Pos.Filename][d.Pos.Line] {
		if m.check == d.Check {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages, applies //lint:allow
// suppressions, and returns the surviving findings in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := BuildProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		marks, allowDiags := collectAllows(pkg)
		out = append(out, allowDiags...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Prog:     prog,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(marks, d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// pathHasSegment reports whether the slash-separated segment sequence seg
// occurs in the import path (so "internal/sim" matches
// "mod/internal/sim" but not "mod/internal/simfoo").
func pathHasSegment(path, seg string) bool {
	return strings.Contains("/"+path+"/", "/"+seg+"/")
}
