package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, modPath)
}

// wantPattern extracts the quoted or backquoted regexps of a // want
// comment.
var wantPattern = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)+)\"")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runWantTest loads the fixture package in dir, runs the analyzers, and
// checks the diagnostics against the fixture's // want comments: every
// diagnostic must match a want on its line, and every want must be hit.
func runWantTest(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantPattern.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s:%d: bad want string: %v", pos.Filename, pos.Line, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments", dir)
	}

	diags := Run([]*Package{pkg}, analyzers)
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Msg) {
				w.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %v", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestUnitsafetyFixture(t *testing.T) {
	runWantTest(t, "testdata/src/unitsafety", []*Analyzer{Unitsafety})
}

func TestSimpurityFixture(t *testing.T) {
	runWantTest(t, "testdata/src/internal/sim", []*Analyzer{Simpurity})
}

func TestLockioFixture(t *testing.T) {
	runWantTest(t, "testdata/src/internal/remote", []*Analyzer{Lockio})
}

func TestErrdropFixture(t *testing.T) {
	runWantTest(t, "testdata/src/errdrop", []*Analyzer{Errdrop})
}

func TestDeadlinecheckFixture(t *testing.T) {
	runWantTest(t, "testdata/src/deadlinecheck/internal/remote", []*Analyzer{Deadlinecheck})
}

func TestTagswitchFixture(t *testing.T) {
	runWantTest(t, "testdata/src/tagswitch", []*Analyzer{Tagswitch})
}

func TestGoloopFixture(t *testing.T) {
	runWantTest(t, "testdata/src/goloop/internal/remote", []*Analyzer{Goloop})
}

func TestLockorderFixture(t *testing.T) {
	runWantTest(t, "testdata/src/lockorder/internal/remote", []*Analyzer{Lockorder})
}

// TestInjectedViolationIsFatal pins the cmd/gmslint exit contract: an
// injected violation must yield findings, and findings are what the
// command turns into a nonzero exit.
func TestInjectedViolationIsFatal(t *testing.T) {
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir("testdata/src/errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, All()); len(diags) == 0 {
		t.Fatal("injected violations produced no findings; gmslint would exit 0")
	}
}

func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

import "time"

//lint:allow simpurity harness timing is deliberately wall-clock for the operator
var t0 = time.Now()

var t1 = time.Now() //lint:allow simpurity trailing placement covers its own line

//lint:allow simpurity
var t2 = time.Now()
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Simpurity})
	if len(diags) != 1 {
		t.Fatalf("want exactly the missing-justification finding, got %d: %v", len(diags), diags)
	}
	if diags[0].Check != "allow" || !strings.Contains(diags[0].Msg, "justification") {
		t.Fatalf("want a missing-justification finding, got %v", diags[0])
	}
}

// TestStaleAllowIsReported pins the suppression audit: an allow naming a
// check that does not exist (a refactor leftover) is itself a finding, and
// Allows lists every mark with its justification.
func TestStaleAllowIsReported(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

import "time"

var t0 = time.Now() //lint:allow simpurity harness timing is wall-clock on purpose

var t1 = time.Now() //lint:allow simpurityy typo'd check name left by a refactor
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Simpurity})
	var stale []Diagnostic
	for _, d := range diags {
		if d.Check == "allow" && strings.Contains(d.Msg, "unknown check") {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 || !strings.Contains(stale[0].Msg, "simpurityy") {
		t.Fatalf("want exactly one stale-allow finding naming simpurityy, got %v", diags)
	}
	// The typo'd allow suppresses nothing, so the simpurity finding on t1
	// must survive.
	found := false
	for _, d := range diags {
		if d.Check == "simpurity" && d.Pos.Line == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("typo'd allow swallowed the finding it no longer names: %v", diags)
	}

	allows := Allows([]*Package{pkg})
	if len(allows) != 2 {
		t.Fatalf("want 2 allows, got %v", allows)
	}
	if allows[0].Check != "simpurity" || !strings.Contains(allows[0].Justification, "wall-clock on purpose") {
		t.Fatalf("allow not parsed with its justification: %+v", allows[0])
	}
}

// TestRepositoryIsLintClean runs the full suite over the whole module —
// the same gate as `make lint` — so a violation introduced anywhere fails
// the ordinary test run, not just CI.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	loader := newTestLoader(t)
	pkgs, err := loader.Expand([]string{filepath.Join(loader.Root, "...")})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Error(d)
	}
}

// TestDeletingProtocolCaseArmFails pins the acceptance contract of the
// tagswitch analyzer on the real code: removing any `case T*` arm from any
// protocol tag switch in internal/remote must produce a finding naming the
// dropped tags (and so fail `make lint`). The switches there are
// exhaustive with no default — proto.Reader.Next rejects unknown tag
// bytes, so exhaustiveness is safe — which is exactly what makes this
// mutation detectable.
func TestDeletingProtocolCaseArmFails(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks internal/remote; skipped in -short")
	}
	loader := newTestLoader(t)
	pkg, err := loader.LoadDir(filepath.Join(loader.Root, "internal", "remote"))
	if err != nil {
		t.Fatal(err)
	}
	mutations := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil || tagEnumType(pkg.Info, sw.Tag) == nil {
				return true
			}
			swLine := pkg.Fset.Position(sw.Pos()).Line
			saved := sw.Body.List
			for i, clause := range saved {
				cc, ok := clause.(*ast.CaseClause)
				if !ok || cc.List == nil {
					continue
				}
				var deleted []string
				for _, e := range cc.List {
					switch e := ast.Unparen(e).(type) {
					case *ast.SelectorExpr:
						deleted = append(deleted, e.Sel.Name)
					case *ast.Ident:
						deleted = append(deleted, e.Name)
					}
				}
				sw.Body.List = append(append([]ast.Stmt{}, saved[:i]...), saved[i+1:]...)
				diags := Run([]*Package{pkg}, []*Analyzer{Tagswitch})
				sw.Body.List = saved
				mutations++

				var hit *Diagnostic
				for j := range diags {
					if diags[j].Check == "tagswitch" && diags[j].Pos.Line == swLine {
						hit = &diags[j]
					}
				}
				if hit == nil {
					t.Errorf("deleting the %v arm of the switch at line %d produced no tagswitch finding", deleted, swLine)
					continue
				}
				for _, name := range deleted {
					if !strings.Contains(hit.Msg, name) {
						t.Errorf("finding for the deleted %v arm does not name %s: %s", deleted, name, hit.Msg)
					}
				}
			}
			return true
		})
	}
	// The floor counts every arm of every protocol switch in
	// internal/remote — the v2 arms (TGetPageV2, TSubpageBatch, TCancel)
	// and the drain-era arms (TDrain, TDrainReply, and the two reply
	// switches in drain.go) included: dropping any of them must shrink
	// this below the bound and fail here even before the lint run does.
	if mutations < 28 {
		t.Fatalf("expected to mutate every protocol switch arm in internal/remote, only found %d", mutations)
	}
}

// TestAnalyzerDocs keeps the -list output usable.
func TestAnalyzerDocs(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, n := range []string{"unitsafety", "simpurity", "lockio", "errdrop",
		"deadlinecheck", "tagswitch", "goloop", "lockorder"} {
		if !names[n] {
			t.Errorf("missing analyzer %q", n)
		}
	}
	if _, err := ByName("unitsafety, errdrop"); err != nil {
		t.Errorf("ByName: %v", err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted an unknown check")
	}
}

func ExampleDiagnostic_String() {
	d := Diagnostic{Check: "unitsafety", Msg: "example"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	fmt.Println(d)
	// Output: x.go:3:7: [unitsafety] example
}
