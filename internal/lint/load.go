package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ModuleRoot walks upward from dir to the enclosing go.mod and returns the
// module root directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved from source under
// the module root, everything else through go/importer's source importer.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root directory
	Module string // module path

	ctx     build.Context
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, modPath string) *Loader {
	// The source importer type-checks dependencies (including the standard
	// library) from source; cgo files cannot be resolved that way, so take
	// them out of build-file matching before anything is imported.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  modPath,
		ctx:     build.Default,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer: module-internal paths load from the
// repository source, everything else from the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		p, err := l.load(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads the package in a single directory. Directories outside the
// module root (test scratch packages) get a synthetic import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPath(abs)
	return l.load(abs, path)
}

func (l *Loader) importPath(abs string) string {
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "lint.scratch/" + filepath.Base(abs)
	}
	if rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

func (l *Loader) load(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := l.buildableFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// buildableFiles lists the non-test Go files of dir that match the current
// build constraints (GOOS/GOARCH and //go:build lines), sorted by name.
func (l *Loader) buildableFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := l.ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves package patterns — a directory, or a directory followed
// by "/..." for the whole subtree — into loaded packages. Directories named
// testdata or vendor, and hidden or underscore directories, are skipped
// during subtree walks, mirroring the go tool.
func (l *Loader) Expand(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			files, err := l.buildableFiles(p)
			if err != nil {
				return err
			}
			if len(files) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
