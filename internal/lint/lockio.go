package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockio guards lock discipline in the concurrent prototype packages
// (internal/remote, internal/chaos, cmd/gmsnode): a sync.Mutex or sync.RWMutex must not
// be held across blocking operations — network I/O, channel sends and
// receives, selects without a default, time.Sleep, dials — because one
// stalled peer then wedges every goroutine queued on the mutex.
//
// The walk is a linear, branch-local approximation: Lock()/Unlock() pairs
// are tracked through straight-line code and defer, and nested blocks see
// a copy of the held set, so a conditional early-unlock path cannot hide a
// hold on the fall-through path. Deliberately held writes (bounded by a
// write deadline) carry a justified //lint:allow lockio.
var Lockio = &Analyzer{
	Name: "lockio",
	Doc:  "mutex held across network I/O, channel operations or sleeps in the concurrent packages",
	Run:  runLockio,
}

// cmd/gmsnode rides along so the heartbeat/breaker-era demo code keeps the
// same discipline as the library it drives; internal/obs because its
// registry lock sits on the prototype's fault hot path and must never be
// held across the /metrics render or any blocking call; internal/dirshard
// and internal/load because the shard cluster and the load harness are
// exactly the many-goroutines-on-shared-mutexes code this analyzer exists
// for; internal/dirlog because the journal's mutex serializes every
// directory mutation — a blocking operation under it stalls the whole
// control plane (fsyncs are deliberate and bounded; channel waits are
// not).
var lockioSegments = []string{"internal/remote", "internal/chaos", "cmd/gmsnode",
	"internal/obs", "internal/dirshard", "internal/load", "internal/dirlog"}

func runLockio(pass *Pass) {
	inScope := false
	for _, seg := range lockioSegments {
		if pathHasSegment(pass.Path, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.stmts(fd.Body.List, map[string]token.Pos{})
		}
	}
}

type lockWalker struct {
	pass *Pass
}

func isMutexType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockOp classifies expr as a mutex Lock/Unlock call: op is "lock",
// "unlock" or "", and key names the mutex expression.
func (w *lockWalker) lockOp(expr ast.Expr) (op, key string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	tv, ok := w.pass.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return "", ""
	}
	return op, types.ExprString(sel.X)
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

func (w *lockWalker) stmt(st ast.Stmt, held map[string]token.Pos) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if op, key := w.lockOp(s.X); op == "lock" {
			held[key] = s.Pos()
			return
		} else if op == "unlock" {
			delete(held, key)
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the mutex stays held for
		// the rest of the body, which is exactly what held already says.
		// Other deferred calls run after the body; nothing blocks now.
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Pos(), held, "a channel send")
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.GoStmt:
		// Launching a goroutine does not block; its body runs elsewhere.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		inner := copyHeld(held)
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.report(s.Pos(), held, "a blocking select")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// expr scans an expression for blocking operations while mutexes are held.
func (w *lockWalker) expr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // runs when invoked, not here
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.report(x.Pos(), held, "a channel receive")
			}
		case *ast.CallExpr:
			if what := w.blockingCall(x); what != "" {
				w.report(x.Pos(), held, what)
			}
		}
		return true
	})
}

// ioMethodNames are method-name shapes that move bytes on a connection or
// stream. Accessors like SetWriteDeadline or RemoteAddr do not match.
func isIOMethodName(name string) bool {
	if strings.HasPrefix(name, "Set") {
		return false
	}
	return strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write") ||
		strings.HasPrefix(name, "Send") || strings.HasPrefix(name, "Recv") ||
		name == "Flush" || name == "Accept"
}

// blockingCall classifies a call that can block indefinitely: sleeps,
// dials, and I/O methods on network-ish types (net, bufio, crypto/tls and
// the repo's wire protocol package internal/proto).
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	if sig.Recv() == nil {
		switch {
		case pkg == "time" && name == "Sleep":
			return "time.Sleep"
		case pkg == "net" && strings.HasPrefix(name, "Dial"):
			return "a network dial"
		case pkg == "io" && (name == "ReadFull" || name == "ReadAtLeast" ||
			name == "Copy" || name == "CopyN" || name == "ReadAll"):
			return "io." + name
		}
		return ""
	}
	ioPkg := pkg == "net" || pkg == "bufio" || pkg == "crypto/tls" ||
		pathHasSegment(pkg, "internal/proto")
	if ioPkg && (isIOMethodName(name) || (pkg == "net" && strings.HasPrefix(name, "Dial"))) {
		return "network I/O (" + name + ")"
	}
	return ""
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (w *lockWalker) report(pos token.Pos, held map[string]token.Pos, what string) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	first := w.pass.Fset.Position(held[keys[0]])
	w.pass.Reportf(pos, "%s held across %s (locked at line %d); move the blocking work outside the critical section or bound it with a deadline", strings.Join(keys, ", "), what, first.Line)
}
