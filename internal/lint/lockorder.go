package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder keeps the mutex-acquisition graph of each concurrent package
// a DAG. Deadlock by ordering inversion needs two goroutines taking the
// same two mutexes in opposite orders — the client's srvMu/c.mu pair and
// the per-shard dirConn mutexes are exactly where one would hide — so the
// analyzer records an edge A → B whenever B is acquired while A is held
// (using the same branch-local held-set walk as lockio) and rejects any
// cycle, including the self-cycle of re-acquiring a mutex already held
// (sync.Mutex is not reentrant).
//
// Mutexes are named by their owning type and field (Client.mu, dirConn.
// rpc), so the same lock reached through differently named receivers in
// different methods is one graph node. Acquisitions are propagated
// through in-program calls by summary: a callee's net acquisitions — the
// locks it takes that it was not handed already released — extend the
// caller's held set at the call site, and locks a callee still holds at
// return (lock-helper style) stay held in the caller. A callee that
// unlocks a mutex before re-acquiring it (the evictIfFull pattern: drop
// c.mu, write remotely, re-take c.mu) contributes no edge, because its
// caller's hold is released before the inner acquisition.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be cycle-free within each concurrent package",
	Run:  runLockorder,
}

// lockSummary is a function's boundary behavior for lock ordering.
type lockSummary struct {
	// acquired holds every lock key the function takes without having
	// first released it (net transient or lasting acquisitions — the
	// ones that order against locks its caller holds).
	acquired map[string]bool
	// heldAtExit holds the keys still held on the fall-through return.
	heldAtExit map[string]bool
}

var emptyLockSummary = &lockSummary{}

func (p *Program) lockSummary(fn *types.Func) *lockSummary {
	if s, ok := p.loSummaries[fn]; ok {
		return s
	}
	info := p.FuncOf(fn)
	if info == nil || info.Decl.Body == nil {
		p.loSummaries[fn] = emptyLockSummary
		return emptyLockSummary
	}
	if p.loInFlight[fn] {
		return emptyLockSummary
	}
	p.loInFlight[fn] = true
	defer delete(p.loInFlight, fn)

	w := &lockOrderWalker{prog: p, info: info.Pkg.Info,
		acquired: map[string]bool{}, releasedFirst: map[string]bool{}}
	held := map[string]token.Pos{}
	w.flow().walk(info.Decl.Body.List, held)
	sum := &lockSummary{acquired: w.acquired, heldAtExit: map[string]bool{}}
	deferred := w.deferredUnlocks(info.Decl.Body)
	for k := range held {
		if !deferred[k] {
			sum.heldAtExit[k] = true
		}
	}
	p.loSummaries[fn] = sum
	return sum
}

// deferredUnlocks collects the lock keys released by defer statements in
// the body: held within the body (which is what the walk models), but
// released before control returns to the caller, so they must not leak
// into heldAtExit.
func (w *lockOrderWalker) deferredUnlocks(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if op, key, ok := w.lockOp(n.Call); ok && op == "unlock" {
				out[key] = true
			}
		}
		return true
	})
	return out
}

// lockOrderWalker runs one body with a held set. onEdge is set in check
// mode; acquired/releasedFirst always collect summary facts.
type lockOrderWalker struct {
	prog          *Program
	info          *types.Info
	onEdge        func(from, to string, pos token.Pos, via string)
	acquired      map[string]bool
	releasedFirst map[string]bool
}

func (w *lockOrderWalker) flow() flowFuncs[map[string]token.Pos] {
	return flowFuncs[map[string]token.Pos]{
		clone: copyHeld,
		stmt:  w.stmt,
		expr:  w.scanExpr,
	}
}

func (w *lockOrderWalker) stmt(s ast.Stmt, held map[string]token.Pos) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if op, key, ok := w.lockOp(s.X); ok {
			w.apply(op, key, s.Pos(), held)
			return true
		}
	case *ast.GoStmt:
		// The spawned goroutine acquires its locks on its own stack, not
		// under the launcher's held set; its body is judged when its
		// function is walked in its own right.
		return true
	}
	return false
}

func (w *lockOrderWalker) apply(op, key string, pos token.Pos, held map[string]token.Pos) {
	if op == "unlock" {
		if _, was := held[key]; !was {
			w.releasedFirst[key] = true
		}
		delete(held, key)
		return
	}
	if !w.releasedFirst[key] {
		w.acquired[key] = true
	}
	if w.onEdge != nil {
		for from := range held {
			w.onEdge(from, key, pos, "")
		}
		if _, already := held[key]; already {
			w.onEdge(key, key, pos, "")
		}
	}
	held[key] = pos
}

func (w *lockOrderWalker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs on whatever goroutine invokes it;
			// judge its internal ordering as an independent root.
			inner := &lockOrderWalker{prog: w.prog, info: w.info, onEdge: w.onEdge,
				acquired: map[string]bool{}, releasedFirst: map[string]bool{}}
			inner.flow().walk(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
}

func (w *lockOrderWalker) call(call *ast.CallExpr, held map[string]token.Pos) {
	fn := staticCallee(w.info, call)
	if fn == nil || w.prog == nil || w.prog.FuncOf(fn) == nil {
		return
	}
	sum := w.prog.lockSummary(fn)
	if w.onEdge != nil {
		for key := range sum.acquired {
			for from := range held {
				if from != key {
					w.onEdge(from, key, call.Pos(), fn.Name())
				} else {
					w.onEdge(key, key, call.Pos(), fn.Name())
				}
			}
		}
	}
	for key := range sum.heldAtExit {
		if _, ok := held[key]; !ok {
			held[key] = call.Pos()
		}
	}
}

// lockOp classifies expr as Lock/RLock ("lock") or Unlock/RUnlock
// ("unlock") on a sync mutex, keyed by owning type and field.
func (w *lockOrderWalker) lockOp(expr ast.Expr) (op, key string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", false
	}
	tv, has := w.info.Types[sel.X]
	if !has || !isMutexType(tv.Type) {
		return "", "", false
	}
	return op, lockKeyOf(w.info, sel.X), true
}

// lockKeyOf names a mutex by its owning named type and field when it is a
// struct field (so c.mu and cl.mu are one node), falling back to the
// expression text for package-level and local mutexes.
func lockKeyOf(info *types.Info, mutexExpr ast.Expr) string {
	mx := ast.Unparen(mutexExpr)
	if fsel, ok := mx.(*ast.SelectorExpr); ok {
		if tv, has := info.Types[fsel.X]; has && tv.Type != nil {
			t := types.Unalias(tv.Type)
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = types.Unalias(ptr.Elem())
			}
			if named, isNamed := t.(*types.Named); isNamed {
				return named.Obj().Name() + "." + fsel.Sel.Name
			}
		}
	}
	return types.ExprString(mx)
}

// lockEdge is one "to acquired while from held" observation.
type lockEdge struct {
	from, to string
}

type lockEdgeSite struct {
	pos token.Pos
	via string
}

func runLockorder(pass *Pass) {
	if !pathInSegments(pass.Path, lockioSegments) {
		return
	}
	edges := map[lockEdge]lockEdgeSite{}
	onEdge := func(from, to string, pos token.Pos, via string) {
		e := lockEdge{from: from, to: to}
		if _, ok := edges[e]; !ok {
			edges[e] = lockEdgeSite{pos: pos, via: via}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockOrderWalker{prog: pass.Prog, info: pass.Info, onEdge: onEdge,
				acquired: map[string]bool{}, releasedFirst: map[string]bool{}}
			w.flow().walk(fd.Body.List, map[string]token.Pos{})
		}
	}
	if len(edges) == 0 {
		return
	}
	// Self-edges are reported outright; everything else goes through
	// cycle detection on the acquisition graph.
	adj := map[string][]string{}
	for e := range edges {
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	inCycle := cyclicNodes(adj)
	for e, site := range edges {
		switch {
		case e.from == e.to:
			pass.Reportf(site.pos, "%s is acquired while already held%s; sync mutexes are not reentrant, so this path self-deadlocks", e.to, viaNote(site.via))
		case inCycle[e.from] && inCycle[e.to]:
			cycle := cycleMembers(inCycle)
			pass.Reportf(site.pos, "acquiring %s while holding %s%s closes a lock-ordering cycle (%s); acquire mutexes in one global order everywhere, or justify with //lint:allow lockorder <why>", e.to, e.from, viaNote(site.via), strings.Join(cycle, ", "))
		}
	}
}

func viaNote(via string) string {
	if via == "" {
		return ""
	}
	return " (via call to " + via + ")"
}

func cycleMembers(inCycle map[string]bool) []string {
	members := make([]string, 0, len(inCycle))
	for k, yes := range inCycle {
		if yes {
			members = append(members, k)
		}
	}
	sort.Strings(members)
	return members
}

// cyclicNodes returns the nodes on some directed cycle: members of any
// strongly connected component with more than one node (self-loops are
// handled separately by the caller).
func cyclicNodes(adj map[string][]string) map[string]bool {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	inCycle := map[string]bool{}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wnode := range adj[v] {
			if _, seen := index[wnode]; !seen {
				strongconnect(wnode)
				if low[wnode] < low[v] {
					low[v] = low[wnode]
				}
			} else if onStack[wnode] && index[wnode] < low[v] {
				low[v] = index[wnode]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				n := len(stack) - 1
				wnode := stack[n]
				stack = stack[:n]
				onStack[wnode] = false
				comp = append(comp, wnode)
				if wnode == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, m := range comp {
					inCycle[m] = true
				}
			}
		}
	}
	nodes := make([]string, 0, len(adj))
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return inCycle
}
