package lint

import (
	"go/ast"
	"go/types"
)

// Whole-program view for the interprocedural analyzers.
//
// PR 2's analyzers were per-function AST walks; deadlinecheck, tagswitch,
// goloop and lockorder all need to see across call boundaries (a helper
// that arms a deadline satisfies its caller; a default arm may delegate
// tag dispatch; a goroutine's stop path may live in the method the go
// statement resolves to; a callee's lock acquisitions extend the caller's
// held set). Program is the shared substrate: every function declared in
// the loaded packages, indexed by its *types.Func, plus the statically
// resolved call edges between them.
//
// The resolution is deliberately static-only: calls through function
// values, interface methods whose dynamic type is unknown, and calls into
// packages outside the load set have no edge. Analyzers treat an
// unresolved call as "no information" and stay conservative on their own
// terms (deadlinecheck assumes it performs no I/O, lockorder assumes it
// takes no locks) — one level of summaries over the static graph is the
// cheap approximation that already proves the invariants the live
// prototype relies on, without dragging in a full pointer analysis.

// FuncInfo is one function or method declared in a loaded package.
type FuncInfo struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
}

// CallSite is one statically resolved call edge.
type CallSite struct {
	Caller *FuncInfo
	Callee *types.Func
	Call   *ast.CallExpr
}

// Program indexes every loaded package's functions and call edges. It is
// built once per Run and shared by all analyzers via Pass.Prog.
type Program struct {
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncInfo
	// Calls lists a function's outgoing resolved calls in source order;
	// CallersOf is the reverse index.
	Calls     map[*types.Func][]CallSite
	CallersOf map[*types.Func][]CallSite

	// Per-analyzer memoized summaries (keyed by callee). The maps live
	// here so summaries are computed once per Run even when several
	// callers ask; the in-flight sets break recursion on call cycles.
	dlSummaries map[*types.Func]*deadlineSummary
	dlInFlight  map[*types.Func]bool
	loSummaries map[*types.Func]*lockSummary
	loInFlight  map[*types.Func]bool
}

// BuildProgram indexes the functions and static call edges of pkgs.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:        pkgs,
		Funcs:       make(map[*types.Func]*FuncInfo),
		Calls:       make(map[*types.Func][]CallSite),
		CallersOf:   make(map[*types.Func][]CallSite),
		dlSummaries: make(map[*types.Func]*deadlineSummary),
		dlInFlight:  make(map[*types.Func]bool),
		loSummaries: make(map[*types.Func]*lockSummary),
		loInFlight:  make(map[*types.Func]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.Funcs[fn] = &FuncInfo{Fn: fn, Pkg: pkg, Decl: fd}
			}
		}
	}
	for _, info := range prog.Funcs {
		if info.Decl.Body == nil {
			continue
		}
		caller := info
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(caller.Pkg.Info, call)
			if callee == nil {
				return true
			}
			site := CallSite{Caller: caller, Callee: callee, Call: call}
			prog.Calls[caller.Fn] = append(prog.Calls[caller.Fn], site)
			prog.CallersOf[callee] = append(prog.CallersOf[callee], site)
			return true
		})
	}
	return prog
}

// FuncOf returns the FuncInfo of fn if it is declared in the program.
func (p *Program) FuncOf(fn *types.Func) *FuncInfo {
	if p == nil || fn == nil {
		return nil
	}
	return p.Funcs[fn]
}

// staticCallee resolves the *types.Func a call statically invokes, if
// any: a plain function, a method on a concrete or interface receiver, or
// a qualified identifier. Calls through function values resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
