package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Simpurity guards the determinism of the trace-driven simulator.
//
// Model code — the packages that produce the paper's numbers — must be
// bit-reproducible: it advances a seeded event clock, draws randomness
// from the seeded internal/rng, and never observes the wall clock or Go's
// randomized map iteration order in its output. Three rules at two scopes:
//
//   - In the model packages (internal/sim, internal/core,
//     internal/experiments, internal/analytic, and internal/obs, whose
//     tracer and exposition must be byte-reproducible): no wall clock at
//     all (time.Now/Since/Sleep/After/...), no math/rand import
//     (internal/rng is the seeded, version-stable source), and no printing
//     from inside a range over a map.
//   - Everywhere: no global math/rand top-level functions (shared,
//     unseeded process state; constructing a seeded *rand.Rand via
//     rand.New(rand.NewSource(seed)) is fine), and no time.Now/time.Since
//     outside the live-prototype packages (wallClockExempt: the RPC path's
//     deadlines and latency stats, and the load harness's throughput and
//     SLO measurements, genuinely are wall-clock) — prototype timing paths
//     elsewhere carry a justified //lint:allow instead.
var Simpurity = &Analyzer{
	Name: "simpurity",
	Doc:  "wall clock, unseeded randomness and map-ordered output in deterministic simulator code",
	Run:  runSimpurity,
}

var modelSegments = []string{"internal/sim", "internal/core", "internal/experiments", "internal/analytic", "internal/obs"}

func isModelPkg(path string) bool {
	for _, seg := range modelSegments {
		if pathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

// Seeded constructors of math/rand: building a local generator from an
// explicit seed is exactly what the rule wants, so these are exempt.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// wallClockExempt lists the live-prototype packages whose use of the wall
// clock is the point: RPC deadlines and latency stats in internal/remote,
// real-time service emulation in the sharded directory, the load
// harness's wall-clock throughput/latency measurements, and the
// directory journal's recovery/replay timings (its fsync cadence and the
// `make bench` dirlog section measure real disk time).
var wallClockExempt = []string{"internal/remote", "internal/dirshard", "internal/load", "internal/dirlog"}

func isWallClockExempt(path string) bool {
	for _, seg := range wallClockExempt {
		if pathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

func runSimpurity(pass *Pass) {
	model := isModelPkg(pass.Path)
	wallClockScope := !isWallClockExempt(pass.Path)
	for _, f := range pass.Files {
		if model {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && isRandPath(path) {
					pass.Reportf(imp.Pos(), "model code imports %s; use the seeded internal/rng so experiment output is stable across runs and Go versions", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkPurityCall(pass, e, model, wallClockScope)
			case *ast.RangeStmt:
				if model {
					checkMapOrderOutput(pass, e)
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the *types.Func a call invokes, if any.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

func checkPurityCall(pass *Pass, call *ast.CallExpr, model, wallClockScope bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	switch {
	case pkg == "time" && sig.Recv() == nil:
		switch name {
		case "Now", "Since":
			if wallClockScope {
				pass.Reportf(call.Pos(), "wall-clock time.%s in simulator code; model time advances on the event clock (prototype timing paths: //lint:allow simpurity <why>)", name)
			}
		case "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			if model {
				pass.Reportf(call.Pos(), "time.%s in model code; the simulator advances via the event clock, never by real waiting", name)
			}
		}
	case isRandPath(pkg) && sig.Recv() == nil && !seededConstructors[name]:
		pass.Reportf(call.Pos(), "global math/rand.%s draws from shared, unseeded process-wide state; use a seeded *rand.Rand or internal/rng", name)
	}
}

// checkMapOrderOutput flags printing from inside a range over a map: the
// iteration order is randomized per run, so anything emitted inside the
// loop is nondeterministic output.
func checkMapOrderOutput(pass *Pass, rng *ast.RangeStmt) {
	if _, ok := types.Unalias(pass.Info.Types[rng.X].Type).Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
			pass.Reportf(call.Pos(), "fmt.%s inside a range over a map emits in nondeterministic order; collect the keys, sort, then print", fn.Name())
		}
		return true
	})
}
