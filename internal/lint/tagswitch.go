package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Tagswitch keeps the wire protocol's dispatch total. Every switch over a
// message-tag enum (a named integer type declared in a package whose
// import path contains internal/proto) must either:
//
//   - handle every declared T* constant of the type explicitly — the
//     preferred form, because then deleting an arm or adding a tag makes
//     lint fail at the switch, not at runtime; or
//   - carry a default that visibly fails (return, panic, os.Exit,
//     log.Fatal), so an unhandled tag is refused rather than swallowed; or
//   - carry a default that delegates to an in-program helper whose own
//     tag switch covers the remainder (one level of dispatch).
//
// proto.Reader.Next rejects unknown tag bytes at decode time, so an
// exhaustive switch with no default really is total over what can reach
// it — the compiler's missing-return check then guards the grouped arms.
var Tagswitch = &Analyzer{
	Name: "tagswitch",
	Doc:  "protocol tag switches must handle every declared message type or fail explicitly",
	Run:  runTagswitch,
}

func runTagswitch(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok && sw.Tag != nil {
				checkTagSwitch(pass, sw)
			}
			return true
		})
	}
}

// tagEnumType reports whether tag's type is a message-tag enum, returning
// the named type if so.
func tagEnumType(info *types.Info, tag ast.Expr) *types.Named {
	tv, ok := info.Types[tag]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	if !pathHasSegment(named.Obj().Pkg().Path(), "internal/proto") {
		return nil
	}
	return named
}

// declaredTags lists the constants of the enum declared in its package,
// in value order.
func declaredTags(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var tags []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		tags = append(tags, c)
	}
	sort.Slice(tags, func(i, j int) bool {
		vi, _ := constant.Int64Val(tags[i].Val())
		vj, _ := constant.Int64Val(tags[j].Val())
		return vi < vj
	})
	return tags
}

func checkTagSwitch(pass *Pass, sw *ast.SwitchStmt) {
	named := tagEnumType(pass.Info, sw.Tag)
	if named == nil {
		return
	}
	tags := declaredTags(named)
	if len(tags) < 2 {
		return
	}
	handled := map[string]bool{}
	var deflt *ast.CaseClause
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				handled[tv.Value.ExactString()] = true
			}
		}
	}
	delegated := false
	if deflt != nil && !failingBody(pass, deflt.Body) {
		// One level of helper dispatch: tags the delegate's own switch
		// handles count as handled here.
		for _, call := range bodyCalls(deflt.Body) {
			fn := staticCallee(pass.Info, call)
			info := pass.Prog.FuncOf(fn)
			if info == nil || info.Decl.Body == nil {
				continue
			}
			ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
				inner, ok := n.(*ast.SwitchStmt)
				if !ok || inner.Tag == nil || tagEnumType(info.Pkg.Info, inner.Tag) != named {
					return true
				}
				delegated = true
				for _, clause := range inner.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok || cc.List == nil {
						continue
					}
					for _, e := range cc.List {
						if tv, ok := info.Pkg.Info.Types[e]; ok && tv.Value != nil {
							handled[tv.Value.ExactString()] = true
						}
					}
				}
				return true
			})
		}
	}
	var missing []string
	for _, tag := range tags {
		if !handled[tag.Val().ExactString()] {
			missing = append(missing, tag.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	if deflt != nil && failingBody(pass, deflt.Body) {
		return
	}
	typeName := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	switch {
	case deflt == nil:
		pass.Reportf(sw.Pos(), "tag switch over %s does not handle %s and has no default; handle every declared tag, or refuse unknown ones in a failing default", typeName, strings.Join(missing, ", "))
	case delegated:
		pass.Reportf(sw.Pos(), "tag switch over %s does not handle %s even counting the helper its default dispatches to, and the default does not fail; cover every declared tag or return an error", typeName, strings.Join(missing, ", "))
	default:
		pass.Reportf(sw.Pos(), "tag switch over %s does not handle %s and its default does not fail; a new message type would be swallowed silently — cover every tag or return an error in default", typeName, strings.Join(missing, ", "))
	}
}

// bodyCalls lists the calls made directly in stmts (not inside nested
// function literals).
func bodyCalls(stmts []ast.Stmt) []*ast.CallExpr {
	var calls []*ast.CallExpr
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				calls = append(calls, n)
			}
			return true
		})
	}
	return calls
}

// failingBody reports whether the statement list visibly refuses its
// input: a return, panic, fatal log, process exit or goto on some
// statement path. Nested function literals do not count.
func failingBody(pass *Pass, stmts []ast.Stmt) bool {
	failing := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				failing = true
			case *ast.BranchStmt:
				if n.Tok.String() == "goto" {
					failing = true
				}
			case *ast.CallExpr:
				if isFailCall(pass, n) {
					failing = true
				}
			}
			return !failing
		})
		if failing {
			return true
		}
	}
	return false
}

func isFailCall(pass *Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "os" && name == "Exit":
		return true
	case pkg == "log" && strings.HasPrefix(name, "Fatal"):
		return true
	case pkg == "runtime" && name == "Goexit":
		return true
	}
	return false
}
