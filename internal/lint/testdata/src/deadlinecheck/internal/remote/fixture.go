// Fixture for the deadlinecheck analyzer. The directory path contains
// internal/remote, so the loader-derived import path puts this package in
// the analyzer's live-prototype scope.
package fixture

import (
	"net"
	"time"
)

// bare is the plain true positive: a locally dialed connection read with
// no deadline on any path.
func bare(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	buf := make([]byte, 8)
	_, err = conn.Read(buf) // want `network I/O \(Read\) on "conn" is not bounded by a deadline`
	return err
}

// armed is the negative: the deadline dominates the read.
func armed(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 8)
	_, err = conn.Read(buf)
	return err
}

// oneBranchOnly arms on a single path, so the write is unbounded on the
// fall-through: flagged.
func oneBranchOnly(addr string, patient bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if patient {
		_ = conn.SetDeadline(time.Now().Add(time.Minute))
	}
	_, err = conn.Write([]byte("x")) // want `network I/O \(Write\) on "conn" is not bounded by a deadline`
	return err
}

// arm bounds the caller's connection; the summary records the parameter
// as armed on return.
func arm(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(time.Second))
}

// armedInCallee is the interprocedural negative: the helper sets the
// deadline, satisfying the caller's write.
func armedInCallee(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	arm(conn)
	_, err = conn.Write([]byte("ping"))
	return err
}

// readAll performs I/O on a connection it was handed; arming it is its
// caller's obligation, so readAll itself is clean.
func readAll(conn net.Conn) error {
	buf := make([]byte, 8)
	_, err := conn.Read(buf)
	return err
}

// unarmedHelperCall is the interprocedural positive: the callee reads and
// nobody armed the connection.
func unarmedHelperCall(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return readAll(conn) // want `network I/O \(call to readAll, which does Read\) on "conn" is not bounded by a deadline`
}

// armThenHand chains both summaries: arm's arming covers readAll's I/O.
func armThenHand(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	arm(conn)
	return readAll(conn)
}
