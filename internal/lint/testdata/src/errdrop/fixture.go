// Package errdrop is a gmslint test fixture; the // want comments are
// matched against the analyzer's diagnostics by the harness test.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func drops(f *os.File) {
	mayFail()    // want `error result of mayFail is silently dropped`
	twoResults() // want `error result of twoResults`
	f.Close()    // want `error result of f\.Close`
	f.Sync()     // want `error result of f\.Sync`
}

func fine(f *os.File) {
	_ = mayFail()
	_, _ = twoResults()
	defer f.Close() // deferred cleanup: exempt by convention
	fmt.Println("terminal output is exempt")
	var b strings.Builder
	fmt.Fprintf(&b, "in-memory writers are exempt")
	b.WriteString("x")
	fmt.Fprintln(os.Stderr, "stdio is exempt")
}
