// Fixture for the goloop analyzer. The directory path contains
// internal/remote, so the loader-derived import path puts this package in
// the analyzer's live-prototype scope.
package fixture

// spinForever is the plain true positive: nothing can ever stop this
// goroutine.
func spinForever(work func()) {
	go func() { // want `goroutine has no reachable stop path`
		for {
			work()
		}
	}()
}

// stopChannel is the negative: the stop arm returns out of the loop.
func stopChannel(work func(), stop chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-tick:
				work()
			}
		}
	}()
}

// bounded goroutines just terminate; no stop machinery needed.
func bounded(work func()) {
	go func() {
		for i := 0; i < 3; i++ {
			work()
		}
	}()
}

type pump struct {
	stop chan struct{}
	work func()
}

// run drains until stopped; launched interprocedurally below.
func (p *pump) run() {
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		p.work()
	}
}

// spin has no exit at all.
func (p *pump) spin() {
	for {
		p.work()
	}
}

// launch is the interprocedural negative: the stop path lives in the
// method the go statement resolves to.
func launch(p *pump) { go p.run() }

// launchWrapped follows one level of calls through a literal body.
func launchWrapped(p *pump) {
	go func() {
		p.run()
	}()
}

// launchSpin is the interprocedural positive.
func launchSpin(p *pump) { go p.spin() } // want `goroutine has no reachable stop path`
