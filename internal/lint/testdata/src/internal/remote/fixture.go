// Package remote is a gmslint test fixture for the lockio analyzer: its
// directory sits under a path segment internal/remote, so it is in the
// lock-discipline scope.
package remote

import (
	"net"
	"sync"
	"time"
)

type guarded struct {
	mu   sync.Mutex
	ch   chan int
	conn net.Conn
}

func (g *guarded) badStraightLine() {
	g.mu.Lock()
	time.Sleep(time.Millisecond)        // want `g\.mu held across time\.Sleep`
	g.ch <- 1                           // want `held across a channel send`
	<-g.ch                              // want `held across a channel receive`
	_, _ = g.conn.Read(make([]byte, 1)) // want `held across network I/O \(Read\)`
	g.mu.Unlock()
	time.Sleep(time.Millisecond) // released: fine
}

func (g *guarded) badDeferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `held across a blocking select`
	case <-g.ch:
	case g.ch <- 1:
	}
}

func (g *guarded) condHold(cond bool) {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return
	}
	<-g.ch // want `held across a channel receive`
	g.mu.Unlock()
}

func (g *guarded) earlyUnlockThenBlock(cond bool) {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	<-g.ch // both paths released: fine
}

func (g *guarded) nonBlockingSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // has a default clause: cannot block
	case v := <-g.ch:
		_ = v
	default:
	}
}

func (g *guarded) deadlineAccessorsAreFine(t time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	_ = g.conn.SetWriteDeadline(t)
	_ = g.conn.RemoteAddr()
}
