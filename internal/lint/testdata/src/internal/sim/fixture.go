// Package sim is a gmslint test fixture for the simpurity analyzer: its
// directory sits under a path segment internal/sim, so it is treated as
// model code.
package sim

import (
	"fmt"
	"math/rand" // want `model code imports math/rand`
	"time"
)

func impure(m map[int]int) {
	_ = time.Now()               // want `wall-clock time\.Now`
	_ = time.Since(time.Time{})  // want `wall-clock time\.Since`
	time.Sleep(time.Millisecond) // want `time\.Sleep in model code`
	_ = rand.Intn(4)             // want `global math/rand\.Intn`
	for k, v := range m {
		fmt.Println(k, v) // want `nondeterministic order`
	}
}

func pure(m map[int]int, keys []int) {
	r := rand.New(rand.NewSource(1)) // seeded local generator: allowed
	_ = r.Intn(4)
	sum := 0
	for _, v := range m { // aggregation over a map is order-independent
		sum += v
	}
	for _, k := range keys {
		fmt.Println(k, m[k]) // sorted keys drive the output order
	}
	_ = sum
}
