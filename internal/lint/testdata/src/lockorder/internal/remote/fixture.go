// Fixture for the lockorder analyzer. The directory path contains
// internal/remote, so the loader-derived import path puts this package in
// the analyzer's concurrent-prototype scope.
package fixture

import "sync"

// pair's two mutexes are taken in both orders — the classic inversion.
// Both closing edges are reported.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `acquiring pair\.b while holding pair\.a closes a lock-ordering cycle`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock() // want `acquiring pair\.a while holding pair\.b closes a lock-ordering cycle`
	p.a.Unlock()
	p.b.Unlock()
}

// ordered always takes x before y: a clean global order, no findings,
// with both inline and deferred unlocks.
type ordered struct {
	x sync.Mutex
	y sync.Mutex
}

func (o *ordered) first() {
	o.x.Lock()
	o.y.Lock()
	o.y.Unlock()
	o.x.Unlock()
}

func (o *ordered) second() {
	o.x.Lock()
	defer o.x.Unlock()
	o.y.Lock()
	defer o.y.Unlock()
}

// nested hides one direction of the inversion behind a helper call: the
// callee's acquisition summary extends the caller's held set.
type nested struct {
	m sync.Mutex
	n sync.Mutex
}

func (x *nested) lockN() {
	x.n.Lock()
	x.n.Unlock()
}

func (x *nested) mThenHelper() {
	x.m.Lock()
	x.lockN() // want `acquiring nested\.n while holding nested\.m \(via call to lockN\) closes a lock-ordering cycle`
	x.m.Unlock()
}

func (x *nested) nThenM() {
	x.n.Lock()
	x.m.Lock() // want `acquiring nested\.m while holding nested\.n closes a lock-ordering cycle`
	x.m.Unlock()
	x.n.Unlock()
}

// relock re-acquires a mutex the caller already holds: sync.Mutex is not
// reentrant, so this is a guaranteed self-deadlock.
type relock struct {
	mu sync.Mutex
}

func (r *relock) again() {
	r.mu.Lock()
	r.mu.Unlock()
}

func (r *relock) outer() {
	r.mu.Lock()
	r.again() // want `relock\.mu is acquired while already held \(via call to again\)`
	r.mu.Unlock()
}

// handoff unlocks before re-acquiring (the evictIfFull pattern): its
// summary contributes no edge, so callers holding handoff.mu are clean.
type handoff struct {
	mu sync.Mutex
}

func (h *handoff) dropAndRetake() {
	h.mu.Unlock()
	h.mu.Lock()
}

func (h *handoff) caller() {
	h.mu.Lock()
	h.dropAndRetake()
	h.mu.Unlock()
}
