// Fixture for the tagswitch analyzer.
package fixture

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/lint/testdata/src/tagswitch/internal/proto"
)

// missingArm drops TDelta and TEpsilon with no default — exactly what
// deleting case arms from a protocol switch looks like.
func missingArm(t proto.Type) int {
	switch t { // want `tag switch over proto\.Type does not handle TDelta, TEpsilon and has no default`
	case proto.TAlpha:
		return 1
	case proto.TBeta:
		return 2
	case proto.TGamma:
		return 3
	}
	return 0
}

// droppedV2Arm models deleting only the newest revision's tag: the switch
// was exhaustive until TEpsilon arrived (or until its arm was deleted).
func droppedV2Arm(t proto.Type) int {
	switch t { // want `tag switch over proto\.Type does not handle TEpsilon and has no default`
	case proto.TAlpha, proto.TBeta:
		return 1
	case proto.TGamma, proto.TDelta:
		return 2
	}
	return 0
}

// exhaustive is the negative: every declared tag handled, no default
// needed.
func exhaustive(t proto.Type) int {
	switch t {
	case proto.TAlpha, proto.TBeta:
		return 1
	case proto.TGamma:
		return 2
	case proto.TDelta:
		return 3
	case proto.TEpsilon:
		return 4
	}
	return 0
}

// failingDefault is the second negative: missing tags are fine when the
// default path visibly refuses them.
func failingDefault(t proto.Type) error {
	switch t {
	case proto.TAlpha:
		return nil
	default:
		return fmt.Errorf("unexpected tag %d", t)
	}
}

// silentDefault neither covers every tag nor fails: a new tag would be
// swallowed.
func silentDefault(t proto.Type) int {
	n := 0
	switch t { // want `does not handle TBeta, TGamma, TDelta, TEpsilon and its default does not fail`
	case proto.TAlpha:
		n = 1
	default:
		n = 2
	}
	return n
}

// dispatchRest handles the back half of the tag space on behalf of
// delegating switches; its own default still fails.
func dispatchRest(t proto.Type) error {
	switch t {
	case proto.TGamma, proto.TDelta, proto.TEpsilon:
		return nil
	default:
		return fmt.Errorf("unexpected tag %d", t)
	}
}

// viaHelper is the interprocedural negative: the default delegates to
// dispatchRest, and the two switches together cover every tag.
func viaHelper(t proto.Type) {
	switch t {
	case proto.TAlpha, proto.TBeta:
	default:
		_ = dispatchRest(t)
	}
}

// shortDispatch covers too little for the delegation below to be total.
func shortDispatch(t proto.Type) error {
	switch t {
	case proto.TGamma:
		return nil
	default:
		return fmt.Errorf("unexpected tag %d", t)
	}
}

// viaHelperIncomplete still misses TBeta, TDelta and TEpsilon even
// counting the helper it dispatches to.
func viaHelperIncomplete(t proto.Type) {
	switch t { // want `does not handle TBeta, TDelta, TEpsilon even counting the helper`
	case proto.TAlpha:
	default:
		_ = shortDispatch(t)
	}
}
