// Package proto is a miniature message-tag package for the tagswitch
// fixture: the analyzer keys on named integer enum types declared in a
// package whose import path contains internal/proto, so this stands in
// for the real wire protocol.
package proto

// Type identifies a fixture message.
type Type uint8

// Fixture message tags. TEpsilon stands in for a tag appended by a
// protocol revision (the batched v2 frames): every switch below either
// handles it, fails on it, or is flagged.
const (
	TAlpha Type = iota + 1
	TBeta
	TGamma
	TDelta
	TEpsilon
)
