// Package proto is a miniature message-tag package for the tagswitch
// fixture: the analyzer keys on named integer enum types declared in a
// package whose import path contains internal/proto, so this stands in
// for the real wire protocol.
package proto

// Type identifies a fixture message.
type Type uint8

// Fixture message tags.
const (
	TAlpha Type = iota + 1
	TBeta
	TGamma
	TDelta
)
