// Package unitsafety is a gmslint test fixture; the // want comments are
// matched against the analyzer's diagnostics by the harness test.
package unitsafety

import (
	"time"

	"github.com/gms-sim/gmsubpage/internal/units"
)

func illegal(t units.Ticks, n units.Nanos, d time.Duration, other units.Ticks) {
	_ = units.Nanos(t)        // want `conversion from units\.Ticks to units\.Nanos`
	_ = units.Ticks(n)        // want `conversion from units\.Nanos to units\.Ticks`
	_ = time.Duration(t)      // want `conversion from units\.Ticks to time\.Duration`
	_ = units.Nanos(d)        // want `crosses the model-time/wall-clock boundary`
	_ = units.Nanos(int64(d)) // want `via int64`
	_ = units.Ticks(int64(n)) // want `via int64`
	_ = t * other             // want `squared time units`
}

func legal(t units.Ticks, n units.Nanos, d time.Duration, count int) {
	_ = n.ToTicks()
	_ = t.ToNanos()
	_ = units.FromDuration(d)
	_ = n.Duration()
	_ = 2 * n
	_ = t * units.Ticks(3)
	_ = t * units.Ticks(count) // dimensionless count lifted into the type
	_ = int64(t)
	_ = units.Nanos(count)
}
