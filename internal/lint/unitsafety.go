package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Unitsafety guards the event-clock/wall-clock unit boundary.
//
// units.Ticks counts 12 ns memory-reference events while units.Nanos and
// time.Duration count nanoseconds, so a conversion between them that does
// not go through the blessed helpers (ToTicks, ToNanos, FromMs,
// FromDuration, Duration) silently rescales every latency by 12x — exactly
// the class of accounting bug that invalidates a latency study. The
// analyzer flags direct conversions between the three time-like types
// (including conversions laundered through a plain integer type) and
// multiplications of two time-valued operands (squared units). The units
// package itself is the boundary and is exempt.
var Unitsafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "conversions and arithmetic that cross the Ticks/Nanos/time.Duration unit boundary",
	Run:  runUnitsafety,
}

// timeKind names the time-like unit of t, or "" for everything else.
func timeKind(t types.Type) string {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "time" && obj.Name() == "Duration":
		return "time.Duration"
	case pathHasSegment(obj.Pkg().Path(), "internal/units") &&
		(obj.Name() == "Ticks" || obj.Name() == "Nanos"):
		return "units." + obj.Name()
	}
	return ""
}

func runUnitsafety(pass *Pass) {
	if pathHasSegment(pass.Path, "internal/units") {
		return // the blessed conversion boundary
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkUnitConversion(pass, e)
			case *ast.BinaryExpr:
				checkUnitMul(pass, e)
			}
			return true
		})
	}
}

// conversionOf reports whether e is a conversion expression T(x), and if
// so returns the destination type and the operand.
func conversionOf(pass *Pass, e *ast.CallExpr) (types.Type, ast.Expr, bool) {
	if len(e.Args) != 1 {
		return nil, nil, false
	}
	tv, ok := pass.Info.Types[e.Fun]
	if !ok || !tv.IsType() {
		return nil, nil, false
	}
	return tv.Type, e.Args[0], true
}

// timeSource resolves the time-like unit an expression carries, unwrapping
// conversions through plain integer types so that units.Nanos(int64(d)) is
// still seen as sourced from time.Duration. via names the laundering type,
// if any.
func timeSource(pass *Pass, e ast.Expr) (kind, via string) {
	e = ast.Unparen(e)
	if k := timeKind(pass.Info.Types[e].Type); k != "" {
		return k, ""
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	dst, arg, ok := conversionOf(pass, call)
	if !ok {
		return "", ""
	}
	if b, ok := types.Unalias(dst).(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return "", ""
	}
	if k, _ := timeSource(pass, arg); k != "" {
		return k, dst.String()
	}
	return "", ""
}

func checkUnitConversion(pass *Pass, e *ast.CallExpr) {
	dstType, arg, ok := conversionOf(pass, e)
	if !ok {
		return
	}
	dst := timeKind(dstType)
	if dst == "" {
		return
	}
	src, via := timeSource(pass, arg)
	if src == "" || src == dst {
		return
	}
	through := ""
	if via != "" {
		through = " via " + via
	}
	if (src == "units.Ticks") != (dst == "units.Ticks") {
		pass.Reportf(e.Pos(), "conversion from %s to %s%s rescales time by the 12 ns event size; use the units helpers (ToTicks/ToNanos)", src, dst, through)
		return
	}
	// Nanos <-> Duration is numerically safe but crosses the model
	// time / wall-clock boundary the units package exists to enforce.
	pass.Reportf(e.Pos(), "conversion from %s to %s%s crosses the model-time/wall-clock boundary; use units.FromDuration or Nanos.Duration", src, dst, through)
}

// liftedScale reports whether e is a conversion of a dimensionless value
// into a time-like type (the only way Go lets you scale a typed quantity,
// e.g. t * units.Ticks(n)).
func liftedScale(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	dst, arg, ok := conversionOf(pass, call)
	if !ok || timeKind(dst) == "" {
		return false
	}
	k, _ := timeSource(pass, arg)
	return k == ""
}

func checkUnitMul(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.MUL {
		return
	}
	tx, ty := pass.Info.Types[e.X], pass.Info.Types[e.Y]
	kx, ky := timeKind(tx.Type), timeKind(ty.Type)
	if kx == "" || kx != ky {
		return
	}
	if tx.Value != nil || ty.Value != nil {
		return // a constant operand is a scale factor, not a time value
	}
	if liftedScale(pass, e.X) || liftedScale(pass, e.Y) {
		return // explicit lift of a dimensionless count into the unit type
	}
	pass.Reportf(e.Pos(), "multiplying %s by %s yields squared time units; one operand should be a dimensionless scalar", kx, ky)
}
