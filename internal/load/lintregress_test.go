package load

import (
	"net"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/proto"
)

// TestStormWorkerBoundedBySilentShard pins the deadlinecheck fix in the
// storm loop: a shard that accepts the connection and then never answers a
// lookup must fail the worker within the storm deadline plus grace, not
// hang its Next read forever (which used to wedge the whole harness run).
func TestStormWorkerBoundedBySilentShard(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, read nothing, answer nothing.
			defer conn.Close()
		}
	}()

	m := proto.ShardMap{Version: 1, Shards: []string{ln.Addr().String()}}
	ring := proto.NewRing(m)
	if ring == nil {
		t.Fatal("single-shard map should build a ring")
	}
	cfg := Config{Pages: 8, Seed: 1}
	deadline := time.Now().Add(100 * time.Millisecond)

	type result struct {
		ops int
		err error
	}
	done := make(chan result, 1)
	go func() {
		ops, err := stormWorker(cfg, m, ring, 0, deadline)
		done <- result{ops, err}
	}()
	select {
	case res := <-done:
		if res.err == nil {
			t.Fatalf("stormWorker finished %d ops cleanly against a shard that never answered", res.ops)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("stormWorker hung on a silent shard; the op deadline did not fire")
	}
}
