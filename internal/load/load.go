// Package load is the closed-loop load harness for the networked
// prototype: it stands up a real multi-shard directory cluster, real page
// servers, and a fleet of real faulting clients, then drives them through
// two measured phases:
//
//  1. A lookup storm — raw protocol connections hammering the directory
//     control plane, routed by the shard ring. This is the scale
//     experiment: directory throughput should grow with the shard count.
//  2. A fault phase — remote.Clients taking page faults closed-loop (each
//     worker issues its next fault when the last completes) or open-loop
//     at a target request rate, yielding the throughput and p50/p99/p999
//     fault-latency numbers the SLO table reports.
//
// Everything is in-process but nothing is simulated: every lookup and
// every page travels through the real TCP protocol stack. On a one-CPU
// host the shards' parallelism cannot come from hardware, so scale runs
// set Config.DirService to emulate each shard's bounded per-lookup
// service capacity (remote.DirectoryConfig.LookupService), the same
// emulation precedent as Server.SetWireMbps.
package load

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirshard"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/remote"
	"github.com/gms-sim/gmsubpage/internal/rng"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// stormGrace bounds every storm dial and, added to the storm deadline,
// every lookup exchange: in-flight operations get this long past the end
// of the measurement window before a silent shard turns into an error.
const stormGrace = 2 * time.Second

// Config sizes one load run. Zero fields select the defaults noted.
type Config struct {
	Shards  int // directory shards (default 1)
	Servers int // page servers (default 2)
	Pages   int // pages in the global set (default 512)

	// Lookup-storm phase.
	Workers     int           // storm connections (default 8)
	Duration    time.Duration // storm length (default 1s)
	LookupPause time.Duration // per-op client-side pause, 0 = none

	// Fault phase.
	Clients  int     // faulting clients (default 8)
	Requests int     // faults per client (default 200)
	RPS      float64 // open-loop total fault rate; 0 = closed loop

	// Cluster shaping.
	SubpageSize int           // client transfer granularity (default 1024)
	Policy      uint8         // transfer policy (default eager)
	Prefetch    bool          // learned prefetcher: predictions in v2 want bitmaps (overrides Policy with lazy)
	CachePages  int           // client cache pages (default 64)
	DirService  time.Duration // emulated per-lookup service time, 0 = off

	// Warmup makes each fault client walk its fault sequence once,
	// unmeasured, before the clock starts: directory answers are cached,
	// so the measured phase times the wire fault path rather than the
	// (service-emulated) lookup control plane. Pair it with a small
	// CachePages so warmed pages do not simply hit in cache.
	Warmup bool
	// WireV1 pins the fault clients to the pre-batching v1 wire; the
	// protowire experiment runs the same phase both ways.
	WireV1 bool

	Seed uint64 // base seed for page choice (default 1)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.Pages <= 0 {
		c.Pages = 512
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.SubpageSize <= 0 {
		c.SubpageSize = 1024
	}
	if c.Policy == 0 {
		c.Policy = proto.PolicyEager
	}
	if c.CachePages <= 0 {
		c.CachePages = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one run's measurements.
type Result struct {
	Shards  int `json:"shards"`
	Servers int `json:"servers"`
	Pages   int `json:"pages"`

	// Lookup storm.
	LookupOps  int     `json:"lookup_ops"`
	LookupSecs float64 `json:"lookup_secs"`
	LookupRate float64 `json:"lookup_rate"` // lookups per second

	// Fault phase.
	Faults    int     `json:"faults"`
	FaultSecs float64 `json:"fault_secs"`
	FaultRate float64 `json:"fault_rate"` // faults per second
	MeanUs    float64 `json:"mean_us"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	P999Us    float64 `json:"p999_us"`
	MaxUs     float64 `json:"max_us"`

	// Client-side control-plane accounting, summed over the fleet.
	WrongShard   int64 `json:"wrong_shard"`
	MapRefreshes int64 `json:"map_refreshes"`
	Retries      int64 `json:"retries"`
	BytesIn      int64 `json:"bytes_in"`
}

// Run executes one full load run against a fresh cluster.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Shards: cfg.Shards, Servers: cfg.Servers, Pages: cfg.Pages}

	cl, err := startCluster(cfg)
	if err != nil {
		return res, err
	}
	defer cl.Close()

	if err := lookupStorm(cfg, cl.shards.Map(), &res); err != nil {
		return res, err
	}
	if err := faultPhase(cfg, cl.shards.Bootstrap(), &res); err != nil {
		return res, err
	}
	return res, nil
}

// WireResult is the protowire experiment: the same warmed fault phase over
// the v1 wire (one frame per fragment) and the batched v2 wire, on one
// cluster.
type WireResult struct {
	V1       Result  `json:"v1"`
	V2       Result  `json:"v2"`
	SpeedupX float64 `json:"speedup_x"` // v2 fault rate over v1
}

// RunWire executes the fault phase twice against one fresh cluster —
// pinned to the v1 wire, then on batched v2 — and reports both plus the
// throughput ratio. Warmup is forced on: the comparison targets the wire
// path, not the directory control plane.
func RunWire(cfg Config) (WireResult, error) {
	cfg = cfg.withDefaults()
	cfg.Warmup = true
	var wr WireResult
	cl, err := startCluster(cfg)
	if err != nil {
		return wr, err
	}
	defer cl.Close()

	for _, v1 := range []bool{true, false} {
		c := cfg
		c.WireV1 = v1
		res := Result{Shards: cfg.Shards, Servers: cfg.Servers, Pages: cfg.Pages}
		if err := faultPhase(c, cl.shards.Bootstrap(), &res); err != nil {
			return wr, err
		}
		if v1 {
			wr.V1 = res
		} else {
			wr.V2 = res
		}
	}
	if wr.V1.FaultRate > 0 {
		wr.SpeedupX = wr.V2.FaultRate / wr.V1.FaultRate
	}
	return wr, nil
}

// cluster is one started load cluster: the sharded directory plus the
// registered page servers.
type cluster struct {
	shards  *dirshard.Cluster
	servers []*remote.Server
}

func (cl *cluster) Close() {
	for _, s := range cl.servers {
		_ = s.Close()
	}
	if cl.shards != nil {
		_ = cl.shards.Close()
	}
}

// startCluster stands the cluster up and stores the page set.
func startCluster(cfg Config) (*cluster, error) {
	shards, err := dirshard.StartCluster(cfg.Shards, dirshard.Config{LookupService: cfg.DirService})
	if err != nil {
		return nil, err
	}
	cl := &cluster{shards: shards}
	for i := 0; i < cfg.Servers; i++ {
		s, err := remote.ListenServer("127.0.0.1:0")
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.servers = append(cl.servers, s)
	}
	page := make([]byte, units.PageSize)
	for p := 0; p < cfg.Pages; p++ {
		for i := range page {
			page[i] = byte(uint64(p)*131 + uint64(i)*7)
		}
		cl.servers[p%cfg.Servers].Store(uint64(p), page)
	}
	for _, s := range cl.servers {
		if err := s.RegisterWith(shards.Bootstrap()); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// lookupStorm drives raw lookup RPCs at the cluster from cfg.Workers
// connections-per-shard worker loops for cfg.Duration and records the
// aggregate rate.
func lookupStorm(cfg Config, m proto.ShardMap, res *Result) error {
	ring := proto.NewRing(m)
	deadline := time.Now().Add(cfg.Duration)
	ops := make([]int, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops[w], errs[w] = stormWorker(cfg, m, ring, uint64(w), deadline)
		}(w)
	}
	wg.Wait()
	res.LookupSecs = time.Since(start).Seconds()
	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("load: storm worker %d: %w", w, err)
		}
		res.LookupOps += ops[w]
	}
	if res.LookupSecs > 0 {
		res.LookupRate = float64(res.LookupOps) / res.LookupSecs
	}
	return nil
}

// stormWorker is one storm loop: a private connection to every shard,
// lookups for seeded-random pages routed by ring owner.
func stormWorker(cfg Config, m proto.ShardMap, ring *proto.Ring, id uint64, deadline time.Time) (int, error) {
	type shardConn struct {
		c net.Conn
		w *proto.Writer
		r *proto.Reader
	}
	conns := make(map[string]shardConn)
	raw := make([]net.Conn, 0, len(m.Shards))
	defer func() {
		for _, c := range raw {
			_ = c.Close()
		}
	}()

	// Every connection runs under a deadline a little past the storm's
	// end: a shard that stops answering fails the worker (and surfaces in
	// the harness output) instead of hanging the whole run on one Next.
	opDeadline := deadline.Add(stormGrace)
	r := rng.New(cfg.Seed*1_000_003 + id)
	ops := 0
	for time.Now().Before(deadline) {
		page := uint64(r.Intn(cfg.Pages))
		addr := ring.OwnerAddr(page)
		sc, ok := conns[addr]
		if !ok {
			c, err := net.DialTimeout("tcp", addr, stormGrace)
			if err != nil {
				return ops, err
			}
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(true)
			}
			raw = append(raw, c)
			sc = shardConn{c: c, w: proto.NewWriter(c), r: proto.NewReader(c)}
			conns[addr] = sc
		}
		_ = sc.c.SetDeadline(opDeadline)
		if err := sc.w.SendLookup(proto.Lookup{Page: page}); err != nil {
			return ops, err
		}
		f, err := sc.r.Next()
		if err != nil {
			return ops, err
		}
		if f.Type != proto.TLookupReply {
			return ops, fmt.Errorf("shard %s answered %v to an owned lookup", addr, f.Type)
		}
		ops++
		if cfg.LookupPause > 0 {
			time.Sleep(cfg.LookupPause)
		}
	}
	return ops, nil
}

// faultPhase runs cfg.Clients real faulting clients, each taking
// cfg.Requests page faults, and folds their latencies into the result.
// Closed loop by default; cfg.RPS > 0 schedules fault starts at the
// target aggregate rate and measures from the scheduled start, so queueing
// delay from a saturated cluster is charged to latency rather than
// silently stretching the run (the coordinated-omission correction).
func faultPhase(cfg Config, bootstrap string, res *Result) error {
	clients := make([]*remote.Client, cfg.Clients)
	for i := range clients {
		c, err := remote.Dial(remote.ClientConfig{
			Directory:   bootstrap,
			Policy:      cfg.Policy,
			Prefetch:    cfg.Prefetch,
			SubpageSize: cfg.SubpageSize,
			CachePages:  cfg.CachePages,
			WireV1:      cfg.WireV1,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		clients[i] = c
	}

	if cfg.Warmup {
		// One unmeasured pass over each worker's fault sequence: location
		// answers cache client-side, so the measured loop below is not
		// queued behind the emulated lookup service.
		werrs := make([]error, cfg.Clients)
		var wwg sync.WaitGroup
		for i := range clients {
			wwg.Add(1)
			go func(i int) {
				defer wwg.Done()
				werrs[i] = warmWorker(cfg, clients[i], uint64(i))
			}(i)
		}
		wwg.Wait()
		for i, err := range werrs {
			if err != nil {
				return fmt.Errorf("load: warmup client %d: %w", i, err)
			}
		}
	}

	var interval time.Duration
	if cfg.RPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Clients) / cfg.RPS)
	}
	lats := make([][]float64, cfg.Clients)
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lats[i], errs[i] = faultWorker(cfg, clients[i], uint64(i), interval)
		}(i)
	}
	wg.Wait()
	res.FaultSecs = time.Since(start).Seconds()

	all := &stats.Summary{}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("load: fault client %d: %w", i, err)
		}
		for _, v := range lats[i] {
			all.Add(v)
		}
		st := clients[i].Stats()
		res.WrongShard += st.WrongShard
		res.MapRefreshes += st.MapRefreshes
		res.Retries += st.Retries
		res.BytesIn += st.BytesIn
	}
	res.Faults = all.N()
	if res.FaultSecs > 0 {
		res.FaultRate = float64(res.Faults) / res.FaultSecs
	}
	res.MeanUs = all.Mean()
	res.P50Us = all.Percentile(50)
	res.P99Us = all.Percentile(99)
	res.P999Us = all.Percentile(99.9)
	res.MaxUs = all.Max()
	return nil
}

// warmWorker walks one client through the exact page sequence its
// measured faultWorker run will draw (same seed), so every directory
// lookup the measured phase would need is already answered and cached.
// The page data itself mostly will not survive in a cache smaller than the
// distinct-page count — which is the point: the measured reads still
// fault, but over a warm control plane.
func warmWorker(cfg Config, c *remote.Client, id uint64) error {
	r := rng.New(cfg.Seed*7_777_777 + id)
	seen := make(map[uint64]bool, cfg.Requests)
	buf := make([]byte, 64)
	for n := 0; n < cfg.Requests; n++ {
		page := uint64(r.Intn(cfg.Pages))
		if seen[page] {
			continue
		}
		seen[page] = true
		if err := c.Read(buf, page*uint64(units.PageSize)); err != nil {
			return err
		}
	}
	return nil
}

// faultWorker issues cfg.Requests faults from one client, returning the
// per-fault latencies in microseconds. Reads walk a seeded-random page
// sequence; with a cache far smaller than the page set, effectively every
// read is a genuine remote fault.
func faultWorker(cfg Config, c *remote.Client, id uint64, interval time.Duration) ([]float64, error) {
	r := rng.New(cfg.Seed*7_777_777 + id)
	lats := make([]float64, 0, cfg.Requests)
	buf := make([]byte, 64)
	var next time.Time
	if interval > 0 {
		// Stagger open-loop schedules so the fleet doesn't fire in phase.
		next = time.Now().Add(interval * time.Duration(id) / time.Duration(cfg.Clients))
	}
	for n := 0; n < cfg.Requests; n++ {
		started := time.Now()
		if interval > 0 {
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			}
			started = next // scheduled start: queueing counts as latency
			next = next.Add(interval)
		}
		page := uint64(r.Intn(cfg.Pages))
		if err := c.Read(buf, page*uint64(units.PageSize)); err != nil {
			return lats, err
		}
		lats = append(lats, float64(time.Since(started).Nanoseconds())/1e3) // µs
	}
	return lats, nil
}
