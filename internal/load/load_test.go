package load

import (
	"testing"
	"time"
)

// TestRunSmoke drives one small closed-loop run end to end and checks
// the result's internal consistency.
func TestRunSmoke(t *testing.T) {
	res, err := Run(Config{
		Shards:   2,
		Servers:  2,
		Pages:    64,
		Workers:  4,
		Duration: 150 * time.Millisecond,
		Clients:  4,
		Requests: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LookupOps == 0 || res.LookupRate <= 0 {
		t.Fatalf("storm did nothing: %+v", res)
	}
	if res.Faults != 4*30 {
		t.Fatalf("Faults = %d, want %d", res.Faults, 4*30)
	}
	if res.FaultRate <= 0 {
		t.Fatalf("FaultRate = %v, want > 0", res.FaultRate)
	}
	if !(res.P50Us <= res.P99Us && res.P99Us <= res.P999Us && res.P999Us <= res.MaxUs) {
		t.Fatalf("percentiles out of order: p50=%v p99=%v p999=%v max=%v",
			res.P50Us, res.P99Us, res.P999Us, res.MaxUs)
	}
	if res.WrongShard != 0 {
		t.Fatalf("fresh clients took %d TWrongShard bounces", res.WrongShard)
	}
	if res.MapRefreshes != int64(4) {
		t.Fatalf("MapRefreshes = %d, want one per client", res.MapRefreshes)
	}
}

// TestRunOpenLoop exercises the scheduled-start (open loop) path: the
// measured rate should land near the configured one when the cluster is
// far from saturation, and never above the schedule.
func TestRunOpenLoop(t *testing.T) {
	res, err := Run(Config{
		Shards:   1,
		Servers:  1,
		Pages:    32,
		Workers:  2,
		Duration: 50 * time.Millisecond,
		Clients:  2,
		Requests: 20,
		RPS:      400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 2*20 {
		t.Fatalf("Faults = %d, want %d", res.Faults, 2*20)
	}
	// 40 faults at 400/s is a 100ms schedule; allow generous slop for a
	// loaded CI machine but catch a broken scheduler that runs closed
	// loop (which would finish in a few ms).
	if res.FaultSecs < 0.05 {
		t.Fatalf("open-loop run finished in %.0fms; scheduler not pacing", res.FaultSecs*1000)
	}
}

// TestScalingWithServiceEmulation pins the point of the harness: with
// each shard's lookup capacity bounded by DirService, 4 shards must serve
// materially more lookups per second than 1. The make-loadtest target
// asserts the full >=3x criterion with longer runs; this smoke keeps the
// bar low enough to never flake in CI.
func TestScalingWithServiceEmulation(t *testing.T) {
	run := func(shards int) float64 {
		res, err := Run(Config{
			Shards:     shards,
			Servers:    1,
			Pages:      256,
			Workers:    8,
			Duration:   250 * time.Millisecond,
			Clients:    1,
			Requests:   1,
			DirService: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LookupRate
	}
	r1 := run(1)
	r4 := run(4)
	if r4 < 1.5*r1 {
		t.Fatalf("4 shards served %.0f lookups/s vs %.0f on 1 shard; want >= 1.5x", r4, r1)
	}
}
