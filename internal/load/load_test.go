package load

import (
	"testing"
	"time"
)

// TestRunSmoke drives one small closed-loop run end to end and checks
// the result's internal consistency.
func TestRunSmoke(t *testing.T) {
	res, err := Run(Config{
		Shards:   2,
		Servers:  2,
		Pages:    64,
		Workers:  4,
		Duration: 150 * time.Millisecond,
		Clients:  4,
		Requests: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LookupOps == 0 || res.LookupRate <= 0 {
		t.Fatalf("storm did nothing: %+v", res)
	}
	if res.Faults != 4*30 {
		t.Fatalf("Faults = %d, want %d", res.Faults, 4*30)
	}
	if res.FaultRate <= 0 {
		t.Fatalf("FaultRate = %v, want > 0", res.FaultRate)
	}
	if !(res.P50Us <= res.P99Us && res.P99Us <= res.P999Us && res.P999Us <= res.MaxUs) {
		t.Fatalf("percentiles out of order: p50=%v p99=%v p999=%v max=%v",
			res.P50Us, res.P99Us, res.P999Us, res.MaxUs)
	}
	if res.WrongShard != 0 {
		t.Fatalf("fresh clients took %d TWrongShard bounces", res.WrongShard)
	}
	if res.MapRefreshes != int64(4) {
		t.Fatalf("MapRefreshes = %d, want one per client", res.MapRefreshes)
	}
}

// TestRunOpenLoop exercises the scheduled-start (open loop) path: the
// measured rate should land near the configured one when the cluster is
// far from saturation, and never above the schedule.
func TestRunOpenLoop(t *testing.T) {
	res, err := Run(Config{
		Shards:   1,
		Servers:  1,
		Pages:    32,
		Workers:  2,
		Duration: 50 * time.Millisecond,
		Clients:  2,
		Requests: 20,
		RPS:      400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 2*20 {
		t.Fatalf("Faults = %d, want %d", res.Faults, 2*20)
	}
	// 40 faults at 400/s is a 100ms schedule; allow generous slop for a
	// loaded CI machine but catch a broken scheduler that runs closed
	// loop (which would finish in a few ms).
	if res.FaultSecs < 0.05 {
		t.Fatalf("open-loop run finished in %.0fms; scheduler not pacing", res.FaultSecs*1000)
	}
}

// TestScalingWithServiceEmulation pins the point of the harness: with
// each shard's lookup capacity bounded by DirService, 4 shards must serve
// materially more lookups per second than 1. The make-loadtest target
// asserts the full >=3x criterion with longer runs; this smoke keeps the
// bar low enough to never flake in CI.
func TestScalingWithServiceEmulation(t *testing.T) {
	run := func(shards int) float64 {
		res, err := Run(Config{
			Shards:     shards,
			Servers:    1,
			Pages:      256,
			Workers:    8,
			Duration:   250 * time.Millisecond,
			Clients:    1,
			Requests:   1,
			DirService: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LookupRate
	}
	r1 := run(1)
	r4 := run(4)
	if r4 < 1.5*r1 {
		t.Fatalf("4 shards served %.0f lookups/s vs %.0f on 1 shard; want >= 1.5x", r4, r1)
	}
}

// TestRunSoak is the kill-anything crash soak at test scale: five
// directory kill/restart cycles under live fault load. RunSoak enforces
// the invariants itself (no hangs, bounded re-registrations, no
// stale-epoch resurrection, every page resolvable after the last
// restart); the test checks the ledger is coherent on top.
func TestRunSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak takes a few seconds")
	}
	res, err := RunSoak(SoakConfig{
		Servers:    2,
		Pages:      128,
		Clients:    4,
		Crashes:    5,
		CrashEvery: 250 * time.Millisecond,
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("soak failed after %d crashes: %v (result %+v)", res.Crashes, err, res)
	}
	if res.Crashes != 5 {
		t.Fatalf("completed %d crashes, want 5", res.Crashes)
	}
	if res.Reads == 0 {
		t.Fatal("soak issued no reads")
	}
	if res.Recovered == 0 && res.Reregs == 0 {
		t.Fatal("final restart neither recovered servers from the journal nor saw a re-registration")
	}
	t.Logf("soak: %d reads (%d errs, max %.0fµs) across %d crashes; %d reregs, %d recovered",
		res.Reads, res.ReadErrs, res.MaxReadUs, res.Crashes, res.Reregs, res.Recovered)
}
