package load

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/remote"
	"github.com/gms-sim/gmsubpage/internal/rng"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// SoakConfig sizes one kill-anything crash soak: a durable directory is
// crashed and restarted in place, repeatedly, under continuous fault
// load. Zero fields select the defaults noted.
type SoakConfig struct {
	Servers int // page servers (default 2)
	Pages   int // pages in the global set (default 256)
	Clients int // error-tolerant faulting clients (default 4)

	Crashes    int           // directory kill/restart cycles (default 5)
	CrashEvery time.Duration // load time between kills (default 300ms)
	Downtime   time.Duration // directory dead time per cycle (default 50ms)
	LeaseTTL   time.Duration // directory lease TTL (default 2s)

	JournalDir string             // journal directory (required)
	Fsync      dirlog.FsyncPolicy // fsync policy (default interval)
	SnapEvery  int                // snapshot threshold (default dirlog's)

	// HangBound fails the soak if any single read — including every
	// retry inside it — takes longer than this (default 15s). This is
	// the "zero client hangs" assertion: a crashed directory may fail a
	// read, never wedge it.
	HangBound time.Duration

	Seed uint64 // base seed for page choice (default 1)
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.Pages <= 0 {
		c.Pages = 256
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Crashes <= 0 {
		c.Crashes = 5
	}
	if c.CrashEvery <= 0 {
		c.CrashEvery = 300 * time.Millisecond
	}
	if c.Downtime <= 0 {
		c.Downtime = 50 * time.Millisecond
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Second
	}
	if c.HangBound <= 0 {
		c.HangBound = 15 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SoakResult is one crash soak's ledger.
type SoakResult struct {
	Crashes   int     `json:"crashes"`     // kill/restart cycles completed
	Elapsed   float64 `json:"elapsed_s"`   // wall time of the whole soak
	Reads     int64   `json:"reads"`       // client reads issued
	ReadErrs  int64   `json:"read_errs"`   // reads that failed (bounded, never hung)
	MaxReadUs float64 `json:"max_read_us"` // slowest single read incl. retries
	Reregs    int64   `json:"reregs"`      // full re-registrations across the server fleet
	Recovered int     `json:"recovered"`   // registrations the final restart recovered

	// Final-recovery journal accounting.
	WalRecords  int   `json:"wal_records"`
	WalBytes    int64 `json:"wal_bytes"`
	SnapRecords int   `json:"snap_records"`
}

// RunSoak crashes a durable directory out from under a live fault load,
// Crashes times, and proves the recovery story holds: clients see bounded
// errors (never hangs), servers re-register at most once per restart (no
// re-registration storm — the journal remembers them), and a stale epoch
// can no more resurrect after the restarts than before the first.
//
// The invariants themselves are enforced here — RunSoak returns an error
// when one breaks — so callers (the soak test, gmsload -soak, make
// soak-smoke) share one set of teeth.
func RunSoak(cfg SoakConfig) (SoakResult, error) {
	cfg = cfg.withDefaults()
	var res SoakResult
	if cfg.JournalDir == "" {
		return res, fmt.Errorf("load: soak needs a journal directory")
	}
	start := time.Now()
	jopts := dirlog.Options{Dir: cfg.JournalDir, Fsync: cfg.Fsync, SnapshotEvery: cfg.SnapEvery}
	dcfg := remote.DirectoryConfig{LeaseTTL: cfg.LeaseTTL, Journal: &jopts}
	dir, err := remote.ListenDirectoryWith("127.0.0.1:0", dcfg)
	if err != nil {
		return res, err
	}
	defer func() { _ = dir.Close() }()
	dirAddr := dir.Addr()

	servers := make([]*remote.Server, cfg.Servers)
	for i := range servers {
		s, err := remote.ListenServer("127.0.0.1:0")
		if err != nil {
			return res, err
		}
		defer func() { _ = s.Close() }()
		servers[i] = s
	}
	page := make([]byte, units.PageSize)
	for p := 0; p < cfg.Pages; p++ {
		for i := range page {
			page[i] = byte(uint64(p)*131 + uint64(i)*7)
		}
		servers[p%cfg.Servers].Store(uint64(p), page)
	}
	for _, s := range servers {
		// Heartbeats several times per TTL: a restarted directory sees a
		// renewal (or the re-registration behind it) well inside the
		// grace window.
		s.SetHeartbeatInterval(cfg.LeaseTTL / 8)
		if err := s.RegisterWith(dirAddr); err != nil {
			return res, err
		}
	}

	// The error-tolerant fleet: short bounded retries, so a read issued
	// while the directory is down fails in tens of milliseconds and the
	// worker moves on. Cache far smaller than the page set keeps every
	// worker faulting — and re-looking-up — throughout.
	var stopLoad atomic.Bool
	var reads, readErrs, maxReadUs atomic.Int64
	var hung atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := remote.Dial(remote.ClientConfig{
			Directory:      dirAddr,
			CachePages:     8,
			DialTimeout:    200 * time.Millisecond,
			RequestTimeout: 500 * time.Millisecond,
			MaxRetries:     2,
			RetryBackoff:   5 * time.Millisecond,
		})
		if err != nil {
			return res, err
		}
		defer func() { _ = cl.Close() }()
		wg.Add(1)
		go func(id uint64, cl *remote.Client) {
			defer wg.Done()
			r := rng.New(cfg.Seed*7_777_777 + id)
			buf := make([]byte, 64)
			for !stopLoad.Load() {
				p := uint64(r.Intn(cfg.Pages))
				t0 := time.Now()
				err := cl.Read(buf, p*uint64(units.PageSize))
				us := time.Since(t0).Microseconds()
				for {
					cur := maxReadUs.Load()
					if us <= cur || maxReadUs.CompareAndSwap(cur, us) {
						break
					}
				}
				reads.Add(1)
				if err != nil {
					readErrs.Add(1)
				}
				if time.Duration(us)*time.Microsecond > cfg.HangBound {
					hung.Add(1)
					return
				}
			}
		}(uint64(i), cl)
	}

	// The kill loop: load, kill, dead air, restart in place. The listener
	// rebind races the dying socket, so it retries briefly.
	killErr := func() error {
		for n := 0; n < cfg.Crashes; n++ {
			time.Sleep(cfg.CrashEvery)
			if err := dir.Kill(); err != nil {
				return fmt.Errorf("kill %d: %w", n+1, err)
			}
			time.Sleep(cfg.Downtime)
			var d2 *remote.Directory
			var err error
			for attempt := 0; attempt < 100; attempt++ {
				d2, err = remote.ListenDirectoryWith(dirAddr, dcfg)
				if err == nil {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				return fmt.Errorf("restart %d on %s: %w", n+1, dirAddr, err)
			}
			dir = d2
			res.Crashes++
		}
		return nil
	}()
	if killErr == nil {
		// Settle: one more load window against the final incarnation, so
		// recovery serves real traffic before the books close.
		time.Sleep(cfg.CrashEvery)
	}
	stopLoad.Store(true)
	wg.Wait()
	res.Elapsed = time.Since(start).Seconds()
	res.Reads = reads.Load()
	res.ReadErrs = readErrs.Load()
	res.MaxReadUs = float64(maxReadUs.Load())
	for _, s := range servers {
		res.Reregs += atomic.LoadInt64(&s.Reregs)
	}
	res.Recovered = dir.RecoveredServers()
	info := dir.JournalInfo()
	res.WalRecords = info.WalRecords
	res.WalBytes = info.WalBytes
	res.SnapRecords = info.SnapshotRecords
	if killErr != nil {
		return res, killErr
	}

	// Invariant: no hangs. A read that outlived HangBound is a wedge the
	// retry budget should have made impossible.
	if h := hung.Load(); h > 0 {
		return res, fmt.Errorf("%d reads exceeded the %v hang bound (max read %.0fµs)", h, cfg.HangBound, res.MaxReadUs)
	}
	// Invariant: the fleet made progress — errors stayed the exception,
	// not the rule, across every crash window.
	if res.Reads == 0 || res.ReadErrs >= res.Reads {
		return res, fmt.Errorf("load never succeeded: %d errors of %d reads", res.ReadErrs, res.Reads)
	}
	// Invariant: no re-registration storm. The journal remembers the
	// fleet, so a restart costs at most one full re-registration per
	// server (a renewal that raced the crash), not one per heartbeat.
	if bound := int64(cfg.Crashes * cfg.Servers); res.Reregs > bound {
		return res, fmt.Errorf("%d re-registrations across %d crashes of %d servers (bound %d): restart caused a storm", res.Reregs, cfg.Crashes, cfg.Servers, bound)
	}
	// Invariant: recovery actually recovered — the final incarnation knew
	// the fleet from disk (or the fleet re-registered within bound above)
	// and every page resolves.
	deadline := time.Now().Add(2 * cfg.LeaseTTL)
	for p := 0; p < cfg.Pages; p++ {
		for {
			if _, ok := dir.Lookup(uint64(p)); ok {
				break
			}
			if time.Now().After(deadline) {
				return res, fmt.Errorf("page %d never became resolvable after the final restart", p)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// Invariant: no stale-epoch resurrection. A forged registration one
	// epoch below a live server's must be rejected by the recovered
	// directory exactly as the original would have rejected it.
	srv := servers[0]
	if err := probeStaleEpoch(dirAddr, srv.Addr(), srv.Epoch()-1); err != nil {
		return res, err
	}
	return res, nil
}

// probeStaleEpoch forges a registration for serverAddr at a superseded
// epoch and reports an error unless the directory refuses it.
func probeStaleEpoch(dirAddr, serverAddr string, epoch uint64) error {
	conn, err := net.DialTimeout("tcp", dirAddr, stormGrace)
	if err != nil {
		return fmt.Errorf("stale-epoch probe dial: %w", err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(stormGrace)); err != nil {
		return err
	}
	if err := proto.NewWriter(conn).SendRegister(proto.Register{Addr: serverAddr, Epoch: epoch, Pages: []uint64{0}}); err != nil {
		return fmt.Errorf("stale-epoch probe send: %w", err)
	}
	f, err := proto.NewReader(conn).Next()
	if err != nil {
		return fmt.Errorf("stale-epoch probe reply: %w", err)
	}
	if f.Type != proto.TError {
		return fmt.Errorf("stale-epoch probe drew %v, want TError: epoch fencing did not survive the restarts", f.Type)
	}
	return nil
}
