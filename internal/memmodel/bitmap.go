// Package memmodel provides the memory-management building blocks of the
// subpage system: per-page subpage valid bitmaps, a page table with LRU
// replacement, a TLB model for the small-page comparison, and the PALcode
// load/store emulation cost model of the prototype (Table 1).
package memmodel

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// Bitmap holds the 32 subpage valid bits of one 8 KB page, one bit per
// 256-byte block, exactly as the prototype's PALcode keeps them. Subpages
// larger than 256 bytes set runs of bits, so a single representation covers
// every subpage size.
type Bitmap uint32

// FullBitmap has every valid bit set: the page is complete.
const FullBitmap Bitmap = 1<<units.ValidBitsPerPage - 1

// MaskFor returns the bits covered by subpage index idx when the page is
// divided into subpages of the given size. It panics on an invalid size or
// out-of-range index; both are configuration errors.
func MaskFor(subpageSize, idx int) Bitmap {
	n := units.SubpagesPerPage(subpageSize)
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("memmodel: subpage index %d out of range for size %d", idx, subpageSize))
	}
	bitsPer := units.ValidBitsPerPage / n
	run := Bitmap(1)<<bitsPer - 1
	return run << (idx * bitsPer)
}

// SubpageIndex returns the subpage (of the given size) containing the byte
// at offset off within the page.
func SubpageIndex(subpageSize, off int) int {
	if off < 0 || off >= units.PageSize {
		panic(fmt.Sprintf("memmodel: offset %d out of page", off))
	}
	return off / subpageSize
}

// Set marks the given bits valid.
func (b Bitmap) Set(mask Bitmap) Bitmap { return b | mask }

// BlockMask returns the single valid bit of the 256-byte block containing
// the byte at offset off.
func BlockMask(off int) Bitmap {
	if off < 0 || off >= units.PageSize {
		panic(fmt.Sprintf("memmodel: offset %d out of page", off))
	}
	return 1 << (off / units.MinSubpage)
}

// Has reports whether the byte at offset off is valid.
func (b Bitmap) Has(off int) bool {
	if off < 0 || off >= units.PageSize {
		return false
	}
	return b&(1<<(off/units.MinSubpage)) != 0
}

// HasAll reports whether every bit of mask is valid.
func (b Bitmap) HasAll(mask Bitmap) bool { return b&mask == mask }

// Full reports whether the page is complete.
func (b Bitmap) Full() bool { return b == FullBitmap }

// Count returns the number of valid 256-byte blocks.
func (b Bitmap) Count() int {
	n := 0
	for v := uint32(b); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// String renders the bitmap LSB-first, '1' for valid blocks, for debugging.
func (b Bitmap) String() string {
	buf := make([]byte, units.ValidBitsPerPage)
	for i := range buf {
		if b&(1<<i) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
