package memmodel

import (
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/units"
)

var subpageSizes = []int{256, 512, 1024, 2048, 4096, 8192}

func TestMaskForCoversWholePage(t *testing.T) {
	for _, size := range subpageSizes {
		var acc Bitmap
		n := units.SubpagesPerPage(size)
		for i := 0; i < n; i++ {
			m := MaskFor(size, i)
			if acc&m != 0 {
				t.Fatalf("size %d: subpage %d overlaps earlier subpages", size, i)
			}
			acc |= m
		}
		if !acc.Full() {
			t.Fatalf("size %d: union of subpage masks is %s, not full", size, acc)
		}
	}
}

func TestMaskForBitCounts(t *testing.T) {
	for _, size := range subpageSizes {
		want := size / units.MinSubpage
		if got := MaskFor(size, 0).Count(); got != want {
			t.Errorf("size %d: mask has %d bits, want %d", size, got, want)
		}
	}
}

func TestMaskForPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaskFor(1024, 8) should panic")
		}
	}()
	MaskFor(1024, 8)
}

func TestSubpageIndexConsistentWithMask(t *testing.T) {
	f := func(rawOff uint16, sizeIdx uint8) bool {
		off := int(rawOff) % units.PageSize
		size := subpageSizes[int(sizeIdx)%len(subpageSizes)]
		idx := SubpageIndex(size, off)
		// The byte at off must be covered exactly by its subpage's mask.
		if !MaskFor(size, idx).Has(off) {
			return false
		}
		// And by no other subpage.
		for i := 0; i < units.SubpagesPerPage(size); i++ {
			if i != idx && MaskFor(size, i).Has(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapSetHasAlgebra(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := Bitmap(a), Bitmap(b)
		u := x.Set(y)
		// Union contains both operands.
		if !u.HasAll(x&FullBitmap) || !u.HasAll(y&FullBitmap) {
			return false
		}
		// Idempotent.
		if u.Set(y) != u {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasOffsets(t *testing.T) {
	b := MaskFor(1024, 2) // bytes 2048..3071
	if b.Has(2047) {
		t.Error("Has(2047) should be false")
	}
	if !b.Has(2048) || !b.Has(3071) {
		t.Error("subpage interior should be valid")
	}
	if b.Has(3072) {
		t.Error("Has(3072) should be false")
	}
	if b.Has(-1) || b.Has(units.PageSize) {
		t.Error("out-of-page offsets should be invalid")
	}
}

func TestCount(t *testing.T) {
	if FullBitmap.Count() != units.ValidBitsPerPage {
		t.Errorf("full count = %d", FullBitmap.Count())
	}
	if Bitmap(0).Count() != 0 {
		t.Error("zero count should be 0")
	}
	if Bitmap(0b1011).Count() != 3 {
		t.Error("count of 0b1011 should be 3")
	}
}

func TestString(t *testing.T) {
	s := Bitmap(0b101).String()
	if len(s) != units.ValidBitsPerPage || s[:4] != "1010" {
		t.Errorf("String = %q", s)
	}
}
