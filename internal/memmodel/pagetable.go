package memmodel

// PageID identifies a virtual page.
type PageID int64

// Frame is one resident page of local memory. The simulator attaches
// in-flight transfer state to the frame; memmodel itself only tracks
// residency, validity and recency.
type Frame struct {
	Page  PageID
	Valid Bitmap

	// Xfer is the owner's in-flight transfer for this page (nil when no
	// transfer is outstanding). It is opaque to memmodel.
	Xfer any

	// DistFrom is the subpage index of the page's initial fault while
	// the owner is still waiting to observe the first access to a
	// *different* subpage (the Figure 7 measurement), or -1.
	DistFrom int16

	// Prefetched marks blocks that arrived speculatively (beyond the
	// faulted subpage) and have not been accessed yet. Only maintained
	// when the owner tracks prefetch usage; each bit is cleared — and
	// counted as a used prefetch — on the first access to it.
	Prefetched Bitmap

	prev, next *Frame // LRU list, most recent at head
}

// PageTable is a fixed-capacity page table with LRU replacement over
// resident pages. The zero value is not usable; construct with
// NewPageTable.
type PageTable struct {
	capacity int
	frames   map[PageID]*Frame
	head     *Frame // most recently used
	tail     *Frame // least recently used

	// lastFrame short-circuits the common case of repeated references to
	// the same page, so per-reference cost is a pointer compare.
	lastFrame *Frame
}

// NewPageTable returns a table holding at most capacity resident pages.
// Capacity must be positive.
func NewPageTable(capacity int) *PageTable {
	if capacity <= 0 {
		panic("memmodel: page table capacity must be positive")
	}
	return &PageTable{
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
	}
}

// Capacity returns the maximum number of resident pages.
func (pt *PageTable) Capacity() int { return pt.capacity }

// Len returns the number of resident pages.
func (pt *PageTable) Len() int { return len(pt.frames) }

// Lookup returns the frame for page and promotes it to most-recently-used,
// or nil if the page is not resident.
func (pt *PageTable) Lookup(page PageID) *Frame {
	if f := pt.lastFrame; f != nil && f.Page == page {
		return f
	}
	f := pt.frames[page]
	if f == nil {
		return nil
	}
	pt.touch(f)
	pt.lastFrame = f
	return f
}

// Peek returns the frame without promoting it.
func (pt *PageTable) Peek(page PageID) *Frame { return pt.frames[page] }

// Insert makes page resident with the given valid bits, evicting the LRU
// page first if the table is full. It returns the new frame and the evicted
// frame (nil if none). Inserting an already-resident page panics; callers
// must Lookup first.
func (pt *PageTable) Insert(page PageID, valid Bitmap) (f, evicted *Frame) {
	if pt.frames[page] != nil {
		panic("memmodel: Insert of resident page")
	}
	if len(pt.frames) >= pt.capacity {
		evicted = pt.evictLRU()
	}
	f = &Frame{Page: page, Valid: valid, DistFrom: -1}
	pt.frames[page] = f
	pt.pushFront(f)
	pt.lastFrame = f
	return f, evicted
}

// Remove evicts a specific page, returning its frame or nil.
func (pt *PageTable) Remove(page PageID) *Frame {
	f := pt.frames[page]
	if f == nil {
		return nil
	}
	pt.unlink(f)
	delete(pt.frames, page)
	if pt.lastFrame == f {
		pt.lastFrame = nil
	}
	return f
}

// LRU returns the least-recently-used frame without removing it, or nil.
func (pt *PageTable) LRU() *Frame { return pt.tail }

// evictLRU removes and returns the least-recently-used frame.
func (pt *PageTable) evictLRU() *Frame {
	victim := pt.tail
	if victim == nil {
		return nil
	}
	pt.unlink(victim)
	delete(pt.frames, victim.Page)
	if pt.lastFrame == victim {
		pt.lastFrame = nil
	}
	return victim
}

func (pt *PageTable) touch(f *Frame) {
	if pt.head == f {
		return
	}
	pt.unlink(f)
	pt.pushFront(f)
}

func (pt *PageTable) pushFront(f *Frame) {
	f.prev = nil
	f.next = pt.head
	if pt.head != nil {
		pt.head.prev = f
	}
	pt.head = f
	if pt.tail == nil {
		pt.tail = f
	}
}

func (pt *PageTable) unlink(f *Frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		pt.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		pt.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

// Pages returns the resident pages from most to least recently used.
// Intended for tests and debugging.
func (pt *PageTable) Pages() []PageID {
	var out []PageID
	for f := pt.head; f != nil; f = f.next {
		out = append(out, f.Page)
	}
	return out
}
