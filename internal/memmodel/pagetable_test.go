package memmodel

import (
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	pt := NewPageTable(2)
	f, ev := pt.Insert(1, 0)
	if ev != nil || f.Page != 1 || f.Xfer != nil || f.DistFrom != -1 {
		t.Fatalf("bad insert: %+v evicted %+v", f, ev)
	}
	if got := pt.Lookup(1); got != f {
		t.Fatal("Lookup should return the inserted frame")
	}
	if pt.Lookup(99) != nil {
		t.Fatal("Lookup of absent page should be nil")
	}
}

func TestLRUEviction(t *testing.T) {
	pt := NewPageTable(3)
	pt.Insert(1, 0)
	pt.Insert(2, 0)
	pt.Insert(3, 0)
	pt.Lookup(1) // 1 becomes MRU; order now 1,3,2
	_, ev := pt.Insert(4, 0)
	if ev == nil || ev.Page != 2 {
		t.Fatalf("evicted %+v, want page 2", ev)
	}
	_, ev = pt.Insert(5, 0)
	if ev == nil || ev.Page != 3 {
		t.Fatalf("evicted %+v, want page 3", ev)
	}
}

func TestRepeatedLookupFastPathPreservesOrder(t *testing.T) {
	pt := NewPageTable(2)
	pt.Insert(1, 0)
	pt.Insert(2, 0)
	// Hammer the fast path on 2, then touch 1, then insert: 2 must stay
	// more recent than... actually 1 was touched last, so 2 is evicted.
	for i := 0; i < 10; i++ {
		pt.Lookup(2)
	}
	pt.Lookup(1)
	_, ev := pt.Insert(3, 0)
	if ev == nil || ev.Page != 2 {
		t.Fatalf("evicted %+v, want page 2", ev)
	}
}

func TestRemove(t *testing.T) {
	pt := NewPageTable(2)
	pt.Insert(1, 0)
	pt.Insert(2, 0)
	if f := pt.Remove(1); f == nil || f.Page != 1 {
		t.Fatal("Remove(1) failed")
	}
	if pt.Remove(1) != nil {
		t.Fatal("second Remove should be nil")
	}
	if pt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pt.Len())
	}
	// Removed page no longer evictable; a new insert should not evict.
	if _, ev := pt.Insert(3, 0); ev != nil {
		t.Fatalf("unexpected eviction %+v", ev)
	}
}

func TestInsertResidentPanics(t *testing.T) {
	pt := NewPageTable(2)
	pt.Insert(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert of resident page should panic")
		}
	}()
	pt.Insert(1, 0)
}

func TestPeekDoesNotPromote(t *testing.T) {
	pt := NewPageTable(2)
	pt.Insert(1, 0)
	pt.Insert(2, 0) // order 2,1
	pt.Peek(1)      // must not promote 1
	_, ev := pt.Insert(3, 0)
	if ev == nil || ev.Page != 1 {
		t.Fatalf("evicted %+v, want page 1", ev)
	}
}

// TestLRUMatchesReference drives the table with random operations and
// compares against a simple slice-based reference implementation.
func TestLRUMatchesReference(t *testing.T) {
	type op struct {
		Page   uint8
		Lookup bool
	}
	f := func(ops []op) bool {
		const capacity = 4
		pt := NewPageTable(capacity)
		var ref []PageID // MRU first
		refFind := func(p PageID) int {
			for i, v := range ref {
				if v == p {
					return i
				}
			}
			return -1
		}
		for _, o := range ops {
			p := PageID(o.Page % 8)
			if o.Lookup {
				got := pt.Lookup(p)
				i := refFind(p)
				if (got != nil) != (i >= 0) {
					return false
				}
				if i > 0 {
					ref = append(ref[:i], ref[i+1:]...)
					ref = append([]PageID{p}, ref...)
				}
			} else if pt.Peek(p) == nil {
				_, ev := pt.Insert(p, 0)
				var refEv PageID = -1
				if len(ref) >= capacity {
					refEv = ref[len(ref)-1]
					ref = ref[:len(ref)-1]
				}
				ref = append([]PageID{p}, ref...)
				if (ev != nil) != (refEv >= 0) {
					return false
				}
				if ev != nil && ev.Page != refEv {
					return false
				}
			}
			// Residency sets must match.
			if pt.Len() != len(ref) {
				return false
			}
			got := pt.Pages()
			for i := range got {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPageTable(0) should panic")
		}
	}()
	NewPageTable(0)
}
