package memmodel

import (
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// PALCosts models the prototype's software subpage protection: when a page
// is incomplete, read/write access to it is disabled and the PALcode
// emulates each load/store after checking the subpage valid bits (Table 1).
// An operation is "fast" when it touches the same page as the previous
// emulated operation (the PALcode caches that page's valid bits) and "slow"
// otherwise.
type PALCosts struct {
	CPUMHz int

	FastLoadCycles  int
	SlowLoadCycles  int
	FastStoreCycles int
	SlowStoreCycles int
	NullCallCycles  int
	L1HitCycles     int
	L2HitCycles     int
	L2MissCycles    int
}

// Alpha250 returns the measured Table 1 costs of the 266 MHz Alpha 250
// prototype.
func Alpha250() *PALCosts {
	return &PALCosts{
		CPUMHz:          266,
		FastLoadCycles:  52,
		SlowLoadCycles:  95,
		FastStoreCycles: 64,
		SlowStoreCycles: 102,
		NullCallCycles:  15,
		L1HitCycles:     3,
		L2HitCycles:     8,
		L2MissCycles:    84,
	}
}

// Nanos converts a cycle count to time on this CPU.
func (p *PALCosts) Nanos(cycles int) units.Nanos {
	return units.Nanos(int64(cycles) * 1000 / int64(p.CPUMHz))
}

// Table1 renders the Table 1 rows (operation, cycles, time).
func (p *PALCosts) Table1() *stats.Table {
	t := &stats.Table{
		Title:  "Table 1: Performance of PALcode Load/Store Emulation",
		Header: []string{"Operation", "Cycles", "Time (ns)"},
	}
	rows := []struct {
		name   string
		cycles int
	}{
		{"fast load", p.FastLoadCycles},
		{"slow load", p.SlowLoadCycles},
		{"fast store", p.FastStoreCycles},
		{"slow store", p.SlowStoreCycles},
		{"null PAL call", p.NullCallCycles},
		{"L1 cache hit", p.L1HitCycles},
		{"L2 cache hit", p.L2HitCycles},
		{"L2 miss", p.L2MissCycles},
	}
	for _, r := range rows {
		t.AddRow(r.name, stats.F(float64(r.cycles), 0), stats.F(float64(p.Nanos(r.cycles)), 0))
	}
	return t
}

// Emulator charges PAL emulation overhead for accesses to incomplete pages,
// tracking the fast/slow distinction. Overhead is the cost *beyond* a
// normal access, so complete pages cost zero here.
type Emulator struct {
	costs    *PALCosts
	lastPage PageID
	valid    bool

	EmulatedOps int64
	Overhead    units.Nanos
}

// NewEmulator returns an emulator using the given cost table.
func NewEmulator(c *PALCosts) *Emulator { return &Emulator{costs: c} }

// Access charges for one load or store to an incomplete page and returns
// the added overhead.
func (e *Emulator) Access(page PageID, store bool) units.Nanos {
	fast := e.valid && page == e.lastPage
	e.lastPage, e.valid = page, true
	var cycles int
	switch {
	case store && fast:
		cycles = e.costs.FastStoreCycles
	case store:
		cycles = e.costs.SlowStoreCycles
	case fast:
		cycles = e.costs.FastLoadCycles
	default:
		cycles = e.costs.SlowLoadCycles
	}
	cost := e.costs.Nanos(cycles)
	e.EmulatedOps++
	e.Overhead += cost
	return cost
}

// PageCompleted notes that a page became complete; subsequent accesses to
// it are not emulated, and the cached valid bits are invalidated.
func (e *Emulator) PageCompleted(page PageID) {
	if e.valid && e.lastPage == page {
		e.valid = false
	}
}
