package memmodel

import (
	"strings"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/units"
)

func TestAlpha250MatchesPaperTable1(t *testing.T) {
	p := Alpha250()
	// Table 1 time column, within 5 ns of the published values (the
	// paper's ns column is measured, not an exact cycles/266 MHz
	// division).
	cases := []struct {
		cycles int
		wantNs int64
	}{
		{p.FastLoadCycles, 195},
		{p.SlowLoadCycles, 361},
		{p.FastStoreCycles, 241},
		{p.SlowStoreCycles, 383},
		{p.NullCallCycles, 56},
		{p.L1HitCycles, 11},
		{p.L2HitCycles, 30},
		{p.L2MissCycles, 315},
	}
	for _, c := range cases {
		got := int64(p.Nanos(c.cycles))
		if got < c.wantNs-5 || got > c.wantNs+5 {
			t.Errorf("Nanos(%d) = %d ns, want ~%d ns", c.cycles, got, c.wantNs)
		}
	}
}

func TestPaperRatios(t *testing.T) {
	// "a fast load is 6.5 times slower than an L2 cache hit, and 1.6 times
	// faster than an L2 miss."
	p := Alpha250()
	fastVsL2 := float64(p.FastLoadCycles) / float64(p.L2HitCycles)
	if fastVsL2 < 6 || fastVsL2 > 7 {
		t.Errorf("fast load / L2 hit = %.2f, want ~6.5", fastVsL2)
	}
	missVsFast := float64(p.L2MissCycles) / float64(p.FastLoadCycles)
	if missVsFast < 1.5 || missVsFast > 1.7 {
		t.Errorf("L2 miss / fast load = %.2f, want ~1.6", missVsFast)
	}
}

func TestEmulatorFastSlow(t *testing.T) {
	e := NewEmulator(Alpha250())
	first := e.Access(1, false)  // slow: no cached page
	second := e.Access(1, false) // fast: same page
	third := e.Access(2, false)  // slow: page changed
	if first <= second {
		t.Errorf("first load %d should cost more than repeat %d", first, second)
	}
	if third != first {
		t.Errorf("page change should be slow again: %d vs %d", third, first)
	}
	if e.EmulatedOps != 3 {
		t.Errorf("EmulatedOps = %d", e.EmulatedOps)
	}
	if e.Overhead != first+second+third {
		t.Errorf("Overhead = %d, want %d", e.Overhead, first+second+third)
	}
}

func TestEmulatorStoresCostMore(t *testing.T) {
	e := NewEmulator(Alpha250())
	e.Access(1, false)
	fastLoad := e.Access(1, false)
	fastStore := e.Access(1, true)
	if fastStore <= fastLoad {
		t.Errorf("fast store %d should cost more than fast load %d", fastStore, fastLoad)
	}
}

func TestEmulatorPageCompletedInvalidatesCache(t *testing.T) {
	e := NewEmulator(Alpha250())
	e.Access(1, false)
	e.PageCompleted(1)
	again := e.Access(1, false)
	slow := Alpha250().Nanos(Alpha250().SlowLoadCycles)
	if again != slow {
		t.Errorf("access after completion = %d, want slow %d", again, slow)
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Alpha250().Table1().String()
	for _, want := range []string{"fast load", "slow store", "L2 miss", "195", "383"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(2, units.PageSize)
	if tlb.Access(0) {
		t.Error("first access should miss")
	}
	if !tlb.Access(100) {
		t.Error("same-page access should hit")
	}
	tlb.Access(units.PageSize)     // page 1, miss
	tlb.Access(2 * units.PageSize) // page 2, miss, evicts page 0 (LRU)
	if tlb.Access(0) {
		t.Error("page 0 should have been evicted")
	}
	if tlb.Misses() != 4 {
		t.Errorf("Misses = %d, want 4", tlb.Misses())
	}
	if tlb.Lookups() != 5 {
		t.Errorf("Lookups = %d, want 5", tlb.Lookups())
	}
}

func TestTLBLRUOrder(t *testing.T) {
	tlb := NewTLB(2, units.PageSize)
	tlb.Access(0)                  // miss: [0]
	tlb.Access(units.PageSize)     // miss: [1 0]
	tlb.Access(0)                  // hit:  [0 1]
	tlb.Access(2 * units.PageSize) // miss, evicts 1: [2 0]
	if !tlb.Access(0) {
		t.Error("page 0 should still be mapped")
	}
	if tlb.Access(units.PageSize) {
		t.Error("page 1 should have been evicted")
	}
}

func TestSmallPagesRaiseMissRate(t *testing.T) {
	// The §2.1 argument: same access pattern, smaller pages -> less TLB
	// coverage -> more misses.
	big := NewTLB(DefaultTLBEntries, units.PageSize)
	small := NewTLB(DefaultTLBEntries, 1024)
	// Walk a working set larger than the small TLB's coverage but inside
	// the big TLB's coverage, twice.
	span := uint64(big.Coverage() / 2)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < span; a += 512 {
			big.Access(a)
			small.Access(a)
		}
	}
	if small.MissRate() <= big.MissRate() {
		t.Fatalf("small pages should miss more: %.4f vs %.4f",
			small.MissRate(), big.MissRate())
	}
	if big.Coverage() <= small.Coverage() {
		t.Fatal("coverage should scale with page size")
	}
}
