package memmodel

import "github.com/gms-sim/gmsubpage/internal/units"

// TLB models a fully-associative, LRU translation lookaside buffer. It is
// used by the small-page ablation (§2.1): shrinking the page size shrinks
// TLB coverage, which is the principal reason the paper prefers subpages
// over small pages.
//
// Entries map virtual page numbers at the TLB's own page size, which may be
// smaller than the VM page size when simulating a small-page architecture.
type TLB struct {
	pageSize int
	entries  []int64 // page numbers, most recent first
	misses   int64
	lookups  int64
}

// DefaultTLBEntries is the data-TLB size of the modelled Alpha 21064-class
// processor.
const DefaultTLBEntries = 32

// TLBMissCost is the modelled cost of one TLB fill (a PALcode miss handler
// walking the page table; tens of cycles plus memory accesses).
const TLBMissCost = 400 * units.Nanos(1) // 400 ns

// NewTLB returns a TLB with n entries translating pages of the given size.
func NewTLB(n, pageSize int) *TLB {
	if n <= 0 || pageSize <= 0 {
		panic("memmodel: invalid TLB shape")
	}
	return &TLB{pageSize: pageSize, entries: make([]int64, 0, n)}
}

// Access translates the byte address and returns true on a hit. Misses are
// counted and fill the TLB with LRU replacement.
func (t *TLB) Access(addr uint64) bool {
	t.lookups++
	page := int64(addr) / int64(t.pageSize)
	for i, e := range t.entries {
		if e == page {
			if i != 0 {
				copy(t.entries[1:i+1], t.entries[:i])
				t.entries[0] = page
			}
			return true
		}
	}
	t.misses++
	if len(t.entries) < cap(t.entries) {
		t.entries = t.entries[:len(t.entries)+1]
	}
	copy(t.entries[1:], t.entries)
	t.entries[0] = page
	return false
}

// Misses returns the number of misses so far.
func (t *TLB) Misses() int64 { return t.misses }

// Lookups returns the number of accesses so far.
func (t *TLB) Lookups() int64 { return t.lookups }

// MissRate returns misses/lookups, or 0 before any access.
func (t *TLB) MissRate() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.lookups)
}

// Coverage returns the bytes of address space the TLB can map at once.
func (t *TLB) Coverage() int64 { return int64(cap(t.entries)) * int64(t.pageSize) }
