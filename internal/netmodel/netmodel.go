// Package netmodel models the latency of remote-memory transfers.
//
// A remote page fetch is a fixed-cost request (fault handling, global cache
// directory lookup, request message, server processing) followed by one or
// more data messages that flow store-and-forward through three pipelined
// resources — the server's DMA engine, the network wire, and the requester's
// DMA engine — with an optional receiver-CPU delivery step (interrupt, copy,
// restart). Consecutive messages of a transfer pipeline through these
// resources, which is what makes eager fullpage fetch and subpage pipelining
// profitable: the follow-on transfer's server DMA overlaps the faulted
// subpage's wire and delivery time.
//
// The default parameters (AN2ATM) are calibrated to the paper's prototype
// measurements on the DEC Alpha 250 / AN2 155 Mb/s ATM platform (Table 2,
// Figure 2): they reproduce the published subpage and rest-of-page latencies
// within ~5%, including the two non-obvious effects the paper highlights —
// splitting a page into 4K+4K completes *sooner* than one 8K message, and a
// 1K first subpage completes the whole page *later* than a 2K first subpage
// because the small first message leaves a gap on the wire.
package netmodel

import "github.com/gms-sim/gmsubpage/internal/units"

// Stage is one pipelined resource with a fixed per-message cost and a
// per-byte cost (expressed per KiB for readability).
type Stage struct {
	Fixed  units.Nanos
	PerKiB units.Nanos
}

// Cost returns the stage occupancy for a message of n bytes.
func (s Stage) Cost(n int) units.Nanos {
	return s.Fixed + units.Nanos(int64(s.PerKiB)*int64(n)/units.KiB)
}

// Params describes one network/host configuration.
type Params struct {
	// Name identifies the configuration in reports.
	Name string

	// Request is the fixed time from the fault until the server's DMA
	// engine can begin on the first message: fault handling, locating the
	// page in the global cache directory, the request message, and server
	// request processing. (Paper: ~0.27 ms on the prototype.)
	Request units.Nanos

	// The three pipelined data-path resources.
	SrvDMA Stage // server memory -> controller
	Wire   Stage // on the interconnect
	ReqDMA Stage // controller -> requester memory

	// Deliver is the requester-CPU completion step: interrupt handling,
	// any copy into place, and resuming the faulted thread. Messages
	// delivered by an intelligent controller (pipelined follow-on
	// subpages) skip this step.
	Deliver Stage
}

// AN2ATM returns parameters calibrated to the paper's Alpha 250 + DEC AN2
// (155 Mb/s ATM) prototype. See package comment.
func AN2ATM() *Params {
	return &Params{
		Name:    "an2-atm",
		Request: units.FromMs(0.27),
		SrvDMA:  Stage{Fixed: units.FromMs(0.020), PerKiB: units.FromMs(0.040)},
		Wire:    Stage{Fixed: units.FromMs(0.015), PerKiB: units.FromMs(0.055)},
		ReqDMA:  Stage{Fixed: units.FromMs(0.020), PerKiB: units.FromMs(0.020)},
		Deliver: Stage{Fixed: units.FromMs(0.090), PerKiB: units.FromMs(0.018)},
	}
}

// Ethernet10 returns parameters for a lightly-loaded 10 Mb/s Ethernet with
// the same hosts: the wire dominates (≈0.82 ms/KiB payload time).
func Ethernet10() *Params {
	return &Params{
		Name:    "ethernet-10",
		Request: units.FromMs(0.35),
		SrvDMA:  Stage{Fixed: units.FromMs(0.030), PerKiB: units.FromMs(0.040)},
		Wire:    Stage{Fixed: units.FromMs(0.100), PerKiB: units.FromMs(0.8192)},
		ReqDMA:  Stage{Fixed: units.FromMs(0.030), PerKiB: units.FromMs(0.020)},
		Deliver: Stage{Fixed: units.FromMs(0.120), PerKiB: units.FromMs(0.018)},
	}
}

// LoadedEthernet10 returns parameters for a heavily-loaded 10 Mb/s Ethernet:
// contention both queues messages (large fixed wait) and stretches the
// effective wire rate.
func LoadedEthernet10() *Params {
	p := Ethernet10()
	p.Name = "ethernet-10-loaded"
	p.Wire.Fixed += units.FromMs(2.0)    // queueing behind other senders
	p.Wire.PerKiB = units.FromMs(3.2768) // 4x stretch from collisions/backoff
	return p
}

// Message is one unit of a transfer.
type Message struct {
	// Bytes is the payload size.
	Bytes int
	// Deliver reports whether the receiving CPU must take an interrupt
	// and copy the data (true for normal messages, false for follow-on
	// subpages delivered by an intelligent controller that updates
	// subpage valid bits directly).
	Deliver bool
}

// Resources tracks when each shared receive-side resource next becomes
// free, in absolute model time. A single Resources value shared across
// transfers models congestion on the faulting node's network link; the
// zero value means everything is idle. Server-side DMA is per-transfer
// (GMS spreads pages across many lightly-loaded servers).
type Resources struct {
	WireFree   units.Nanos
	ReqDMAFree units.Nanos
	CPUFree    units.Nanos
}

// Arrival describes when one message of a transfer became usable by the
// faulting program, with the component completion times used to render
// timelines (Figure 2).
type Arrival struct {
	Msg      Message
	SrvStart units.Nanos // server DMA begins
	SrvEnd   units.Nanos
	WireEnd  units.Nanos
	DMAEnd   units.Nanos
	At       units.Nanos // data usable: DMAEnd, or deliver end if Msg.Deliver
}

// Transfer schedules the messages of one remote fetch issued at time start,
// contending on res (which is updated in place; pass nil for a private,
// idle network). Messages are sent in order by a single server. The
// returned arrivals are in message order and non-decreasing in At.
func (p *Params) Transfer(start units.Nanos, res *Resources, msgs []Message) []Arrival {
	if res == nil {
		res = &Resources{}
	}
	arrivals := make([]Arrival, len(msgs))
	srvFree := start + p.Request
	for i, m := range msgs {
		var a Arrival
		a.Msg = m
		a.SrvStart = srvFree
		a.SrvEnd = a.SrvStart + p.SrvDMA.Cost(m.Bytes)
		srvFree = a.SrvEnd

		wireStart := max64(a.SrvEnd, res.WireFree)
		a.WireEnd = wireStart + p.Wire.Cost(m.Bytes)
		res.WireFree = a.WireEnd

		dmaStart := max64(a.WireEnd, res.ReqDMAFree)
		a.DMAEnd = dmaStart + p.ReqDMA.Cost(m.Bytes)
		res.ReqDMAFree = a.DMAEnd

		a.At = a.DMAEnd
		if m.Deliver {
			cpuStart := max64(a.DMAEnd, res.CPUFree)
			a.At = cpuStart + p.Deliver.Cost(m.Bytes)
			res.CPUFree = a.At
		}
		arrivals[i] = a
	}
	return arrivals
}

// FetchLatency returns the time from fault to resumption for a single
// message of n bytes on an idle network — the basic "latency vs page size"
// quantity of Figure 1.
func (p *Params) FetchLatency(n int) units.Nanos {
	arr := p.Transfer(0, nil, []Message{{Bytes: n, Deliver: true}})
	return arr[0].At
}

// EagerLatencies returns the two latencies of Table 2 for eager fullpage
// fetch with the given subpage size on an idle network: the time until the
// program resumes (subpage arrival) and the time until the entire page has
// arrived (rest-of-page arrival). For subpage == units.PageSize both values
// are the full-page latency.
func (p *Params) EagerLatencies(subpage int) (sub, rest units.Nanos) {
	if subpage >= units.PageSize {
		l := p.FetchLatency(units.PageSize)
		return l, l
	}
	msgs := []Message{
		{Bytes: subpage, Deliver: true},
		{Bytes: units.PageSize - subpage, Deliver: true},
	}
	arr := p.Transfer(0, nil, msgs)
	return arr[0].At, arr[1].At
}

// OverlapPotential returns Table 2's "improvement potential" columns for a
// subpage size: the overlapped-execution window (time between subpage and
// rest-of-page arrival minus the CPU cost of receiving the rest) and the
// sender-pipelining gain (full-page latency minus rest-of-page arrival),
// both as fractions of the full-page latency. Negative values clamp to 0.
func (p *Params) OverlapPotential(subpage int) (overlapExec, senderPipe float64) {
	sub, rest := p.EagerLatencies(subpage)
	full := p.FetchLatency(units.PageSize)
	recvCPU := p.Deliver.Cost(units.PageSize - subpage)
	oe := float64(rest-sub-recvCPU) / float64(full)
	sp := float64(full-rest) / float64(full)
	if oe < 0 {
		oe = 0
	}
	if sp < 0 {
		sp = 0
	}
	return oe, sp
}

func max64(a, b units.Nanos) units.Nanos {
	if a > b {
		return a
	}
	return b
}
