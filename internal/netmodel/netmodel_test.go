package netmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// Table 2 of the paper: page-fault latencies (ms) for eager fullpage fetch
// on the Alpha/AN2 prototype. The model must reproduce these within
// tolerance.
var paperTable2 = []struct {
	subpage int
	subMs   float64
	restMs  float64
}{
	{256, 0.45, 1.49},
	{512, 0.47, 1.46},
	{1024, 0.52, 1.38},
	{2048, 0.66, 1.25},
	{4096, 0.94, 1.23},
	{units.PageSize, 1.48, 1.48}, // full page: 1.48 ms
}

func TestCalibrationAgainstPaperTable2(t *testing.T) {
	p := AN2ATM()
	const tol = 0.08 // 8% relative error allowed
	for _, row := range paperTable2 {
		sub, rest := p.EagerLatencies(row.subpage)
		if rel := math.Abs(sub.Ms()-row.subMs) / row.subMs; rel > tol {
			t.Errorf("subpage %d: model subpage latency %.3f ms, paper %.2f ms (%.1f%% off)",
				row.subpage, sub.Ms(), row.subMs, rel*100)
		}
		if rel := math.Abs(rest.Ms()-row.restMs) / row.restMs; rel > tol {
			t.Errorf("subpage %d: model rest latency %.3f ms, paper %.2f ms (%.1f%% off)",
				row.subpage, rest.Ms(), row.restMs, rel*100)
		}
	}
}

func TestOneKilobyteFaultIsAThirdOfFullPage(t *testing.T) {
	// Abstract: "our prototype is able to satisfy a fault on a 1K subpage
	// stored in remote memory in 0.5 milliseconds, one third the time of a
	// full page."
	p := AN2ATM()
	sub, _ := p.EagerLatencies(1024)
	full := p.FetchLatency(units.PageSize)
	ratio := float64(sub) / float64(full)
	if ratio < 0.28 || ratio > 0.45 {
		t.Fatalf("1K/full ratio = %.2f, want roughly 1/3", ratio)
	}
}

func TestSenderPipeliningAnomalies(t *testing.T) {
	p := AN2ATM()
	// Splitting the page (4K first) completes the whole page sooner than
	// one 8K message (Table 2: 1.23 vs 1.48).
	_, rest4k := p.EagerLatencies(4096)
	full := p.FetchLatency(units.PageSize)
	if rest4k >= full {
		t.Errorf("4K-first rest %.3f ms should beat full page %.3f ms", rest4k.Ms(), full.Ms())
	}
	// The 1K case completes the total operation later than the 2K case
	// (Figure 2 discussion: the small first message leaves a wire gap).
	_, rest1k := p.EagerLatencies(1024)
	_, rest2k := p.EagerLatencies(2048)
	if rest1k <= rest2k {
		t.Errorf("1K rest %.3f ms should be later than 2K rest %.3f ms", rest1k.Ms(), rest2k.Ms())
	}
}

func TestSubpageLatencyMonotonicInSize(t *testing.T) {
	p := AN2ATM()
	prev := units.Nanos(0)
	for _, s := range []int{256, 512, 1024, 2048, 4096, 8192} {
		sub, _ := p.EagerLatencies(s)
		if sub <= prev {
			t.Errorf("subpage latency not increasing at %d: %v <= %v", s, sub, prev)
		}
		prev = sub
	}
}

func TestOverlapPotentialShape(t *testing.T) {
	p := AN2ATM()
	// Overlapped-execution potential shrinks as subpages grow; sender
	// pipelining gain grows (Table 2 columns).
	oePrev, spPrev := p.OverlapPotential(256)
	for _, s := range []int{512, 1024, 2048, 4096} {
		oe, sp := p.OverlapPotential(s)
		if oe > oePrev {
			t.Errorf("overlap potential should shrink with size: %v at %d > %v", oe, s, oePrev)
		}
		if sp < spPrev {
			t.Errorf("sender pipelining should grow with size: %v at %d < %v", sp, s, spPrev)
		}
		oePrev, spPrev = oe, sp
	}
	oe256, sp256 := p.OverlapPotential(256)
	if oe256 < 0.35 {
		t.Errorf("256B overlap potential %.2f, paper reports ~50%%", oe256)
	}
	if sp256 > 0.05 {
		t.Errorf("256B sender pipelining %.2f, paper reports ~0%%", sp256)
	}
}

func TestTransferArrivalsOrderedAndPositive(t *testing.T) {
	p := AN2ATM()
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 16 {
			return true
		}
		msgs := make([]Message, len(sizes))
		for i, s := range sizes {
			msgs[i] = Message{Bytes: int(s%8192) + 1, Deliver: i%2 == 0}
		}
		arr := p.Transfer(0, nil, msgs)
		prevDMA := units.Nanos(0)
		for i, a := range arr {
			if a.At <= 0 || a.SrvEnd <= a.SrvStart || a.WireEnd <= a.SrvEnd || a.DMAEnd <= a.WireEnd {
				return false
			}
			if a.At < a.DMAEnd {
				return false
			}
			if a.DMAEnd <= prevDMA { // per-resource FIFO ordering
				return false
			}
			prevDMA = a.DMAEnd
			if i > 0 && a.SrvStart != arr[i-1].SrvEnd {
				return false // server DMA is back-to-back within a transfer
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreBytesNeverArriveEarlier(t *testing.T) {
	p := AN2ATM()
	prev := units.Nanos(0)
	for n := 256; n <= 8192; n += 256 {
		l := p.FetchLatency(n)
		if l <= prev {
			t.Fatalf("FetchLatency(%d) = %v not greater than FetchLatency(%d) = %v", n, l, n-256, prev)
		}
		prev = l
	}
}

func TestCongestionDelaysSecondTransfer(t *testing.T) {
	p := AN2ATM()
	var res Resources
	msg := []Message{{Bytes: 8192, Deliver: true}}
	first := p.Transfer(0, &res, msg)
	second := p.Transfer(0, &res, msg)
	if second[0].At <= first[0].At {
		t.Fatalf("concurrent transfer should queue: %v vs %v", second[0].At, first[0].At)
	}
	// But it should still beat two fully serialized transfers.
	serial := 2 * p.FetchLatency(8192)
	if second[0].At >= serial {
		t.Fatalf("overlapped transfers %v should beat serialized %v", second[0].At, serial)
	}
}

func TestIdleResourcesDoNotDelay(t *testing.T) {
	p := AN2ATM()
	var res Resources
	a := p.Transfer(0, &res, []Message{{Bytes: 1024, Deliver: true}})
	b := p.Transfer(0, nil, []Message{{Bytes: 1024, Deliver: true}})
	if a[0].At != b[0].At {
		t.Fatalf("fresh Resources should equal nil Resources: %v vs %v", a[0].At, b[0].At)
	}
}

func TestFigure1NetworkOrdering(t *testing.T) {
	atm := AN2ATM()
	eth := Ethernet10()
	loaded := LoadedEthernet10()
	// For an 8K page: ATM < Ethernet < loaded Ethernet.
	pageSizes := []int{1024, 4096, 8192}
	for _, n := range pageSizes {
		a, e, l := atm.FetchLatency(n), eth.FetchLatency(n), loaded.FetchLatency(n)
		if !(a < e && e < l) {
			t.Errorf("size %d: want ATM < Ethernet < loaded, got %.2f %.2f %.2f ms",
				n, a.Ms(), e.Ms(), l.Ms())
		}
	}
}

func TestPipelinedMessagesSkipDeliverCost(t *testing.T) {
	p := AN2ATM()
	withCPU := p.Transfer(0, nil, []Message{
		{Bytes: 1024, Deliver: true}, {Bytes: 1024, Deliver: true},
	})
	withCtrl := p.Transfer(0, nil, []Message{
		{Bytes: 1024, Deliver: true}, {Bytes: 1024, Deliver: false},
	})
	if withCtrl[1].At >= withCPU[1].At {
		t.Fatalf("controller delivery %v should beat CPU delivery %v",
			withCtrl[1].At, withCPU[1].At)
	}
}

func TestTimelineRendering(t *testing.T) {
	p := AN2ATM()
	spans := p.Timeline([]Message{
		{Bytes: 2048, Deliver: true},
		{Bytes: 6144, Deliver: true},
	})
	if len(spans) < 7 {
		t.Fatalf("expected request + per-message spans, got %d", len(spans))
	}
	out := RenderTimeline("2K eager", spans, 72)
	if !strings.Contains(out, "Wire") || !strings.Contains(out, "Srv-DMA") {
		t.Fatalf("timeline missing resources:\n%s", out)
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Errorf("span %v ends before start", s)
		}
	}
}

// TestTimelineRequestSpansTile pins the request-phase geometry: the
// fault+request, request-msg, and process-request spans must tile
// [0, p.Request] contiguously — no gap or overlap — even when Request
// is not divisible by 4, with the server span absorbing the remainder.
func TestTimelineRequestSpansTile(t *testing.T) {
	for _, request := range []units.Nanos{270000, 270001, 270002, 270003, 10, 7, 5, 4, 3} {
		p := AN2ATM()
		p.Request = request
		spans := p.Timeline([]Message{{Bytes: 1024, Deliver: true}})
		if len(spans) < 3 {
			t.Fatalf("Request=%d: expected at least 3 spans, got %d", request, len(spans))
		}
		req := spans[:3]
		if req[0].Start != 0 {
			t.Errorf("Request=%d: first span starts at %d, want 0", request, req[0].Start)
		}
		for i := 1; i < 3; i++ {
			if req[i].Start != req[i-1].End {
				t.Errorf("Request=%d: span %d starts at %d but span %d ends at %d",
					request, i, req[i].Start, i-1, req[i-1].End)
			}
		}
		if req[2].End != request {
			t.Errorf("Request=%d: last request span ends at %d, want %d",
				request, req[2].End, request)
		}
		// The intended split: half requester CPU, a quarter wire.
		if req[0].End != request/2 {
			t.Errorf("Request=%d: requester span ends at %d, want %d",
				request, req[0].End, request/2)
		}
		if got := req[1].End - req[1].Start; got != request/4 {
			t.Errorf("Request=%d: wire span is %d wide, want %d", request, got, request/4)
		}
	}
}

func TestStageCost(t *testing.T) {
	s := Stage{Fixed: 100, PerKiB: 1024}
	if got := s.Cost(0); got != 100 {
		t.Errorf("Cost(0) = %d", got)
	}
	if got := s.Cost(units.KiB); got != 100+1024 {
		t.Errorf("Cost(1KiB) = %d", got)
	}
	if got := s.Cost(512); got != 100+512 {
		t.Errorf("Cost(512) = %d", got)
	}
}
