package netmodel

import (
	"fmt"
	"strings"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// TimelineSpan is one occupancy interval of one resource during a transfer,
// used to render Figure 2 style timelines.
type TimelineSpan struct {
	Resource string // "Req-CPU", "Req-DMA", "Wire", "Srv-DMA", "Srv-CPU"
	Label    string // e.g. "request", "subpage", "rest"
	Start    units.Nanos
	End      units.Nanos
}

// Timeline computes the Figure 2 component spans for a transfer of msgs on
// an idle network, including the initial request activity. Labels name the
// message index ("msg0", "msg1", ...) except for the request phase.
func (p *Params) Timeline(msgs []Message) []TimelineSpan {
	var spans []TimelineSpan
	// The request phase: requester CPU handles the fault and sends a
	// control message; the server CPU processes it. We display the split
	// as half requester, a quarter wire hop, and the rest server, which is
	// how the prototype's four leading "black bars" in Figure 2 divide.
	// The boundaries are computed directly (not as multiples of Request/4)
	// so the three spans tile [0, p.Request] exactly — and the server span
	// absorbs the rounding remainder — even when Request % 4 != 0.
	half := p.Request / 2
	quarter := p.Request / 4
	spans = append(spans,
		TimelineSpan{"Req-CPU", "fault+request", 0, half},
		TimelineSpan{"Wire", "request msg", half, half + quarter},
		TimelineSpan{"Srv-CPU", "process request", half + quarter, p.Request},
	)
	arr := p.Transfer(0, nil, msgs)
	for i, a := range arr {
		label := fmt.Sprintf("msg%d(%dB)", i, a.Msg.Bytes)
		spans = append(spans,
			TimelineSpan{"Srv-DMA", label, a.SrvStart, a.SrvEnd},
			TimelineSpan{"Wire", label, a.WireEnd - p.Wire.Cost(a.Msg.Bytes), a.WireEnd},
			TimelineSpan{"Req-DMA", label, a.DMAEnd - p.ReqDMA.Cost(a.Msg.Bytes), a.DMAEnd},
		)
		if a.Msg.Deliver {
			spans = append(spans, TimelineSpan{
				"Req-CPU", label + " deliver", a.At - p.Deliver.Cost(a.Msg.Bytes), a.At,
			})
		}
	}
	return spans
}

// timelineResources is the display order of Figure 2.
var timelineResources = []string{"Req-CPU", "Req-DMA", "Wire", "Srv-DMA", "Srv-CPU"}

// RenderTimeline draws an ASCII Gantt chart of spans, one row per resource,
// with the given number of character columns spanning [0, end of last span].
func RenderTimeline(title string, spans []TimelineSpan, cols int) string {
	if cols < 10 {
		cols = 10
	}
	var end units.Nanos
	for _, s := range spans {
		if s.End > end {
			end = s.End
		}
	}
	if end == 0 {
		end = 1
	}
	pos := func(t units.Nanos) int {
		c := int(int64(t) * int64(cols-1) / int64(end))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (0 .. %.2f ms)\n", title, end.Ms())
	for _, res := range timelineResources {
		row := []byte(strings.Repeat(".", cols))
		used := false
		for _, s := range spans {
			if s.Resource != res {
				continue
			}
			used = true
			a, z := pos(s.Start), pos(s.End)
			if z <= a {
				z = a + 1
				if z > cols {
					z = cols
				}
			}
			for i := a; i < z; i++ {
				row[i] = '#'
			}
		}
		if !used {
			continue
		}
		fmt.Fprintf(&b, "%8s |%s|\n", res, string(row))
	}
	return b.String()
}
