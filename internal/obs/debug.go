package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugServer is the opt-in HTTP debug listener surfaced by gmsnode: it
// serves the metrics exposition on /metrics, a liveness probe on /healthz,
// and the stdlib profiler under /debug/pprof/. It is never started unless
// explicitly requested, so the prototype's default attack and overhead
// surface is unchanged.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
	closeErr  error
}

// StartDebugServer listens on addr (use "127.0.0.1:0" for an ephemeral
// port) and serves the debug endpoints for reg. A nil registry still
// serves /healthz and pprof; /metrics is simply empty.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	// net/http/pprof registers on DefaultServeMux at import; route the
	// same handlers on our private mux so nothing else leaks onto the
	// debug port.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and severs open connections. Idempotent.
func (s *DebugServer) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}
