package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke_total", "smoke test counter").Add(3)
	s, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "smoke_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (len %d)", code, len(body))
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	s, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("/metrics on nil registry = %d %q, want 200 empty", resp.StatusCode, body)
	}
}
