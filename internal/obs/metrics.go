// Package obs is the repository's observability layer: a dependency-free
// metrics registry for the live prototype (counters, gauges, histograms
// with atomic hot paths and a stable text exposition) and a deterministic,
// tick-based event tracer for the simulator (simtrace.go).
//
// Both halves share one design rule: observation must never perturb the
// thing observed. Metric handles are nil-safe — a component built without
// a registry holds nil handles, and every mutator on a nil handle is a
// branch-predicted no-op with zero allocations — so the disabled path
// costs one pointer compare on the fault hot path. The tracer reads only
// the simulator's event clock, never the wall clock, so enabling it
// cannot change a single simulated tick.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil Counter is a valid
// no-op: components hold nil handles when metrics are disabled.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters only go
// up, and a no-op beats a panic on a hot path).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil Gauge is a valid
// no-op.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reports the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets (cumulative
// counts, Prometheus-style) plus a running sum and count. The nil
// Histogram is a valid no-op.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefaultLatencyBuckets cover microsecond-scale prototype latencies:
// 1 µs .. ~16 ms in powers of four.
var DefaultLatencyBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry holds named metrics and renders them as text. The nil Registry
// is valid: every constructor on it returns a nil handle, so "metrics
// disabled" needs no branches at the call sites that record.
type Registry struct {
	mu     sync.Mutex
	byName map[string]any
	names  []string // insertion order; exposition sorts its own copy
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it when
// needed. A nil registry returns a nil (no-op) handle. Re-registering a
// name as a different metric kind panics: that is a wiring bug, not a
// runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic("obs: " + name + " already registered as a different kind")
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating it when needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic("obs: " + name + " already registered as a different kind")
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds (nil selects
// DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic("obs: " + name + " already registered as a different kind")
		}
		return h
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	r.register(name, h)
	return h
}

// register records a new metric. Called with r.mu held.
func (r *Registry) register(name string, m any) {
	r.byName[name] = m
	r.names = append(r.names, name)
}

// WriteText renders every registered metric in a stable, name-sorted text
// exposition (Prometheus-compatible). Values are read atomically but the
// exposition as a whole is not a consistent cut; it is a monitoring
// surface, not a transactional snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the metric set under the lock, render outside it: rendering
	// writes to a caller-supplied (possibly network) writer, which must
	// not stall registration.
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.byName[n]
	}
	r.mu.Unlock()
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })

	var b strings.Builder
	for _, i := range order {
		switch m := metrics[i].(type) {
		case *Counter:
			writeHeader(&b, m.name, m.help, "counter")
			fmt.Fprintf(&b, "%s %d\n", m.name, m.Value())
		case *Gauge:
			writeHeader(&b, m.name, m.help, "gauge")
			fmt.Fprintf(&b, "%s %d\n", m.name, m.Value())
		case *Histogram:
			writeHeader(&b, m.name, m.help, "histogram")
			cum := int64(0)
			for j, bound := range m.bounds {
				cum += m.counts[j].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(m.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
