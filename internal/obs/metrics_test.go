package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if again := r.Counter("c_total", "other"); again != c {
		t.Fatalf("re-registering a counter returned a different handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "help", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 250} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 272 {
		t.Fatalf("sum = %g, want 272", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_us_bucket{le="10"} 2`,
		`lat_us_bucket{le="100"} 3`,
		`lat_us_bucket{le="+Inf"} 4`,
		"lat_us_sum 272",
		"lat_us_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWriteTextGolden pins the full exposition format: sorted names, HELP
// and TYPE headers, stable value formatting.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz_gauge", "last registered, first sorted check").Set(-3)
	r.Counter("aa_total", "a counter").Add(42)
	h := r.Histogram("mm_hist", "a histogram", []float64{0.5, 2})
	h.Observe(1)
	h.Observe(3)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP aa_total a counter",
		"# TYPE aa_total counter",
		"aa_total 42",
		"# HELP mm_hist a histogram",
		"# TYPE mm_hist histogram",
		`mm_hist_bucket{le="0.5"} 0`,
		`mm_hist_bucket{le="2"} 1`,
		`mm_hist_bucket{le="+Inf"} 2`,
		"mm_hist_sum 4",
		"mm_hist_count 2",
		"# HELP zz_gauge last registered, first sorted check",
		"# TYPE zz_gauge gauge",
		"zz_gauge -3",
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestRegistryConcurrency hammers registration, recording and exposition
// from many goroutines; run under -race this is the registry's thread-
// safety pin.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_hist", "", nil)
			ga := r.Gauge("shared_gauge", "")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
				ga.Set(int64(i))
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_hist", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestDisabledMetricsNoAlloc pins the disabled path: nil handles from a
// nil registry must record nothing and allocate nothing, so components can
// call them unconditionally on hot paths.
func TestDisabledMetricsNoAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_hist", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil handles")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4)
		g.Add(-1)
		h.Observe(2.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics path allocates %.1f per op, want 0", allocs)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry exposition = (%q, %v), want empty", b.String(), err)
	}
}

// BenchmarkDisabledCounter is the disabled-path cost on the client fault
// hot path: one nil compare.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkEnabledCounter is the enabled-path cost: one atomic add.
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 5000))
	}
}
