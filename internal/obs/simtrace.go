package obs

import (
	"fmt"
	"io"
	"strings"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// This file is the simulator-side tracer: it records the anatomy of every
// fault — the initial transfer, the program restart, each follow-on
// subpage arrival, and every stall re-entry — on the simulator's tick
// clock, and exports the result as JSONL or as a Chrome trace_event file
// loadable in chrome://tracing / Perfetto.
//
// Determinism rules (DESIGN.md §8): a SimTrace reads no wall clock and no
// randomness; every recorded value comes from the simulator's event clock
// or the transfer plan, both of which are seed-deterministic. Export
// renders records in recording order with fixed field order and integer
// tick values, so a same-seed rerun — at any experiment pool width —
// produces byte-identical files.

// FaultKind classifies a traced fault.
type FaultKind uint8

// The fault kinds.
const (
	// FaultPage is a page fault served from network memory.
	FaultPage FaultKind = iota
	// FaultSubpage is a lazy refetch on an already-resident page.
	FaultSubpage
	// FaultDisk is a fault served synchronously from local disk.
	FaultDisk
)

// String names the kind for export.
func (k FaultKind) String() string {
	switch k {
	case FaultPage:
		return "page"
	case FaultSubpage:
		return "subpage"
	case FaultDisk:
		return "disk"
	}
	return "unknown"
}

// TraceMsg is one planned message of a transfer: when it lands, how many
// bytes it carries, and whether it is CPU-delivered (Deliver) or deposited
// by the controller's DMA engine.
type TraceMsg struct {
	At      units.Ticks
	Bytes   int
	Deliver bool
}

// StallSpan is one interval the program spent stalled on a fault's page:
// the initial resume-from-fault stall, or a later re-entry waiting for a
// not-yet-arrived subpage.
type StallSpan struct {
	From    units.Ticks
	To      units.Ticks
	Initial bool
}

// FaultSpan is the full recorded anatomy of one fault.
type FaultSpan struct {
	ID       int64
	Kind     FaultKind
	Page     uint64
	FaultIdx int // subpage index of the faulted word

	Start        units.Ticks // fault issue
	FirstArrival units.Ticks // faulted subpage usable; program restarts
	Complete     units.Ticks // last planned message lands

	Msgs   []TraceMsg
	Stalls []StallSpan

	// Close-out attribution (recorded by EndTransfer): within the
	// asynchronous window [FirstArrival, min(Complete, now)], how much was
	// spent stalled (on any page) and how much overlapped with execution.
	FinishedAt units.Ticks
	Stalled    units.Ticks
	Overlapped units.Ticks
	Finished   bool
	Canceled   bool // transfer aborted by eviction
}

// SimTrace collects fault spans for one simulation run. It is not
// goroutine-safe: one runner owns one SimTrace, exactly as one runner owns
// one engine. The zero value is ready to use.
type SimTrace struct {
	// Node labels the run in exports when several traces are merged
	// (multi-node or multi-cell runs).
	Node string

	// faults holds every span in recording order; a span's id is its
	// index + 1, so ids are dense, deterministic, and 0 means untraced.
	faults []FaultSpan
}

// BeginTransfer records a planned transfer and returns its fault id (ids
// are dense, starting at 1; 0 means untraced). The engine calls it from
// StartFault; msgs is retained, not copied.
func (t *SimTrace) BeginTransfer(page uint64, faultIdx int, start, firstArrival, complete units.Ticks, msgs []TraceMsg) int64 {
	id := int64(len(t.faults) + 1)
	t.faults = append(t.faults, FaultSpan{
		ID:           id,
		Kind:         FaultPage,
		Page:         page,
		FaultIdx:     faultIdx,
		Start:        start,
		FirstArrival: firstArrival,
		Complete:     complete,
		Msgs:         msgs,
	})
	return id
}

// span returns the fault with the given id, or nil.
func (t *SimTrace) span(id int64) *FaultSpan {
	if id < 1 || int(id) > len(t.faults) {
		return nil
	}
	return &t.faults[id-1]
}

// SetKind reclassifies a fault (the runner knows whether a transfer was a
// page fault or a lazy subpage refetch; the engine does not).
func (t *SimTrace) SetKind(id int64, kind FaultKind) {
	if f := t.span(id); f != nil {
		f.Kind = kind
	}
}

// Stall records a stall interval attributed to fault id.
func (t *SimTrace) Stall(id int64, from, to units.Ticks, initial bool) {
	if f := t.span(id); f != nil {
		f.Stalls = append(f.Stalls, StallSpan{From: from, To: to, Initial: initial})
	}
}

// EndTransfer closes a fault with its asynchronous-window attribution.
func (t *SimTrace) EndTransfer(id int64, now, stalled, overlapped units.Ticks) {
	if f := t.span(id); f != nil {
		f.FinishedAt = now
		f.Stalled = stalled
		f.Overlapped = overlapped
		f.Finished = true
	}
}

// Cancel marks a fault's transfer as aborted by eviction.
func (t *SimTrace) Cancel(id int64) {
	if f := t.span(id); f != nil {
		f.Canceled = true
	}
}

// DiskFault records a synchronous disk-served fault as a degenerate span:
// no messages, no restart before completion.
func (t *SimTrace) DiskFault(page uint64, start, end units.Ticks) {
	id := int64(len(t.faults) + 1)
	t.faults = append(t.faults, FaultSpan{
		ID:           id,
		Kind:         FaultDisk,
		Page:         page,
		Start:        start,
		FirstArrival: end,
		Complete:     end,
		FinishedAt:   end,
		Finished:     true,
	})
}

// Faults returns the recorded spans in recording (fault-issue) order.
func (t *SimTrace) Faults() []FaultSpan { return t.faults }

// WriteJSONL renders the traces as one JSON object per fault span, in
// recording order, trace by trace. Fields are emitted in a fixed order
// with integer tick values, so output is byte-stable.
func WriteJSONL(w io.Writer, traces ...*SimTrace) error {
	var b strings.Builder
	for ti, t := range traces {
		if t == nil {
			continue
		}
		node := t.Node
		if node == "" {
			node = fmt.Sprintf("run%d", ti)
		}
		for i := range t.faults {
			f := &t.faults[i]
			fmt.Fprintf(&b, `{"node":%q,"id":%d,"kind":%q,"page":%d,"fault_subpage":%d,"start":%d,"restart":%d,"complete":%d`,
				node, f.ID, f.Kind, f.Page, f.FaultIdx, f.Start, f.FirstArrival, f.Complete)
			b.WriteString(`,"msgs":[`)
			for j, m := range f.Msgs {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `{"at":%d,"bytes":%d,"deliver":%t}`, m.At, m.Bytes, m.Deliver)
			}
			b.WriteString(`],"stalls":[`)
			for j, s := range f.Stalls {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `{"from":%d,"to":%d,"initial":%t}`, s.From, s.To, s.Initial)
			}
			fmt.Fprintf(&b, `],"finished":%t,"finished_at":%d,"stalled":%d,"overlapped":%d,"canceled":%t}`,
				f.Finished, f.FinishedAt, f.Stalled, f.Overlapped, f.Canceled)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteChromeTrace renders the traces in Chrome trace_event JSON (load in
// chrome://tracing or Perfetto). One trace becomes one process; each gets
// a "stalls" thread (the CPU's view: every stall span) and a "transfers"
// thread (one complete-event per fault spanning issue→completion, with
// instant events for each follow-on message arrival after the restart).
//
// Timestamps are the simulator's tick values presented as microseconds:
// one viewer microsecond is one memory-reference event (12 ns of model
// time). Integer ticks keep the bytes stable; args carry the real values.
func WriteChromeTrace(w io.Writer, traces ...*SimTrace) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	ev := func(s string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(s)
	}
	for ti, t := range traces {
		if t == nil {
			continue
		}
		node := t.Node
		if node == "" {
			node = fmt.Sprintf("run%d", ti)
		}
		pid := ti
		ev(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%q}}`, pid, node))
		ev(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"thread_name","args":{"name":"stalls (cpu)"}}`, pid))
		ev(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":1,"name":"thread_name","args":{"name":"transfers"}}`, pid))
		for i := range t.faults {
			f := &t.faults[i]
			ev(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":1,"ts":%d,"dur":%d,"name":"fault %d %s p%d","args":{"kind":%q,"page":%d,"fault_subpage":%d,"msgs":%d,"restart_ticks":%d,"stalled_ticks":%d,"overlapped_ticks":%d,"canceled":%t}}`,
				pid, f.Start, max64(int64(f.Complete-f.Start), 1), f.ID, f.Kind, f.Page,
				f.Kind, f.Page, f.FaultIdx, len(f.Msgs),
				int64(f.FirstArrival-f.Start), int64(f.Stalled), int64(f.Overlapped), f.Canceled))
			for j, m := range f.Msgs {
				if j == 0 {
					continue // the initial transfer is the restart edge, not a follow-on
				}
				class := "dma"
				if m.Deliver {
					class = "cpu"
				}
				ev(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":1,"ts":%d,"s":"t","name":"arrival %d.%d","args":{"bytes":%d,"class":%q}}`,
					pid, m.At, f.ID, j, m.Bytes, class))
			}
			for j, s := range f.Stalls {
				name := "stall"
				if s.Initial {
					name = "fault stall"
				}
				ev(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":0,"ts":%d,"dur":%d,"name":"%s %d.%d","args":{"fault":%d,"initial":%t}}`,
					pid, s.From, max64(int64(s.To-s.From), 1), name, f.ID, j, f.ID, s.Initial))
			}
		}
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
