package obs

import (
	"bytes"
	"strings"
	"testing"
)

// fill records the same small fault history into t; used to check that
// export is a pure function of the recorded spans.
func fill(t *SimTrace) {
	id := t.BeginTransfer(7, 2, 100, 140, 300, []TraceMsg{
		{At: 140, Bytes: 1024, Deliver: true},
		{At: 220, Bytes: 1024, Deliver: false},
		{At: 300, Bytes: 2048, Deliver: true},
	})
	t.Stall(id, 100, 140, true)
	t.Stall(id, 180, 220, false)
	t.EndTransfer(id, 300, 40, 120)

	sid := t.BeginTransfer(7, 5, 400, 430, 430, []TraceMsg{{At: 430, Bytes: 1024, Deliver: true}})
	t.SetKind(sid, FaultSubpage)
	t.Stall(sid, 400, 430, true)
	t.EndTransfer(sid, 430, 0, 0)

	t.DiskFault(9, 500, 1700)

	cid := t.BeginTransfer(11, 0, 2000, 2050, 2600, []TraceMsg{{At: 2050, Bytes: 4096, Deliver: true}})
	t.Stall(cid, 2000, 2050, true)
	t.Cancel(cid)
	t.EndTransfer(cid, 2100, 0, 50)
}

func TestSimTraceRecords(t *testing.T) {
	tr := &SimTrace{}
	fill(tr)
	fs := tr.Faults()
	if len(fs) != 4 {
		t.Fatalf("recorded %d faults, want 4", len(fs))
	}
	if fs[0].Kind != FaultPage || fs[1].Kind != FaultSubpage || fs[2].Kind != FaultDisk {
		t.Fatalf("kinds = %v %v %v", fs[0].Kind, fs[1].Kind, fs[2].Kind)
	}
	if fs[0].ID != 1 || fs[3].ID != 4 {
		t.Fatalf("ids not dense: %d..%d", fs[0].ID, fs[3].ID)
	}
	if len(fs[0].Stalls) != 2 || !fs[0].Stalls[0].Initial || fs[0].Stalls[1].Initial {
		t.Fatalf("fault 1 stalls = %+v", fs[0].Stalls)
	}
	if fs[0].Stalled != 40 || fs[0].Overlapped != 120 || !fs[0].Finished {
		t.Fatalf("fault 1 close-out = %+v", fs[0])
	}
	if !fs[3].Canceled {
		t.Fatalf("fault 4 not marked canceled")
	}
	if fs[2].Start != 500 || fs[2].Complete != 1700 || !fs[2].Finished {
		t.Fatalf("disk fault span = %+v", fs[2])
	}
}

// TestExportByteStable pins the determinism contract: identical recorded
// histories export byte-identically, in both formats.
func TestExportByteStable(t *testing.T) {
	render := func() (jsonl, chrome []byte) {
		a, b := &SimTrace{Node: "n0"}, &SimTrace{Node: "n1"}
		fill(a)
		fill(b)
		var j, c bytes.Buffer
		if err := WriteJSONL(&j, a, b); err != nil {
			t.Fatal(err)
		}
		if err := WriteChromeTrace(&c, a, b); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := render()
	j2, c2 := render()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSONL export not byte-stable")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("Chrome export not byte-stable")
	}
}

func TestWriteJSONLShape(t *testing.T) {
	tr := &SimTrace{}
	fill(tr)
	var b bytes.Buffer
	if err := WriteJSONL(&b, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], `"kind":"page"`) ||
		!strings.Contains(lines[0], `"restart":140`) ||
		!strings.Contains(lines[0], `"stalls":[{"from":100,"to":140,"initial":true},{"from":180,"to":220,"initial":false}]`) {
		t.Fatalf("line 1 = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"subpage"`) {
		t.Fatalf("line 2 = %s", lines[1])
	}
	if !strings.Contains(lines[2], `"kind":"disk"`) || !strings.Contains(lines[2], `"msgs":[]`) {
		t.Fatalf("line 3 = %s", lines[2])
	}
	if !strings.Contains(lines[3], `"canceled":true`) {
		t.Fatalf("line 4 = %s", lines[3])
	}
	// Default node label when unset.
	if !strings.HasPrefix(lines[0], `{"node":"run0"`) {
		t.Fatalf("line 1 node label = %s", lines[0])
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := &SimTrace{Node: "cell-0"}
	fill(tr)
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"displayTimeUnit":"ms"`,
		`"name":"process_name","args":{"name":"cell-0"}`,
		`"name":"thread_name","args":{"name":"stalls (cpu)"}`,
		`"name":"thread_name","args":{"name":"transfers"}`,
		`"ph":"X"`,
		`"name":"fault 1 page p7"`,
		`"name":"arrival 1.1"`, // first follow-on msg, not the restart edge
		`"name":"fault stall 1.0"`,
		`"name":"stall 1.1"`,
		`"canceled":true`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"arrival 1.0"`) {
		t.Fatalf("restart edge exported as a follow-on arrival:\n%s", out)
	}
}

// TestUntracedIDsAreNoOps: id 0 (untraced) and out-of-range ids must be
// ignored — the engine passes 0 when no tracer is attached to a transfer.
func TestUntracedIDsAreNoOps(t *testing.T) {
	tr := &SimTrace{}
	tr.Stall(0, 1, 2, true)
	tr.EndTransfer(0, 3, 0, 0)
	tr.Cancel(99)
	tr.SetKind(-1, FaultDisk)
	if n := len(tr.Faults()); n != 0 {
		t.Fatalf("no-op ids recorded %d spans", n)
	}
}

func TestFaultKindString(t *testing.T) {
	cases := map[FaultKind]string{FaultPage: "page", FaultSubpage: "subpage", FaultDisk: "disk", FaultKind(9): "unknown"}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("FaultKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
