// Package par provides the bounded worker pool behind the deterministic
// parallel experiment engine. Experiments fan independent simulation cells
// out to a shared Pool and collect results by index, so the rendered output
// is byte-for-byte identical to a sequential run regardless of scheduling.
//
// The pool is deadlock-free under nesting: a ForEach caller always executes
// jobs inline when no worker slot is free, so an experiment running on a
// pool worker can itself fan its cells out to the same pool. Total
// concurrency (workers plus inline callers) stays bounded by the configured
// width.
package par

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool. The zero value and the nil pool both run
// everything inline (fully sequential); construct widths > 1 with New.
type Pool struct {
	// slots holds one token per *extra* goroutine the pool may spawn; the
	// calling goroutine is the remaining worker. nil means sequential.
	slots chan struct{}
}

// New returns a pool running at most workers jobs concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return &Pool{}
	}
	return &Pool{slots: make(chan struct{}, workers-1)}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.slots == nil {
		return 1
	}
	return cap(p.slots) + 1
}

// ForEach runs fn(0) .. fn(n-1), each exactly once, and returns when all
// calls have finished. Calls may run concurrently up to the pool width; the
// caller's goroutine participates, so nested ForEach calls cannot deadlock.
// fn must not panic across goroutines' shared state; each index should be
// an independent unit of work that writes only its own slot.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if p == nil || p.slots == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-p.slots
					wg.Done()
				}()
				fn(i)
			}(i)
		default:
			// No free slot: run this job inline so the pool can never
			// deadlock on nested fan-out.
			fn(i)
		}
	}
	wg.Wait()
}

// Map runs fn over 0..n-1 on the pool and returns the results in index
// order, independent of execution order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
