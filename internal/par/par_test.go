package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		const n = 100
		var counts [n]int32
		p.ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestNilAndZeroPoolAreSequential(t *testing.T) {
	var nilPool *Pool
	order := []int{}
	nilPool.ForEach(5, func(i int) { order = append(order, i) })
	(&Pool{}).ForEach(5, func(i int) { order = append(order, i) })
	want := []int{0, 1, 2, 3, 4, 0, 1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
	if nilPool.Workers() != 1 || New(1).Workers() != 1 {
		t.Fatal("sequential pools must report one worker")
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(4).Workers(); got != 4 {
		t.Fatalf("New(4).Workers() = %d", got)
	}
}

// TestNestedForEachNoDeadlock is the property the experiment engine relies
// on: experiments fan out on the pool while themselves running as pool
// jobs. Saturating nesting must complete (inline fallback), not deadlock.
func TestNestedForEachNoDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.ForEach(8, func(i int) {
		p.ForEach(8, func(j int) {
			p.ForEach(4, func(k int) { total.Add(1) })
		})
	})
	if total.Load() != 8*8*4 {
		t.Fatalf("total = %d", total.Load())
	}
}

// TestConcurrencyBounded: at most Workers() jobs run at once, counting the
// inline caller.
func TestConcurrencyBounded(t *testing.T) {
	p := New(3)
	var cur, peak int32
	var mu sync.Mutex
	p.ForEach(64, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		for k := 0; k < 1000; k++ {
			runtime.Gosched()
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeds pool width 3", peak)
	}
}

func TestMapCollectsByIndex(t *testing.T) {
	p := New(4)
	got := Map(p, 10, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
	if len(Map(p, 0, func(i int) int { return i })) != 0 {
		t.Fatal("empty Map should return empty slice")
	}
}
