// Wire protocol v2: batched, pipelined subpage transfer.
//
// The v1 fault path pays one length-prefixed frame — and one writer
// syscall — per subpage fragment, and a reply stream is identified only
// by its page number, so a connection cannot tell a live attempt's
// fragments from a superseded one's. V2 fixes both:
//
//   - TGetPageV2 carries a client-chosen request ID and a want-bitmap of
//     the subpage blocks still missing, so many gets pipeline on one
//     connection and a partially valid page fetches only what it lacks.
//   - TSubpageBatch carries many subpage runs of one page in a single
//     frame: one header, a run table, then the concatenated data. The
//     server assembles the frame header and table into a pooled buffer
//     and hands the data ranges to writev (net.Buffers) untouched —
//     page bytes are never copied into a frame buffer on the way out.
//   - TCancel withdraws a request by ID at the next batch boundary, so
//     the losing half of a hedged fetch stops burning bandwidth.
//
// Batch payload layout (little endian), after the standard frame header:
//
//	bytes 0-7    request ID
//	bytes 8-15   page number
//	byte  16     flags (FlagFirst, FlagLast)
//	byte  17     run count n
//	16×n bytes   run table: n × { offset uint32, length uint32 }
//	rest         run data, concatenated in table order
//
// Runs must be MinSubpage-aligned, in strictly ascending offset order,
// non-overlapping and in-page, and the data length must equal the table's
// total — DecodeSubpageBatch rejects anything else, so a decoded batch
// can be applied to a page cache without further bounds checks.
package proto

import (
	"encoding/binary"
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// GetPageV2 asks for the missing subpages of one page (wire v2).
type GetPageV2 struct {
	// ReqID identifies the reply stream; the client picks it unique per
	// request and the server echoes it on every TSubpageBatch.
	ReqID uint64
	// Page is the global page number.
	Page uint64
	// FaultOff is the faulted byte offset within the page; the run
	// covering it is flagged FlagFirst and sent in the first batch.
	FaultOff uint32
	// SubpageSize is the transfer granularity, as in v1.
	SubpageSize uint32
	// Want is a bitmap over the page's MinSubpage blocks naming the
	// blocks the client still needs; zero means "everything the policy
	// plans". The faulted block is always included regardless.
	Want uint32
	// Policy is one of the Policy* constants, as in v1.
	Policy uint8
}

// Cancel withdraws the in-flight GetPageV2 with the same ReqID.
type Cancel struct{ ReqID uint64 }

// SubpageRun is one contiguous, block-aligned byte range of a page,
// paired with its data for encoding.
type SubpageRun struct {
	Off  uint32
	Data []byte
}

const (
	getPageV2Len  = 29 // ReqID 8 + Page 8 + FaultOff 4 + SubpageSize 4 + Want 4 + Policy 1
	cancelLen     = 8
	batchFixedLen = 18 // ReqID 8 + Page 8 + Flags 1 + run count 1
	runEntryLen   = 8  // offset uint32 + length uint32
)

// MaxBatchRuns bounds the run table: a page cannot have more distinct
// valid-bit runs than it has valid bits.
const MaxBatchRuns = units.ValidBitsPerPage

// SendGetPageV2 writes a TGetPageV2 frame.
func (w *Writer) SendGetPageV2(m GetPageV2) error {
	p := make([]byte, 0, getPageV2Len)
	p = binary.LittleEndian.AppendUint64(p, m.ReqID)
	p = binary.LittleEndian.AppendUint64(p, m.Page)
	p = binary.LittleEndian.AppendUint32(p, m.FaultOff)
	p = binary.LittleEndian.AppendUint32(p, m.SubpageSize)
	p = binary.LittleEndian.AppendUint32(p, m.Want)
	p = append(p, m.Policy)
	return w.send(TGetPageV2, p)
}

// DecodeGetPageV2 parses a TGetPageV2 payload.
func DecodeGetPageV2(p []byte) (GetPageV2, error) {
	if len(p) < getPageV2Len {
		return GetPageV2{}, short(TGetPageV2)
	}
	return GetPageV2{
		ReqID:       binary.LittleEndian.Uint64(p[0:8]),
		Page:        binary.LittleEndian.Uint64(p[8:16]),
		FaultOff:    binary.LittleEndian.Uint32(p[16:20]),
		SubpageSize: binary.LittleEndian.Uint32(p[20:24]),
		Want:        binary.LittleEndian.Uint32(p[24:28]),
		Policy:      p[28],
	}, nil
}

// SendCancel writes a TCancel frame.
func (w *Writer) SendCancel(m Cancel) error {
	p := binary.LittleEndian.AppendUint64(make([]byte, 0, cancelLen), m.ReqID)
	return w.send(TCancel, p)
}

// DecodeCancel parses a TCancel payload.
func DecodeCancel(p []byte) (Cancel, error) {
	if len(p) < cancelLen {
		return Cancel{}, short(TCancel)
	}
	return Cancel{ReqID: binary.LittleEndian.Uint64(p[0:8])}, nil
}

// validateRuns checks the encoding contract shared by the batch builders:
// block-aligned, ascending, non-overlapping, in-page runs.
func validateRuns(runs []SubpageRun) (dataLen int, err error) {
	if len(runs) > MaxBatchRuns {
		return 0, fmt.Errorf("proto: %d runs exceed the %d-run batch limit", len(runs), MaxBatchRuns)
	}
	prevEnd := 0
	for _, r := range runs {
		off, n := int(r.Off), len(r.Data)
		if n == 0 || off%units.MinSubpage != 0 || n%units.MinSubpage != 0 {
			return 0, fmt.Errorf("proto: batch run off=%d len=%d not block-aligned", off, n)
		}
		if off < prevEnd || off+n > units.PageSize {
			return 0, fmt.Errorf("proto: batch run off=%d len=%d overlaps or overruns the page", off, n)
		}
		prevEnd = off + n
		dataLen += n
	}
	return dataLen, nil
}

// AppendSubpageBatchFrame appends the complete frame header, batch header
// and run table for a TSubpageBatch — everything except the data bytes —
// to dst and returns it. The caller supplies the runs' data as separate
// scatter-gather buffers (net.Buffers) immediately after this header, so
// page bytes go from the page store to the socket without an intermediate
// copy. The runs must satisfy the batch contract (see package comment).
func AppendSubpageBatchFrame(dst []byte, reqID, page uint64, flags uint8, runs []SubpageRun) ([]byte, error) {
	dataLen, err := validateRuns(runs)
	if err != nil {
		return dst, err
	}
	payload := batchFixedLen + runEntryLen*len(runs) + dataLen
	if payload > MaxPayload {
		return dst, fmt.Errorf("proto: batch payload %d exceeds max %d", payload, MaxPayload)
	}
	dst = append(dst, byte(TSubpageBatch))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint64(dst, page)
	dst = append(dst, flags, byte(len(runs)))
	for _, r := range runs {
		dst = binary.LittleEndian.AppendUint32(dst, r.Off)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Data)))
	}
	return dst, nil
}

// SendSubpageBatch writes a TSubpageBatch frame through the Writer's own
// buffer (one Write, data copied once). The server's hot path uses
// AppendSubpageBatchFrame with scatter-gather instead; this form serves
// tests, fallbacks and non-socket writers.
func (w *Writer) SendSubpageBatch(reqID, page uint64, flags uint8, runs []SubpageRun) error {
	frame, err := AppendSubpageBatchFrame(w.buf[:0], reqID, page, flags, runs)
	if err != nil {
		w.buf = frame[:0]
		return err
	}
	for _, r := range runs {
		frame = append(frame, r.Data...)
	}
	w.buf = frame
	_, err = w.w.Write(w.buf)
	w.afterSend()
	return err
}

// SubpageBatch is a decoded TSubpageBatch. The run table and data alias
// the payload, so the batch is only valid until the Reader's next frame;
// apply it before reading on.
type SubpageBatch struct {
	ReqID uint64
	Page  uint64
	Flags uint8
	count int
	table []byte // run table, count × runEntryLen bytes
	data  []byte // concatenated run data
}

// Runs reports the number of runs in the batch.
func (b SubpageBatch) Runs() int { return b.count }

// Run returns the i'th run's page offset and data (aliasing the payload).
// It walks the table from the front, so iterate in ascending order.
func (b SubpageBatch) Run(i int) (off int, data []byte) {
	skip := 0
	for j := 0; j < i; j++ {
		skip += int(binary.LittleEndian.Uint32(b.table[j*runEntryLen+4:]))
	}
	e := b.table[i*runEntryLen:]
	n := int(binary.LittleEndian.Uint32(e[4:]))
	return int(binary.LittleEndian.Uint32(e)), b.data[skip : skip+n]
}

// DecodeSubpageBatch parses and validates a TSubpageBatch payload. On
// success every run is block-aligned, strictly ascending, non-overlapping
// and in-page, and the data section's length matches the table exactly —
// duplicate or overlapping ranges are rejected here, not by the cache.
func DecodeSubpageBatch(p []byte) (SubpageBatch, error) {
	if len(p) < batchFixedLen {
		return SubpageBatch{}, short(TSubpageBatch)
	}
	b := SubpageBatch{
		ReqID: binary.LittleEndian.Uint64(p[0:8]),
		Page:  binary.LittleEndian.Uint64(p[8:16]),
		Flags: p[16],
		count: int(p[17]),
	}
	if b.count > MaxBatchRuns {
		return SubpageBatch{}, fmt.Errorf("proto: batch run count %d exceeds limit %d", b.count, MaxBatchRuns)
	}
	tableLen := b.count * runEntryLen
	if len(p) < batchFixedLen+tableLen {
		return SubpageBatch{}, short(TSubpageBatch)
	}
	b.table = p[batchFixedLen : batchFixedLen+tableLen]
	b.data = p[batchFixedLen+tableLen:]
	dataLen, prevEnd := 0, 0
	for i := 0; i < b.count; i++ {
		e := b.table[i*runEntryLen:]
		off := int(binary.LittleEndian.Uint32(e))
		n := int(binary.LittleEndian.Uint32(e[4:]))
		if n == 0 || off%units.MinSubpage != 0 || n%units.MinSubpage != 0 {
			return SubpageBatch{}, fmt.Errorf("proto: batch run off=%d len=%d not block-aligned", off, n)
		}
		if off < prevEnd || off+n > units.PageSize {
			return SubpageBatch{}, fmt.Errorf("proto: batch run off=%d len=%d overlaps or overruns the page", off, n)
		}
		prevEnd = off + n
		dataLen += n
	}
	if dataLen != len(b.data) {
		return SubpageBatch{}, fmt.Errorf("proto: batch data %d bytes, table promises %d", len(b.data), dataLen)
	}
	return b, nil
}
