package proto

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/units"
)

func TestGetPageV2RoundTrip(t *testing.T) {
	in := GetPageV2{ReqID: 1 << 60, Page: 0xdeadbeef, FaultOff: 4097,
		SubpageSize: 1024, Want: 0x0f0f_0f0f, Policy: PolicyPipelined}
	f := roundTrip(t, func(w *Writer) error { return w.SendGetPageV2(in) })
	if f.Type != TGetPageV2 {
		t.Fatalf("type = %v", f.Type)
	}
	out, err := DecodeGetPageV2(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := DecodeGetPageV2(f.Payload[:getPageV2Len-1]); err == nil {
		t.Fatal("short GetPageV2 should fail")
	}
}

func TestCancelRoundTrip(t *testing.T) {
	f := roundTrip(t, func(w *Writer) error { return w.SendCancel(Cancel{ReqID: 77}) })
	if f.Type != TCancel {
		t.Fatalf("type = %v", f.Type)
	}
	out, err := DecodeCancel(f.Payload)
	if err != nil || out.ReqID != 77 {
		t.Fatalf("cancel: %+v, %v", out, err)
	}
	if _, err := DecodeCancel(f.Payload[:cancelLen-1]); err == nil {
		t.Fatal("short Cancel should fail")
	}
}

func mkRun(off, n int) SubpageRun {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(off + i)
	}
	return SubpageRun{Off: uint32(off), Data: d}
}

func TestSubpageBatchRoundTrip(t *testing.T) {
	runs := []SubpageRun{mkRun(0, 256), mkRun(1024, 512), mkRun(units.PageSize-256, 256)}
	f := roundTrip(t, func(w *Writer) error {
		return w.SendSubpageBatch(9, 42, FlagFirst|FlagLast, runs)
	})
	if f.Type != TSubpageBatch {
		t.Fatalf("type = %v", f.Type)
	}
	b, err := DecodeSubpageBatch(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.ReqID != 9 || b.Page != 42 || b.Flags != FlagFirst|FlagLast || b.Runs() != len(runs) {
		t.Fatalf("batch header: %+v", b)
	}
	for i, r := range runs {
		off, data := b.Run(i)
		if off != int(r.Off) || !bytes.Equal(data, r.Data) {
			t.Fatalf("run %d: off=%d len=%d, want off=%d len=%d", i, off, len(data), r.Off, len(r.Data))
		}
	}
}

// TestSubpageBatchEmptyTerminator pins the count-0 shape: a batch with no
// runs is a legal pure-signal frame (e.g. a FlagLast terminator when all
// requested blocks were already sent).
func TestSubpageBatchEmptyTerminator(t *testing.T) {
	f := roundTrip(t, func(w *Writer) error { return w.SendSubpageBatch(3, 4, FlagLast, nil) })
	b, err := DecodeSubpageBatch(f.Payload)
	if err != nil || b.Runs() != 0 || b.Flags != FlagLast || b.ReqID != 3 || b.Page != 4 {
		t.Fatalf("terminator batch: %+v, %v", b, err)
	}
}

// TestSubpageBatchScatterGatherMatchesWriter pins that the zero-copy
// server encoding (header via AppendSubpageBatchFrame + raw data ranges)
// is byte-identical to the Writer's copying form.
func TestSubpageBatchScatterGatherMatchesWriter(t *testing.T) {
	runs := []SubpageRun{mkRun(512, 256), mkRun(2048, 1024)}
	var viaWriter bytes.Buffer
	if err := NewWriter(&viaWriter).SendSubpageBatch(7, 11, FlagFirst, runs); err != nil {
		t.Fatal(err)
	}
	hdr, err := AppendSubpageBatchFrame(nil, 7, 11, FlagFirst, runs)
	if err != nil {
		t.Fatal(err)
	}
	gathered := append([]byte(nil), hdr...)
	for _, r := range runs {
		gathered = append(gathered, r.Data...)
	}
	if !bytes.Equal(gathered, viaWriter.Bytes()) {
		t.Fatalf("scatter-gather frame differs from writer frame:\n%x\n%x", gathered, viaWriter.Bytes())
	}
}

func TestSubpageBatchRejectsBadRuns(t *testing.T) {
	cases := []struct {
		name string
		runs []SubpageRun
	}{
		{"empty run", []SubpageRun{{Off: 0, Data: nil}}},
		{"misaligned offset", []SubpageRun{{Off: 100, Data: make([]byte, 256)}}},
		{"misaligned length", []SubpageRun{{Off: 0, Data: make([]byte, 300)}}},
		{"overruns page", []SubpageRun{{Off: units.PageSize - 256, Data: make([]byte, 512)}}},
		{"duplicate", []SubpageRun{mkRun(512, 256), mkRun(512, 256)}},
		{"overlap", []SubpageRun{mkRun(0, 1024), mkRun(512, 256)}},
		{"out of order", []SubpageRun{mkRun(1024, 256), mkRun(0, 256)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The encoder refuses to build the frame...
			if _, err := AppendSubpageBatchFrame(nil, 1, 2, 0, tc.runs); err == nil {
				t.Error("encoder accepted bad runs")
			}
			if err := NewWriter(io.Discard).SendSubpageBatch(1, 2, 0, tc.runs); err == nil {
				t.Error("writer accepted bad runs")
			}
			// ...and the decoder rejects a hand-forged frame carrying them,
			// so a malicious or buggy peer cannot smuggle overlapping
			// ranges past a conforming encoder.
			if _, err := DecodeSubpageBatch(forgeBatch(1, 2, 0, tc.runs)); err == nil {
				t.Error("decoder accepted bad runs")
			}
		})
	}
}

// forgeBatch builds a TSubpageBatch payload without the encoder's
// validation, for feeding deliberately-broken shapes to the decoder.
func forgeBatch(reqID, page uint64, flags uint8, runs []SubpageRun) []byte {
	p := make([]byte, 0, 64)
	p = appendU64(p, reqID)
	p = appendU64(p, page)
	p = append(p, flags, byte(len(runs)))
	for _, r := range runs {
		p = appendU32(p, r.Off)
		p = appendU32(p, uint32(len(r.Data)))
	}
	for _, r := range runs {
		p = append(p, r.Data...)
	}
	return p
}

func appendU64(p []byte, v uint64) []byte {
	return append(p, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendU32(p []byte, v uint32) []byte {
	return append(p, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func TestSubpageBatchDecodeTruncation(t *testing.T) {
	good := forgeBatch(1, 2, FlagLast, []SubpageRun{mkRun(0, 256), mkRun(512, 256)})
	if _, err := DecodeSubpageBatch(good); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
	for cut := 1; cut <= len(good); cut++ {
		if _, err := DecodeSubpageBatch(good[:len(good)-cut]); err == nil {
			t.Fatalf("batch truncated by %d bytes decoded cleanly", cut)
		}
	}
	// Trailing garbage makes table and data disagree.
	if _, err := DecodeSubpageBatch(append(append([]byte(nil), good...), 0xff)); err == nil {
		t.Fatal("batch with trailing bytes decoded cleanly")
	}
	// A count byte promising more runs than any page can have.
	over := append([]byte(nil), good...)
	over[17] = MaxBatchRuns + 1
	if _, err := DecodeSubpageBatch(over); err == nil {
		t.Fatal("batch with oversized run count decoded cleanly")
	}
}

func TestSubpageBatchRunLimit(t *testing.T) {
	runs := make([]SubpageRun, MaxBatchRuns+1)
	for i := range runs {
		runs[i] = mkRun(i*units.MinSubpage, units.MinSubpage)
	}
	if _, err := AppendSubpageBatchFrame(nil, 1, 2, 0, runs); err == nil {
		t.Fatal("encoder accepted more runs than the page has blocks")
	}
	// Exactly the limit — a full page in minimum blocks — must fit MaxPayload.
	full := runs[:MaxBatchRuns]
	hdr, err := AppendSubpageBatchFrame(nil, 1, 2, FlagFirst|FlagLast, full)
	if err != nil {
		t.Fatalf("full-page batch rejected: %v", err)
	}
	const frameHdr = 5 // type byte + uint32 length prefix
	if payload := len(hdr) - frameHdr + units.PageSize; payload > MaxPayload {
		t.Fatalf("full-page batch payload %d bytes overruns MaxPayload %d", payload, MaxPayload)
	}
}

// TestWriterReleasesOversizedBuffer pins the satellite bugfix: a one-off
// large frame (a wide-deployment ShardMap, say) must not pin page-scale
// buffer capacity on a connection that otherwise sends tiny frames.
func TestWriterReleasesOversizedBuffer(t *testing.T) {
	w := NewWriter(io.Discard)
	wide := ShardMap{Version: 1}
	for i := 0; i < 100; i++ {
		wide.Shards = append(wide.Shards, fmt.Sprintf("shard-%03d.example.com:9999", i))
	}
	if err := w.SendShardMap(wide); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) <= writerRetainCap {
		t.Skipf("wide ShardMap frame only needed %d bytes; enlarge the fixture", cap(w.buf))
	}
	for i := 0; i < writerShrinkAfter-1; i++ {
		if err := w.SendAck(); err != nil {
			t.Fatal(err)
		}
		if cap(w.buf) <= writerRetainCap {
			t.Fatalf("buffer released after only %d small sends; hysteresis broken", i+1)
		}
	}
	if err := w.SendAck(); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) > writerRetainCap {
		t.Fatalf("after %d small sends the writer still retains %d bytes (cap %d)",
			writerShrinkAfter, cap(w.buf), writerRetainCap)
	}
	// And a steady stream of large frames never thrashes: the buffer
	// survives interleaved small terminators.
	data := make([]byte, units.PageSize)
	if err := w.SendPageData(PageData{Page: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	before := cap(w.buf)
	for i := 0; i < writerShrinkAfter-1; i++ {
		if err := w.SendAck(); err != nil {
			t.Fatal(err)
		}
		if err := w.SendPageData(PageData{Page: 1, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if cap(w.buf) != before {
		t.Fatalf("steady large-frame writer reallocated: cap %d -> %d", before, cap(w.buf))
	}
}

// TestBatchEncodeDecodeAllocs pins the hot-path allocation budget at the
// proto layer: building a batch frame header into a reused buffer and
// decoding/iterating a received batch must not allocate at all.
func TestBatchEncodeDecodeAllocs(t *testing.T) {
	runs := []SubpageRun{mkRun(0, 256), mkRun(1024, 1024), mkRun(4096, 512)}
	hdr := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(100, func() {
		var err error
		hdr, err = AppendSubpageBatchFrame(hdr[:0], 1, 2, FlagFirst, runs)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendSubpageBatchFrame allocates %.1f/op; budget is 0", n)
	}
	payload := forgeBatch(1, 2, FlagFirst, runs)
	if n := testing.AllocsPerRun(100, func() {
		b, err := DecodeSubpageBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Runs(); i++ {
			off, data := b.Run(i)
			if off < 0 || len(data) == 0 {
				t.Fatal("bad run")
			}
		}
	}); n != 0 {
		t.Fatalf("DecodeSubpageBatch+Run allocates %.1f/op; budget is 0", n)
	}
}

// TestV2TagsRejectedByOldReaders documents the interop story: a v1 reader
// (here emulated by the pre-v2 tag bound) would reject the new tag bytes
// at the framing layer, so a v2 sender must never use them until the peer
// advertises v2 — see DESIGN.md §11 for the rollout order.
func TestV2TagsRejectedByOldReaders(t *testing.T) {
	for _, tag := range []Type{TGetPageV2, TSubpageBatch, TCancel} {
		if tag <= TWrongShard {
			t.Fatalf("tag %v inside the v1 range; v1 peers would misdispatch it", tag)
		}
	}
	if got := TCancel.String(); got != "Cancel" {
		t.Fatalf("TCancel.String() = %q", got)
	}
	if !strings.HasPrefix(TGetPageV2.String(), "GetPage") {
		t.Fatalf("TGetPageV2.String() = %q", TGetPageV2.String())
	}
}
