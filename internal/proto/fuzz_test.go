package proto

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the frame reader and every
// payload decoder. The contract under test: malformed input must produce
// an error (or a harmless zero value), never a panic or an out-of-range
// slice. Run it as a fuzzer with
//
//	go test -fuzz FuzzDecode ./internal/proto
//
// Under plain `go test` the seeded corpus below runs as regression cases:
// one well-formed frame of every message type (including the sharding
// messages TShardMap and TWrongShard) and the truncation/overrun shapes
// that length-prefixed formats historically get wrong.
func FuzzDecode(f *testing.F) {
	seed := func(send func(*Writer) error) {
		var buf bytes.Buffer
		if err := send(NewWriter(&buf)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(func(w *Writer) error {
		return w.SendGetPage(GetPage{Page: 3, FaultOff: 4096, SubpageSize: 1024, Policy: PolicyPipelined})
	})
	seed(func(w *Writer) error {
		return w.SendPageData(PageData{Page: 3, Offset: 512, Flags: FlagFirst | FlagLast, Data: []byte("abc")})
	})
	seed(func(w *Writer) error { return w.SendPutPage(PutPage{Page: 9, Data: []byte{1, 2, 3}}) })
	seed(func(w *Writer) error { return w.SendAck() })
	seed(func(w *Writer) error { return w.SendLookup(Lookup{Page: 12}) })
	seed(func(w *Writer) error {
		return w.SendLookupReply(LookupReply{Page: 12, Addrs: []string{"a:1", "b:2"}})
	})
	seed(func(w *Writer) error {
		return w.SendRegister(Register{Addr: "c:3", Epoch: 44, Pages: []uint64{1, 2, 3}})
	})
	seed(func(w *Writer) error { return w.SendHeartbeat(Heartbeat{Addr: "c:3", Epoch: 44}) })
	seed(func(w *Writer) error { return w.SendError("boom") })
	seed(func(w *Writer) error { return w.SendGetShardMap() })
	seed(func(w *Writer) error {
		return w.SendShardMap(ShardMap{Version: 5, Shards: []string{"s0:1", "s1:1", "s2:1"}})
	})
	seed(func(w *Writer) error {
		return w.SendWrongShard(WrongShard{Page: 77, Map: ShardMap{Version: 6, Shards: []string{"s0:1"}}})
	})
	seed(func(w *Writer) error {
		return w.SendGetPageV2(GetPageV2{ReqID: 9, Page: 3, FaultOff: 4096, SubpageSize: 1024, Want: 0xff00, Policy: PolicyPipelined})
	})
	seed(func(w *Writer) error {
		return w.SendSubpageBatch(9, 3, FlagFirst|FlagLast, []SubpageRun{
			{Off: 0, Data: make([]byte, 256)},
			{Off: 1024, Data: make([]byte, 512)},
		})
	})
	seed(func(w *Writer) error { return w.SendCancel(Cancel{ReqID: 9}) })
	seed(func(w *Writer) error { return w.SendDrain(Drain{Addr: "c:3"}) })
	seed(func(w *Writer) error { return w.SendDrainReply(DrainReply{Moved: 17}) })

	// Malformed shapes: truncated headers, payloads shorter than their
	// frame length promises, length prefixes overrunning the payload,
	// counts promising more entries than the bytes hold, trailing bytes.
	f.Add([]byte{})
	f.Add([]byte{byte(TLookup)})
	f.Add([]byte{byte(TLookup), 8, 0, 0, 0, 1, 2, 3})                              // promises 8 payload bytes, has 3
	f.Add([]byte{byte(TLookupReply), 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 200}) // addr len 200 overruns
	f.Add([]byte{byte(TShardMap), 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 1})      // 3 shards promised, 1 byte left
	f.Add([]byte{byte(TWrongShard), 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})        // map body shorter than version+count
	f.Add([]byte{byte(TRegister), 12, 0, 0, 0, 3, 'a', ':', '1', 0, 0, 0, 0, 0})   // epoch truncated
	f.Add([]byte{byte(THeartbeat), 12, 0, 0, 0, 3, 'a', ':', '1', 0, 0, 0, 0, 0})  // epoch truncated
	f.Add([]byte{byte(TGetPage), 3, 0, 0, 0, 1, 2, 3})                             // shorter than fixed layout
	f.Add([]byte{byte(TPageData), 2, 0, 0, 0, 1, 2})                               // shorter than fixed layout
	f.Add([]byte{byte(TShardMap), 11, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 'x'}) // count 0 with trailing byte
	f.Add(append([]byte{byte(TPutPage), 255, 255, 255, 255}, make([]byte, 16)...)) // oversized length prefix
	f.Add([]byte{byte(TRegister), 10, 0, 0, 0, 1, 'a', 0, 0, 0, 0, 0, 0, 0, 0, 1}) // ragged page list
	f.Add([]byte{byte(TGetPageV2), 5, 0, 0, 0, 1, 2, 3, 4, 5})                     // shorter than fixed layout
	f.Add([]byte{byte(TCancel), 4, 0, 0, 0, 1, 2, 3, 4})                           // reqID truncated
	f.Add([]byte{byte(TDrain), 3, 0, 0, 0, 9, 'a', ':'})                           // addr len 9 overruns
	f.Add([]byte{byte(TDrainReply), 2, 0, 0, 0, 1, 2})                             // moved truncated
	// Batch promising 2 runs with no table, and a table whose lengths
	// disagree with the data section.
	f.Add(append([]byte{byte(TSubpageBatch), 18, 0, 0, 0}, make([]byte, 17)...))
	f.Add(append(append([]byte{byte(TSubpageBatch), 26, 0, 0, 0}, make([]byte, 16)...),
		0, 1, 0, 1, 0, 0, 0, 4, 0, 0)) // count 1, off 256, len 1024, 0 data bytes

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			fr, err := r.Next()
			if err != nil {
				return // truncated or oversized frames must error out cleanly
			}
			// Decode the payload under every decoder, not just the one the
			// type byte names: a corrupted type byte must not let a payload
			// reach a decoder that panics on it.
			_, _ = DecodeGetPage(fr.Payload)
			_, _ = DecodePageData(fr.Payload)
			_, _ = DecodePutPage(fr.Payload)
			_, _ = DecodeLookup(fr.Payload)
			if rep, err := DecodeLookupReply(fr.Payload); err == nil {
				_ = rep.Addrs
			}
			if reg, err := DecodeRegister(fr.Payload); err == nil {
				_ = reg.Pages
			}
			_, _ = DecodeHeartbeat(fr.Payload)
			if m, err := DecodeShardMap(fr.Payload); err == nil {
				// A decoded map must build a usable ring.
				_ = NewRing(m).Owner(1)
			}
			if ws, err := DecodeWrongShard(fr.Payload); err == nil {
				_ = NewRing(ws.Map).Owner(ws.Page)
			}
			_, _ = DecodeGetPageV2(fr.Payload)
			_, _ = DecodeCancel(fr.Payload)
			_, _ = DecodeDrain(fr.Payload)
			_, _ = DecodeDrainReply(fr.Payload)
			if b, err := DecodeSubpageBatch(fr.Payload); err == nil {
				// A decoded batch's runs must be safely iterable.
				for i := 0; i < b.Runs(); i++ {
					off, data := b.Run(i)
					_ = off
					_ = data
				}
			}
			_ = DecodeError(fr.Payload)
		}
	})
}
