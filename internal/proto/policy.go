package proto

import "fmt"

// The Policy* wire bytes and the simulator's policy names are two views of
// the same set of transfer policies. This file is the single mapping
// between them: the public DialClient and the page server both resolve
// policies through it, so adding a wire policy is a one-place change.

// UnknownPolicyError reports a policy with no wire mapping: either a name
// the protocol does not carry (simulator-only policies included) or a byte
// no policy owns.
type UnknownPolicyError struct {
	// Name is the offending policy name, or a rendering of the byte.
	Name string
}

func (e *UnknownPolicyError) Error() string {
	return "proto: policy " + e.Name + " is not supported by the wire protocol"
}

// policyNames orders the canonical names by their wire byte.
var policyNames = [...]string{
	PolicyFullPage:  "fullpage",
	PolicyLazy:      "lazy",
	PolicyEager:     "eager",
	PolicyPipelined: "pipelined",
}

// PolicyByte maps a canonical policy name to its wire byte. The empty name
// defaults to eager, the prototype's standard policy.
func PolicyByte(name string) (uint8, error) {
	if name == "" {
		return PolicyEager, nil
	}
	for b, n := range policyNames {
		if n == name {
			return uint8(b), nil
		}
	}
	return 0, &UnknownPolicyError{Name: name}
}

// PolicyName maps a wire byte to its canonical policy name.
func PolicyName(b uint8) (string, error) {
	if int(b) < len(policyNames) {
		return policyNames[b], nil
	}
	return "", &UnknownPolicyError{Name: fmt.Sprintf("byte %d", b)}
}
