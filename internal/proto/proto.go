// Package proto defines the binary wire protocol of the remote-memory
// prototype: a small length-prefixed message format carrying page
// requests, subpage data, putpage traffic and directory operations over
// TCP. It is the stand-in for the paper's AN2 ATM transport.
//
// Frame layout (little endian):
//
//	byte 0     message type
//	bytes 1-4  payload length n
//	bytes 5..  payload (n bytes)
//
// Payload layouts are fixed per type and documented on each message
// struct. Data payloads carry at most one full page.
package proto

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// Type identifies a message.
type Type uint8

// Message types.
const (
	// TGetPage requests a page: the server replies with one or more
	// TPageData frames according to the requested policy.
	TGetPage Type = iota + 1
	// TPageData carries a fragment of a page.
	TPageData
	// TPutPage stores a full page on the server.
	TPutPage
	// TAck acknowledges a TPutPage or TRegister.
	TAck
	// TLookup asks the directory which server stores a page.
	TLookup
	// TLookupReply answers a TLookup.
	TLookupReply
	// TRegister announces to the directory that a server stores pages.
	TRegister
	// TError reports a failure in place of the normal reply.
	TError
	// THeartbeat renews a page server's directory lease.
	THeartbeat
	// TGetShardMap asks a directory for the current shard map.
	TGetShardMap
	// TShardMap answers a TGetShardMap. An unsharded directory answers
	// with an empty map (version 0, no shards): "I am the whole
	// directory, keep using the address you dialed".
	TShardMap
	// TWrongShard answers a TLookup or TRegister sent to a shard that
	// does not own the page: the payload carries the shard's current map
	// so the sender can re-route in one round trip.
	TWrongShard
	// TGetPageV2 is the batched, pipelined page request (wire v2): it
	// carries a request ID so a connection can keep many gets in flight,
	// and a subpage want-bitmap so a partially valid page fetches only
	// its missing blocks. The server answers with TSubpageBatch frames
	// echoing the ID.
	TGetPageV2
	// TSubpageBatch carries many subpage ranges of one page in a single
	// frame: one header, a run table, then the concatenated data. It is
	// the v2 reply to TGetPageV2.
	TSubpageBatch
	// TCancel withdraws an in-flight TGetPageV2 by request ID: the server
	// stops streaming the reply at the next batch boundary. Best effort —
	// batches already on the wire still arrive and are discarded by ID.
	TCancel
	// TDrain is the admin request to gracefully decommission a page
	// server: the directory transfers the server's sole-copy pages to
	// its peers, fences the server's epoch, and drops the lease — so
	// planned maintenance never looks like a failure to clients.
	TDrain
	// TDrainReply answers a TDrain with the number of pages the
	// directory transferred off the drained server.
	TDrainReply
)

// String names the type for diagnostics.
func (t Type) String() string {
	switch t {
	case TGetPage:
		return "GetPage"
	case TPageData:
		return "PageData"
	case TPutPage:
		return "PutPage"
	case TAck:
		return "Ack"
	case TLookup:
		return "Lookup"
	case TLookupReply:
		return "LookupReply"
	case TRegister:
		return "Register"
	case TError:
		return "Error"
	case THeartbeat:
		return "Heartbeat"
	case TGetShardMap:
		return "GetShardMap"
	case TShardMap:
		return "ShardMap"
	case TWrongShard:
		return "WrongShard"
	case TGetPageV2:
		return "GetPageV2"
	case TSubpageBatch:
		return "SubpageBatch"
	case TCancel:
		return "Cancel"
	case TDrain:
		return "Drain"
	case TDrainReply:
		return "DrainReply"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// MaxPayload bounds a frame's payload: a full page plus the largest
// header — for TSubpageBatch that is the batch header and a run table
// with one entry per valid bit.
const MaxPayload = units.PageSize + 512

const headerSize = 5

// Fetch policies a GetPage may request. These mirror the simulator's
// core policies; the server plans its reply fragments accordingly.
const (
	PolicyFullPage = uint8(iota)
	PolicyLazy
	PolicyEager
	PolicyPipelined
)

// GetPage asks for page data starting at the faulted offset.
type GetPage struct {
	Page        uint64
	FaultOff    uint32
	SubpageSize uint32
	Policy      uint8
}

// PageData flags.
const (
	// FlagFirst marks the fragment covering the faulted offset; the
	// client unblocks on it.
	FlagFirst = 1 << iota
	// FlagLast marks the final fragment of a reply.
	FlagLast
)

// PageData is one fragment of a page.
type PageData struct {
	Page   uint64
	Offset uint32
	Flags  uint8
	Data   []byte
}

// PutPage stores a full page.
type PutPage struct {
	Page uint64
	Data []byte
}

// Lookup asks where a page lives.
type Lookup struct{ Page uint64 }

// LookupReply answers: Addrs lists every server holding a replica of the
// page, primary first; it is empty when the page is unknown. Clients fail
// over down the list when the primary is unreachable.
type LookupReply struct {
	Page  uint64
	Addrs []string
}

// Register announces pages stored at Addr. Epoch is the server's
// registration epoch: a number that grows across the server's incarnations
// (a restart registers with a higher epoch) so the directory can fence out
// the stale entries of a crashed predecessor instead of accumulating
// duplicates. Registrations with an epoch below the directory's current
// epoch for Addr are rejected as stale.
type Register struct {
	Addr  string
	Epoch uint64
	Pages []uint64
}

// Heartbeat renews the directory lease for the server at Addr. The epoch
// must match the server's registered epoch; a heartbeat for an unknown or
// superseded registration draws a TError so the server knows to
// re-register.
type Heartbeat struct {
	Addr  string
	Epoch uint64
}

// ShardMap is the versioned layout of a sharded directory: Shards lists
// every directory shard address, and pages map onto shards by consistent
// hashing (see Ring). Both sides of the wire must agree on the hash, so
// the mapping is defined here alongside the message. The zero map
// (version 0, no shards) means "unsharded": a single directory serves
// every page.
//
// Versions order maps: a client or server holding version v replaces it
// on seeing any map with a higher version, so a stale map converges to
// the deployment's current one in a single TWrongShard round trip.
type ShardMap struct {
	Version uint64
	Shards  []string
}

// Sharded reports whether the map describes a sharded deployment.
func (m ShardMap) Sharded() bool { return len(m.Shards) > 0 }

// WrongShard reports that a lookup or registration reached a shard that
// does not own the page. Map is the answering shard's current shard map,
// so one forwarding round trip both corrects the route and refreshes the
// sender's cache.
type WrongShard struct {
	Page uint64
	Map  ShardMap
}

// Drain asks a directory to decommission the server at Addr: move its
// sole-copy pages to peers with epoch-fenced ownership transfer, then
// drop the lease. Addr must match the server's registered address.
type Drain struct{ Addr string }

// DrainReply reports a completed drain: Moved counts the pages the
// directory copied off the drained server before fencing it.
type DrainReply struct{ Moved uint32 }

// ErrorMsg reports a remote failure.
type ErrorMsg struct{ Text string }

// Frame is a decoded message.
type Frame struct {
	Type    Type
	Payload []byte
}

// writerRetainCap bounds the frame buffer a Writer keeps between sends;
// writerShrinkAfter is how many consecutive sends must fit under the cap
// before an oversized buffer is released. Control-plane writers see an
// occasional large frame (a ShardMap for a wide deployment, a v1 page
// fragment) between long runs of tiny acks and lookups; without the cap
// one such frame would pin page-sized capacity on every idle connection
// forever. The hysteresis keeps steady large-frame senders (the v1 data
// path) from reallocating on every small terminator in between.
const (
	writerRetainCap   = 2 * units.KiB
	writerShrinkAfter = 8
)

// A Writer serializes messages onto a stream. Not safe for concurrent use.
type Writer struct {
	w     io.Writer
	buf   []byte
	small int // consecutive sends that fit in writerRetainCap
}

// NewWriter returns a Writer on w. The frame buffer grows on demand and
// shrinks back after a run of small frames, so a writer costs what its
// recent traffic needs, not what its largest frame ever needed.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (w *Writer) send(t Type, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("proto: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, byte(t))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = append(w.buf, payload...)
	_, err := w.w.Write(w.buf)
	w.afterSend()
	return err
}

// afterSend applies the retention-cap hysteresis to the frame buffer just
// written: after writerShrinkAfter consecutive small frames, an oversized
// buffer left behind by a one-off large frame is released.
func (w *Writer) afterSend() {
	if len(w.buf) <= writerRetainCap {
		if w.small++; w.small >= writerShrinkAfter && cap(w.buf) > writerRetainCap {
			w.buf = nil // release the one-off large frame's capacity
			w.small = 0
		}
	} else {
		w.small = 0
	}
}

// SendGetPage writes a TGetPage frame.
func (w *Writer) SendGetPage(m GetPage) error {
	p := make([]byte, 0, 17)
	p = binary.LittleEndian.AppendUint64(p, m.Page)
	p = binary.LittleEndian.AppendUint32(p, m.FaultOff)
	p = binary.LittleEndian.AppendUint32(p, m.SubpageSize)
	p = append(p, m.Policy)
	return w.send(TGetPage, p)
}

// SendPageData writes a TPageData frame.
func (w *Writer) SendPageData(m PageData) error {
	p := make([]byte, 0, 13+len(m.Data))
	p = binary.LittleEndian.AppendUint64(p, m.Page)
	p = binary.LittleEndian.AppendUint32(p, m.Offset)
	p = append(p, m.Flags)
	p = append(p, m.Data...)
	return w.send(TPageData, p)
}

// SendPutPage writes a TPutPage frame.
func (w *Writer) SendPutPage(m PutPage) error {
	p := make([]byte, 0, 8+len(m.Data))
	p = binary.LittleEndian.AppendUint64(p, m.Page)
	p = append(p, m.Data...)
	return w.send(TPutPage, p)
}

// SendAck writes a TAck frame.
func (w *Writer) SendAck() error { return w.send(TAck, nil) }

// SendLookup writes a TLookup frame.
func (w *Writer) SendLookup(m Lookup) error {
	p := binary.LittleEndian.AppendUint64(nil, m.Page)
	return w.send(TLookup, p)
}

// SendLookupReply writes a TLookupReply frame.
func (w *Writer) SendLookupReply(m LookupReply) error {
	if len(m.Addrs) > 255 {
		return fmt.Errorf("proto: too many replicas: %d", len(m.Addrs))
	}
	n := 9
	for _, a := range m.Addrs {
		if len(a) > 255 {
			return fmt.Errorf("proto: address too long: %q", a)
		}
		n += 1 + len(a)
	}
	p := make([]byte, 0, n)
	p = binary.LittleEndian.AppendUint64(p, m.Page)
	p = append(p, byte(len(m.Addrs)))
	for _, a := range m.Addrs {
		p = append(p, byte(len(a)))
		p = append(p, a...)
	}
	return w.send(TLookupReply, p)
}

// SendRegister writes a TRegister frame.
func (w *Writer) SendRegister(m Register) error {
	if len(m.Addr) > 255 {
		return fmt.Errorf("proto: address too long: %q", m.Addr)
	}
	p := make([]byte, 0, 9+len(m.Addr)+8*len(m.Pages))
	p = append(p, byte(len(m.Addr)))
	p = append(p, m.Addr...)
	p = binary.LittleEndian.AppendUint64(p, m.Epoch)
	for _, pg := range m.Pages {
		p = binary.LittleEndian.AppendUint64(p, pg)
	}
	return w.send(TRegister, p)
}

// SendHeartbeat writes a THeartbeat frame.
func (w *Writer) SendHeartbeat(m Heartbeat) error {
	if len(m.Addr) > 255 {
		return fmt.Errorf("proto: address too long: %q", m.Addr)
	}
	p := make([]byte, 0, 9+len(m.Addr))
	p = append(p, byte(len(m.Addr)))
	p = append(p, m.Addr...)
	p = binary.LittleEndian.AppendUint64(p, m.Epoch)
	return w.send(THeartbeat, p)
}

// appendShardMap appends the shard-map encoding: version, shard count,
// then length-prefixed addresses.
func appendShardMap(p []byte, m ShardMap) ([]byte, error) {
	if len(m.Shards) > 255 {
		return nil, fmt.Errorf("proto: too many shards: %d", len(m.Shards))
	}
	p = binary.LittleEndian.AppendUint64(p, m.Version)
	p = append(p, byte(len(m.Shards)))
	for _, a := range m.Shards {
		if len(a) > 255 {
			return nil, fmt.Errorf("proto: address too long: %q", a)
		}
		p = append(p, byte(len(a)))
		p = append(p, a...)
	}
	return p, nil
}

// decodeShardMapBody parses a shard-map encoding, requiring it to consume
// the whole input.
func decodeShardMapBody(p []byte, t Type) (ShardMap, error) {
	if len(p) < 9 {
		return ShardMap{}, short(t)
	}
	m := ShardMap{Version: binary.LittleEndian.Uint64(p[0:8])}
	count := int(p[8])
	rest := p[9:]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return ShardMap{}, short(t)
		}
		alen := int(rest[0])
		if len(rest) < 1+alen {
			return ShardMap{}, short(t)
		}
		m.Shards = append(m.Shards, string(rest[1:1+alen]))
		rest = rest[1+alen:]
	}
	if len(rest) != 0 {
		return ShardMap{}, fmt.Errorf("proto: trailing bytes in %v", t)
	}
	return m, nil
}

// SendGetShardMap writes a TGetShardMap frame.
func (w *Writer) SendGetShardMap() error { return w.send(TGetShardMap, nil) }

// SendShardMap writes a TShardMap frame.
func (w *Writer) SendShardMap(m ShardMap) error {
	p, err := appendShardMap(make([]byte, 0, 9+16*len(m.Shards)), m)
	if err != nil {
		return err
	}
	return w.send(TShardMap, p)
}

// SendWrongShard writes a TWrongShard frame.
func (w *Writer) SendWrongShard(m WrongShard) error {
	p := binary.LittleEndian.AppendUint64(make([]byte, 0, 17+16*len(m.Map.Shards)), m.Page)
	p, err := appendShardMap(p, m.Map)
	if err != nil {
		return err
	}
	return w.send(TWrongShard, p)
}

// SendDrain writes a TDrain frame.
func (w *Writer) SendDrain(m Drain) error {
	if len(m.Addr) > 255 {
		return fmt.Errorf("proto: address too long: %q", m.Addr)
	}
	p := make([]byte, 0, 1+len(m.Addr))
	p = append(p, byte(len(m.Addr)))
	p = append(p, m.Addr...)
	return w.send(TDrain, p)
}

// SendDrainReply writes a TDrainReply frame.
func (w *Writer) SendDrainReply(m DrainReply) error {
	p := binary.LittleEndian.AppendUint32(make([]byte, 0, 4), m.Moved)
	return w.send(TDrainReply, p)
}

// SendError writes a TError frame.
func (w *Writer) SendError(text string) error {
	if len(text) > MaxPayload {
		text = text[:MaxPayload]
	}
	return w.send(TError, []byte(text))
}

// A Reader decodes frames from a stream. Not safe for concurrent use.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, headerSize+MaxPayload)}
}

// Next reads one frame. The returned payload is only valid until the next
// call.
func (r *Reader) Next() (Frame, error) {
	head := r.buf[:headerSize]
	if _, err := io.ReadFull(r.r, head); err != nil {
		return Frame{}, err
	}
	t := Type(head[0])
	if t < TGetPage || t > TDrainReply {
		// Reject unknown tag bytes at the framing layer: every Frame
		// handed to callers carries one of the declared T* constants, so
		// tag switches downstream can be exhaustive with no default (and
		// gmslint's tagswitch check holds them to that). A stream that
		// produces an unknown byte is desynchronized or hostile either
		// way; the caller treats the error as a dead connection.
		return Frame{}, fmt.Errorf("proto: unknown message type %d", head[0])
	}
	n := binary.LittleEndian.Uint32(head[1:5])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("proto: oversized payload %d for %v", n, t)
	}
	payload := r.buf[headerSize : headerSize+int(n)]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return Frame{}, fmt.Errorf("proto: truncated %v frame: %w", t, err)
	}
	return Frame{Type: t, Payload: payload}, nil
}

// Decoding helpers. Each validates the payload length.

func short(t Type) error { return fmt.Errorf("proto: short %v payload", t) }

// DecodeGetPage parses a TGetPage payload.
func DecodeGetPage(p []byte) (GetPage, error) {
	if len(p) < 17 {
		return GetPage{}, short(TGetPage)
	}
	return GetPage{
		Page:        binary.LittleEndian.Uint64(p[0:8]),
		FaultOff:    binary.LittleEndian.Uint32(p[8:12]),
		SubpageSize: binary.LittleEndian.Uint32(p[12:16]),
		Policy:      p[16],
	}, nil
}

// DecodePageData parses a TPageData payload. The Data slice aliases p.
func DecodePageData(p []byte) (PageData, error) {
	if len(p) < 13 {
		return PageData{}, short(TPageData)
	}
	return PageData{
		Page:   binary.LittleEndian.Uint64(p[0:8]),
		Offset: binary.LittleEndian.Uint32(p[8:12]),
		Flags:  p[12],
		Data:   p[13:],
	}, nil
}

// DecodePutPage parses a TPutPage payload. The Data slice aliases p.
func DecodePutPage(p []byte) (PutPage, error) {
	if len(p) < 8 {
		return PutPage{}, short(TPutPage)
	}
	return PutPage{
		Page: binary.LittleEndian.Uint64(p[0:8]),
		Data: p[8:],
	}, nil
}

// DecodeLookup parses a TLookup payload.
func DecodeLookup(p []byte) (Lookup, error) {
	if len(p) < 8 {
		return Lookup{}, short(TLookup)
	}
	return Lookup{Page: binary.LittleEndian.Uint64(p[0:8])}, nil
}

// DecodeLookupReply parses a TLookupReply payload.
func DecodeLookupReply(p []byte) (LookupReply, error) {
	if len(p) < 9 {
		return LookupReply{}, short(TLookupReply)
	}
	m := LookupReply{Page: binary.LittleEndian.Uint64(p[0:8])}
	count := int(p[8])
	rest := p[9:]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return LookupReply{}, short(TLookupReply)
		}
		alen := int(rest[0])
		if len(rest) < 1+alen {
			return LookupReply{}, short(TLookupReply)
		}
		m.Addrs = append(m.Addrs, string(rest[1:1+alen]))
		rest = rest[1+alen:]
	}
	if len(rest) != 0 {
		return LookupReply{}, fmt.Errorf("proto: trailing bytes in LookupReply")
	}
	return m, nil
}

// DecodeRegister parses a TRegister payload.
func DecodeRegister(p []byte) (Register, error) {
	if len(p) < 1 {
		return Register{}, short(TRegister)
	}
	alen := int(p[0])
	if len(p) < 1+alen+8 {
		return Register{}, short(TRegister)
	}
	m := Register{
		Addr:  string(p[1 : 1+alen]),
		Epoch: binary.LittleEndian.Uint64(p[1+alen : 9+alen]),
	}
	rest := p[9+alen:]
	if len(rest)%8 != 0 {
		return Register{}, fmt.Errorf("proto: ragged page list in Register")
	}
	for i := 0; i < len(rest); i += 8 {
		m.Pages = append(m.Pages, binary.LittleEndian.Uint64(rest[i:i+8]))
	}
	return m, nil
}

// DecodeHeartbeat parses a THeartbeat payload.
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	if len(p) < 1 {
		return Heartbeat{}, short(THeartbeat)
	}
	alen := int(p[0])
	if len(p) != 1+alen+8 {
		return Heartbeat{}, short(THeartbeat)
	}
	return Heartbeat{
		Addr:  string(p[1 : 1+alen]),
		Epoch: binary.LittleEndian.Uint64(p[1+alen:]),
	}, nil
}

// DecodeShardMap parses a TShardMap payload.
func DecodeShardMap(p []byte) (ShardMap, error) {
	return decodeShardMapBody(p, TShardMap)
}

// DecodeWrongShard parses a TWrongShard payload.
func DecodeWrongShard(p []byte) (WrongShard, error) {
	if len(p) < 8 {
		return WrongShard{}, short(TWrongShard)
	}
	m, err := decodeShardMapBody(p[8:], TWrongShard)
	if err != nil {
		return WrongShard{}, err
	}
	return WrongShard{Page: binary.LittleEndian.Uint64(p[0:8]), Map: m}, nil
}

// DecodeDrain parses a TDrain payload.
func DecodeDrain(p []byte) (Drain, error) {
	if len(p) < 1 {
		return Drain{}, short(TDrain)
	}
	alen := int(p[0])
	if len(p) != 1+alen {
		return Drain{}, short(TDrain)
	}
	return Drain{Addr: string(p[1 : 1+alen])}, nil
}

// DecodeDrainReply parses a TDrainReply payload.
func DecodeDrainReply(p []byte) (DrainReply, error) {
	if len(p) != 4 {
		return DrainReply{}, short(TDrainReply)
	}
	return DrainReply{Moved: binary.LittleEndian.Uint32(p)}, nil
}

// DecodeError parses a TError payload.
func DecodeError(p []byte) ErrorMsg { return ErrorMsg{Text: string(p)} }
