package proto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/units"
)

func roundTrip(t *testing.T, send func(*Writer) error) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := send(NewWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	f, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGetPageRoundTrip(t *testing.T) {
	in := GetPage{Page: 0xdeadbeef, FaultOff: 4097, SubpageSize: 1024, Policy: PolicyEager}
	f := roundTrip(t, func(w *Writer) error { return w.SendGetPage(in) })
	if f.Type != TGetPage {
		t.Fatalf("type = %v", f.Type)
	}
	out, err := DecodeGetPage(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestPageDataRoundTrip(t *testing.T) {
	data := make([]byte, units.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	in := PageData{Page: 7, Offset: 2048, Flags: FlagFirst | FlagLast, Data: data}
	f := roundTrip(t, func(w *Writer) error { return w.SendPageData(in) })
	out, err := DecodePageData(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Page != 7 || out.Offset != 2048 || out.Flags != FlagFirst|FlagLast {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !bytes.Equal(out.Data, data) {
		t.Fatal("data mismatch")
	}
}

func TestPutPageRoundTrip(t *testing.T) {
	in := PutPage{Page: 99, Data: bytes.Repeat([]byte{0xab}, units.PageSize)}
	f := roundTrip(t, func(w *Writer) error { return w.SendPutPage(in) })
	out, err := DecodePutPage(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Page != 99 || !bytes.Equal(out.Data, in.Data) {
		t.Fatal("put page mismatch")
	}
}

func TestLookupRoundTrip(t *testing.T) {
	f := roundTrip(t, func(w *Writer) error { return w.SendLookup(Lookup{Page: 5}) })
	out, err := DecodeLookup(f.Payload)
	if err != nil || out.Page != 5 {
		t.Fatalf("lookup: %+v, %v", out, err)
	}
	f = roundTrip(t, func(w *Writer) error {
		return w.SendLookupReply(LookupReply{Page: 5, Addrs: []string{"10.0.0.2:9999"}})
	})
	rep, err := DecodeLookupReply(f.Payload)
	if err != nil || len(rep.Addrs) != 1 || rep.Addrs[0] != "10.0.0.2:9999" || rep.Page != 5 {
		t.Fatalf("lookup reply: %+v, %v", rep, err)
	}
}

func TestLookupReplyReplicas(t *testing.T) {
	in := LookupReply{Page: 7, Addrs: []string{"a:1", "b:2", "c:3"}}
	f := roundTrip(t, func(w *Writer) error { return w.SendLookupReply(in) })
	rep, err := DecodeLookupReply(f.Payload)
	if err != nil || len(rep.Addrs) != 3 {
		t.Fatalf("replica reply: %+v, %v", rep, err)
	}
	for i, a := range in.Addrs {
		if rep.Addrs[i] != a {
			t.Fatalf("replica %d = %q, want %q", i, rep.Addrs[i], a)
		}
	}
}

func TestLookupReplyEmptyAddr(t *testing.T) {
	f := roundTrip(t, func(w *Writer) error {
		return w.SendLookupReply(LookupReply{Page: 5})
	})
	rep, err := DecodeLookupReply(f.Payload)
	if err != nil || len(rep.Addrs) != 0 {
		t.Fatalf("empty addr reply: %+v, %v", rep, err)
	}
}

func TestLookupReplyTruncated(t *testing.T) {
	// A count that promises more replicas than the payload carries.
	if _, err := DecodeLookupReply([]byte{0, 0, 0, 0, 0, 0, 0, 0, 2, 1, 'a'}); err == nil {
		t.Error("truncated replica list should fail")
	}
	// An address length that runs past the payload.
	if _, err := DecodeLookupReply([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 9, 'a'}); err == nil {
		t.Error("overlong address length should fail")
	}
}

func TestPolicyMapping(t *testing.T) {
	for _, name := range []string{"fullpage", "lazy", "eager", "pipelined"} {
		b, err := PolicyByte(name)
		if err != nil {
			t.Fatalf("PolicyByte(%q): %v", name, err)
		}
		back, err := PolicyName(b)
		if err != nil || back != name {
			t.Fatalf("PolicyName(%d) = %q, %v; want %q", b, back, err, name)
		}
	}
	if b, err := PolicyByte(""); err != nil || b != PolicyEager {
		t.Fatalf("empty policy should default to eager: %d, %v", b, err)
	}
	var perr *UnknownPolicyError
	if _, err := PolicyByte("pipelined-double"); err == nil || !errors.As(err, &perr) {
		t.Fatalf("simulator-only policy should be rejected with UnknownPolicyError, got %v", err)
	}
	if _, err := PolicyName(200); err == nil || !errors.As(err, &perr) {
		t.Fatalf("unknown wire byte should be rejected with UnknownPolicyError, got %v", err)
	}
}

func TestRegisterRoundTrip(t *testing.T) {
	in := Register{Addr: "h:1", Epoch: 42, Pages: []uint64{1, 2, 3, 1 << 40}}
	f := roundTrip(t, func(w *Writer) error { return w.SendRegister(in) })
	out, err := DecodeRegister(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Addr != in.Addr || out.Epoch != 42 || len(out.Pages) != 4 || out.Pages[3] != 1<<40 {
		t.Fatalf("register mismatch: %+v", out)
	}
}

func TestRegisterZeroEpochEmptyPages(t *testing.T) {
	in := Register{Addr: "h:1"}
	f := roundTrip(t, func(w *Writer) error { return w.SendRegister(in) })
	out, err := DecodeRegister(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Addr != "h:1" || out.Epoch != 0 || len(out.Pages) != 0 {
		t.Fatalf("register mismatch: %+v", out)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	in := Heartbeat{Addr: "10.0.0.2:9999", Epoch: 1 << 50}
	f := roundTrip(t, func(w *Writer) error { return w.SendHeartbeat(in) })
	if f.Type != THeartbeat {
		t.Fatalf("type = %v", f.Type)
	}
	out, err := DecodeHeartbeat(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestHeartbeatAddrTooLong(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.SendHeartbeat(Heartbeat{Addr: strings.Repeat("x", 300)}); err == nil {
		t.Fatal("overlong address should fail")
	}
}

func TestAckAndError(t *testing.T) {
	f := roundTrip(t, func(w *Writer) error { return w.SendAck() })
	if f.Type != TAck || len(f.Payload) != 0 {
		t.Fatalf("ack frame: %+v", f)
	}
	f = roundTrip(t, func(w *Writer) error { return w.SendError("boom") })
	if f.Type != TError || DecodeError(f.Payload).Text != "boom" {
		t.Fatalf("error frame: %+v", f)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.SendAck(); err != nil {
		t.Fatal(err)
	}
	if err := w.SendLookup(Lookup{Page: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.SendError("x"); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	want := []Type{TAck, TLookup, TError}
	for _, wt := range want {
		f, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != wt {
			t.Fatalf("got %v, want %v", f.Type, wt)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a frame claiming a giant payload.
	buf.Write([]byte{byte(TPageData), 0xff, 0xff, 0xff, 0x7f})
	if _, err := NewReader(&buf).Next(); err == nil {
		t.Fatal("oversized frame should be rejected")
	}
	// And the writer refuses to produce one.
	w := NewWriter(io.Discard)
	err := w.SendPageData(PageData{Data: make([]byte, MaxPayload+1)})
	if err == nil {
		t.Fatal("oversized send should fail")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).SendPutPage(PutPage{Page: 1, Data: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := NewReader(bytes.NewReader(trunc)).Next(); err == nil {
		t.Fatal("truncated frame should error")
	}
}

// TestUnknownTypeByteRejected pins the framing contract that lets tag
// switches over Type be exhaustive with no default: Next never hands an
// undeclared tag to a caller.
func TestUnknownTypeByteRejected(t *testing.T) {
	for _, tag := range []byte{0, byte(TDrainReply) + 1, 200, 255} {
		raw := []byte{tag, 0, 0, 0, 0}
		_, err := NewReader(bytes.NewReader(raw)).Next()
		if err == nil {
			t.Fatalf("type byte %d accepted; exhaustive switches downstream would misdispatch it", tag)
		}
		if !strings.Contains(err.Error(), "unknown message type") {
			t.Fatalf("type byte %d: err = %v, want the unknown-type rejection", tag, err)
		}
	}
	for tag := TGetPage; tag <= TDrainReply; tag++ {
		raw := []byte{byte(tag), 0, 0, 0, 0}
		if _, err := NewReader(bytes.NewReader(raw)).Next(); err != nil {
			t.Fatalf("declared tag %v rejected at the framing layer: %v", tag, err)
		}
	}
}

func TestShortPayloadDecodes(t *testing.T) {
	if _, err := DecodeGetPage([]byte{1, 2}); err == nil {
		t.Error("short GetPage should fail")
	}
	if _, err := DecodePageData([]byte{1}); err == nil {
		t.Error("short PageData should fail")
	}
	if _, err := DecodePutPage(nil); err == nil {
		t.Error("short PutPage should fail")
	}
	if _, err := DecodeLookup([]byte{9}); err == nil {
		t.Error("short Lookup should fail")
	}
	if _, err := DecodeLookupReply(nil); err == nil {
		t.Error("short LookupReply should fail")
	}
	if _, err := DecodeRegister(nil); err == nil {
		t.Error("short Register should fail")
	}
	// Address present but epoch missing.
	if _, err := DecodeRegister([]byte{1, 'a', 0xff}); err == nil {
		t.Error("Register without epoch should fail")
	}
	if _, err := DecodeRegister([]byte{1, 'a', 1, 2, 3, 4, 5, 6, 7, 8, 0xff}); err == nil {
		t.Error("ragged Register page list should fail")
	}
	if _, err := DecodeHeartbeat(nil); err == nil {
		t.Error("short Heartbeat should fail")
	}
	if _, err := DecodeHeartbeat([]byte{1, 'a', 0xff}); err == nil {
		t.Error("Heartbeat without full epoch should fail")
	}
	// Trailing bytes after the epoch are also malformed.
	if _, err := DecodeHeartbeat([]byte{1, 'a', 1, 2, 3, 4, 5, 6, 7, 8, 9}); err == nil {
		t.Error("overlong Heartbeat should fail")
	}
}

func TestRegisterAddrTooLong(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.SendRegister(Register{Addr: strings.Repeat("x", 300)}); err == nil {
		t.Fatal("overlong address should fail")
	}
}

func TestQuickGetPageRoundTrip(t *testing.T) {
	f := func(page uint64, off, sub uint32, pol uint8) bool {
		in := GetPage{Page: page, FaultOff: off, SubpageSize: sub, Policy: pol}
		var buf bytes.Buffer
		if err := NewWriter(&buf).SendGetPage(in); err != nil {
			return false
		}
		fr, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		out, err := DecodeGetPage(fr.Payload)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPageDataRoundTrip(t *testing.T) {
	f := func(page uint64, off uint32, flags uint8, data []byte) bool {
		if len(data) > units.PageSize {
			data = data[:units.PageSize]
		}
		in := PageData{Page: page, Offset: off, Flags: flags, Data: data}
		var buf bytes.Buffer
		if err := NewWriter(&buf).SendPageData(in); err != nil {
			return false
		}
		fr, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		out, err := DecodePageData(fr.Payload)
		return err == nil && out.Page == page && out.Offset == off &&
			out.Flags == flags && bytes.Equal(out.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		r := NewReader(bytes.NewReader(raw))
		for i := 0; i < 8; i++ {
			fr, err := r.Next()
			if err != nil {
				return true // rejecting garbage is fine
			}
			// A parsed frame must respect the payload bound.
			if len(fr.Payload) > MaxPayload {
				return false
			}
			// Decoders must not panic either.
			switch fr.Type {
			case TGetPage:
				DecodeGetPage(fr.Payload)
			case TPageData:
				DecodePageData(fr.Payload)
			case TPutPage:
				DecodePutPage(fr.Payload)
			case TLookup:
				DecodeLookup(fr.Payload)
			case TLookupReply:
				DecodeLookupReply(fr.Payload)
			case TRegister:
				DecodeRegister(fr.Payload)
			case TError:
				DecodeError(fr.Payload)
			case THeartbeat:
				DecodeHeartbeat(fr.Payload)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDrainRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.SendDrain(Drain{Addr: "s:9"}); err != nil {
		t.Fatal(err)
	}
	if err := w.SendDrainReply(DrainReply{Moved: 123}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	f, err := r.Next()
	if err != nil || f.Type != TDrain {
		t.Fatalf("frame: %v %v", f.Type, err)
	}
	d, err := DecodeDrain(f.Payload)
	if err != nil || d.Addr != "s:9" {
		t.Fatalf("DecodeDrain: %+v %v", d, err)
	}
	f, err = r.Next()
	if err != nil || f.Type != TDrainReply {
		t.Fatalf("frame: %v %v", f.Type, err)
	}
	rep, err := DecodeDrainReply(f.Payload)
	if err != nil || rep.Moved != 123 {
		t.Fatalf("DecodeDrainReply: %+v %v", rep, err)
	}
	if _, err := DecodeDrain(nil); err == nil {
		t.Error("empty Drain should fail")
	}
	if _, err := DecodeDrain([]byte{5, 'a'}); err == nil {
		t.Error("overrunning Drain addr should fail")
	}
	if _, err := DecodeDrainReply([]byte{1}); err == nil {
		t.Error("short DrainReply should fail")
	}
	if err := w.SendDrain(Drain{Addr: strings.Repeat("x", 256)}); err == nil {
		t.Error("overlong Drain addr accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	types := []Type{TGetPage, TPageData, TPutPage, TAck, TLookup,
		TLookupReply, TRegister, TError, THeartbeat,
		TGetShardMap, TShardMap, TWrongShard,
		TGetPageV2, TSubpageBatch, TCancel, TDrain, TDrainReply}
	seen := map[string]bool{}
	for _, tp := range types {
		s := tp.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate name for %d: %q", tp, s)
		}
		seen[s] = true
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}
