package proto

import (
	"hash/fnv"
	"sort"
)

// Ring maps page IDs onto the shards of a ShardMap by consistent hashing.
// Every participant — directory shards deciding ownership, page servers
// partitioning registrations, clients routing lookups — must compute the
// same owner for the same page under the same map, so the hash and ring
// construction are part of the wire protocol and live here, next to the
// ShardMap message they interpret.
//
// Construction: each shard address contributes ringVnodes virtual points,
// hash64("addr#k"), sorted into a ring; a page owns to the first point at
// or clockwise after hash64(page). Virtual points keep the page space
// spread evenly even when shard addresses hash unluckily, and consistent
// hashing keeps most page ownership stable when a shard is added or
// removed (only ~1/n of pages move), which bounds the re-registration
// churn of a resharding.
//
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	m      ShardMap
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ringVnodes is the number of virtual points per shard. 128 keeps the
// worst shard within a few percent of the mean for the shard counts this
// prototype targets (2-64) while the ring stays small enough to rebuild
// on every map refresh without noticing.
const ringVnodes = 128

// NewRing builds the ring for m. A nil ring is returned for an unsharded
// (empty) map; Ring methods on nil report "no owner" consistently.
func NewRing(m ShardMap) *Ring {
	if !m.Sharded() {
		return nil
	}
	r := &Ring{m: m, points: make([]ringPoint, 0, ringVnodes*len(m.Shards))}
	var key [8]byte
	for i, addr := range m.Shards {
		h := fnv.New64a()
		for k := 0; k < ringVnodes; k++ {
			h.Reset()
			_, _ = h.Write([]byte(addr))
			key[0] = '#'
			key[1] = byte(k)
			key[2] = byte(k >> 8)
			_, _ = h.Write(key[:3])
			r.points = append(r.points, ringPoint{hash: fmix64(h.Sum64()), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Colliding points tie-break on shard index so every ring built
		// from the same map is identical.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// fmix64 is a 64-bit avalanche finalizer (Murmur3's): FNV-1a alone mixes
// short inputs that differ only in their last bytes — exactly what vnode
// keys and page IDs are — into correlated hashes, which shows up as badly
// uneven ring arcs. The finalizer spreads every input bit across the
// whole output word.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pageHash spreads page IDs over the ring. Page IDs are often small and
// sequential, so the raw value would clump; hashing the fixed-width
// little-endian bytes and finalizing decorrelates neighbours.
func pageHash(page uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(page >> (8 * i))
	}
	_, _ = h.Write(b[:])
	return fmix64(h.Sum64())
}

// Owner returns the index (into the map's Shards) of the shard owning
// page, or -1 on a nil (unsharded) ring.
func (r *Ring) Owner(page uint64) int {
	if r == nil || len(r.points) == 0 {
		return -1
	}
	h := pageHash(page)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: clockwise past the top lands on the first point
	}
	return r.points[i].shard
}

// OwnerAddr returns the address of the shard owning page, or "" on a nil
// ring.
func (r *Ring) OwnerAddr(page uint64) string {
	i := r.Owner(page)
	if i < 0 {
		return ""
	}
	return r.m.Shards[i]
}

// Map returns the shard map the ring was built from.
func (r *Ring) Map() ShardMap {
	if r == nil {
		return ShardMap{}
	}
	return r.m
}
