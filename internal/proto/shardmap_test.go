package proto

import (
	"fmt"
	"reflect"
	"testing"
)

func TestShardMapRoundTrip(t *testing.T) {
	in := ShardMap{Version: 42, Shards: []string{"10.0.0.1:7100", "10.0.0.2:7100", "10.0.0.3:7100"}}
	f := roundTrip(t, func(w *Writer) error { return w.SendShardMap(in) })
	if f.Type != TShardMap {
		t.Fatalf("type = %v", f.Type)
	}
	out, err := DecodeShardMap(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestShardMapEmptyRoundTrip(t *testing.T) {
	f := roundTrip(t, func(w *Writer) error { return w.SendShardMap(ShardMap{}) })
	out, err := DecodeShardMap(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sharded() || out.Version != 0 {
		t.Fatalf("empty map decoded as %+v", out)
	}
}

func TestWrongShardRoundTrip(t *testing.T) {
	in := WrongShard{Page: 0xfeed, Map: ShardMap{Version: 7, Shards: []string{"a:1", "b:2"}}}
	f := roundTrip(t, func(w *Writer) error { return w.SendWrongShard(in) })
	if f.Type != TWrongShard {
		t.Fatalf("type = %v", f.Type)
	}
	out, err := DecodeWrongShard(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestGetShardMapRoundTrip(t *testing.T) {
	f := roundTrip(t, func(w *Writer) error { return w.SendGetShardMap() })
	if f.Type != TGetShardMap || len(f.Payload) != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestShardMapDecodeMalformed(t *testing.T) {
	for _, p := range [][]byte{
		nil,
		{1, 2, 3},                         // shorter than version+count
		{0, 0, 0, 0, 0, 0, 0, 0, 2, 1},    // promises 2 shards, truncated addr
		{0, 0, 0, 0, 0, 0, 0, 0, 1, 5, 0}, // addr length overruns payload
		append(make([]byte, 9), 'x'),      // count 0 but trailing bytes
	} {
		if _, err := DecodeShardMap(p); err == nil {
			t.Fatalf("DecodeShardMap(%v) accepted malformed payload", p)
		}
	}
	if _, err := DecodeWrongShard([]byte{1, 2}); err == nil {
		t.Fatal("DecodeWrongShard accepted short payload")
	}
}

func testMap(n int) ShardMap {
	m := ShardMap{Version: 1}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, fmt.Sprintf("10.0.0.%d:7100", i+1))
	}
	return m
}

func TestRingDeterministic(t *testing.T) {
	m := testMap(4)
	a, b := NewRing(m), NewRing(m)
	for page := uint64(0); page < 10000; page++ {
		if a.Owner(page) != b.Owner(page) {
			t.Fatalf("page %d: owners differ across identical rings", page)
		}
	}
}

func TestRingCoversAllShardsEvenly(t *testing.T) {
	const shards, pages = 4, 40000
	r := NewRing(testMap(shards))
	counts := make([]int, shards)
	for page := uint64(0); page < pages; page++ {
		o := r.Owner(page)
		if o < 0 || o >= shards {
			t.Fatalf("page %d: owner %d out of range", page, o)
		}
		counts[o]++
	}
	// With 128 vnodes per shard the split should be within a factor of
	// two of perfectly even; in practice it is far tighter.
	for i, n := range counts {
		if n < pages/(2*shards) || n > pages*2/shards {
			t.Fatalf("shard %d owns %d of %d pages: ring is badly unbalanced (%v)", i, n, pages, counts)
		}
	}
}

func TestRingStableUnderGrowth(t *testing.T) {
	const pages = 20000
	small, big := NewRing(testMap(4)), NewRing(testMap(5))
	moved := 0
	for page := uint64(0); page < pages; page++ {
		a, b := small.Owner(page), big.Owner(page)
		if b == 4 {
			continue // moved to the new shard: expected
		}
		if a != b {
			moved++
		}
	}
	// Consistent hashing promise: pages not claimed by the new shard
	// overwhelmingly keep their owner. Allow generous slack over the
	// theoretical ~0 for vnode boundary shifts.
	if moved > pages/20 {
		t.Fatalf("%d of %d pages changed owner between surviving shards", moved, pages)
	}
}

func TestRingUnsharded(t *testing.T) {
	r := NewRing(ShardMap{})
	if r != nil {
		t.Fatal("unsharded map should build a nil ring")
	}
	if r.Owner(7) != -1 || r.OwnerAddr(7) != "" {
		t.Fatal("nil ring must report no owner")
	}
	if r.Map().Sharded() {
		t.Fatal("nil ring map must be unsharded")
	}
}
