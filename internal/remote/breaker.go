package remote

import (
	"sync"
	"time"
)

// Breaker states. A server starts closed (requests flow); N consecutive
// failed attempts open it (requests shunned); after a cooldown one probe is
// let through half-open, and its outcome either closes the breaker or
// re-opens it for another cooldown.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// breakerEntry tracks one server's breaker.
type breakerEntry struct {
	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// breaker is the client's per-server circuit breaker, layered under the
// retry/failover logic: replica picking consults it so a server that has
// failed repeatedly is shunned until a probe proves it healthy again,
// instead of burning a timeout on every fault. It never blocks progress:
// when every replica is denied the caller force-picks one anyway.
//
// The breaker holds no counters of its own: state transitions are reported
// to the caller through return values (allow's probe, failure's opened,
// success's wasOpen) so the client can account for them in its one Stats
// structure under its one lock — a Stats snapshot is a single coherent cut.
type breaker struct {
	threshold int // consecutive failures before opening; 0 disables
	cooldown  time.Duration

	mu      sync.Mutex
	servers map[string]*breakerEntry
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		servers:   make(map[string]*breakerEntry),
	}
}

// allow reports whether an attempt on addr should proceed, granting the
// half-open probe when an open breaker's cooldown has elapsed. At most one
// probe is outstanding per server. probe is true when this call granted
// one.
func (b *breaker) allow(addr string, now time.Time) (ok, probe bool) {
	if b.threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.servers[addr]
	if e == nil || e.state == brClosed {
		return true, false
	}
	if e.state == brOpen && !e.probing && now.Sub(e.openedAt) >= b.cooldown {
		e.state = brHalfOpen
		e.probing = true
		return true, true
	}
	return false, false
}

// wouldAllow is allow without side effects: it never grants a probe. Used
// to steer hedges away from shunned servers.
func (b *breaker) wouldAllow(addr string) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.servers[addr]
	return e == nil || e.state == brClosed
}

// success records a completed attempt on addr, closing its breaker.
// wasOpen reports whether the server was shunned (open or half-open) until
// this call.
func (b *breaker) success(addr string) (wasOpen bool) {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.servers[addr]; ok {
		wasOpen = e.state != brClosed
		delete(b.servers, addr)
	}
	return wasOpen
}

// failure records a failed attempt on addr, reporting whether it tripped
// the breaker (a closed→open transition). A closed breaker opens at the
// threshold; a failed half-open probe re-opens for another cooldown; an
// already-open breaker (forced pick) keeps its opening time so forced
// traffic cannot postpone the next probe.
func (b *breaker) failure(addr string, now time.Time) (opened bool) {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.servers[addr]
	if e == nil {
		e = &breakerEntry{}
		b.servers[addr] = e
	}
	switch e.state {
	case brClosed:
		e.fails++
		if e.fails >= b.threshold {
			e.state = brOpen
			e.openedAt = now
			return true
		}
	case brHalfOpen:
		e.state = brOpen
		e.openedAt = now
		e.probing = false
	}
	return false
}
