package remote

import (
	"sync"
	"time"
)

// Breaker states. A server starts closed (requests flow); N consecutive
// failed attempts open it (requests shunned); after a cooldown one probe is
// let through half-open, and its outcome either closes the breaker or
// re-opens it for another cooldown.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// breakerEntry tracks one server's breaker.
type breakerEntry struct {
	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// breaker is the client's per-server circuit breaker, layered under the
// retry/failover logic: replica picking consults it so a server that has
// failed repeatedly is shunned until a probe proves it healthy again,
// instead of burning a timeout on every fault. It never blocks progress:
// when every replica is denied the caller force-picks one anyway.
type breaker struct {
	threshold int // consecutive failures before opening; 0 disables
	cooldown  time.Duration

	mu      sync.Mutex
	servers map[string]*breakerEntry
	opens   int64 // closed→open transitions
	probes  int64 // half-open probes granted
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		servers:   make(map[string]*breakerEntry),
	}
}

// allow reports whether an attempt on addr should proceed, granting the
// half-open probe when an open breaker's cooldown has elapsed. At most one
// probe is outstanding per server.
func (b *breaker) allow(addr string, now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.servers[addr]
	if e == nil || e.state == brClosed {
		return true
	}
	if e.state == brOpen && !e.probing && now.Sub(e.openedAt) >= b.cooldown {
		e.state = brHalfOpen
		e.probing = true
		b.probes++
		return true
	}
	return false
}

// wouldAllow is allow without side effects: it never grants a probe. Used
// to steer hedges away from shunned servers.
func (b *breaker) wouldAllow(addr string) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.servers[addr]
	return e == nil || e.state == brClosed
}

// success records a completed attempt on addr, closing its breaker.
func (b *breaker) success(addr string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	delete(b.servers, addr)
	b.mu.Unlock()
}

// failure records a failed attempt on addr. A closed breaker opens at the
// threshold; a failed half-open probe re-opens for another cooldown; an
// already-open breaker (forced pick) keeps its opening time so forced
// traffic cannot postpone the next probe.
func (b *breaker) failure(addr string, now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.servers[addr]
	if e == nil {
		e = &breakerEntry{}
		b.servers[addr] = e
	}
	switch e.state {
	case brClosed:
		e.fails++
		if e.fails >= b.threshold {
			e.state = brOpen
			e.openedAt = now
			b.opens++
		}
	case brHalfOpen:
		e.state = brOpen
		e.openedAt = now
		e.probing = false
	}
}

// snapshot reports (closed→open trips, probes granted, servers currently
// open or half-open).
func (b *breaker) snapshot() (opens, probes int64, openNow int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.servers {
		if e.state != brClosed {
			openNow++
		}
	}
	return b.opens, b.probes, openNow
}
