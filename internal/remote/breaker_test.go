package remote

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestBreakerOpensAtThresholdAndProbes(t *testing.T) {
	b := newBreaker(3, 100*time.Millisecond)
	now := time.Unix(0, 0)
	const addr = "srv:1"

	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(addr, now); !ok {
			t.Fatalf("closed breaker denied attempt %d", i)
		}
		if b.failure(addr, now) {
			t.Fatalf("breaker tripped below threshold at failure %d", i)
		}
	}
	if !b.failure(addr, now) { // third consecutive failure: trips
		t.Fatal("threshold failure did not report a closed->open trip")
	}
	if b.wouldAllow(addr) {
		t.Fatal("tripped breaker still allows traffic")
	}
	if ok, _ := b.allow(addr, now.Add(50*time.Millisecond)); ok {
		t.Fatal("open breaker allowed traffic before cooldown")
	}
	// Cooldown elapsed: exactly one probe goes through.
	probeAt := now.Add(150 * time.Millisecond)
	if ok, probe := b.allow(addr, probeAt); !ok || !probe {
		t.Fatalf("cooldown elapsed: allow = (%t, %t), want a granted probe", ok, probe)
	}
	if ok, _ := b.allow(addr, probeAt); ok {
		t.Fatal("second concurrent probe allowed")
	}
	// Failed probe re-opens for a fresh cooldown; that is a re-open, not a
	// new closed->open trip.
	if b.failure(addr, probeAt) {
		t.Fatal("failed probe reported as a fresh closed->open trip")
	}
	if ok, _ := b.allow(addr, probeAt.Add(50*time.Millisecond)); ok {
		t.Fatal("re-opened breaker allowed traffic before its new cooldown")
	}
	// A successful probe closes the breaker.
	again := probeAt.Add(150 * time.Millisecond)
	if ok, probe := b.allow(addr, again); !ok || !probe {
		t.Fatal("second probe denied")
	}
	if !b.success(addr) {
		t.Fatal("successful probe should report the breaker was open")
	}
	if ok, _ := b.allow(addr, again); !ok || !b.wouldAllow(addr) {
		t.Fatal("breaker should be closed after a successful probe")
	}
	if b.success(addr) {
		t.Fatal("success on a closed breaker reported wasOpen")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker(3, time.Second)
	now := time.Unix(0, 0)
	b.failure("s", now)
	b.failure("s", now)
	if b.success("s") { // streak broken: the counter must reset
		t.Fatal("success below the threshold reported wasOpen")
	}
	if b.failure("s", now) || b.failure("s", now) {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second)
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		if b.failure("s", now) {
			t.Fatal("disabled breaker reported a trip")
		}
	}
	ok, probe := b.allow("s", now)
	if !ok || probe || !b.wouldAllow("s") {
		t.Fatal("disabled breaker must always allow, without probes")
	}
	if b.success("s") {
		t.Fatal("disabled breaker must record nothing")
	}
}

func TestClientBreakerShunsDeadServerButFailsOver(t *testing.T) {
	// Dead primary, live replica: after the breaker opens, faults go
	// straight to the replica and the dead address stays shunned.
	dir, srvA, srvB := replicatedCluster(t, 8)
	_ = dir
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}
	c := testClient(t, dir, fastRetry(ClientConfig{
		CachePages:       4,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // no probe during this test
	}))
	buf := make([]byte, 64)
	for p := 0; p < 8; p++ {
		if err := c.Read(buf, uint64(p)*8192); err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
	}
	st := c.Stats()
	if st.BreakerOpens == 0 {
		t.Fatalf("breaker never opened on the dead server: %+v", st)
	}
	if st.OpenBreakers != 1 {
		t.Fatalf("OpenBreakers = %d, want 1 (the dead server)", st.OpenBreakers)
	}
	if st.Failovers == 0 {
		t.Fatalf("expected failovers to the replica: %+v", st)
	}
	_ = srvB
}

func TestClientBreakerRecoversThroughProbe(t *testing.T) {
	// Trip the breaker on a dead server, restart a server on the same
	// address, and verify the half-open probe brings it back into rotation.
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	for p := 0; p < 4; p++ {
		srv.Store(uint64(p), pagePattern(uint64(p)))
	}
	if err := srv.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c := testClient(t, dir, fastRetry(ClientConfig{
		CachePages:       2,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	}))
	buf := make([]byte, 64)
	if err := c.Read(buf, 0); err == nil {
		t.Fatal("read from a dead cluster should fail")
	}
	if st := c.Stats(); st.BreakerOpens == 0 {
		t.Fatalf("breaker never opened: %+v", st)
	}
	// Revive the server on the same address; its lease-backed registration
	// makes the pages resolvable again.
	srv2, err := ListenServer(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { srv2.Close() })
	for p := 0; p < 4; p++ {
		srv2.Store(uint64(p), pagePattern(uint64(p)))
	}
	if err := srv2.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	// After the cooldown the next fault is the half-open probe; it must
	// succeed and close the breaker.
	time.Sleep(80 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for p := uint64(0); ; p = (p + 1) % 4 {
		err := c.Read(buf, p*8192)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPageUnavailable) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered through the revived server")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Read unblocks on the faulted subpage; the breaker records success
	// when the whole transfer completes, a moment later. Poll.
	waitBreakerClosed(t, c, 2*time.Second)
	if st := c.Stats(); st.BreakerProbes == 0 {
		t.Fatalf("recovery should have gone through a half-open probe: %+v", st)
	}
	if !anyPagePrefix(buf) {
		t.Fatal("recovered read returned wrong data")
	}
}

// waitBreakerClosed polls until no breaker is open: a successful read
// returns when its faulted subpage lands, slightly before the fetch
// attempt finishes and records the breaker success.
func waitBreakerClosed(t *testing.T, c *Client, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := c.Stats()
		if st.OpenBreakers == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("OpenBreakers = %d after recovery, want 0", st.OpenBreakers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// anyPagePrefix reports whether buf matches the prefix of some test page
// pattern (the recovery loop may have succeeded on any of pages 0-3).
func anyPagePrefix(buf []byte) bool {
	for p := uint64(0); p < 4; p++ {
		if bytes.Equal(buf, pagePattern(p)[:len(buf)]) {
			return true
		}
	}
	return false
}
