package remote

import (
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/chaos"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// BenchmarkFaultUnderChaos measures the fault path on a lossy, jittery
// network — 1% of server writes dropped, up to 2ms of added jitter — with
// and without hedged fetches. The interesting number is the reported
// p99-us: hedging buys tail latency (a dropped or slow primary reply is
// masked by the replica) at the cost of duplicate requests.
//
//	go test -bench FaultUnderChaos -benchtime 2000x ./internal/remote/
func BenchmarkFaultUnderChaos(b *testing.B) {
	for _, bc := range []struct {
		name  string
		hedge time.Duration
	}{
		{"unhedged", 0},
		{"hedged-5ms", 5 * time.Millisecond},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchFaultPath(b, bc.hedge)
		})
	}
}

func benchFaultPath(b *testing.B, hedge time.Duration) {
	const pages = 16
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer dir.Close()
	nw := chaos.New(chaos.Config{
		Jitter:   2 * time.Millisecond,
		DropRate: 0.01,
		Seed:     1, // same fault schedule for both variants
	})
	var srvs []*Server
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := ListenServerOn(nw.WrapListener(ln))
		defer srv.Close()
		for p := 0; p < pages; p++ {
			srv.Store(uint64(p), pagePattern(uint64(p)))
		}
		if err := srv.RegisterWith(dir.Addr()); err != nil {
			b.Fatal(err)
		}
		srvs = append(srvs, srv)
	}

	c, err := Dial(ClientConfig{
		Directory:      dir.Addr(),
		Policy:         proto.PolicyEager,
		SubpageSize:    1024,
		CachePages:     1, // every read refaults: each iteration crosses the wire
		RequestTimeout: 250 * time.Millisecond,
		MaxRetries:     4,
		RetryBackoff:   2 * time.Millisecond,
		Hedge:          hedge,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	buf := make([]byte, 256)
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := c.Read(buf, uint64(i%pages)*units.PageSize); err != nil {
			b.Fatalf("read %d: %v", i, err)
		}
		lats = append(lats, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		return lats[int(float64(len(lats)-1)*p)]
	}
	b.ReportMetric(float64(pct(0.50).Microseconds()), "p50-us")
	b.ReportMetric(float64(pct(0.99).Microseconds()), "p99-us")
	st := c.Stats()
	b.ReportMetric(float64(st.Retries)/float64(b.N), "retries/op")
	b.ReportMetric(float64(st.Hedges)/float64(b.N), "hedges/op")
	if testing.Verbose() {
		fmt.Printf("drops=%d retries=%d hedges=%d failovers=%d\n",
			nw.Drops, st.Retries, st.Hedges, st.Failovers)
	}
}
