package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// ClientConfig shapes a faulting client.
type ClientConfig struct {
	// Directory is the address of the global cache directory.
	Directory string
	// CachePages is the local memory size in pages (default 64).
	CachePages int
	// SubpageSize is the transfer granularity (default 1024).
	SubpageSize int
	// Policy is one of the proto.Policy* constants (default eager).
	Policy uint8
	// Readahead prefetches page p+1 when a fault on p follows a fault
	// on p-1 — client-driven sequential prefetch, an extension beyond
	// the paper's sender-side pipelining.
	Readahead bool
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.CachePages == 0 {
		c.CachePages = 64
	}
	if c.SubpageSize == 0 {
		c.SubpageSize = 1024
	}
	return c
}

// Stats is a snapshot of a client's counters.
type Stats struct {
	Faults     int64
	Prefetches int64
	Evictions  int64
	PutPages   int64
	BytesIn    int64
	SubpageLat stats.Summary // fault -> faulted-subpage arrival
	FullLat    stats.Summary // fault -> complete page arrival
}

// cpage is one locally cached page.
type cpage struct {
	data     []byte
	valid    memmodel.Bitmap
	dirty    bool
	inflight bool // a GetPage reply is streaming in
	faulting bool // a goroutine is issuing the GetPage
	lastUse  int64
	start    time.Time // when the current fault was issued
	err      error
}

// srvConn is a connection to one page server, with a background reader.
type srvConn struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *proto.Writer
}

// Client is the faulting node: a fixed-size page cache with subpage valid
// bits, backed by remote page servers found through the directory.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	cond    *sync.Cond
	cache   map[uint64]*cpage
	located map[uint64]string
	tick    int64
	stats   Stats
	closed  bool
	netErr  error

	dirMu sync.Mutex
	dirW  *proto.Writer
	dirR  *proto.Reader
	dirC  net.Conn

	srvMu   sync.Mutex
	servers map[string]*srvConn

	wg sync.WaitGroup
}

// Dial connects a client to the directory.
func Dial(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if !units.ValidSubpageSize(cfg.SubpageSize) {
		return nil, fmt.Errorf("remote: invalid subpage size %d", cfg.SubpageSize)
	}
	dc, err := net.Dial("tcp", cfg.Directory)
	if err != nil {
		return nil, fmt.Errorf("remote: dial directory: %w", err)
	}
	c := &Client{
		cfg:     cfg,
		cache:   make(map[uint64]*cpage),
		located: make(map[uint64]string),
		servers: make(map[string]*srvConn),
		dirW:    proto.NewWriter(dc),
		dirR:    proto.NewReader(dc),
		dirC:    dc,
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Close tears the client down. Dirty pages are not written back.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.netErr = errors.New("remote: client closed")
	c.cond.Broadcast()
	c.mu.Unlock()

	err := c.dirC.Close()
	c.srvMu.Lock()
	for _, sc := range c.servers {
		sc.conn.Close()
	}
	c.srvMu.Unlock()
	c.wg.Wait()
	return err
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Read copies len(buf) bytes at the global address addr into buf, faulting
// in any missing subpages.
func (c *Client) Read(buf []byte, addr uint64) error {
	return c.access(buf, addr, false)
}

// Write stores buf at the global address addr (write-allocate: missing
// subpages are fetched first). Dirty pages are written back on eviction.
func (c *Client) Write(buf []byte, addr uint64) error {
	return c.access(buf, addr, true)
}

func (c *Client) access(buf []byte, addr uint64, store bool) error {
	for len(buf) > 0 {
		page := addr / units.PageSize
		off := int(addr % units.PageSize)
		n := units.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if err := c.accessPage(buf[:n], page, off, store); err != nil {
			return err
		}
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

func (c *Client) accessPage(buf []byte, page uint64, off int, store bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.ensureValid(page, off, len(buf))
	if err != nil {
		return err
	}
	if store {
		copy(p.data[off:], buf)
		p.dirty = true
	} else {
		copy(buf, p.data[off:off+len(buf)])
	}
	return nil
}

// neededMask returns the valid bits covering [off, off+n).
func neededMask(off, n int) memmodel.Bitmap {
	var m memmodel.Bitmap
	for b := off / units.MinSubpage; b <= (off+n-1)/units.MinSubpage; b++ {
		m |= 1 << b
	}
	return m
}

// ensureValid blocks until the byte range is locally valid, issuing a
// remote fault if necessary. Called with c.mu held.
func (c *Client) ensureValid(page uint64, off, n int) (*cpage, error) {
	if n <= 0 || off+n > units.PageSize {
		return nil, fmt.Errorf("remote: bad range off=%d n=%d", off, n)
	}
	p := c.cache[page]
	if p == nil {
		// evictIfFull may drop the lock for write-back; another
		// goroutine can install the page meanwhile.
		c.evictIfFull()
		if p = c.cache[page]; p == nil {
			p = &cpage{data: make([]byte, units.PageSize)}
			c.cache[page] = p
		}
	}
	c.tick++
	p.lastUse = c.tick
	need := neededMask(off, n)
	for {
		if c.netErr != nil {
			return nil, c.netErr
		}
		if p.err != nil {
			err := p.err
			p.err = nil
			return nil, err
		}
		if p.valid.HasAll(need) {
			return p, nil
		}
		if !p.inflight && !p.faulting {
			if err := c.issueFault(p, page, off, false); err != nil {
				return nil, err
			}
			if c.cfg.Readahead {
				c.maybePrefetch(page)
			}
			continue
		}
		c.cond.Wait()
	}
}

// maybePrefetch issues a read-ahead fault for page+1 when the fault on
// page continued a forward run. Called with c.mu held.
func (c *Client) maybePrefetch(page uint64) {
	if _, ok := c.cache[page-1]; !ok {
		return
	}
	next := page + 1
	if c.cache[next] != nil {
		return
	}
	c.evictIfFull()
	if c.cache[next] != nil {
		return
	}
	p := &cpage{data: make([]byte, units.PageSize)}
	c.cache[next] = p
	c.tick++
	p.lastUse = c.tick
	if err := c.issueFault(p, next, 0, true); err != nil {
		// Best effort: forget the placeholder so a later demand
		// access retries cleanly.
		delete(c.cache, next)
	}
}

// issueFault sends a GetPage for the page. Called with c.mu held; the lock
// is dropped around network operations.
func (c *Client) issueFault(p *cpage, page uint64, off int, prefetch bool) error {
	p.faulting = true
	if prefetch {
		c.stats.Prefetches++
	} else {
		c.stats.Faults++
	}
	c.mu.Unlock()

	var sendErr error
	addr, err := c.locate(page)
	if err != nil {
		sendErr = err
	} else {
		sc, err := c.server(addr)
		if err != nil {
			sendErr = err
		} else {
			start := time.Now()
			sc.wmu.Lock()
			sendErr = sc.w.SendGetPage(proto.GetPage{
				Page:        page,
				FaultOff:    uint32(off),
				SubpageSize: uint32(c.cfg.SubpageSize),
				Policy:      c.cfg.Policy,
			})
			sc.wmu.Unlock()
			c.mu.Lock()
			p.start = start
			p.faulting = false
			if sendErr == nil {
				p.inflight = true
			} else {
				p.err = sendErr
				c.cond.Broadcast()
			}
			return sendErr
		}
	}
	c.mu.Lock()
	p.faulting = false
	p.err = sendErr
	c.cond.Broadcast()
	return sendErr
}

// evictIfFull makes room for one more page. Called with c.mu held.
func (c *Client) evictIfFull() {
	for len(c.cache) >= c.cfg.CachePages {
		var victimID uint64
		var victim *cpage
		for id, p := range c.cache {
			if p.inflight || p.faulting {
				continue
			}
			if victim == nil || p.lastUse < victim.lastUse {
				victim, victimID = p, id
			}
		}
		if victim == nil {
			return // everything is in flight; allow a brief overcommit
		}
		delete(c.cache, victimID)
		c.stats.Evictions++
		if victim.dirty && victim.valid.Full() {
			c.stats.PutPages++
			data := victim.data
			addr := c.located[victimID]
			c.mu.Unlock()
			c.putPage(addr, victimID, data)
			c.mu.Lock()
		}
	}
}

// putPage writes a dirty page back to its server (fire and forget).
func (c *Client) putPage(addr string, page uint64, data []byte) {
	if addr == "" {
		return
	}
	sc, err := c.server(addr)
	if err != nil {
		return
	}
	sc.wmu.Lock()
	_ = sc.w.SendPutPage(proto.PutPage{Page: page, Data: data})
	sc.wmu.Unlock()
}

// locate resolves the server storing page via the directory, with a local
// cache of past answers.
func (c *Client) locate(page uint64) (string, error) {
	c.mu.Lock()
	if addr, ok := c.located[page]; ok {
		c.mu.Unlock()
		return addr, nil
	}
	c.mu.Unlock()

	c.dirMu.Lock()
	defer c.dirMu.Unlock()
	if err := c.dirW.SendLookup(proto.Lookup{Page: page}); err != nil {
		return "", fmt.Errorf("remote: directory lookup: %w", err)
	}
	f, err := c.dirR.Next()
	if err != nil {
		return "", fmt.Errorf("remote: directory lookup: %w", err)
	}
	if f.Type != proto.TLookupReply {
		return "", fmt.Errorf("remote: directory sent %v", f.Type)
	}
	rep, err := proto.DecodeLookupReply(f.Payload)
	if err != nil {
		return "", err
	}
	if rep.Addr == "" {
		return "", fmt.Errorf("remote: page %d not in global memory", page)
	}
	c.mu.Lock()
	c.located[page] = rep.Addr
	c.mu.Unlock()
	return rep.Addr, nil
}

// server returns (dialing if needed) the connection to a page server.
func (c *Client) server(addr string) (*srvConn, error) {
	c.srvMu.Lock()
	defer c.srvMu.Unlock()
	if sc, ok := c.servers[addr]; ok {
		return sc, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial server %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	sc := &srvConn{conn: conn, w: proto.NewWriter(conn)}
	c.servers[addr] = sc
	c.wg.Add(1)
	go c.readLoop(addr, conn)
	return sc, nil
}

// readLoop applies incoming page fragments to the cache: the prototype's
// interrupt handler. A connection failure is scoped to the pages this
// server was transferring — other servers' pages stay usable and a later
// fault redials.
func (c *Client) readLoop(addr string, conn net.Conn) {
	defer c.wg.Done()
	r := proto.NewReader(conn)
	cause := fmt.Errorf("remote: server %s connection lost", addr)
	for {
		f, err := r.Next()
		if err != nil {
			c.dropServer(addr, cause)
			return
		}
		switch f.Type {
		case proto.TPageData:
			pd, err := proto.DecodePageData(f.Payload)
			if err != nil {
				continue
			}
			c.applyFragment(pd)
		case proto.TError:
			// An application-level failure: the request cannot be
			// served but the connection stays usable. Fail the
			// pages in flight on this server now, and remember
			// the cause in case the server hangs up next.
			cause = fmt.Errorf("remote: server %s: %s",
				addr, proto.DecodeError(f.Payload).Text)
			c.failPending(addr, cause)
		}
	}
}

// dropServer severs one server: waiting faults on its pages fail with
// cause, the connection is forgotten so the next fault redials, and every
// other server's pages stay untouched.
func (c *Client) dropServer(addr string, cause error) {
	c.srvMu.Lock()
	if sc, ok := c.servers[addr]; ok {
		sc.conn.Close()
		delete(c.servers, addr)
	}
	c.srvMu.Unlock()
	c.failPending(addr, cause)
}

// failPending delivers cause to every fault currently waiting on pages
// located at addr.
func (c *Client) failPending(addr string, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	for page, p := range c.cache {
		if (p.inflight || p.faulting) && c.located[page] == addr {
			p.err = cause
			p.inflight = false
			p.start = time.Time{}
		}
	}
	c.cond.Broadcast()
}

func (c *Client) applyFragment(pd proto.PageData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.cache[pd.Page]
	if p == nil {
		return // page was evicted mid-transfer; drop the data
	}
	if len(pd.Data) > 0 {
		off := int(pd.Offset)
		if off+len(pd.Data) > units.PageSize {
			return
		}
		copy(p.data[off:], pd.Data)
		p.valid = p.valid.Set(neededMask(off, len(pd.Data)))
		c.stats.BytesIn += int64(len(pd.Data))
		if pd.Flags&proto.FlagFirst != 0 && !p.start.IsZero() {
			c.stats.SubpageLat.Add(float64(time.Since(p.start).Microseconds()))
		}
	}
	if pd.Flags&proto.FlagLast != 0 {
		p.inflight = false
		if !p.start.IsZero() {
			c.stats.FullLat.Add(float64(time.Since(p.start).Microseconds()))
			p.start = time.Time{}
		}
	}
	c.cond.Broadcast()
}
