package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// ClientConfig shapes a faulting client.
type ClientConfig struct {
	// Directory is the address of the global cache directory.
	Directory string
	// CachePages is the local memory size in pages (default 64).
	CachePages int
	// SubpageSize is the transfer granularity (default 1024).
	SubpageSize int
	// Policy is one of the proto.Policy* constants (default eager).
	Policy uint8
	// Readahead prefetches page p+1 when a fault on p follows a fault
	// on p-1 — client-driven sequential prefetch, an extension beyond
	// the paper's sender-side pipelining.
	Readahead bool
	// Prefetch enables the learned prefetcher (core.Prefetcher): the
	// client feeds its access stream into a Leap-style stride detector,
	// and each fault's v2 want bitmap carries the predicted window
	// alongside the accessed range. The wire policy is forced to lazy so
	// the server ships exactly the requested blocks — predictions ride
	// the existing want bitmap, no new wire tags. Requires the v2 wire
	// (incompatible with WireV1: the v1 request has no want bitmap).
	Prefetch bool

	// Resilience knobs (see DESIGN.md §7). The paper's prototype assumed
	// a lossless, always-up AN2 network; these are what replace that
	// assumption on real networks.

	// DialTimeout bounds each directory or server dial (default 1s).
	DialTimeout time.Duration
	// RequestTimeout bounds each directory lookup RPC and each GetPage
	// stream attempt (default 2s). A stream that has not completed when
	// it expires counts as a failed attempt and is retried.
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed fault or lookup is retried
	// beyond the first attempt (default 3; negative disables retries).
	// When retries are exhausted the access fails with a *PageError
	// matching ErrPageUnavailable instead of hanging.
	MaxRetries int
	// RetryBackoff is the base delay between retries, doubled per
	// attempt with ±50% jitter and capped at 500ms (default 10ms).
	RetryBackoff time.Duration
	// Hedge, when positive, sends a duplicate GetPage to a replica if
	// the faulted subpage has not arrived after this delay — trading
	// bandwidth for tail latency, as disaggregated-memory systems do.
	Hedge time.Duration
	// BreakerThreshold opens a per-server circuit breaker after this many
	// consecutive failed attempts on that server (default 3; negative
	// disables the breaker). An open server is skipped by replica picking
	// and hedging until a half-open probe succeeds, so a dead node costs
	// one timeout, not one per fault. When every replica is open, one is
	// force-picked anyway — the breaker sheds load, it never strands a
	// page.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker shuns its server before
	// letting a single half-open probe through (default 1s).
	BreakerCooldown time.Duration
	// Dial overrides the network dialer (chaos injection, tests).
	Dial func(network, addr string) (net.Conn, error)

	// WireV1 pins the fault path to the v1 wire protocol (one GetPage in
	// flight per page, one frame per fragment). Set it when talking to
	// servers that predate TGetPageV2 — servers reject unknown tags at
	// the framing layer, so rollout order is servers first, then clients
	// (see DESIGN.md §11). Default false: batched v2 with pipelined
	// request IDs and eager hedge cancellation.
	WireV1 bool

	// Metrics, when non-nil, registers the client's gms_client_* metrics
	// there. Nil (the default) disables metrics at zero hot-path cost.
	Metrics *obs.Registry
}

const maxBackoff = 500 * time.Millisecond

func (c ClientConfig) withDefaults() ClientConfig {
	if c.CachePages == 0 {
		c.CachePages = 64
	}
	if c.SubpageSize == 0 {
		c.SubpageSize = 1024
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	} else if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0 // disabled
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// Stats is a snapshot of a client's counters.
type Stats struct {
	Faults     int64
	Prefetches int64
	Evictions  int64
	PutPages   int64
	BytesIn    int64
	Retries    int64         // fault or lookup attempts beyond the first
	Failovers  int64         // retries redirected to a different replica
	Hedges     int64         // duplicate GetPages sent to mask a slow primary
	Cancels    int64         // cancel frames sent to withdraw superseded v2 requests
	Predicted  int64         // fault attempts whose want bitmap carried prefetch predictions
	SubpageLat stats.Summary // fault -> faulted-subpage arrival
	FullLat    stats.Summary // fault -> complete page arrival

	// Sharded-directory observability: lookups bounced by a shard that
	// did not own the page (each bounce also delivers the current map),
	// and shard maps installed (the bootstrap fetch plus every refresh a
	// bounce carried). See DESIGN.md §9.
	WrongShard   int64
	MapRefreshes int64

	// Circuit-breaker observability (see ClientConfig.BreakerThreshold).
	// These are maintained under the same lock as every other field, so a
	// Stats() snapshot is one coherent cut: BreakerOpens can never run
	// ahead of the Retries/Failovers that implied it.
	BreakerOpens  int64 // breakers tripped (closed -> open transitions)
	BreakerProbes int64 // half-open probes granted after a cooldown
	OpenBreakers  int   // servers currently shunned (open or half-open)
}

// cpage is one locally cached page.
type cpage struct {
	data     []byte
	valid    memmodel.Bitmap
	touched  memmodel.Bitmap // blocks some access has covered (prefetch history feed)
	dirty    bool
	faulting bool // a faultLoop goroutine owns fetching this page
	inflight bool // a GetPage reply is streaming in
	firstOK  bool // the faulted subpage of the current attempt arrived
	waiters  int  // accessors parked in ensureValid on this page
	// sources maps the servers currently streaming this page (two when a
	// hedge is in flight) to their v2 request IDs (0 on the v1 wire); the
	// attempt fails only when all of them do.
	sources map[string]uint64
	// waitCh signals the owning faultLoop: nil on stream completion, an
	// error when every source failed. Buffered; sent under c.mu and
	// cleared in the same critical section, so exactly one signal per
	// attempt is ever delivered.
	waitCh  chan error
	lastUse int64
	start   time.Time // when the current fault attempt was issued
	err     error
}

// cpageDataPool recycles page buffers between evicted and newly cached
// pages: a client churning through a working set larger than its cache
// allocates page storage once per cache slot, not once per fault. Only
// evictIfFull returns buffers here, and only for victims with no waiters,
// no in-flight stream and no cache entry — at that point nothing can
// reach the old bytes.
var cpageDataPool = sync.Pool{
	New: func() any { b := make([]byte, units.PageSize); return &b },
}

// newCpage builds a cache entry around a pooled (and cleared) buffer.
func newCpage() *cpage {
	data := *cpageDataPool.Get().(*[]byte)
	clear(data)
	return &cpage{data: data}
}

// reqEntry ties a live v2 request ID to the page attempt it serves.
type reqEntry struct {
	p    *cpage
	addr string
}

// pendingCancel is a TCancel to send once c.mu is released (sending under
// the lock would hold every accessor behind one peer's socket).
type pendingCancel struct {
	addr string
	id   uint64
}

// regRequest mints and registers a request ID for an attempt on p served
// by addr, or returns 0 when the client is pinned to the v1 wire. Called
// with c.mu held.
func (c *Client) regRequest(p *cpage, addr string) uint64 {
	if c.cfg.WireV1 {
		return 0
	}
	c.nextReq++
	id := c.nextReq
	c.reqs[id] = reqEntry{p: p, addr: addr}
	return id
}

// wantFor computes the v2 want bitmap for a fault attempt on [off, off+n).
// Full-coverage policies ask for everything still missing. Lazy asks only
// for the accessed range — the want bitmap is now a request the server
// honors beyond its plan, so over-asking would silently turn lazy into
// eager. With the learned prefetcher on, the predicted stride window rides
// alongside the accessed range. Called with c.mu held.
func (c *Client) wantFor(p *cpage, page uint64, off, n int) uint32 {
	miss := ^p.valid
	if c.pf != nil {
		want := neededMask(off, n)
		if m, ok := c.pf.Predict(page, c.cfg.SubpageSize, off); ok {
			want |= m
			c.stats.Predicted++
		}
		if want &= miss; want == 0 {
			want = memmodel.BlockMask(off)
		}
		return uint32(want)
	}
	if c.cfg.Policy == proto.PolicyLazy {
		if want := neededMask(off, n) & miss; want != 0 {
			return uint32(want)
		}
		return uint32(memmodel.BlockMask(off))
	}
	return uint32(miss)
}

// deregSources retires every source of p's current attempt, returning the
// cancel frames to send for streams that may still be live server-side.
// Called with c.mu held; send the cancels after unlocking.
func (c *Client) deregSources(p *cpage, cancels []pendingCancel) []pendingCancel {
	for a, id := range p.sources {
		if id == 0 {
			continue // v1: no way to withdraw, the stream drains as it always did
		}
		delete(c.reqs, id)
		cancels = append(cancels, pendingCancel{addr: a, id: id})
		c.stats.Cancels++
		c.met.cancels.Inc()
	}
	p.sources = nil
	return cancels
}

// sendCancels writes the queued TCancel frames. A server we no longer
// hold a connection to needs no cancel — its stream died with the
// connection.
func (c *Client) sendCancels(cancels []pendingCancel) {
	for _, pc := range cancels {
		c.srvMu.Lock()
		sc := c.servers[pc.addr]
		c.srvMu.Unlock()
		if sc == nil {
			continue
		}
		sc.wmu.Lock()
		_ = sc.conn.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
		_ = sc.w.SendCancel(proto.Cancel{ReqID: pc.id}) //lint:allow lockio write is bounded by the deadline above; wmu only serializes writers on this conn
		_ = sc.conn.SetWriteDeadline(time.Time{})
		sc.wmu.Unlock()
	}
}

// srvConn is a connection to one page server, with a background reader.
type srvConn struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *proto.Writer
}

// Client is the faulting node: a fixed-size page cache with subpage valid
// bits, backed by remote page servers found through the directory. Faults
// run under per-attempt deadlines with retry, replica failover and
// optional hedging; a page no server can deliver fails with a *PageError
// instead of wedging the client.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	cond    *sync.Cond
	cache   map[uint64]*cpage
	located map[uint64][]string // directory answers: replica lists, primary first
	tick    int64
	stats   Stats
	closed  bool
	netErr  error
	// pf is the learned prefetcher (nil unless ClientConfig.Prefetch).
	// All access — Record on first touches, Predict when building want
	// bitmaps — happens under c.mu; the Prefetcher itself is not
	// thread-safe.
	pf *core.Prefetcher

	// V2 request-ID pipelining (under c.mu): nextReq mints IDs, reqs maps
	// a live ID to the page it is fetching. A TSubpageBatch whose ID is
	// not here is stale — a canceled hedge or a timed-out attempt still
	// draining — and applies its (correct) bytes without touching the
	// attempt signaling, so superseded streams can never skew SubpageLat
	// or complete a newer attempt.
	nextReq uint64
	reqs    map[uint64]reqEntry

	closeCh chan struct{} // closed once on Close; unblocks sleeps and waits

	// Control-plane connections, one per directory shard (a single entry,
	// the bootstrap address, when the deployment is unsharded). Lookups to
	// different shards proceed concurrently; each shard's stream
	// serializes its own RPCs.
	dconnMu sync.Mutex
	dconns  map[string]*dirConn

	// Shard-map cache. ring is nil while the deployment looks unsharded
	// (every lookup goes to the bootstrap address); once a sharded map is
	// installed — by the bootstrap fetch or by a TWrongShard bounce —
	// lookups route by ring ownership, and any newer map in a bounce
	// replaces the ring (stale maps converge in one extra round trip).
	shardMu  sync.Mutex
	ring     *proto.Ring
	mapTried bool // the bootstrap shard-map fetch already ran

	srvMu   sync.Mutex
	servers map[string]*srvConn

	// br is the per-server circuit breaker consulted by replica picking
	// and hedging; it has its own lock and is never touched under c.mu.
	// Its transitions are reported back through return values and counted
	// into c.stats under c.mu (see breaker).
	br *breaker

	// met holds the gms_client_* metric handles (all nil-safe no-ops when
	// ClientConfig.Metrics is nil).
	met clientMetrics

	// jmu guards jrand, the client's own seeded jitter source: backoff
	// jitter must not contend on (or correlate through) the process-wide
	// math/rand state shared with every other client in the process.
	jmu   sync.Mutex
	jrand *rand.Rand

	wg sync.WaitGroup
}

// Dial connects a client to the directory.
func Dial(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if !units.ValidSubpageSize(cfg.SubpageSize) {
		return nil, fmt.Errorf("remote: invalid subpage size %d", cfg.SubpageSize)
	}
	if cfg.Prefetch {
		if cfg.WireV1 {
			return nil, errors.New("remote: Prefetch requires the v2 wire (the v1 request has no want bitmap)")
		}
		// Predictions select content through the want bitmap; the lazy
		// wire policy hands the server no plan of its own to fight them.
		cfg.Policy = proto.PolicyLazy
	}
	c := &Client{
		cfg:     cfg,
		cache:   make(map[uint64]*cpage),
		located: make(map[uint64][]string),
		reqs:    make(map[uint64]reqEntry),
		servers: make(map[string]*srvConn),
		closeCh: make(chan struct{}),
		// Seeded from the wall clock so a fleet of clients restarting
		// together still jitters apart; backoff jitter needs spread, not
		// reproducibility.
		jrand: rand.New(rand.NewSource(time.Now().UnixNano())), //lint:allow simpurity jitter seed wants real-time entropy, not determinism
		br:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		met:   newClientMetrics(cfg.Metrics),
	}
	if cfg.Prefetch {
		c.pf = core.NewPrefetcher()
	}
	conn, err := c.dial(cfg.Directory)
	if err != nil {
		return nil, fmt.Errorf("remote: dial directory: %w", err)
	}
	c.dconns = map[string]*dirConn{cfg.Directory: newDirConn(cfg.Directory, conn)}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// dial opens one connection under the configured dialer and timeout.
func (c *Client) dial(addr string) (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
}

// Close tears the client down. Dirty pages are not written back.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.netErr = errClientClosed
	close(c.closeCh)
	c.cond.Broadcast()
	c.mu.Unlock()

	var err error
	c.dconnMu.Lock()
	for _, dc := range c.dconns {
		if e := dc.drop(); e != nil && err == nil {
			err = e
		}
	}
	c.dconnMu.Unlock()
	c.srvMu.Lock()
	for _, sc := range c.servers {
		_ = sc.conn.Close()
	}
	c.srvMu.Unlock()
	c.wg.Wait()
	return err
}

// Stats returns a snapshot of the client's counters. The snapshot is one
// critical section on c.mu, so it is internally consistent: every counter
// in it reflects the same prefix of the client's history.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Read copies len(buf) bytes at the global address addr into buf, faulting
// in any missing subpages.
func (c *Client) Read(buf []byte, addr uint64) error {
	return c.access(buf, addr, false)
}

// Write stores buf at the global address addr (write-allocate: missing
// subpages are fetched first). Dirty pages are written back on eviction.
func (c *Client) Write(buf []byte, addr uint64) error {
	return c.access(buf, addr, true)
}

func (c *Client) access(buf []byte, addr uint64, store bool) error {
	for len(buf) > 0 {
		page := addr / units.PageSize
		off := int(addr % units.PageSize)
		n := units.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if err := c.accessPage(buf[:n], page, off, store); err != nil {
			return err
		}
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

func (c *Client) accessPage(buf []byte, page uint64, off int, store bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.ensureValid(page, off, len(buf))
	if err != nil {
		return err
	}
	if store {
		copy(p.data[off:], buf)
		p.dirty = true
	} else {
		copy(buf, p.data[off:off+len(buf)])
	}
	return nil
}

// neededMask returns the valid bits covering [off, off+n).
func neededMask(off, n int) memmodel.Bitmap {
	var m memmodel.Bitmap
	for b := off / units.MinSubpage; b <= (off+n-1)/units.MinSubpage; b++ {
		m |= 1 << b
	}
	return m
}

// ensureValid blocks until the byte range is locally valid, issuing a
// remote fault if necessary. Called with c.mu held.
func (c *Client) ensureValid(page uint64, off, n int) (*cpage, error) {
	if n <= 0 || off+n > units.PageSize {
		return nil, fmt.Errorf("remote: bad range off=%d n=%d", off, n)
	}
	p := c.cache[page]
	if p == nil {
		// evictIfFull may drop the lock for write-back; another
		// goroutine can install the page meanwhile.
		c.evictIfFull()
		if p = c.cache[page]; p == nil {
			p = newCpage()
			c.cache[page] = p
		}
	}
	c.tick++
	p.lastUse = c.tick
	need := neededMask(off, n)
	if c.pf != nil {
		// Feed the detector the access stream, not the fault stream: a
		// correct prediction suppresses the fault it covered, and a
		// history fed only by faults would starve itself of the very
		// pattern it learned. First touch of any block keeps repeated
		// accesses from flooding the delta ring.
		if need&^p.touched != 0 {
			p.touched |= need
			c.pf.Record(page, off)
		}
	}
	// Park as a waiter: evictIfFull never recycles a page an accessor
	// still holds, so the buffer returned here cannot be repurposed
	// between the wait loop and the caller's copy (which runs under the
	// same critical section).
	p.waiters++
	defer func() { p.waiters-- }()
	for {
		if c.netErr != nil {
			return nil, c.netErr
		}
		if p.err != nil {
			err := p.err
			p.err = nil
			return nil, err
		}
		if p.valid.HasAll(need) {
			return p, nil
		}
		if !p.inflight && !p.faulting {
			p.faulting = true
			c.stats.Faults++
			c.met.faults.Inc()
			c.wg.Add(1)
			go c.faultLoop(p, page, off, n, false)
			if c.cfg.Readahead {
				c.maybePrefetch(page)
			}
		}
		c.cond.Wait()
	}
}

// maybePrefetch issues a read-ahead fault for page+1 when the fault on
// page continued a forward run. Called with c.mu held.
func (c *Client) maybePrefetch(page uint64) {
	if _, ok := c.cache[page-1]; !ok {
		return
	}
	next := page + 1
	if c.cache[next] != nil {
		return
	}
	c.evictIfFull()
	if c.cache[next] != nil {
		return
	}
	p := newCpage()
	c.cache[next] = p
	c.tick++
	p.lastUse = c.tick
	p.faulting = true
	c.stats.Prefetches++
	c.met.prefetches.Inc()
	c.wg.Add(1)
	go c.faultLoop(p, next, 0, units.PageSize, true)
}

// faultLoop owns one page's fetch from first attempt to success or typed
// failure: it is the only goroutine that retries, fails over and hedges
// for the page, while any number of accessors wait on the condition
// variable for valid bits.
func (c *Client) faultLoop(p *cpage, page uint64, off, n int, prefetch bool) {
	defer c.wg.Done()
	err := c.fetchPage(p, page, off, n)

	c.mu.Lock()
	p.faulting = false
	p.inflight = false
	p.sources = nil
	p.waitCh = nil
	if err != nil && !c.closed {
		p.err = err
		if prefetch && c.cache[page] == p && p.valid == 0 && !p.dirty {
			// Best effort: forget the untouched placeholder so a later
			// demand access retries cleanly.
			delete(c.cache, page)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// fetchPage is the retry engine: locate, attempt, back off, fail over to
// the next replica, until the transfer completes or the budget is spent.
func (c *Client) fetchPage(p *cpage, page uint64, off, n int) error {
	var lastErr error
	var firstAddr string
	tried := make(map[string]bool)
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if !c.sleep(c.backoffDelay(attempt)) {
				return errClientClosed
			}
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
			c.met.retries.Inc()
		}
		addrs, err := c.locate(page, attempt > 0)
		if err != nil {
			var pe *PageError
			if errors.As(err, &pe) || errors.Is(err, errClientClosed) {
				return err // authoritative miss or shutdown: retrying cannot help
			}
			lastErr = err
			continue
		}
		addr := c.pickAddr(addrs, tried, attempt)
		tried[addr] = true
		if firstAddr == "" {
			firstAddr = addr
		} else if addr != firstAddr {
			c.mu.Lock()
			c.stats.Failovers++
			c.mu.Unlock()
			c.met.failovers.Inc()
		}
		if err := c.attempt(p, page, off, n, addr, c.hedgeAddr(addrs, addr)); err != nil {
			if c.br.failure(addr, time.Now()) {
				c.mu.Lock()
				c.stats.BreakerOpens++
				c.stats.OpenBreakers++
				c.mu.Unlock()
				c.met.breakerOpens.Inc()
				c.met.openBreakers.Add(1)
			}
			lastErr = err
			// Force a fresh directory answer next time round: the
			// failure may mean our cached placement is stale.
			c.forget(page)
			continue
		}
		if c.br.success(addr) {
			c.mu.Lock()
			c.stats.OpenBreakers--
			c.mu.Unlock()
			c.met.openBreakers.Add(-1)
		}
		return nil
	}
	return &PageError{Page: page, Attempts: c.cfg.MaxRetries + 1, Err: lastErr}
}

// pickAddr chooses the next replica to try: the first address not yet
// tried, or round-robin over the list once all have failed at least once —
// skipping servers whose circuit breaker denies traffic. When every
// candidate is denied the preferred one is force-picked anyway: the
// breaker sheds load but never strands a fault.
func (c *Client) pickAddr(addrs []string, tried map[string]bool, attempt int) string {
	candidates := make([]string, 0, len(addrs)+1)
	for _, a := range addrs {
		if !tried[a] {
			candidates = append(candidates, a)
		}
	}
	candidates = append(candidates, addrs[attempt%len(addrs)])
	now := time.Now()
	for _, a := range candidates {
		ok, probe := c.br.allow(a, now)
		if !ok {
			continue
		}
		if probe {
			c.mu.Lock()
			c.stats.BreakerProbes++
			c.mu.Unlock()
			c.met.breakerProbes.Inc()
		}
		return a
	}
	return candidates[0]
}

// hedgeAddr returns a replica distinct from the primary pick whose breaker
// is closed, or "": hedging to a server already known bad would waste the
// bandwidth the hedge is spending.
func (c *Client) hedgeAddr(addrs []string, primary string) string {
	for _, a := range addrs {
		if a != primary && c.br.wouldAllow(a) {
			return a
		}
	}
	return ""
}

// attempt issues one GetPage to addr and waits for the stream to complete,
// fail, or time out. If hedging is enabled and the faulted subpage is late,
// a duplicate request goes to hedge; the attempt succeeds when either
// stream completes.
func (c *Client) attempt(p *cpage, page uint64, off, n int, addr, hedge string) error {
	ch := make(chan error, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errClientClosed
	}
	p.waitCh = ch
	p.inflight = true
	p.firstOK = false
	id := c.regRequest(p, addr)
	want := c.wantFor(p, page, off, n)
	p.sources = map[string]uint64{addr: id}
	p.start = time.Now()
	c.mu.Unlock()

	if err := c.sendGet(addr, page, off, id, want); err != nil {
		c.cancelAttempt(p, ch)
		return err
	}

	timeout := time.NewTimer(c.cfg.RequestTimeout)
	defer timeout.Stop()
	var hedgeC <-chan time.Time
	if c.cfg.Hedge > 0 && hedge != "" {
		ht := time.NewTimer(c.cfg.Hedge)
		defer ht.Stop()
		hedgeC = ht.C
	}
	for {
		select {
		case err := <-ch:
			return err
		case <-hedgeC:
			hedgeC = nil
			c.mu.Lock()
			fire := p.waitCh == ch && !p.firstOK
			var hid uint64
			var hwant uint32
			if fire {
				hid = c.regRequest(p, hedge)
				hwant = c.wantFor(p, page, off, n)
				p.sources[hedge] = hid
				c.stats.Hedges++
				c.met.hedges.Inc()
			}
			c.mu.Unlock()
			if fire {
				if err := c.sendGet(hedge, page, off, hid, hwant); err != nil {
					// The hedge could not even be sent; the primary
					// stream (or the timeout) still decides the
					// attempt.
					c.mu.Lock()
					if p.waitCh == ch {
						delete(p.sources, hedge)
					}
					if hid != 0 {
						delete(c.reqs, hid)
					}
					c.mu.Unlock()
				}
			}
		case <-timeout.C:
			if !c.cancelAttempt(p, ch) {
				// The stream completed in the same instant: take its
				// verdict, which is already buffered.
				return <-ch
			}
			// The server accepted the request but never finished the
			// stream: its connection is suspect (stalled or wedged),
			// so drop it and let the retry redial or fail over.
			cause := fmt.Errorf("remote: GetPage %d from %s timed out after %v",
				page, addr, c.cfg.RequestTimeout)
			c.dropServer(addr, cause)
			return cause
		case <-c.closeCh:
			c.cancelAttempt(p, ch)
			return errClientClosed
		}
	}
}

// cancelAttempt withdraws an in-flight attempt if its signal has not fired
// yet; it reports false when the attempt already completed (the verdict is
// buffered in ch). Live v2 streams are canceled on the wire so the server
// stops sending at the next batch boundary.
func (c *Client) cancelAttempt(p *cpage, ch chan error) bool {
	c.mu.Lock()
	if p.waitCh != ch {
		c.mu.Unlock()
		return false
	}
	p.waitCh = nil
	p.inflight = false
	cancels := c.deregSources(p, nil)
	c.mu.Unlock()
	c.sendCancels(cancels)
	return true
}

// sendGet writes one page request to addr under a write deadline, so a
// stalled connection cannot wedge the fault path. id and want are the v2
// request ID and missing-block bitmap; id 0 means the v1 wire.
func (c *Client) sendGet(addr string, page uint64, off int, id uint64, want uint32) error {
	sc, err := c.server(addr)
	if err != nil {
		return err
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	_ = sc.conn.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
	defer sc.conn.SetWriteDeadline(time.Time{})
	if id != 0 {
		return sc.w.SendGetPageV2(proto.GetPageV2{ //lint:allow lockio write is bounded by the deadline above; wmu only serializes writers on this conn
			ReqID:       id,
			Page:        page,
			FaultOff:    uint32(off),
			SubpageSize: uint32(c.cfg.SubpageSize),
			Want:        want,
			Policy:      c.cfg.Policy,
		})
	}
	return sc.w.SendGetPage(proto.GetPage{ //lint:allow lockio write is bounded by the deadline above; wmu only serializes writers on this conn
		Page:        page,
		FaultOff:    uint32(off),
		SubpageSize: uint32(c.cfg.SubpageSize),
		Policy:      c.cfg.Policy,
	})
}

// backoffDelay returns the jittered exponential backoff before retry n
// (1-based): base×2^(n-1), capped, with ±50% jitter so a fleet of clients
// retrying after a shared failure does not stampede in lockstep.
func (c *Client) backoffDelay(n int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < n && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	c.jmu.Lock()
	j := c.jrand.Int63n(half + 1)
	c.jmu.Unlock()
	return time.Duration(half + j)
}

// sleep waits for d or until the client closes, reporting true if the full
// delay elapsed.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closeCh:
		return false
	}
}

// evictIfFull makes room for one more page. Called with c.mu held.
func (c *Client) evictIfFull() {
	for len(c.cache) >= c.cfg.CachePages {
		var victimID uint64
		var victim *cpage
		for id, p := range c.cache {
			if p.inflight || p.faulting || p.waiters > 0 {
				continue
			}
			if victim == nil || p.lastUse < victim.lastUse {
				victim, victimID = p, id
			}
		}
		if victim == nil {
			return // everything is in flight; allow a brief overcommit
		}
		delete(c.cache, victimID)
		c.stats.Evictions++
		c.met.evictions.Inc()
		if victim.dirty && victim.valid.Full() {
			c.stats.PutPages++
			c.met.putPages.Inc()
			data := victim.data
			addrs := c.located[victimID]
			c.mu.Unlock()
			c.putPage(addrs, victimID, data)
			c.mu.Lock()
		}
		// The victim is out of the cache, has no stream, no fault owner
		// and no waiters: nothing can reach its buffer again. Recycle it.
		data := victim.data
		victim.data = nil
		cpageDataPool.Put(&data)
	}
}

// putPage writes a dirty page back (fire and forget), trying each replica
// until one send succeeds.
func (c *Client) putPage(addrs []string, page uint64, data []byte) {
	for _, addr := range addrs {
		sc, err := c.server(addr)
		if err != nil {
			continue
		}
		sc.wmu.Lock()
		_ = sc.conn.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
		err = sc.w.SendPutPage(proto.PutPage{Page: page, Data: data}) //lint:allow lockio write is bounded by the deadline above; wmu only serializes writers on this conn
		_ = sc.conn.SetWriteDeadline(time.Time{})
		sc.wmu.Unlock()
		if err == nil {
			return
		}
	}
}

// forget drops the cached directory answer for page.
func (c *Client) forget(page uint64) {
	c.mu.Lock()
	delete(c.located, page)
	c.mu.Unlock()
}

// locate resolves the replica list for page via the directory, with a
// local cache of past answers. refresh forces a fresh directory query.
// Lookup RPCs run under the request deadline; a dead shard connection is
// redialed with backoff up to the retry budget. A TWrongShard bounce
// (stale shard map) installs the bounced map and re-routes within the
// same attempt, so a stale client converges in one extra round trip
// without burning its retry budget.
func (c *Client) locate(page uint64, refresh bool) ([]string, error) {
	if !refresh {
		c.mu.Lock()
		if addrs, ok := c.located[page]; ok {
			c.mu.Unlock()
			return addrs, nil
		}
		c.mu.Unlock()
	}

	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if !c.sleep(c.backoffDelay(attempt)) {
				return nil, errClientClosed
			}
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
			c.met.retries.Inc()
		}
		select {
		case <-c.closeCh:
			return nil, errClientClosed
		default:
		}
		rep, err := c.lookupRouted(page)
		if err != nil {
			lastErr = err
			continue
		}
		if len(rep.Addrs) == 0 {
			return nil, &PageError{Page: page, Attempts: attempt + 1, Err: errNotRegistered}
		}
		c.mu.Lock()
		c.located[page] = rep.Addrs
		c.mu.Unlock()
		return rep.Addrs, nil
	}
	return nil, fmt.Errorf("remote: directory lookup for page %d: %w", page, lastErr)
}

// lookupRouted sends one lookup to the shard the current map names,
// following at most one TWrongShard forward: the bounce carries the
// authoritative map, so the second hop must land (a second bounce means
// the shards themselves disagree, which the caller treats as a failed
// attempt).
func (c *Client) lookupRouted(page uint64) (proto.LookupReply, error) {
	addr := c.shardFor(page)
	rep, err := c.lookupAt(addr, page)
	var ws *WrongShardError
	if !errors.As(err, &ws) {
		return rep, err
	}
	c.bounced(ws)
	next := c.shardFor(page)
	if next == addr {
		// The bounced map still routes here: map and shard disagree.
		return proto.LookupReply{}, err
	}
	rep, err = c.lookupAt(next, page)
	if errors.As(err, &ws) {
		c.bounced(ws)
	}
	return rep, err
}

// bounced accounts a TWrongShard reply and installs the map it carried.
func (c *Client) bounced(ws *WrongShardError) {
	c.mu.Lock()
	c.stats.WrongShard++
	c.mu.Unlock()
	c.met.wrongShard.Inc()
	c.installMap(ws.Map)
}

// shardFor names the directory shard owning page: the ring owner once a
// sharded map is installed, the bootstrap address before then. The first
// call fetches the map from the bootstrap directory; an unsharded
// deployment answers with the empty map and the client stays in
// single-directory mode at zero per-lookup cost.
func (c *Client) shardFor(page uint64) string {
	c.shardMu.Lock()
	ring, tried := c.ring, c.mapTried
	c.shardMu.Unlock()
	if ring == nil && !tried {
		c.fetchShardMap()
		c.shardMu.Lock()
		ring = c.ring
		c.shardMu.Unlock()
	}
	if ring == nil {
		return c.cfg.Directory
	}
	return ring.OwnerAddr(page)
}

// fetchShardMap asks the bootstrap directory for the shard map, once.
// Failure is not fatal: lookups proceed against the bootstrap address and
// the fetch re-arms, so a directory that was briefly unreachable still
// gets to announce its sharding.
func (c *Client) fetchShardMap() {
	dc := c.dirConnFor(c.cfg.Directory)
	m, err := dc.shardMapRPC(c)
	if err != nil {
		return
	}
	c.shardMu.Lock()
	c.mapTried = true
	c.shardMu.Unlock()
	c.installMap(m)
}

// installMap adopts m if it is sharded and newer than the map in use.
func (c *Client) installMap(m proto.ShardMap) {
	if !m.Sharded() {
		return
	}
	c.shardMu.Lock()
	if c.ring != nil && m.Version <= c.ring.Map().Version {
		c.shardMu.Unlock()
		return
	}
	c.ring = proto.NewRing(m)
	c.shardMu.Unlock()
	c.mu.Lock()
	c.stats.MapRefreshes++
	c.mu.Unlock()
	c.met.mapRefreshes.Inc()
}

// dirConnFor returns (creating if needed) the control-plane connection
// slot for the directory shard at addr. The slot dials lazily.
func (c *Client) dirConnFor(addr string) *dirConn {
	c.dconnMu.Lock()
	defer c.dconnMu.Unlock()
	dc := c.dconns[addr]
	if dc == nil {
		dc = newDirConn(addr, nil)
		c.dconns[addr] = dc
	}
	return dc
}

// lookupAt performs one lookup RPC against the shard at addr. A transport
// failure drops the shard connection so the next attempt redials.
func (c *Client) lookupAt(addr string, page uint64) (proto.LookupReply, error) {
	dc := c.dirConnFor(addr)
	rep, err := dc.lookupRPC(c, page)
	var ws *WrongShardError
	if err != nil && !errors.As(err, &ws) {
		_ = dc.drop()
	}
	return rep, err
}

// dirConn is the client's control-plane stream to one directory shard.
// rpc serializes request/reply exchanges; ptr guards the connection
// pointers so drop can race an in-flight dial safely.
type dirConn struct {
	addr string
	rpc  sync.Mutex
	ptr  sync.Mutex
	conn net.Conn
	w    *proto.Writer
	r    *proto.Reader
}

func newDirConn(addr string, conn net.Conn) *dirConn {
	dc := &dirConn{addr: addr}
	if conn != nil {
		dc.conn = conn
		dc.w = proto.NewWriter(conn)
		dc.r = proto.NewReader(conn)
	}
	return dc
}

// ensure (re)dials the shard if there is no live connection. Called with
// dc.rpc held.
func (dc *dirConn) ensure(c *Client) error {
	dc.ptr.Lock()
	have := dc.conn != nil
	dc.ptr.Unlock()
	if have {
		return nil
	}
	conn, err := c.dial(dc.addr)
	if err != nil {
		return fmt.Errorf("remote: dial directory shard %s: %w", dc.addr, err)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		_ = conn.Close()
		return errClientClosed
	}
	dc.ptr.Lock()
	dc.conn = conn
	dc.w = proto.NewWriter(conn)
	dc.r = proto.NewReader(conn)
	dc.ptr.Unlock()
	return nil
}

// drop severs the connection so the next RPC redials, returning the
// close error (nil when there was nothing to close).
func (dc *dirConn) drop() error {
	dc.ptr.Lock()
	defer dc.ptr.Unlock()
	if dc.conn == nil {
		return nil
	}
	err := dc.conn.Close()
	dc.conn = nil
	dc.w, dc.r = nil, nil
	return err
}

// exchange sends one frame and reads one reply under the request
// deadline. Called with dc.rpc held.
func (dc *dirConn) exchange(c *Client, send func(*proto.Writer) error) (proto.Frame, error) {
	dc.ptr.Lock()
	conn, w, r := dc.conn, dc.w, dc.r
	dc.ptr.Unlock()
	if conn == nil {
		return proto.Frame{}, errors.New("remote: no directory connection")
	}
	_ = conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	defer conn.SetDeadline(time.Time{})
	if err := send(w); err != nil {
		return proto.Frame{}, fmt.Errorf("remote: directory %s: %w", dc.addr, err)
	}
	f, err := r.Next()
	if err != nil {
		return proto.Frame{}, fmt.Errorf("remote: directory %s: %w", dc.addr, err)
	}
	return f, nil
}

// lookupRPC performs one lookup exchange. A TWrongShard answer decodes
// into *WrongShardError so callers can re-route.
func (dc *dirConn) lookupRPC(c *Client, page uint64) (proto.LookupReply, error) {
	dc.rpc.Lock()
	defer dc.rpc.Unlock()
	if err := dc.ensure(c); err != nil {
		return proto.LookupReply{}, err
	}
	f, err := dc.exchange(c, func(w *proto.Writer) error {
		return w.SendLookup(proto.Lookup{Page: page})
	})
	if err != nil {
		return proto.LookupReply{}, err
	}
	switch f.Type {
	case proto.TLookupReply:
		return proto.DecodeLookupReply(f.Payload)
	case proto.TWrongShard:
		ws, err := proto.DecodeWrongShard(f.Payload)
		if err != nil {
			return proto.LookupReply{}, err
		}
		return proto.LookupReply{}, &WrongShardError{Page: ws.Page, Map: ws.Map}
	case proto.TError:
		return proto.LookupReply{}, fmt.Errorf("remote: directory %s: %s", dc.addr, proto.DecodeError(f.Payload).Text)
	case proto.TGetPage, proto.TPageData, proto.TPutPage, proto.TAck,
		proto.TLookup, proto.TRegister, proto.THeartbeat,
		proto.TGetShardMap, proto.TShardMap, proto.TGetPageV2,
		proto.TSubpageBatch, proto.TCancel, proto.TDrain, proto.TDrainReply:
		// Valid tags that never answer a lookup; fall through to the
		// protocol error below.
	}
	return proto.LookupReply{}, fmt.Errorf("remote: directory sent %v to a lookup", f.Type)
}

// shardMapRPC fetches the shard map this directory serves.
func (dc *dirConn) shardMapRPC(c *Client) (proto.ShardMap, error) {
	dc.rpc.Lock()
	defer dc.rpc.Unlock()
	if err := dc.ensure(c); err != nil {
		return proto.ShardMap{}, err
	}
	f, err := dc.exchange(c, (*proto.Writer).SendGetShardMap)
	if err != nil {
		_ = dc.drop()
		return proto.ShardMap{}, err
	}
	if f.Type != proto.TShardMap {
		return proto.ShardMap{}, fmt.Errorf("remote: directory sent %v", f.Type)
	}
	return proto.DecodeShardMap(f.Payload)
}

// server returns (dialing if needed) the connection to a page server.
func (c *Client) server(addr string) (*srvConn, error) {
	c.srvMu.Lock()
	defer c.srvMu.Unlock()
	if sc, ok := c.servers[addr]; ok {
		return sc, nil
	}
	conn, err := c.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial server %s: %w", addr, err)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		_ = conn.Close()
		return nil, errClientClosed
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	sc := &srvConn{conn: conn, w: proto.NewWriter(conn)}
	c.servers[addr] = sc
	c.wg.Add(1)
	// The data stream deliberately reads without a deadline: fragments
	// arrive whenever the server sends them. Liveness is enforced per
	// attempt (RequestTimeout timers + dropServer), not per read.
	go c.readLoop(addr, conn) //lint:allow deadlinecheck data-stream reads are unbounded by design; per-attempt RequestTimeout and dropServer bound liveness
	return sc, nil
}

// readLoop applies incoming page fragments to the cache: the prototype's
// interrupt handler. A connection failure is scoped to the pages this
// server was transferring — other servers' pages stay usable and a later
// fault redials.
func (c *Client) readLoop(addr string, conn net.Conn) {
	defer c.wg.Done()
	r := proto.NewReader(conn)
	cause := fmt.Errorf("remote: server %s connection lost", addr)
	for {
		f, err := r.Next()
		if err != nil {
			c.dropServer(addr, cause)
			return
		}
		switch f.Type {
		case proto.TPageData:
			pd, err := proto.DecodePageData(f.Payload)
			if err != nil {
				continue
			}
			c.applyFragment(addr, pd)
		case proto.TSubpageBatch:
			b, err := proto.DecodeSubpageBatch(f.Payload)
			if err != nil {
				continue
			}
			c.applyBatch(addr, b)
		case proto.TError:
			// An application-level failure: the request cannot be
			// served but the connection stays usable. Fail the
			// pages in flight on this server now, and remember
			// the cause in case the server hangs up next.
			cause = fmt.Errorf("remote: server %s: %s",
				addr, proto.DecodeError(f.Payload).Text)
			c.failPending(addr, cause)
		case proto.TGetPage, proto.TPutPage, proto.TAck, proto.TLookup,
			proto.TLookupReply, proto.TRegister, proto.THeartbeat,
			proto.TGetShardMap, proto.TShardMap, proto.TWrongShard,
			proto.TGetPageV2, proto.TCancel, proto.TDrain, proto.TDrainReply:
			// A data connection only ever carries page fragments and
			// errors. Any other tag means the peer is not speaking the
			// page-server protocol (or the stream is desynchronized);
			// trusting further frames would corrupt cached pages, so
			// treat it exactly like a broken connection.
			c.dropServer(addr, fmt.Errorf("remote: server %s sent unexpected %v on the data stream", addr, f.Type))
			return
		}
	}
}

// dropServer severs one server: attempts sourcing from it fail with cause,
// the connection is forgotten so the next fault redials, and every other
// server's pages stay untouched.
func (c *Client) dropServer(addr string, cause error) {
	c.srvMu.Lock()
	if sc, ok := c.servers[addr]; ok {
		_ = sc.conn.Close()
		delete(c.servers, addr)
	}
	c.srvMu.Unlock()
	c.failPending(addr, cause)
}

// failPending removes addr as a source for every in-flight attempt. An
// attempt whose last source just vanished is signaled with cause; its
// faultLoop decides whether to retry, fail over or give up. An attempt
// with a live hedge outstanding keeps going untouched.
func (c *Client) failPending(addr string, cause error) {
	var cancels []pendingCancel
	c.mu.Lock()
	for _, p := range c.cache {
		if p.sources == nil {
			continue
		}
		id, ok := p.sources[addr]
		if !ok {
			continue
		}
		delete(p.sources, addr)
		if id != 0 {
			delete(c.reqs, id)
			// Withdraw the stream if the connection survives (an
			// application-level TError): the server may still be
			// streaming requests this failure did not concern.
			cancels = append(cancels, pendingCancel{addr: addr, id: id})
			c.stats.Cancels++
			c.met.cancels.Inc()
		}
		if len(p.sources) == 0 && p.waitCh != nil {
			ch := p.waitCh
			p.waitCh = nil
			p.inflight = false
			ch <- cause //lint:allow lockio waitCh has capacity 1 and is nilled in this critical section, so the send never blocks
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.sendCancels(cancels)
}

// applyFragment copies one arriving fragment into the cache and signals
// completion to the owning faultLoop on the stream terminator. Fragments
// from a superseded attempt (timed out, hedged twin finishing second)
// still carry correct bytes, so their data is applied rather than wasted.
func (c *Client) applyFragment(addr string, pd proto.PageData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.cache[pd.Page]
	if p == nil {
		return // page was evicted mid-transfer; drop the data
	}
	if len(pd.Data) > 0 {
		off := int(pd.Offset)
		if off+len(pd.Data) > units.PageSize {
			return
		}
		copy(p.data[off:], pd.Data)
		p.valid = p.valid.Set(neededMask(off, len(pd.Data)))
		c.stats.BytesIn += int64(len(pd.Data))
		c.met.bytesIn.Add(int64(len(pd.Data)))
		if pd.Flags&proto.FlagFirst != 0 && !p.firstOK && !p.start.IsZero() {
			p.firstOK = true
			lat := float64(time.Since(p.start).Microseconds())
			c.stats.SubpageLat.Add(lat)
			c.met.subpageLat.Observe(lat)
		}
	}
	if pd.Flags&proto.FlagLast != 0 && p.waitCh != nil {
		ch := p.waitCh
		p.waitCh = nil
		p.inflight = false
		p.sources = nil
		if !p.start.IsZero() {
			lat := float64(time.Since(p.start).Microseconds())
			c.stats.FullLat.Add(lat)
			c.met.fullLat.Observe(lat)
			p.start = time.Time{}
		}
		ch <- nil //lint:allow lockio waitCh has capacity 1 and is nilled in this critical section, so the send never blocks
	}
	c.cond.Broadcast()
}

// applyBatch is the v2 interrupt handler: one frame, many subpage runs.
// The request ID decides what the batch may do — a live ID applies data
// AND drives the attempt state machine (first-subpage latency, stream
// completion, hedge settlement); a stale ID (canceled, timed out,
// superseded) still applies its correct bytes to a cached page but cannot
// touch signaling, which is what keeps a lost hedge from skewing
// SubpageLat or completing a newer attempt (the lost-hedge bugfix).
func (c *Client) applyBatch(addr string, b proto.SubpageBatch) {
	var cancels []pendingCancel
	c.mu.Lock()
	ent, live := c.reqs[b.ReqID]
	p := c.cache[b.Page]
	if live && ent.p != p {
		// The registry outlives a cache entry only through bugs; refuse
		// to apply rather than corrupt whatever now sits at this page.
		live = false
	}
	if p == nil {
		c.mu.Unlock()
		return // page evicted mid-transfer; drop the data
	}
	for i := 0; i < b.Runs(); i++ {
		off, data := b.Run(i)
		if off+len(data) > units.PageSize {
			c.mu.Unlock()
			return // DecodeSubpageBatch bounds this; belt and braces
		}
		copy(p.data[off:], data)
		p.valid = p.valid.Set(neededMask(off, len(data)))
		c.stats.BytesIn += int64(len(data))
		c.met.bytesIn.Add(int64(len(data)))
	}
	if live && p.waitCh != nil {
		if b.Flags&proto.FlagFirst != 0 && !p.firstOK && !p.start.IsZero() {
			p.firstOK = true
			lat := float64(time.Since(p.start).Microseconds())
			c.stats.SubpageLat.Add(lat)
			c.met.subpageLat.Observe(lat)
		}
		if b.Flags&proto.FlagLast != 0 {
			ch := p.waitCh
			p.waitCh = nil
			p.inflight = false
			// This stream won; deregister it and eagerly cancel every
			// other source (the losing half of a hedge) instead of
			// letting it stream a page we already have.
			delete(p.sources, addr)
			delete(c.reqs, b.ReqID)
			cancels = c.deregSources(p, cancels)
			if !p.start.IsZero() {
				lat := float64(time.Since(p.start).Microseconds())
				c.stats.FullLat.Add(lat)
				c.met.fullLat.Observe(lat)
				p.start = time.Time{}
			}
			ch <- nil //lint:allow lockio waitCh has capacity 1 and is nilled in this critical section, so the send never blocks
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.sendCancels(cancels)
}
