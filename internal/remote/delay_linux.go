//go:build linux

package remote

import (
	"os"
	"syscall"
	"time"
	"unsafe"
)

// Wire-rate emulation needs sleeps of tens to hundreds of microseconds
// that cooperate with the Go scheduler. Neither standard option works
// well here:
//
//   - time.Sleep (runtime timers) wakes via the netpoller's epoll timeout,
//     which has millisecond granularity — a 53 us sleep becomes ~1 ms;
//   - a raw nanosleep blocks the OS thread, and on a single-CPU machine
//     the P is only handed off when sysmon notices, which can take many
//     milliseconds once the process has been idle.
//
// A timerfd read through the runtime poller avoids both: the goroutine
// parks immediately (releasing the P to the client goroutines) and the
// timerfd's hrtimer fires an epoll *event*, waking with microsecond-class
// latency.

// sleeper is a reusable precise timer. A nil *sleeper falls back to a raw
// nanosleep.
type sleeper struct{ f *os.File }

const (
	clockMonotonic = 1
	tfdNonblock    = 0x800
	tfdCloexec     = 0x80000
)

// newSleeper returns a timerfd-backed sleeper, or nil if timerfd is
// unavailable (callers then get the nanosleep fallback).
func newSleeper() *sleeper {
	fd, _, errno := syscall.Syscall(syscall.SYS_TIMERFD_CREATE,
		clockMonotonic, tfdNonblock|tfdCloexec, 0)
	if errno != 0 {
		return nil
	}
	return &sleeper{f: os.NewFile(fd, "timerfd")}
}

// Close releases the timer.
func (s *sleeper) Close() {
	if s != nil {
		_ = s.f.Close()
	}
}

// Sleep pauses for about d with microsecond-class precision.
func (s *sleeper) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s == nil {
		preciseSleep(d)
		return
	}
	// itimerspec{interval: 0, value: d}, one-shot.
	var spec [4]int64
	spec[2] = int64(d / time.Second)
	spec[3] = int64(d % time.Second)
	sc, err := s.f.SyscallConn()
	if err != nil {
		preciseSleep(d)
		return
	}
	var errno syscall.Errno
	if err := sc.Control(func(fd uintptr) {
		_, _, errno = syscall.Syscall6(syscall.SYS_TIMERFD_SETTIME,
			fd, 0, uintptr(unsafe.Pointer(&spec)), 0, 0, 0)
	}); err != nil || errno != 0 {
		preciseSleep(d)
		return
	}
	var buf [8]byte
	_, _ = s.f.Read(buf[:]) // parks in the poller until the timer fires
}

// preciseSleep blocks the calling OS thread with a raw nanosleep: better
// than runtime timers when timerfd is unavailable.
func preciseSleep(d time.Duration) {
	ts := syscall.NsecToTimespec(d.Nanoseconds())
	_ = syscall.Nanosleep(&ts, nil)
}
