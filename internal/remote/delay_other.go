//go:build !linux

package remote

import "time"

// sleeper is the portable fallback: runtime timers. Resolution is platform
// dependent (often ~1 ms), so wire-rate emulation is coarse off Linux.
type sleeper struct{}

func newSleeper() *sleeper { return &sleeper{} }

// Close releases the timer.
func (s *sleeper) Close() {}

// Sleep pauses for about d.
func (s *sleeper) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
