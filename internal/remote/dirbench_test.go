package remote

import (
	"runtime"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/proto"
)

// benchDirectory builds a directory with npages registered, bypassing the
// network: these benchmarks measure the in-memory lookup path, where lock
// contention lives, not loopback TCP.
func benchDirectory(b *testing.B, npages int) *Directory {
	b.Helper()
	d, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	ids := make([]uint64, npages)
	for i := range ids {
		ids[i] = uint64(i)
	}
	for _, addr := range []string{"10.0.0.1:7001", "10.0.0.2:7001"} {
		if !d.applyRegister(proto.Register{Addr: addr, Epoch: 1, Pages: ids}, time.Now()) {
			b.Fatal("register rejected")
		}
	}
	return d
}

// BenchmarkDirectoryLookupParallel pins the read path of the sync.Mutex
// -> sync.RWMutex conversion: many goroutines hammer Replicas on a shared
// directory. Before the conversion (one exclusive mutex) readers
// serialized completely; with RWMutex they overlap on multi-core hosts.
//
// Measured on this repo's CI container, which has only ONE CPU
// (GOMAXPROCS=1) — so reader overlap cannot show and these numbers only
// demonstrate that RWMutex costs nothing on the goroutine-switch-heavy
// parallel path (-benchtime 1s):
//
//	                sync.Mutex   sync.RWMutex
//	parallel        453.6 ns/op  389.1 ns/op
//	serial          541.9 ns/op  370.5 ns/op
//
// On a multi-core host the parallel row is where the conversion pays;
// see EXPERIMENTS.md "Sharded directory & loadtest".
func BenchmarkDirectoryLookupParallel(b *testing.B) {
	d := benchDirectory(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		page := uint64(0)
		for pb.Next() {
			page = (page + 1) % 4096
			if got := d.Replicas(page); len(got) != 2 {
				b.Fatalf("Replicas(%d) = %v", page, got)
			}
		}
	})
	b.SetParallelism(runtime.GOMAXPROCS(0))
}

// BenchmarkDirectoryLookupSerial is the uncontended baseline for the
// parallel benchmark above: single goroutine, same lookup.
func BenchmarkDirectoryLookupSerial(b *testing.B) {
	d := benchDirectory(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	page := uint64(0)
	for i := 0; i < b.N; i++ {
		page = (page + 1) % 4096
		if got := d.Replicas(page); len(got) != 2 {
			b.Fatalf("Replicas(%d) = %v", page, got)
		}
	}
}
