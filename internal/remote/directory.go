// Package remote is the networked remote-memory prototype: a global cache
// directory, page servers that donate memory, and a faulting client that
// keeps per-page subpage valid bits and fetches subpages over TCP using
// the paper's transfer policies (full page, lazy, eager fullpage fetch,
// subpage pipelining).
//
// It is the repository's stand-in for the paper's Digital Unix + AN2
// prototype: the same fault path — trap, directory lookup, request,
// subpage-first reply, asynchronous completion — over commodity TCP.
// Absolute latencies differ from the AN2 numbers, but the ordering the
// paper demonstrates (subpage faults complete in a fraction of a full-page
// fault) holds on loopback and real networks alike.
package remote

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/proto"
)

// DefaultLeaseTTL is the lease duration used when DirectoryConfig.LeaseTTL
// is zero. It is deliberately generous: a server whose heartbeats stop is
// declared dead only after missing several renewal intervals.
const DefaultLeaseTTL = 30 * time.Second

// DirectoryConfig tunes the directory's liveness tracking and, when Shard
// is set, makes it one shard of a sharded deployment.
type DirectoryConfig struct {
	// LeaseTTL is how long a registration stays visible without a renewing
	// heartbeat. Zero selects DefaultLeaseTTL. Lookups filter expired
	// servers inline, so a dead address is never returned for longer than
	// one TTL even between janitor sweeps.
	LeaseTTL time.Duration

	// Shard, when non-nil, runs the directory as one shard of the given
	// map: lookups for pages another shard owns answer TWrongShard
	// (carrying the map, so the sender re-routes in one round trip), and
	// registrations are filtered to owned pages. Nil runs the classic
	// single-directory mode.
	Shard *ShardConfig

	// LookupService, when positive, emulates the bounded service capacity
	// of one directory node: each lookup holds the directory's single
	// service slot for this long. Loopback TCP makes a directory look
	// infinitely fast — the same way it hides the transfer-size effects
	// Server.SetWireMbps restores — so scale experiments set this to model
	// "one directory process has one CPU's worth of lookup throughput".
	// Zero (the default) disables emulation.
	LookupService time.Duration

	// Journal, when non-nil, makes the lease table durable: every state
	// transition is appended to a dirlog write-ahead journal in
	// Journal.Dir and compacted into snapshots, and construction replays
	// whatever a previous incarnation left there — epochs,
	// registrations, seniority and the shard assignment all survive a
	// directory crash. Nil (the default) keeps the classic in-memory
	// directory. The Journal.Meta field is overwritten from Shard.
	Journal *dirlog.Options

	// RestartGrace is how long recovered leases live before their first
	// post-restart heartbeat must land. Zero selects the lease TTL; the
	// value is capped at one TTL so a recovering directory never extends
	// a dead server's visibility beyond the bound PR 4 pinned.
	RestartGrace time.Duration
}

// ShardConfig identifies one directory shard: the versioned map of every
// shard in the deployment and this process's index into it.
type ShardConfig struct {
	Map  proto.ShardMap
	Self int
}

// Directory is the global cache directory (GCD): it maps pages to the
// servers storing them. A page registered by several servers has replicas;
// the earliest surviving registrant is the primary and lookups return the
// full list (primary first, remaining replicas in sorted address order) so
// clients can fail over deterministically.
//
// Liveness: each server's registration is a lease renewed by THeartbeat
// frames. A server that stops heartbeating expires after one LeaseTTL and
// its replicas are expunged. Registrations carry a per-server epoch; a
// restarted server registers with a higher epoch, which atomically fences
// out (expunges) every entry of its previous incarnation, while delayed
// frames from the old incarnation are rejected as stale. The highest epoch
// seen for an address is remembered even after its lease expires.
type Directory struct {
	ln  net.Listener
	ttl time.Duration

	// Shard identity (immutable after construction). ring is nil in the
	// classic single-directory mode; when set, this directory owns only
	// the pages the ring maps to index self.
	ring *proto.Ring
	self int

	// Emulated per-lookup service time (see DirectoryConfig.LookupService):
	// svcGate is a width-1 semaphore serializing the emulated work, svcSlp
	// the precise sub-millisecond sleeper used while holding it.
	svc     time.Duration
	svcGate chan struct{}
	svcSlp  *sleeper

	// mu is an RWMutex because the directory is read-mostly: every fault
	// on every client is a Lookup, while Register/Heartbeat traffic is
	// per-server and periodic. Lookup/Replicas take the read lock and run
	// concurrently; only lease mutation takes the write lock.
	mu       sync.RWMutex
	servers  map[string]*dirServer
	pages    map[uint64]map[string]struct{}
	epochs   map[string]uint64 // highest epoch per addr; survives lease expiry
	seq      uint64            // registration seniority counter
	draining map[string]bool   // servers mid-drain (see Drain)
	conns    map[net.Conn]struct{}
	done     bool
	met      directoryMetrics // gms_dir_* handles; nil-safe no-ops by default

	// Durability (nil log = classic in-memory directory). pending
	// buffers lease renewals between janitor sweeps: heartbeats are far
	// too frequent to journal individually, and the restart grace window
	// covers whatever a crash drops from the buffer.
	log        *dirlog.Journal
	grace      time.Duration
	pending    []dirlog.Renew
	recoveredN int // servers restored from the journal at construction

	closeOnce sync.Once
	closeErr  error
	stop      chan struct{}
	wg        sync.WaitGroup
}

// dirServer is one live registration (one server incarnation).
type dirServer struct {
	epoch   uint64
	seq     uint64
	expires time.Time
	pages   map[uint64]struct{}
}

// ListenDirectory starts a directory on addr ("host:port", ":0" for an
// ephemeral port) with default liveness settings.
func ListenDirectory(addr string) (*Directory, error) {
	return ListenDirectoryWith(addr, DirectoryConfig{})
}

// ListenDirectoryWith starts a directory on addr with explicit liveness
// settings.
func ListenDirectoryWith(addr string, cfg DirectoryConfig) (*Directory, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: directory listen: %w", err)
	}
	d, err := ListenDirectoryOnWith(ln, cfg)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	return d, nil
}

// ListenDirectoryOn starts a directory on an existing listener — the hook
// for running it behind a chaos injector or a custom transport.
func ListenDirectoryOn(ln net.Listener) *Directory {
	d, _ := ListenDirectoryOnWith(ln, DirectoryConfig{}) // no journal: cannot fail
	return d
}

// ListenDirectoryOnWith starts a directory on an existing listener with
// explicit liveness settings. The only failure mode is a journal that
// cannot be opened or belongs to a different shard assignment; without
// cfg.Journal it never fails.
func ListenDirectoryOnWith(ln net.Listener, cfg DirectoryConfig) (*Directory, error) {
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	grace := cfg.RestartGrace
	if grace <= 0 || grace > ttl {
		grace = ttl
	}
	d := &Directory{
		ln:       ln,
		ttl:      ttl,
		grace:    grace,
		svc:      cfg.LookupService,
		servers:  make(map[string]*dirServer),
		pages:    make(map[uint64]map[string]struct{}),
		epochs:   make(map[string]uint64),
		draining: make(map[string]bool),
		conns:    make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
	}
	if cfg.Shard != nil {
		d.ring = proto.NewRing(cfg.Shard.Map)
		d.self = cfg.Shard.Self
	}
	if cfg.Journal != nil {
		if err := d.openJournal(*cfg.Journal, cfg.Shard); err != nil {
			return nil, err
		}
	}
	if d.svc > 0 {
		d.svcGate = make(chan struct{}, 1)
		d.svcSlp = newSleeper()
	}
	d.wg.Add(2)
	go d.acceptLoop()
	go d.janitor()
	return d, nil
}

// openJournal opens (or creates) the write-ahead journal and installs
// whatever it recovers: epochs, registrations with their seniority, and
// — when this directory was started without a shard assignment — the
// assignment recorded by the previous incarnation. Restored leases get
// the restart grace window instead of their recorded expiry, so servers
// that outlived the directory have one window to heartbeat before the
// janitor may expunge them.
func (d *Directory) openJournal(opts dirlog.Options, shard *ShardConfig) error {
	opts.Meta = dirlog.Meta{Self: -1}
	if shard != nil {
		opts.Meta = dirlog.Meta{ShardVersion: shard.Map.Version, Shards: shard.Map.Shards, Self: shard.Self}
	}
	j, st, err := dirlog.Open(opts)
	if err != nil {
		return fmt.Errorf("remote: directory journal: %w", err)
	}
	if j.Info().Recovered && st.Meta.Sharded() {
		if shard == nil {
			// Adopt the recorded shard assignment: a restarted shard that
			// was not handed its config still comes back as itself.
			d.ring = proto.NewRing(proto.ShardMap{Version: st.Meta.ShardVersion, Shards: st.Meta.Shards})
			d.self = st.Meta.Self
		} else if !st.Meta.SameShard(dirlog.Meta{ShardVersion: shard.Map.Version, Shards: shard.Map.Shards, Self: shard.Self}) {
			_ = j.Close()
			return fmt.Errorf("remote: journal %s belongs to shard %d of map v%d, not shard %d of map v%d",
				opts.Dir, st.Meta.Self, st.Meta.ShardVersion, shard.Self, shard.Map.Version)
		}
	}
	d.log = j
	expires := time.Now().Add(d.grace)
	for addr, s := range st.Servers {
		ds := &dirServer{epoch: s.Epoch, seq: s.Seq, expires: expires, pages: make(map[uint64]struct{})}
		for p := range s.Pages {
			ds.pages[p] = struct{}{}
			holders := d.pages[p]
			if holders == nil {
				holders = make(map[string]struct{})
				d.pages[p] = holders
			}
			holders[addr] = struct{}{}
		}
		d.servers[addr] = ds
	}
	for addr, e := range st.Epochs {
		d.epochs[addr] = e
	}
	d.seq = st.Seq
	d.recoveredN = len(st.Servers)
	// A drain that was mid-flight when the previous incarnation died has
	// no transfer running anymore: clear the mark (journaled, so the
	// next recovery agrees) and let the admin re-issue the drain.
	for addr := range st.Draining {
		d.appendLog(dirlog.DrainAbort{Addr: addr})
	}
	return nil
}

// appendLog journals records when durability is on. Append failures are
// deliberately non-fatal to the serving path — an in-memory directory
// ahead of its journal degrades to exactly the pre-durability behavior —
// but they are counted, and the recovery tests pin what replay loses.
func (d *Directory) appendLog(recs ...dirlog.Record) {
	if d.log == nil {
		return
	}
	if err := d.log.Append(recs...); err != nil {
		d.met.journalErrors.Inc()
	}
	d.met.journalRecords.Add(int64(len(recs)))
}

// Addr returns the directory's listen address.
func (d *Directory) Addr() string { return d.ln.Addr().String() }

// LeaseTTL reports the configured lease duration.
func (d *Directory) LeaseTTL() time.Duration { return d.ttl }

// ShardMap reports the shard map this directory serves (the zero map in
// single-directory mode).
func (d *Directory) ShardMap() proto.ShardMap { return d.ring.Map() }

// Owns reports whether this directory owns page: always true in
// single-directory mode, ring ownership in shard mode.
func (d *Directory) Owns(page uint64) bool {
	return d.ring == nil || d.ring.Owner(page) == d.self
}

// SetMetrics registers the directory's gms_dir_* metrics on r (nil
// disables them). A sharded directory additionally registers its
// gms_dirshard_* handles.
func (d *Directory) SetMetrics(r *obs.Registry) {
	d.mu.Lock()
	d.met = newDirectoryMetrics(r, d.ring != nil)
	d.met.pages.Set(int64(len(d.pages)))
	d.met.recoveredServers.Set(int64(d.recoveredN))
	if d.ring != nil {
		d.met.shardSelf.Set(int64(d.self))
		d.met.shardMapVersion.Set(int64(d.ring.Map().Version))
		d.met.shardCount.Set(int64(len(d.ring.Map().Shards)))
	}
	d.mu.Unlock()
}

// serviceDelay emulates the configured per-lookup service time: the
// caller queues for the directory's single service slot and holds it for
// the service duration. No directory lock is held while waiting. A
// no-op when emulation is off.
func (d *Directory) serviceDelay() {
	if d.svc <= 0 {
		return
	}
	select {
	case d.svcGate <- struct{}{}:
	case <-d.stop:
		return
	}
	d.svcSlp.Sleep(d.svc)
	<-d.svcGate
}

// Close stops the directory, severing active connections. It is idempotent:
// concurrent and repeated calls all return the first call's error. A
// journaling directory flushes buffered renewals and fsyncs on the way
// out, so a clean shutdown recovers exactly.
func (d *Directory) Close() error {
	return d.shutdown(true)
}

// Kill stops the directory the way a crash would: connections are
// severed and the journal is abandoned without a final flush — buffered
// renewals and un-synced appends are lost, exactly as if the process had
// died. The chaos soak's restart path; a clean shutdown uses Close.
func (d *Directory) Kill() error {
	return d.shutdown(false)
}

func (d *Directory) shutdown(flush bool) error {
	d.closeOnce.Do(func() {
		d.closeErr = d.ln.Close()
		close(d.stop)
		d.mu.Lock()
		d.done = true
		if d.log != nil {
			if flush {
				d.flushRenewsLocked()
				if err := d.log.Close(); err != nil && d.closeErr == nil {
					d.closeErr = err
				}
			} else {
				_ = d.log.Crash()
			}
		}
		for conn := range d.conns {
			_ = conn.Close()
		}
		d.mu.Unlock()
		d.wg.Wait()
		d.svcSlp.Close()
	})
	return d.closeErr
}

// Lookup reports the primary server storing page, for tests and tools.
func (d *Directory) Lookup(page uint64) (string, bool) {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	addrs := d.replicasLocked(page, now)
	if len(addrs) == 0 {
		return "", false
	}
	return addrs[0], true
}

// Replicas reports every live server registered for page: the primary
// (earliest surviving registrant) first, then the remaining replicas in
// sorted address order. Expired leases are filtered out inline.
func (d *Directory) Replicas(page uint64) []string {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.replicasLocked(page, now)
}

func (d *Directory) replicasLocked(page uint64, now time.Time) []string {
	var primary string
	primarySeq := uint64(math.MaxUint64)
	var rest []string
	for addr := range d.pages[page] {
		s := d.servers[addr]
		if s == nil || now.After(s.expires) {
			continue
		}
		if s.seq < primarySeq {
			if primary != "" {
				rest = append(rest, primary)
			}
			primary, primarySeq = addr, s.seq
		} else {
			rest = append(rest, addr)
		}
	}
	if primary == "" {
		return nil
	}
	sort.Strings(rest)
	return append([]string{primary}, rest...)
}

// Len reports the number of pages with at least one live holder.
func (d *Directory) Len() int {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, holders := range d.pages {
		for addr := range holders {
			if s := d.servers[addr]; s != nil && !now.After(s.expires) {
				n++
				break
			}
		}
	}
	return n
}

// ServerEpoch reports the highest registration epoch seen for addr,
// whether or not its lease is still live. For tests and tools.
func (d *Directory) ServerEpoch(addr string) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.epochs[addr]
	return e, ok
}

// applyRegister installs a registration. It reports false when the
// registration is stale (an epoch below the highest seen for the address),
// in which case the caller answers with an error so the sender knows it has
// been superseded. Registrations racing Close are acknowledged but not
// recorded.
func (d *Directory) applyRegister(reg proto.Register, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return true
	}
	cur := d.epochs[reg.Addr]
	if reg.Epoch < cur {
		d.met.staleRejects.Inc()
		return false
	}
	if reg.Epoch > cur {
		// New incarnation: fence out every entry of the old one.
		d.expungeLocked(reg.Addr)
		d.epochs[reg.Addr] = reg.Epoch
	}
	s := d.servers[reg.Addr]
	if s == nil {
		d.seq++
		s = &dirServer{epoch: reg.Epoch, seq: d.seq, pages: make(map[uint64]struct{})}
		d.servers[reg.Addr] = s
	}
	s.expires = now.Add(d.ttl)
	accepted := make([]uint64, 0, len(reg.Pages))
	for _, p := range reg.Pages {
		if !d.Owns(p) {
			// A shard records only the pages the ring assigns it. Servers
			// partition registrations by owner, so foreign pages here mean
			// the sender holds a stale map; dropping them (and counting)
			// keeps a misrouted batch from resurrecting moved entries.
			d.met.foreignPages.Inc()
			continue
		}
		s.pages[p] = struct{}{}
		holders := d.pages[p]
		if holders == nil {
			holders = make(map[string]struct{})
			d.pages[p] = holders
		}
		holders[reg.Addr] = struct{}{}
		accepted = append(accepted, p)
	}
	// Journal the registration as applied — owned pages only, with the
	// seniority it landed at — so replay reproduces this exact table.
	d.appendLog(dirlog.Register{
		Addr: reg.Addr, Epoch: reg.Epoch, Seq: s.seq,
		Expires: s.expires.UnixNano(), Pages: accepted,
	})
	d.maybeSnapshotLocked()
	d.met.registers.Inc()
	d.met.pages.Set(int64(len(d.pages)))
	return true
}

// renewLease extends the lease named by a heartbeat. It reports false when
// the registration is unknown, superseded, or already expired — the sender
// must re-register.
func (d *Directory) renewLease(hb proto.Heartbeat, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return true
	}
	s := d.servers[hb.Addr]
	if s == nil || s.epoch != hb.Epoch || now.After(s.expires) {
		return false
	}
	s.expires = now.Add(d.ttl)
	if d.log != nil {
		// Heartbeats are too frequent to journal one record each: buffer
		// the renewal and let the janitor flush the batch. A crash drops
		// at most one sweep period of renewals, which the restart grace
		// window re-grants wholesale.
		d.pending = append(d.pending, dirlog.Renew{Addr: hb.Addr, Epoch: hb.Epoch, Expires: s.expires.UnixNano()})
	}
	d.met.heartbeats.Inc()
	return true
}

// expungeLocked removes addr's registration and every replica it holds.
// Called with d.mu held.
func (d *Directory) expungeLocked(addr string) {
	s := d.servers[addr]
	if s == nil {
		return
	}
	for p := range s.pages {
		holders := d.pages[p]
		delete(holders, addr)
		if len(holders) == 0 {
			delete(d.pages, p)
		}
	}
	delete(d.servers, addr)
}

// janitor periodically expunges expired leases. Lookups filter expired
// entries inline, so the sweep only reclaims memory; staleness is bounded
// by the TTL either way.
func (d *Directory) janitor() {
	defer d.wg.Done()
	period := d.ttl / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case now := <-t.C:
			d.sweep(now)
		}
	}
}

func (d *Directory) sweep(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushRenewsLocked()
	var expired []string
	for addr, s := range d.servers {
		if now.After(s.expires) {
			expired = append(expired, addr)
			d.expungeLocked(addr)
			d.met.expiries.Inc()
		}
	}
	if len(expired) > 0 {
		sort.Strings(expired) // deterministic journal across map iteration orders
		d.appendLog(dirlog.Expunge{Addrs: expired})
	}
	d.maybeSnapshotLocked()
	d.met.pages.Set(int64(len(d.pages)))
}

// flushRenewsLocked journals the buffered lease renewals as one batch
// record. Called with d.mu held.
func (d *Directory) flushRenewsLocked() {
	if d.log == nil || len(d.pending) == 0 {
		return
	}
	d.appendLog(dirlog.RenewBatch{Renews: d.pending})
	d.pending = d.pending[:0]
}

// maybeSnapshotLocked compacts the journal once the wal passes the
// configured threshold: buffered renewals are flushed first so the
// snapshot state is at least as new as every journaled record, then the
// current table rotates in as the next generation. Called with d.mu
// held; the file writes happen under the lock, which is acceptable for a
// rotation that runs once per thousands of transitions.
func (d *Directory) maybeSnapshotLocked() {
	if d.log == nil || !d.log.ShouldSnapshot() {
		return
	}
	d.flushRenewsLocked()
	if err := d.log.Snapshot(d.stateLocked()); err != nil {
		d.met.journalErrors.Inc()
		return
	}
	d.met.snapshots.Inc()
}

// stateLocked exports the durable portion of the lease table as a dirlog
// state. Called with d.mu held (read or write).
func (d *Directory) stateLocked() *dirlog.State {
	st := dirlog.NewState()
	st.Seq = d.seq
	if d.ring != nil {
		m := d.ring.Map()
		st.Meta = dirlog.Meta{ShardVersion: m.Version, Shards: m.Shards, Self: d.self}
	} else {
		st.Meta = dirlog.Meta{Self: -1}
	}
	for addr, e := range d.epochs {
		st.Epochs[addr] = e
	}
	for addr, s := range d.servers {
		ss := &dirlog.ServerState{Epoch: s.epoch, Seq: s.seq, Expires: s.expires.UnixNano(), Pages: make(map[uint64]struct{}, len(s.pages))}
		for p := range s.pages {
			ss.Pages[p] = struct{}{}
		}
		st.Servers[addr] = ss
	}
	for addr := range d.draining {
		st.Draining[addr] = true
	}
	return st
}

// StateSnapshot exports the directory's durable state — epochs,
// registrations, draining marks — for tests and tools. The returned
// state is a deep copy.
func (d *Directory) StateSnapshot() *dirlog.State {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stateLocked()
}

// RecoveredServers reports how many registrations this directory
// restored from its journal at startup (zero without one, or on a fresh
// journal).
func (d *Directory) RecoveredServers() int { return d.recoveredN }

// JournalInfo reports what recovery found when the directory opened its
// journal (the zero Info without one).
func (d *Directory) JournalInfo() dirlog.Info {
	if d.log == nil {
		return dirlog.Info{}
	}
	return d.log.Info()
}

func (d *Directory) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			// A directory connection idles until the next request or the
			// peer hangs up; server liveness is the lease janitor's job
			// and client lookups run under their own request deadlines.
			d.serve(conn) //lint:allow deadlinecheck request reads idle by design until the peer sends or hangs up; leases and client-side deadlines bound liveness
		}()
	}
}

func (d *Directory) serve(conn net.Conn) {
	d.mu.Lock()
	if d.done {
		d.mu.Unlock()
		_ = conn.Close()
		return
	}
	d.conns[conn] = struct{}{}
	d.mu.Unlock()
	defer func() {
		_ = conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	r := proto.NewReader(conn)
	w := proto.NewWriter(conn)
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case proto.TRegister:
			reg, err := proto.DecodeRegister(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			if !d.applyRegister(reg, time.Now()) {
				if err := w.SendError(fmt.Sprintf("directory: stale epoch %d for %s", reg.Epoch, reg.Addr)); err != nil {
					return
				}
				continue
			}
			if err := w.SendAck(); err != nil {
				return
			}
		case proto.THeartbeat:
			hb, err := proto.DecodeHeartbeat(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			if !d.renewLease(hb, time.Now()) {
				if err := w.SendError(fmt.Sprintf("directory: no lease for %s epoch %d", hb.Addr, hb.Epoch)); err != nil {
					return
				}
				continue
			}
			if err := w.SendAck(); err != nil {
				return
			}
		case proto.TLookup:
			lk, err := proto.DecodeLookup(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			if !d.Owns(lk.Page) {
				// Misdirected lookup: answer with the current map so the
				// client both learns the right shard and refreshes its
				// cache in this one round trip.
				d.mu.RLock()
				d.met.wrongShard.Inc()
				d.mu.RUnlock()
				if err := w.SendWrongShard(proto.WrongShard{Page: lk.Page, Map: d.ring.Map()}); err != nil {
					return
				}
				continue
			}
			d.serviceDelay()
			now := time.Now()
			d.mu.RLock()
			addrs := d.replicasLocked(lk.Page, now)
			d.met.lookups.Inc()
			d.mu.RUnlock()
			if err := w.SendLookupReply(proto.LookupReply{Page: lk.Page, Addrs: addrs}); err != nil {
				return
			}
		case proto.TGetShardMap:
			d.mu.RLock()
			d.met.mapRequests.Inc()
			d.mu.RUnlock()
			if err := w.SendShardMap(d.ring.Map()); err != nil {
				return
			}
		case proto.TDrain:
			dr, err := proto.DecodeDrain(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			moved, err := d.Drain(dr.Addr)
			if err != nil {
				if serr := w.SendError(fmt.Sprintf("directory: drain %s: %v", dr.Addr, err)); serr != nil {
					return
				}
				continue
			}
			if err := w.SendDrainReply(proto.DrainReply{Moved: uint32(moved)}); err != nil {
				return
			}
		case proto.TGetPage, proto.TPageData, proto.TPutPage, proto.TAck,
			proto.TLookupReply, proto.TError, proto.TShardMap,
			proto.TWrongShard, proto.TGetPageV2, proto.TSubpageBatch,
			proto.TCancel, proto.TDrainReply:
			// Data-plane and reply tags never arrive at a directory;
			// refuse and hang up rather than guess at the peer's intent.
			_ = w.SendError(fmt.Sprintf("directory: unexpected %v", f.Type))
			return
		}
	}
}
