// Package remote is the networked remote-memory prototype: a global cache
// directory, page servers that donate memory, and a faulting client that
// keeps per-page subpage valid bits and fetches subpages over TCP using
// the paper's transfer policies (full page, lazy, eager fullpage fetch,
// subpage pipelining).
//
// It is the repository's stand-in for the paper's Digital Unix + AN2
// prototype: the same fault path — trap, directory lookup, request,
// subpage-first reply, asynchronous completion — over commodity TCP.
// Absolute latencies differ from the AN2 numbers, but the ordering the
// paper demonstrates (subpage faults complete in a fraction of a full-page
// fault) holds on loopback and real networks alike.
package remote

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/proto"
)

// DefaultLeaseTTL is the lease duration used when DirectoryConfig.LeaseTTL
// is zero. It is deliberately generous: a server whose heartbeats stop is
// declared dead only after missing several renewal intervals.
const DefaultLeaseTTL = 30 * time.Second

// DirectoryConfig tunes the directory's liveness tracking and, when Shard
// is set, makes it one shard of a sharded deployment.
type DirectoryConfig struct {
	// LeaseTTL is how long a registration stays visible without a renewing
	// heartbeat. Zero selects DefaultLeaseTTL. Lookups filter expired
	// servers inline, so a dead address is never returned for longer than
	// one TTL even between janitor sweeps.
	LeaseTTL time.Duration

	// Shard, when non-nil, runs the directory as one shard of the given
	// map: lookups for pages another shard owns answer TWrongShard
	// (carrying the map, so the sender re-routes in one round trip), and
	// registrations are filtered to owned pages. Nil runs the classic
	// single-directory mode.
	Shard *ShardConfig

	// LookupService, when positive, emulates the bounded service capacity
	// of one directory node: each lookup holds the directory's single
	// service slot for this long. Loopback TCP makes a directory look
	// infinitely fast — the same way it hides the transfer-size effects
	// Server.SetWireMbps restores — so scale experiments set this to model
	// "one directory process has one CPU's worth of lookup throughput".
	// Zero (the default) disables emulation.
	LookupService time.Duration
}

// ShardConfig identifies one directory shard: the versioned map of every
// shard in the deployment and this process's index into it.
type ShardConfig struct {
	Map  proto.ShardMap
	Self int
}

// Directory is the global cache directory (GCD): it maps pages to the
// servers storing them. A page registered by several servers has replicas;
// the earliest surviving registrant is the primary and lookups return the
// full list (primary first, remaining replicas in sorted address order) so
// clients can fail over deterministically.
//
// Liveness: each server's registration is a lease renewed by THeartbeat
// frames. A server that stops heartbeating expires after one LeaseTTL and
// its replicas are expunged. Registrations carry a per-server epoch; a
// restarted server registers with a higher epoch, which atomically fences
// out (expunges) every entry of its previous incarnation, while delayed
// frames from the old incarnation are rejected as stale. The highest epoch
// seen for an address is remembered even after its lease expires.
type Directory struct {
	ln  net.Listener
	ttl time.Duration

	// Shard identity (immutable after construction). ring is nil in the
	// classic single-directory mode; when set, this directory owns only
	// the pages the ring maps to index self.
	ring *proto.Ring
	self int

	// Emulated per-lookup service time (see DirectoryConfig.LookupService):
	// svcGate is a width-1 semaphore serializing the emulated work, svcSlp
	// the precise sub-millisecond sleeper used while holding it.
	svc     time.Duration
	svcGate chan struct{}
	svcSlp  *sleeper

	// mu is an RWMutex because the directory is read-mostly: every fault
	// on every client is a Lookup, while Register/Heartbeat traffic is
	// per-server and periodic. Lookup/Replicas take the read lock and run
	// concurrently; only lease mutation takes the write lock.
	mu      sync.RWMutex
	servers map[string]*dirServer
	pages   map[uint64]map[string]struct{}
	epochs  map[string]uint64 // highest epoch per addr; survives lease expiry
	seq     uint64            // registration seniority counter
	conns   map[net.Conn]struct{}
	done    bool
	met     directoryMetrics // gms_dir_* handles; nil-safe no-ops by default

	closeOnce sync.Once
	closeErr  error
	stop      chan struct{}
	wg        sync.WaitGroup
}

// dirServer is one live registration (one server incarnation).
type dirServer struct {
	epoch   uint64
	seq     uint64
	expires time.Time
	pages   map[uint64]struct{}
}

// ListenDirectory starts a directory on addr ("host:port", ":0" for an
// ephemeral port) with default liveness settings.
func ListenDirectory(addr string) (*Directory, error) {
	return ListenDirectoryWith(addr, DirectoryConfig{})
}

// ListenDirectoryWith starts a directory on addr with explicit liveness
// settings.
func ListenDirectoryWith(addr string, cfg DirectoryConfig) (*Directory, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: directory listen: %w", err)
	}
	return ListenDirectoryOnWith(ln, cfg), nil
}

// ListenDirectoryOn starts a directory on an existing listener — the hook
// for running it behind a chaos injector or a custom transport.
func ListenDirectoryOn(ln net.Listener) *Directory {
	return ListenDirectoryOnWith(ln, DirectoryConfig{})
}

// ListenDirectoryOnWith starts a directory on an existing listener with
// explicit liveness settings.
func ListenDirectoryOnWith(ln net.Listener, cfg DirectoryConfig) *Directory {
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	d := &Directory{
		ln:      ln,
		ttl:     ttl,
		svc:     cfg.LookupService,
		servers: make(map[string]*dirServer),
		pages:   make(map[uint64]map[string]struct{}),
		epochs:  make(map[string]uint64),
		conns:   make(map[net.Conn]struct{}),
		stop:    make(chan struct{}),
	}
	if cfg.Shard != nil {
		d.ring = proto.NewRing(cfg.Shard.Map)
		d.self = cfg.Shard.Self
	}
	if d.svc > 0 {
		d.svcGate = make(chan struct{}, 1)
		d.svcSlp = newSleeper()
	}
	d.wg.Add(2)
	go d.acceptLoop()
	go d.janitor()
	return d
}

// Addr returns the directory's listen address.
func (d *Directory) Addr() string { return d.ln.Addr().String() }

// LeaseTTL reports the configured lease duration.
func (d *Directory) LeaseTTL() time.Duration { return d.ttl }

// ShardMap reports the shard map this directory serves (the zero map in
// single-directory mode).
func (d *Directory) ShardMap() proto.ShardMap { return d.ring.Map() }

// Owns reports whether this directory owns page: always true in
// single-directory mode, ring ownership in shard mode.
func (d *Directory) Owns(page uint64) bool {
	return d.ring == nil || d.ring.Owner(page) == d.self
}

// SetMetrics registers the directory's gms_dir_* metrics on r (nil
// disables them). A sharded directory additionally registers its
// gms_dirshard_* handles.
func (d *Directory) SetMetrics(r *obs.Registry) {
	d.mu.Lock()
	d.met = newDirectoryMetrics(r, d.ring != nil)
	d.met.pages.Set(int64(len(d.pages)))
	if d.ring != nil {
		d.met.shardSelf.Set(int64(d.self))
		d.met.shardMapVersion.Set(int64(d.ring.Map().Version))
		d.met.shardCount.Set(int64(len(d.ring.Map().Shards)))
	}
	d.mu.Unlock()
}

// serviceDelay emulates the configured per-lookup service time: the
// caller queues for the directory's single service slot and holds it for
// the service duration. No directory lock is held while waiting. A
// no-op when emulation is off.
func (d *Directory) serviceDelay() {
	if d.svc <= 0 {
		return
	}
	select {
	case d.svcGate <- struct{}{}:
	case <-d.stop:
		return
	}
	d.svcSlp.Sleep(d.svc)
	<-d.svcGate
}

// Close stops the directory, severing active connections. It is idempotent:
// concurrent and repeated calls all return the first call's error.
func (d *Directory) Close() error {
	d.closeOnce.Do(func() {
		d.closeErr = d.ln.Close()
		close(d.stop)
		d.mu.Lock()
		d.done = true
		for conn := range d.conns {
			_ = conn.Close()
		}
		d.mu.Unlock()
		d.wg.Wait()
		d.svcSlp.Close()
	})
	return d.closeErr
}

// Lookup reports the primary server storing page, for tests and tools.
func (d *Directory) Lookup(page uint64) (string, bool) {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	addrs := d.replicasLocked(page, now)
	if len(addrs) == 0 {
		return "", false
	}
	return addrs[0], true
}

// Replicas reports every live server registered for page: the primary
// (earliest surviving registrant) first, then the remaining replicas in
// sorted address order. Expired leases are filtered out inline.
func (d *Directory) Replicas(page uint64) []string {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.replicasLocked(page, now)
}

func (d *Directory) replicasLocked(page uint64, now time.Time) []string {
	var primary string
	primarySeq := uint64(math.MaxUint64)
	var rest []string
	for addr := range d.pages[page] {
		s := d.servers[addr]
		if s == nil || now.After(s.expires) {
			continue
		}
		if s.seq < primarySeq {
			if primary != "" {
				rest = append(rest, primary)
			}
			primary, primarySeq = addr, s.seq
		} else {
			rest = append(rest, addr)
		}
	}
	if primary == "" {
		return nil
	}
	sort.Strings(rest)
	return append([]string{primary}, rest...)
}

// Len reports the number of pages with at least one live holder.
func (d *Directory) Len() int {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, holders := range d.pages {
		for addr := range holders {
			if s := d.servers[addr]; s != nil && !now.After(s.expires) {
				n++
				break
			}
		}
	}
	return n
}

// ServerEpoch reports the highest registration epoch seen for addr,
// whether or not its lease is still live. For tests and tools.
func (d *Directory) ServerEpoch(addr string) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.epochs[addr]
	return e, ok
}

// applyRegister installs a registration. It reports false when the
// registration is stale (an epoch below the highest seen for the address),
// in which case the caller answers with an error so the sender knows it has
// been superseded. Registrations racing Close are acknowledged but not
// recorded.
func (d *Directory) applyRegister(reg proto.Register, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return true
	}
	cur := d.epochs[reg.Addr]
	if reg.Epoch < cur {
		d.met.staleRejects.Inc()
		return false
	}
	if reg.Epoch > cur {
		// New incarnation: fence out every entry of the old one.
		d.expungeLocked(reg.Addr)
		d.epochs[reg.Addr] = reg.Epoch
	}
	s := d.servers[reg.Addr]
	if s == nil {
		d.seq++
		s = &dirServer{epoch: reg.Epoch, seq: d.seq, pages: make(map[uint64]struct{})}
		d.servers[reg.Addr] = s
	}
	s.expires = now.Add(d.ttl)
	for _, p := range reg.Pages {
		if !d.Owns(p) {
			// A shard records only the pages the ring assigns it. Servers
			// partition registrations by owner, so foreign pages here mean
			// the sender holds a stale map; dropping them (and counting)
			// keeps a misrouted batch from resurrecting moved entries.
			d.met.foreignPages.Inc()
			continue
		}
		s.pages[p] = struct{}{}
		holders := d.pages[p]
		if holders == nil {
			holders = make(map[string]struct{})
			d.pages[p] = holders
		}
		holders[reg.Addr] = struct{}{}
	}
	d.met.registers.Inc()
	d.met.pages.Set(int64(len(d.pages)))
	return true
}

// renewLease extends the lease named by a heartbeat. It reports false when
// the registration is unknown, superseded, or already expired — the sender
// must re-register.
func (d *Directory) renewLease(hb proto.Heartbeat, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return true
	}
	s := d.servers[hb.Addr]
	if s == nil || s.epoch != hb.Epoch || now.After(s.expires) {
		return false
	}
	s.expires = now.Add(d.ttl)
	d.met.heartbeats.Inc()
	return true
}

// expungeLocked removes addr's registration and every replica it holds.
// Called with d.mu held.
func (d *Directory) expungeLocked(addr string) {
	s := d.servers[addr]
	if s == nil {
		return
	}
	for p := range s.pages {
		holders := d.pages[p]
		delete(holders, addr)
		if len(holders) == 0 {
			delete(d.pages, p)
		}
	}
	delete(d.servers, addr)
}

// janitor periodically expunges expired leases. Lookups filter expired
// entries inline, so the sweep only reclaims memory; staleness is bounded
// by the TTL either way.
func (d *Directory) janitor() {
	defer d.wg.Done()
	period := d.ttl / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case now := <-t.C:
			d.sweep(now)
		}
	}
}

func (d *Directory) sweep(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for addr, s := range d.servers {
		if now.After(s.expires) {
			d.expungeLocked(addr)
			d.met.expiries.Inc()
		}
	}
	d.met.pages.Set(int64(len(d.pages)))
}

func (d *Directory) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			// A directory connection idles until the next request or the
			// peer hangs up; server liveness is the lease janitor's job
			// and client lookups run under their own request deadlines.
			d.serve(conn) //lint:allow deadlinecheck request reads idle by design until the peer sends or hangs up; leases and client-side deadlines bound liveness
		}()
	}
}

func (d *Directory) serve(conn net.Conn) {
	d.mu.Lock()
	if d.done {
		d.mu.Unlock()
		_ = conn.Close()
		return
	}
	d.conns[conn] = struct{}{}
	d.mu.Unlock()
	defer func() {
		_ = conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	r := proto.NewReader(conn)
	w := proto.NewWriter(conn)
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case proto.TRegister:
			reg, err := proto.DecodeRegister(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			if !d.applyRegister(reg, time.Now()) {
				if err := w.SendError(fmt.Sprintf("directory: stale epoch %d for %s", reg.Epoch, reg.Addr)); err != nil {
					return
				}
				continue
			}
			if err := w.SendAck(); err != nil {
				return
			}
		case proto.THeartbeat:
			hb, err := proto.DecodeHeartbeat(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			if !d.renewLease(hb, time.Now()) {
				if err := w.SendError(fmt.Sprintf("directory: no lease for %s epoch %d", hb.Addr, hb.Epoch)); err != nil {
					return
				}
				continue
			}
			if err := w.SendAck(); err != nil {
				return
			}
		case proto.TLookup:
			lk, err := proto.DecodeLookup(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			if !d.Owns(lk.Page) {
				// Misdirected lookup: answer with the current map so the
				// client both learns the right shard and refreshes its
				// cache in this one round trip.
				d.mu.RLock()
				d.met.wrongShard.Inc()
				d.mu.RUnlock()
				if err := w.SendWrongShard(proto.WrongShard{Page: lk.Page, Map: d.ring.Map()}); err != nil {
					return
				}
				continue
			}
			d.serviceDelay()
			now := time.Now()
			d.mu.RLock()
			addrs := d.replicasLocked(lk.Page, now)
			d.met.lookups.Inc()
			d.mu.RUnlock()
			if err := w.SendLookupReply(proto.LookupReply{Page: lk.Page, Addrs: addrs}); err != nil {
				return
			}
		case proto.TGetShardMap:
			d.mu.RLock()
			d.met.mapRequests.Inc()
			d.mu.RUnlock()
			if err := w.SendShardMap(d.ring.Map()); err != nil {
				return
			}
		case proto.TGetPage, proto.TPageData, proto.TPutPage, proto.TAck,
			proto.TLookupReply, proto.TError, proto.TShardMap,
			proto.TWrongShard, proto.TGetPageV2, proto.TSubpageBatch,
			proto.TCancel:
			// Data-plane and reply tags never arrive at a directory;
			// refuse and hang up rather than guess at the peer's intent.
			_ = w.SendError(fmt.Sprintf("directory: unexpected %v", f.Type))
			return
		}
	}
}
