// Package remote is the networked remote-memory prototype: a global cache
// directory, page servers that donate memory, and a faulting client that
// keeps per-page subpage valid bits and fetches subpages over TCP using
// the paper's transfer policies (full page, lazy, eager fullpage fetch,
// subpage pipelining).
//
// It is the repository's stand-in for the paper's Digital Unix + AN2
// prototype: the same fault path — trap, directory lookup, request,
// subpage-first reply, asynchronous completion — over commodity TCP.
// Absolute latencies differ from the AN2 numbers, but the ordering the
// paper demonstrates (subpage faults complete in a fraction of a full-page
// fault) holds on loopback and real networks alike.
package remote

import (
	"fmt"
	"net"
	"sync"

	"github.com/gms-sim/gmsubpage/internal/proto"
)

// Directory is the global cache directory (GCD): it maps pages to the
// servers storing them. A page registered by several servers has replicas;
// the first registrant is the primary and lookups return the full list so
// clients can fail over.
type Directory struct {
	ln net.Listener

	mu    sync.Mutex
	pages map[uint64][]string
	conns map[net.Conn]struct{}
	done  bool

	wg sync.WaitGroup
}

// ListenDirectory starts a directory on addr ("host:port", ":0" for an
// ephemeral port).
func ListenDirectory(addr string) (*Directory, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: directory listen: %w", err)
	}
	return ListenDirectoryOn(ln), nil
}

// ListenDirectoryOn starts a directory on an existing listener — the hook
// for running it behind a chaos injector or a custom transport.
func ListenDirectoryOn(ln net.Listener) *Directory {
	d := &Directory{
		ln:    ln,
		pages: make(map[uint64][]string),
		conns: make(map[net.Conn]struct{}),
	}
	d.wg.Add(1)
	go d.acceptLoop()
	return d
}

// Addr returns the directory's listen address.
func (d *Directory) Addr() string { return d.ln.Addr().String() }

// Close stops the directory, severing active connections.
func (d *Directory) Close() error {
	err := d.ln.Close()
	d.mu.Lock()
	d.done = true
	for conn := range d.conns {
		_ = conn.Close()
	}
	d.mu.Unlock()
	d.wg.Wait()
	return err
}

// Lookup reports the primary server storing page, for tests and tools.
func (d *Directory) Lookup(page uint64) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	addrs := d.pages[page]
	if len(addrs) == 0 {
		return "", false
	}
	return addrs[0], true
}

// Replicas reports every server registered for page, primary first.
func (d *Directory) Replicas(page uint64) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.pages[page]...)
}

// Len reports the number of registered pages.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// register adds addr as a holder of page. Re-registration by the same
// server is idempotent; a different server becomes a replica, appended
// after the existing holders (replica semantics, not last-writer-wins: the
// primary keeps its role until it is deregistered or the directory
// restarts). Called with d.mu held.
func (d *Directory) register(page uint64, addr string) {
	for _, a := range d.pages[page] {
		if a == addr {
			return
		}
	}
	d.pages[page] = append(d.pages[page], addr)
}

func (d *Directory) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serve(conn)
		}()
	}
}

func (d *Directory) serve(conn net.Conn) {
	d.mu.Lock()
	if d.done {
		d.mu.Unlock()
		_ = conn.Close()
		return
	}
	d.conns[conn] = struct{}{}
	d.mu.Unlock()
	defer func() {
		_ = conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	r := proto.NewReader(conn)
	w := proto.NewWriter(conn)
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case proto.TRegister:
			reg, err := proto.DecodeRegister(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			d.mu.Lock()
			for _, p := range reg.Pages {
				d.register(p, reg.Addr)
			}
			d.mu.Unlock()
			if err := w.SendAck(); err != nil {
				return
			}
		case proto.TLookup:
			lk, err := proto.DecodeLookup(f.Payload)
			if err != nil {
				_ = w.SendError(err.Error())
				return
			}
			d.mu.Lock()
			addrs := append([]string(nil), d.pages[lk.Page]...)
			d.mu.Unlock()
			if err := w.SendLookupReply(proto.LookupReply{Page: lk.Page, Addrs: addrs}); err != nil {
				return
			}
		default:
			_ = w.SendError(fmt.Sprintf("directory: unexpected %v", f.Type))
			return
		}
	}
}
