package remote

import (
	"bytes"
	"net"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// shardedCluster stands up n directory shards sharing one version-1 map,
// plus a page server holding npages that registers (partitioned by ring
// owner) through shard 0.
func shardedCluster(t *testing.T, n, npages int, ttl time.Duration) ([]*Directory, proto.ShardMap, *Server) {
	t.Helper()
	m := proto.ShardMap{Version: 1}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		m.Shards = append(m.Shards, ln.Addr().String())
	}
	dirs := make([]*Directory, n)
	for i, ln := range lns {
		d, err := ListenDirectoryOnWith(ln, DirectoryConfig{
			LeaseTTL: ttl,
			Shard:    &ShardConfig{Map: m, Self: i},
		})
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = d
		t.Cleanup(func() { d.Close() })
	}
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	for p := 0; p < npages; p++ {
		srv.Store(uint64(p), pagePattern(uint64(p)))
	}
	if err := srv.RegisterWith(m.Shards[0]); err != nil {
		t.Fatal(err)
	}
	return dirs, m, srv
}

// TestShardedRegistrationPartitions verifies RegisterWith splits the page
// list by ring owner: every page is registered at exactly the shard that
// owns it, and at no other.
func TestShardedRegistrationPartitions(t *testing.T) {
	const npages = 64
	dirs, m, _ := shardedCluster(t, 4, npages, 0)
	ring := proto.NewRing(m)
	perShard := make([]int, len(dirs))
	for p := uint64(0); p < npages; p++ {
		owner := ring.Owner(p)
		perShard[owner]++
		for i, d := range dirs {
			got := d.Replicas(p)
			if i == owner && len(got) != 1 {
				t.Fatalf("shard %d owns page %d but Replicas = %v", i, p, got)
			}
			if i != owner && len(got) != 0 {
				t.Fatalf("shard %d does not own page %d but Replicas = %v", i, p, got)
			}
		}
	}
	total := 0
	for i, d := range dirs {
		if d.Len() != perShard[i] {
			t.Fatalf("shard %d Len = %d, want %d", i, d.Len(), perShard[i])
		}
		total += d.Len()
	}
	if total != npages {
		t.Fatalf("pages across shards = %d, want %d", total, npages)
	}
}

// TestShardedClientReads verifies the full fault path against a sharded
// directory: the client bootstraps the map from shard 0 and routes each
// lookup to the owning shard, so a fresh client never takes a TWrongShard
// bounce.
func TestShardedClientReads(t *testing.T) {
	const npages = 32
	_, m, _ := shardedCluster(t, 4, npages, 0)
	c, err := Dial(ClientConfig{Directory: m.Shards[0], Policy: proto.PolicyEager, CachePages: npages})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 64)
	for p := uint64(0); p < npages; p++ {
		if err := c.Read(buf, p*uint64(units.PageSize)); err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		if want := pagePattern(p)[:64]; !bytes.Equal(buf, want) {
			t.Fatalf("page %d data mismatch", p)
		}
	}
	st := c.Stats()
	if st.MapRefreshes != 1 {
		t.Fatalf("MapRefreshes = %d, want 1 (one bootstrap fetch)", st.MapRefreshes)
	}
	if st.WrongShard != 0 {
		t.Fatalf("WrongShard = %d, want 0 for a fresh map", st.WrongShard)
	}
}

// TestStaleShardMapConvergesInOneBounce is the stale-client scenario: a
// client still holding the old one-shard map (as if the cluster grew
// under it) sends every lookup to shard 0. Pages now owned elsewhere come
// back TWrongShard carrying the current map; the client must install it
// and converge within that same attempt — one extra round trip, no
// retry/backoff cycle.
func TestStaleShardMapConvergesInOneBounce(t *testing.T) {
	const npages = 32
	_, m, _ := shardedCluster(t, 2, npages, 0)
	c, err := Dial(ClientConfig{Directory: m.Shards[0], Policy: proto.PolicyEager, CachePages: npages})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Plant the stale map before the first fault: version 0, shard 0
	// only. mapTried suppresses the bootstrap fetch, so the only way the
	// client can learn the real map is a TWrongShard bounce.
	c.shardMu.Lock()
	c.ring = proto.NewRing(proto.ShardMap{Version: 0, Shards: m.Shards[:1]})
	c.mapTried = true
	c.shardMu.Unlock()

	buf := make([]byte, 64)
	for p := uint64(0); p < npages; p++ {
		if err := c.Read(buf, p*uint64(units.PageSize)); err != nil {
			t.Fatalf("read page %d with stale map: %v", p, err)
		}
		if want := pagePattern(p)[:64]; !bytes.Equal(buf, want) {
			t.Fatalf("page %d data mismatch", p)
		}
	}
	st := c.Stats()
	if st.WrongShard == 0 {
		t.Fatal("expected at least one TWrongShard bounce from the stale map")
	}
	if st.MapRefreshes != 1 {
		t.Fatalf("MapRefreshes = %d, want 1 (installed from the bounce)", st.MapRefreshes)
	}
	if st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0: a bounce must converge inside the attempt", st.Retries)
	}
	c.shardMu.Lock()
	v := c.ring.Map().Version
	c.shardMu.Unlock()
	if v != m.Version {
		t.Fatalf("client map version = %d, want %d", v, m.Version)
	}
}

// TestShardedLeaseExpiry verifies liveness is tracked per shard: a page
// server leases itself to every shard, and when it dies (heartbeats
// stop), each shard's janitor expunges its entries within one TTL.
func TestShardedLeaseExpiry(t *testing.T) {
	const ttl = 300 * time.Millisecond
	dirs, _, srv := shardedCluster(t, 2, 32, ttl)
	srv.SetHeartbeatInterval(time.Hour) // no renewals: registration leases only
	if dirs[0].Len()+dirs[1].Len() != 32 {
		t.Fatalf("pages before kill = %d, want 32", dirs[0].Len()+dirs[1].Len())
	}
	_ = srv.Close()
	deadline := time.Now().Add(3 * ttl)
	for time.Now().Before(deadline) {
		if dirs[0].Len() == 0 && dirs[1].Len() == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("leases survived past TTL: shard lens = %d, %d", dirs[0].Len(), dirs[1].Len())
}

// TestForeignRegistrationFiltered verifies the stale-map safety net on
// the write path: a registration naming pages the shard does not own is
// accepted (the lease stands) but the foreign pages are dropped.
func TestForeignRegistrationFiltered(t *testing.T) {
	dirs, m, _ := shardedCluster(t, 2, 0, 0)
	ring := proto.NewRing(m)
	foreign := uint64(0)
	for ring.Owner(foreign) == 0 {
		foreign++
	}
	if !dirs[0].applyRegister(proto.Register{Addr: "10.9.9.9:1", Epoch: 9, Pages: []uint64{foreign}}, time.Now()) {
		t.Fatal("registration with foreign pages rejected outright")
	}
	if got := dirs[0].Replicas(foreign); len(got) != 0 {
		t.Fatalf("foreign page %d registered on shard 0: %v", foreign, got)
	}
}

// TestUnshardedDirectoryServesEmptyMap pins backward compatibility: a
// classic directory answers TGetShardMap with the empty map, and a client
// pointed at it stays in single-directory mode.
func TestUnshardedDirectoryServesEmptyMap(t *testing.T) {
	dir, _ := testCluster(t, 4)
	m, err := getShardMap(dir.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if m.Sharded() {
		t.Fatalf("unsharded directory served map %+v", m)
	}
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	buf := make([]byte, 16)
	if err := c.Read(buf, 0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.MapRefreshes != 0 || st.WrongShard != 0 {
		t.Fatalf("unsharded client stats: MapRefreshes=%d WrongShard=%d, want 0/0",
			st.MapRefreshes, st.WrongShard)
	}
}
