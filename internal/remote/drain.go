package remote

import (
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Drain transfer timeouts: dialing a server and one page copy
// (fetch + put + ordered confirmation) each get a bounded window, so a
// dead peer fails the drain instead of wedging it.
const (
	drainDialTimeout = 2 * time.Second
	drainOpTimeout   = 5 * time.Second
)

// Drain gracefully decommissions the server registered at addr: every
// page whose only live replica sits on that server is copied to a peer
// first, the destination's registration is extended to cover it, and
// only then is the server's lease dropped with its epoch fenced — so a
// planned shutdown never turns a page unavailable and the drained
// incarnation can never re-register as if nothing happened. Pages that
// already have live replicas elsewhere need no copy; expunging the
// drained holder leaves them served by the survivors.
//
// Drain returns the number of pages transferred. It fails — leaving the
// server registered and serving, with the draining mark rolled back —
// when addr is unknown or expired, already draining, re-registered with
// a new epoch mid-drain, or when its sole-copy pages have no live peer
// to move to (the last server cannot be drained away).
//
// In a sharded deployment each shard drains the pages it owns;
// decommissioning a server means draining it on every shard.
func (d *Directory) Drain(addr string) (int, error) {
	plan, epoch, err := d.beginDrain(addr)
	if err != nil {
		return 0, err
	}
	moved := 0
	for _, t := range plan {
		if err := transferPages(addr, t.dest, t.pages); err != nil {
			d.abortDrain(addr)
			return moved, fmt.Errorf("transferring %d pages to %s: %w", len(t.pages), t.dest, err)
		}
		if err := d.commitTransfer(addr, t.dest, t.pages); err != nil {
			d.abortDrain(addr)
			return moved, err
		}
		moved += len(t.pages)
	}
	if err := d.finishDrain(addr, epoch); err != nil {
		return moved, err
	}
	return moved, nil
}

// transfer is one destination's share of a drain plan.
type transfer struct {
	dest  string
	pages []uint64
}

// beginDrain validates the drain, marks addr draining (journaled), and
// plans the sole-copy transfers round-robin across the live peers. The
// plan is deterministic: pages and destinations are sorted.
func (d *Directory) beginDrain(addr string) ([]transfer, uint64, error) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return nil, 0, fmt.Errorf("directory closed")
	}
	s := d.servers[addr]
	if s == nil || now.After(s.expires) {
		return nil, 0, fmt.Errorf("no live registration")
	}
	if d.draining[addr] {
		return nil, 0, fmt.Errorf("already draining")
	}

	var dests []string
	for a, peer := range d.servers {
		if a != addr && !d.draining[a] && !now.After(peer.expires) {
			dests = append(dests, a)
		}
	}
	sort.Strings(dests)

	var sole []uint64
	for p := range s.pages {
		alone := true
		for holder := range d.pages[p] {
			h := d.servers[holder]
			if holder != addr && h != nil && !now.After(h.expires) {
				alone = false
				break
			}
		}
		if alone {
			sole = append(sole, p)
		}
	}
	sort.Slice(sole, func(i, j int) bool { return sole[i] < sole[j] })
	if len(sole) > 0 && len(dests) == 0 {
		return nil, 0, fmt.Errorf("%d sole-copy pages and no live peer to move them to", len(sole))
	}

	byDest := make(map[string][]uint64, len(dests))
	for i, p := range sole {
		dst := dests[i%len(dests)]
		byDest[dst] = append(byDest[dst], p)
	}
	plan := make([]transfer, 0, len(byDest))
	for _, dst := range dests {
		if pages := byDest[dst]; len(pages) > 0 {
			plan = append(plan, transfer{dest: dst, pages: pages})
		}
	}

	d.draining[addr] = true
	d.appendLog(dirlog.Drain{Addr: addr})
	return plan, s.epoch, nil
}

// commitTransfer records that dest now holds pages: the directory's
// table and the journal both gain the replicas before the source is
// expunged, so a lookup never sees a window with no holder.
func (d *Directory) commitTransfer(addr, dest string, pages []uint64) error {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.servers[dest]
	if s == nil || now.After(s.expires) {
		return fmt.Errorf("destination %s lost its lease mid-drain", dest)
	}
	if d.draining[dest] {
		// A concurrent drain of dest started after our plan was computed.
		// Committing sole-copy pages onto it would let its finishDrain
		// expunge them with no live holder; refuse so the caller aborts
		// and retries against a live destination.
		return fmt.Errorf("destination %s began draining mid-drain", dest)
	}
	if src := d.servers[addr]; src == nil || !d.draining[addr] {
		return fmt.Errorf("drain of %s superseded mid-transfer", addr)
	}
	for _, p := range pages {
		s.pages[p] = struct{}{}
		holders := d.pages[p]
		if holders == nil {
			holders = make(map[string]struct{})
			d.pages[p] = holders
		}
		holders[dest] = struct{}{}
	}
	d.appendLog(dirlog.Register{
		Addr: dest, Epoch: s.epoch, Seq: s.seq,
		Expires: s.expires.UnixNano(), Pages: pages,
	})
	d.met.drainMoved.Add(int64(len(pages)))
	return nil
}

// finishDrain fences the drained epoch and drops the lease: the fence is
// journaled before the expunge applies, so even a crash between the two
// recovers with the old incarnation locked out.
func (d *Directory) finishDrain(addr string, epoch uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.servers[addr]
	if s == nil || s.epoch != epoch {
		delete(d.draining, addr)
		d.appendLog(dirlog.DrainAbort{Addr: addr})
		if s == nil {
			// The lease expired and was expunged mid-drain (the server
			// died during the transfers); nothing left to drop.
			return fmt.Errorf("registration of epoch %d gone mid-drain", epoch)
		}
		// The server re-registered as a new incarnation mid-drain; its
		// new lease is not ours to drop.
		return fmt.Errorf("server re-registered with epoch %d mid-drain", s.epoch)
	}
	fenced := epoch + 1
	if cur := d.epochs[addr]; cur >= fenced {
		fenced = cur
	}
	d.epochs[addr] = fenced
	d.appendLog(dirlog.Fence{Addr: addr, Epoch: fenced})
	d.expungeLocked(addr)
	delete(d.draining, addr)
	d.appendLog(dirlog.Expunge{Addrs: []string{addr}})
	d.maybeSnapshotLocked()
	d.met.drains.Inc()
	d.met.pages.Set(int64(len(d.pages)))
	return nil
}

// abortDrain rolls back the draining mark after a failed transfer.
func (d *Directory) abortDrain(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.draining, addr)
	d.appendLog(dirlog.DrainAbort{Addr: addr})
}

// transferPages copies pages from the draining server src to dest: a
// full-page fetch from src, a put to dest, and one ordered read-back so
// the puts are known applied before the source's lease is dropped. All
// I/O is deadline-bounded.
func transferPages(src, dest string, pages []uint64) error {
	sc, err := net.DialTimeout("tcp", src, drainDialTimeout)
	if err != nil {
		return fmt.Errorf("dial source: %w", err)
	}
	defer func() { _ = sc.Close() }()
	dc, err := net.DialTimeout("tcp", dest, drainDialTimeout)
	if err != nil {
		return fmt.Errorf("dial destination: %w", err)
	}
	defer func() { _ = dc.Close() }()

	sr, sw := proto.NewReader(sc), proto.NewWriter(sc)
	dr, dw := proto.NewReader(dc), proto.NewWriter(dc)
	buf := make([]byte, units.PageSize)
	for _, p := range pages {
		if err := sc.SetDeadline(time.Now().Add(drainOpTimeout)); err != nil {
			return err
		}
		if err := fetchFullPage(sr, sw, p, buf); err != nil {
			return fmt.Errorf("fetch page %d from %s: %w", p, src, err)
		}
		if err := dc.SetDeadline(time.Now().Add(drainOpTimeout)); err != nil {
			return err
		}
		if err := dw.SendPutPage(proto.PutPage{Page: p, Data: buf}); err != nil {
			return fmt.Errorf("put page %d to %s: %w", p, dest, err)
		}
	}
	// Puts carry no ack; a subpage read-back of the last page flushes the
	// destination's receive pipeline (frames on one connection apply in
	// order), proving every put above is stored before we fence the source.
	if err := dc.SetDeadline(time.Now().Add(drainOpTimeout)); err != nil {
		return err
	}
	if err := confirmPage(dr, dw, pages[len(pages)-1]); err != nil {
		return fmt.Errorf("confirm on %s: %w", dest, err)
	}
	return nil
}

// fetchFullPage issues a v1 full-page get and assembles the reply into
// buf (PageSize bytes).
func fetchFullPage(r *proto.Reader, w *proto.Writer, page uint64, buf []byte) error {
	if err := w.SendGetPage(proto.GetPage{
		Page: page, FaultOff: 0, SubpageSize: units.PageSize, Policy: proto.PolicyFullPage,
	}); err != nil {
		return err
	}
	return readPageData(r, page, buf)
}

// confirmPage issues a minimal lazy get and drains the reply, discarding
// the data: its only job is proving the connection's earlier frames were
// processed.
func confirmPage(r *proto.Reader, w *proto.Writer, page uint64) error {
	if err := w.SendGetPage(proto.GetPage{
		Page: page, FaultOff: 0, SubpageSize: units.MinSubpage, Policy: proto.PolicyLazy,
	}); err != nil {
		return err
	}
	return readPageData(r, page, nil)
}

// readPageData consumes one v1 reply stream (TPageData frames through
// FlagLast), copying fragments into buf when non-nil.
func readPageData(r *proto.Reader, page uint64, buf []byte) error {
	for {
		f, err := r.Next()
		if err != nil {
			return err
		}
		switch f.Type {
		case proto.TPageData:
			pd, err := proto.DecodePageData(f.Payload)
			if err != nil {
				return err
			}
			if pd.Page != page {
				return fmt.Errorf("reply for page %d while fetching %d", pd.Page, page)
			}
			if buf != nil && len(pd.Data) > 0 && int(pd.Offset)+len(pd.Data) <= len(buf) {
				copy(buf[pd.Offset:], pd.Data)
			}
			if pd.Flags&proto.FlagLast != 0 {
				return nil
			}
		case proto.TError:
			return fmt.Errorf("%s", proto.DecodeError(f.Payload).Text)
		case proto.TGetPage, proto.TPutPage, proto.TAck, proto.TLookup,
			proto.TLookupReply, proto.TRegister, proto.THeartbeat,
			proto.TGetShardMap, proto.TShardMap, proto.TWrongShard,
			proto.TGetPageV2, proto.TSubpageBatch, proto.TCancel,
			proto.TDrain, proto.TDrainReply:
			return fmt.Errorf("unexpected %v in page reply", f.Type)
		}
	}
}

// DrainVia is the admin client for TDrain: it asks the directory at
// dirAddr to drain the server at serverAddr and reports how many pages
// were moved. The deadline bounds the whole drain; zero selects a
// minute, enough for thousands of page transfers on a LAN.
func DrainVia(dirAddr, serverAddr string, timeout time.Duration) (int, error) {
	if timeout <= 0 {
		timeout = time.Minute
	}
	conn, err := net.DialTimeout("tcp", dirAddr, drainDialTimeout)
	if err != nil {
		return 0, fmt.Errorf("remote: drain: %w", err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	w := proto.NewWriter(conn)
	r := proto.NewReader(conn)
	if err := w.SendDrain(proto.Drain{Addr: serverAddr}); err != nil {
		return 0, fmt.Errorf("remote: drain: %w", err)
	}
	f, err := r.Next()
	if err != nil {
		return 0, fmt.Errorf("remote: drain: %w", err)
	}
	switch f.Type {
	case proto.TDrainReply:
		rep, err := proto.DecodeDrainReply(f.Payload)
		if err != nil {
			return 0, err
		}
		return int(rep.Moved), nil
	case proto.TError:
		return 0, fmt.Errorf("remote: drain: %s", proto.DecodeError(f.Payload).Text)
	case proto.TGetPage, proto.TPageData, proto.TPutPage, proto.TAck,
		proto.TLookup, proto.TLookupReply, proto.TRegister,
		proto.THeartbeat, proto.TGetShardMap, proto.TShardMap,
		proto.TWrongShard, proto.TGetPageV2, proto.TSubpageBatch,
		proto.TCancel, proto.TDrain:
		return 0, fmt.Errorf("remote: drain: unexpected %v reply", f.Type)
	}
	return 0, nil
}
