package remote

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// durableDirectory stands up a journaling directory whose data lives in
// dir. crashAfter is the dirlog crash-injection knob (0 disables it).
func durableDirectory(t *testing.T, dir string, ttl time.Duration, crashAfter int) *Directory {
	t.Helper()
	d, err := ListenDirectoryWith("127.0.0.1:0", DirectoryConfig{
		LeaseTTL: ttl,
		Journal:  &dirlog.Options{Dir: dir, Fsync: dirlog.FsyncAlways, CrashAfter: crashAfter},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// journalState replays the on-disk journal directly, bypassing the
// directory — ground truth for what durably survived.
func journalState(t *testing.T, dir string) *dirlog.State {
	t.Helper()
	j, st, err := dirlog.Open(dirlog.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDirectoryRecoversFromJournal(t *testing.T) {
	jdir := t.TempDir()
	d1 := durableDirectory(t, jdir, time.Minute, 0)
	addr := d1.Addr()
	if rawRegister(t, addr, proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{1, 2}}) != proto.TAck {
		t.Fatal("register a:1 rejected")
	}
	if rawRegister(t, addr, proto.Register{Addr: "b:2", Epoch: 5, Pages: []uint64{2, 3}}) != proto.TAck {
		t.Fatal("register b:2 rejected")
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := durableDirectory(t, jdir, time.Minute, 0)
	info := d2.JournalInfo()
	if !info.Recovered {
		t.Fatal("second open did not recover from the journal")
	}
	if d2.recoveredN != 2 {
		t.Fatalf("recovered %d servers, want 2", d2.recoveredN)
	}
	for p, want := range map[uint64]string{1: "a:1", 3: "b:2"} {
		if got, ok := d2.Lookup(p); !ok || got != want {
			t.Fatalf("Lookup(%d) = %q,%v want %q", p, got, ok, want)
		}
	}
	// Registration seniority survives: a:1 registered first, so it stays
	// page 2's primary after recovery.
	if got := d2.Replicas(2); len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("Replicas(2) = %v, want [a:1 b:2]", got)
	}
	for srv, want := range map[string]uint64{"a:1": 10, "b:2": 5} {
		if e, ok := d2.ServerEpoch(srv); !ok || e != want {
			t.Fatalf("ServerEpoch(%s) = %d,%v want %d", srv, e, ok, want)
		}
	}
}

// TestJournalCrashPointEquivalence is the table-driven crash test: the
// same mutation script runs against a directory whose journal is rigged
// to crash after its Nth record, for every N the script can produce. The
// invariant: the state a restarted directory serves must be exactly the
// replay of the journal prefix that survived — nothing invented, nothing
// reordered — modulo lease expiry, which recovery deliberately rewrites
// to the grace window.
func TestJournalCrashPointEquivalence(t *testing.T) {
	// The script behind mutate journals, in order:
	//   1 Register a:1          4 Drain b:2
	//   2 Register b:2          5 Fence b:2
	//   3 Register a:1 (epoch+) 6 Expunge b:2
	// (records 4-6 all come from the one Drain call; every page of b:2
	// is replicated on a:1 by then, so the drain moves nothing and needs
	// no live page server).
	const records = 6
	mutate := func(t *testing.T, d *Directory) {
		addr := d.Addr()
		if rawRegister(t, addr, proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{1, 2}}) != proto.TAck {
			t.Fatal("register a:1 rejected")
		}
		if rawRegister(t, addr, proto.Register{Addr: "b:2", Epoch: 5, Pages: []uint64{2, 9}}) != proto.TAck {
			t.Fatal("register b:2 rejected")
		}
		if rawRegister(t, addr, proto.Register{Addr: "a:1", Epoch: 11, Pages: []uint64{1, 2, 9}}) != proto.TAck {
			t.Fatal("re-register a:1 rejected")
		}
		if moved, err := d.Drain("b:2"); err != nil {
			t.Fatalf("drain b:2: %v", err)
		} else if moved != 0 {
			t.Fatalf("drain moved %d pages, want 0 (page 2 is replicated)", moved)
		}
	}
	for n := 0; n <= records; n++ {
		t.Run(fmt.Sprintf("crash-after-%d", n), func(t *testing.T) {
			jdir := t.TempDir()
			crashAfter := n
			if n == 0 {
				crashAfter = -1 // crash before the first record
			}
			d1 := durableDirectory(t, jdir, time.Minute, crashAfter)
			mutate(t, d1)
			if err := d1.Kill(); err != nil {
				t.Fatal(err)
			}

			d2 := durableDirectory(t, jdir, time.Minute, 0)
			got := d2.StateSnapshot()
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			// Ground truth: replay the surviving journal bytes directly.
			// (Read after d2's run so it includes the DrainAbort recovery
			// itself journals for a crash that landed mid-drain.)
			want := journalState(t, jdir)
			if len(want.Draining) != 0 {
				t.Fatalf("recovery left draining marks in the journal: %v", want.Draining)
			}
			if !got.Equal(want, false) {
				t.Fatalf("crash after %d records: recovered directory state diverges from journal replay\n got: %+v\nwant: %+v", n, got, want)
			}
			// Spot-check the semantics at the interesting boundaries.
			switch {
			case n < 1:
				if len(want.Servers) != 0 {
					t.Fatalf("no records survived but %d servers recovered", len(want.Servers))
				}
			case n < 3: // a:1 registered, still at epoch 10
				if s := want.Servers["a:1"]; s == nil || s.Epoch != 10 {
					t.Fatalf("after %d records a:1 = %+v, want epoch 10", n, s)
				}
			case n < 5: // re-register applied, b:2 not yet fenced
				if s := want.Servers["a:1"]; s == nil || s.Epoch != 11 {
					t.Fatalf("after %d records a:1 = %+v, want epoch 11", n, s)
				}
				if want.Servers["b:2"] == nil {
					t.Fatalf("after %d records b:2 missing before its fence", n)
				}
			default: // the fence survived (its replay alone expunges b:2)
				if want.Servers["b:2"] != nil {
					t.Fatalf("after %d records b:2 still registered past its fence", n)
				}
				if want.Epochs["b:2"] != 6 {
					t.Fatalf("b:2 fence epoch = %d, want 6", want.Epochs["b:2"])
				}
			}
		})
	}
}

func TestEpochFencingSurvivesRestart(t *testing.T) {
	jdir := t.TempDir()
	d1 := durableDirectory(t, jdir, time.Minute, 0)
	if rawRegister(t, d1.Addr(), proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{1}}) != proto.TAck {
		t.Fatal("registration rejected")
	}
	// Crash — no clean flush — and recover.
	if err := d1.Kill(); err != nil {
		t.Fatal(err)
	}
	d2 := durableDirectory(t, jdir, time.Minute, 0)
	// A delayed frame from a pre-crash stale incarnation must be rejected
	// exactly as it would have been before the crash...
	if typ := rawRegister(t, d2.Addr(), proto.Register{Addr: "a:1", Epoch: 9, Pages: []uint64{2}}); typ != proto.TError {
		t.Fatalf("stale-epoch registration after restart drew %v, want TError", typ)
	}
	if got := d2.Replicas(2); len(got) != 0 {
		t.Fatalf("stale registration leaked through recovery: %v", got)
	}
	// ...while the surviving incarnation renews at its own epoch freely.
	if rawRegister(t, d2.Addr(), proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{3}}) != proto.TAck {
		t.Fatal("same-epoch re-registration after restart rejected")
	}

	// A drain's fence is just as durable: drain a:1 (page 1 is also held
	// by b:2, so nothing moves), crash, recover — the drained epoch stays
	// locked out.
	if rawRegister(t, d2.Addr(), proto.Register{Addr: "b:2", Epoch: 7, Pages: []uint64{1, 3}}) != proto.TAck {
		t.Fatal("register b:2 rejected")
	}
	if _, err := d2.Drain("a:1"); err != nil {
		t.Fatalf("drain a:1: %v", err)
	}
	if err := d2.Kill(); err != nil {
		t.Fatal(err)
	}
	d3 := durableDirectory(t, jdir, time.Minute, 0)
	if typ := rawRegister(t, d3.Addr(), proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{1}}); typ != proto.TError {
		t.Fatalf("drained epoch re-registered after restart: drew %v, want TError", typ)
	}
	if e, ok := d3.ServerEpoch("a:1"); !ok || e != 11 {
		t.Fatalf("ServerEpoch(a:1) = %d,%v want the fence epoch 11", e, ok)
	}
}

func TestRestartGraceWindow(t *testing.T) {
	const ttl = 300 * time.Millisecond
	jdir := t.TempDir()
	d1 := durableDirectory(t, jdir, ttl, 0)
	if rawRegister(t, d1.Addr(), proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{1}}) != proto.TAck {
		t.Fatal("registration rejected")
	}
	if err := d1.Kill(); err != nil {
		t.Fatal(err)
	}

	before := time.Now()
	d2 := durableDirectory(t, jdir, ttl, 0)
	// Recovered leases are live immediately — a restart must not blind
	// the directory to servers that outlived it...
	if got, ok := d2.Lookup(1); !ok || got != "a:1" {
		t.Fatalf("Lookup(1) right after recovery = %q,%v want a:1", got, ok)
	}
	// ...and expire within one TTL of recovery, never later: the grace
	// window is capped so a recovered-but-dead server cannot be served
	// longer than a live one that just stopped heartbeating.
	st := d2.StateSnapshot()
	if s := st.Servers["a:1"]; s == nil {
		t.Fatal("a:1 missing from recovered state")
	} else if exp := time.Unix(0, s.Expires); exp.After(before.Add(ttl + 100*time.Millisecond)) {
		t.Fatalf("recovered lease expires %v after recovery, beyond one TTL", exp.Sub(before))
	}
	// Without a heartbeat the grace lapses and the lease expires exactly
	// like any other.
	deadline := time.Now().Add(3 * ttl)
	for {
		if _, ok := d2.Lookup(1); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered lease never expired without heartbeats")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// With heartbeats the recovered lease renews and outlives the grace
	// window — run the same crash against a real heartbeating server.
	jdir2 := t.TempDir()
	d3 := durableDirectory(t, jdir2, ttl, 0)
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Store(7, pagePattern(7))
	srv.SetHeartbeatInterval(ttl / 6)
	if err := srv.RegisterWith(d3.Addr()); err != nil {
		t.Fatal(err)
	}
	addr := d3.Addr()
	if err := d3.Kill(); err != nil {
		t.Fatal(err)
	}
	d4, err := ListenDirectoryWith(addr, DirectoryConfig{
		LeaseTTL: ttl,
		Journal:  &dirlog.Options{Dir: jdir2, Fsync: dirlog.FsyncAlways},
	})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { d4.Close() })
	time.Sleep(2 * ttl) // well past the grace window
	if got, ok := d4.Lookup(7); !ok || got != srv.Addr() {
		t.Fatalf("heartbeating server lost its recovered lease: Lookup(7) = %q,%v", got, ok)
	}
}

// TestGracefulDrain proves the decommission invariant end to end: every
// page whose only copy lives on the draining server is moved (with its
// bytes intact) before the lease drops, a client faulting throughout
// never sees ErrPageUnavailable, and the drained incarnation's epoch is
// fenced.
func TestGracefulDrain(t *testing.T) {
	const npages = 8
	jdir := t.TempDir()
	d := durableDirectory(t, jdir, time.Minute, 0)

	srcSrv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srcSrv.Close() })
	for p := uint64(0); p < npages; p++ {
		srcSrv.Store(p, pagePattern(p))
	}
	srcSrv.SetEpoch(100)
	if err := srcSrv.RegisterWith(d.Addr()); err != nil {
		t.Fatal(err)
	}
	destSrv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { destSrv.Close() })
	if err := destSrv.RegisterWith(d.Addr()); err != nil {
		t.Fatal(err)
	}

	// A client faults across the draining server's pages for the whole
	// drain. The cache holds 2 of the 8 pages, so it faults continuously;
	// any ErrPageUnavailable — any window where a page had no live holder
	// — fails the test.
	cl, err := Dial(ClientConfig{Directory: d.Addr(), CachePages: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	var stopLoad atomic.Bool
	var unavailable atomic.Int64
	var loadErr error
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for p := uint64(0); !stopLoad.Load(); p = (p + 1) % npages {
			if err := cl.Read(buf, p*units.PageSize); err != nil {
				if errors.Is(err, ErrPageUnavailable) {
					unavailable.Add(1)
				}
				once.Do(func() { loadErr = err })
			}
		}
	}()

	moved, err := DrainVia(d.Addr(), srcSrv.Addr(), 30*time.Second)
	if err != nil {
		t.Fatalf("DrainVia: %v", err)
	}
	if moved != npages {
		t.Fatalf("drain moved %d pages, want %d", moved, npages)
	}
	// Let the client keep faulting against the post-drain table briefly.
	time.Sleep(100 * time.Millisecond)
	stopLoad.Store(true)
	wg.Wait()
	if n := unavailable.Load(); n != 0 {
		t.Fatalf("%d faults failed with ErrPageUnavailable during the drain (first error: %v)", n, loadErr)
	}
	if loadErr != nil {
		t.Fatalf("client fault failed during drain: %v", loadErr)
	}

	// Every page now resolves to the destination, with its bytes intact.
	for p := uint64(0); p < npages; p++ {
		replicas := d.Replicas(p)
		found := false
		for _, a := range replicas {
			if a == destSrv.Addr() {
				found = true
			}
			if a == srcSrv.Addr() {
				t.Fatalf("page %d still lists the drained server: %v", p, replicas)
			}
		}
		if !found {
			t.Fatalf("page %d not registered on the destination: %v", p, replicas)
		}
		destSrv.mu.Lock()
		pb := destSrv.pages[p]
		destSrv.mu.Unlock()
		if pb == nil {
			t.Fatalf("page %d missing from the destination's store", p)
		}
		want := pagePattern(p)
		for i := range want {
			if pb.data[i] != want[i] {
				t.Fatalf("page %d byte %d = %#x, want %#x: drain corrupted the transfer", p, i, pb.data[i], want[i])
			}
		}
	}
	// The drained incarnation is fenced: its epoch can never re-register.
	if typ := rawRegister(t, d.Addr(), proto.Register{Addr: srcSrv.Addr(), Epoch: 100, Pages: []uint64{0}}); typ != proto.TError {
		t.Fatalf("drained epoch re-registered: drew %v, want TError", typ)
	}
	// Draining the last server must refuse, not strand the pages.
	if _, err := d.Drain(destSrv.Addr()); err == nil {
		t.Fatal("draining the only remaining server should fail")
	}
	if got := d.Replicas(0); len(got) != 1 || got[0] != destSrv.Addr() {
		t.Fatalf("failed drain disturbed the table: Replicas(0) = %v", got)
	}
}

// TestDrainUnknownServer pins the error paths that must not touch state.
func TestDrainUnknownServer(t *testing.T) {
	d := leaseDirectory(t, time.Minute)
	if _, err := d.Drain("nobody:1"); err == nil {
		t.Fatal("draining an unregistered server should fail")
	}
	if rawRegister(t, d.Addr(), proto.Register{Addr: "a:1", Epoch: 3, Pages: []uint64{1}}) != proto.TAck {
		t.Fatal("registration rejected")
	}
	// a:1's page is sole-copy and there is no peer: refuse and leave it
	// registered.
	if _, err := d.Drain("a:1"); err == nil {
		t.Fatal("draining the only holder should fail")
	}
	if got, ok := d.Lookup(1); !ok || got != "a:1" {
		t.Fatalf("failed drain disturbed the table: Lookup(1) = %q,%v", got, ok)
	}
	if st := d.StateSnapshot(); len(st.Draining) != 0 {
		t.Fatalf("failed drain left a draining mark: %v", st.Draining)
	}
}

// TestDrainServerExpungedMidDrain pins the path where the draining
// server's lease expires and is expunged while its pages are in flight
// (the server died during the transfers): finishDrain must report the
// vanished registration — it used to dereference the nil entry and
// panic while holding the directory lock — and roll the draining mark
// back.
func TestDrainServerExpungedMidDrain(t *testing.T) {
	d := leaseDirectory(t, time.Minute)
	if rawRegister(t, d.Addr(), proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{1}}) != proto.TAck {
		t.Fatal("register a:1 rejected")
	}
	if rawRegister(t, d.Addr(), proto.Register{Addr: "b:1", Epoch: 20, Pages: []uint64{1}}) != proto.TAck {
		t.Fatal("register b:1 rejected")
	}
	_, epoch, err := d.beginDrain("a:1")
	if err != nil {
		t.Fatal(err)
	}
	// The server dies mid-drain: the janitor expunges its lease.
	d.mu.Lock()
	d.expungeLocked("a:1")
	d.mu.Unlock()
	if err := d.finishDrain("a:1", epoch); err == nil {
		t.Fatal("finishDrain must fail when the registration vanished mid-drain")
	}
	if st := d.StateSnapshot(); len(st.Draining) != 0 {
		t.Fatalf("aborted drain left a draining mark: %v", st.Draining)
	}
}

// TestDrainRefusesDrainingDestination pins the two-concurrent-drains
// hole: once the destination starts draining itself, committing
// sole-copy pages onto it would let its finishDrain expunge them with no
// live holder left, losing the pages. commitTransfer must refuse so the
// drain aborts and retries against a live destination.
func TestDrainRefusesDrainingDestination(t *testing.T) {
	d := leaseDirectory(t, time.Minute)
	// a:1 holds sole-copy page 1; b:1 shares page 2 with a:1, so b:1's
	// own drain has nothing to move and succeeds instantly.
	if rawRegister(t, d.Addr(), proto.Register{Addr: "a:1", Epoch: 10, Pages: []uint64{1, 2}}) != proto.TAck {
		t.Fatal("register a:1 rejected")
	}
	if rawRegister(t, d.Addr(), proto.Register{Addr: "b:1", Epoch: 20, Pages: []uint64{2}}) != proto.TAck {
		t.Fatal("register b:1 rejected")
	}
	plan, _, err := d.beginDrain("a:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].dest != "b:1" {
		t.Fatalf("plan = %+v, want page 1 -> b:1", plan)
	}
	// b:1 starts its own drain while a:1's transfer is in flight.
	if _, _, err := d.beginDrain("b:1"); err != nil {
		t.Fatal(err)
	}
	if err := d.commitTransfer("a:1", "b:1", plan[0].pages); err == nil {
		t.Fatal("commitTransfer must refuse a destination that began draining")
	}
	// The refused transfer left no replica on the draining destination.
	if got := d.Replicas(1); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("Replicas(1) = %v, want [a:1]", got)
	}
	d.abortDrain("a:1")
}
