package remote

import (
	"errors"
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/proto"
)

// ErrPageUnavailable is the sentinel matched by errors.Is when a page
// cannot be fetched from any server within the client's retry budget —
// the bounded, typed outcome that replaces an indefinite hang.
var ErrPageUnavailable = errors.New("remote: page unavailable")

// errNotRegistered is the authoritative directory miss: no server holds
// the page, so retrying cannot help.
var errNotRegistered = errors.New("not registered in the directory")

// errClientClosed aborts in-flight work when the client shuts down.
var errClientClosed = errors.New("remote: client closed")

// ErrDirectoryUnreachable is returned by Server.RegisterWith when the
// directory cannot be dialed, so callers can tell a down control plane
// apart from a protocol failure with errors.Is.
var ErrDirectoryUnreachable = errors.New("remote: directory unreachable")

// ErrWrongShard is matched (via errors.Is) by lookup errors when a
// directory shard answered that another shard owns the page. The client
// heals this internally — the TWrongShard reply carries the current shard
// map, so the very next lookup goes to the right shard — and the error
// only escapes if forwarding keeps bouncing, which means the deployment's
// shards disagree about the map.
var ErrWrongShard = errors.New("remote: page owned by another directory shard")

// WrongShardError is the typed form of a TWrongShard reply: the shard map
// the answering shard is serving. It matches ErrWrongShard under
// errors.Is.
type WrongShardError struct {
	Page uint64
	Map  proto.ShardMap
}

func (e *WrongShardError) Error() string {
	return fmt.Sprintf("remote: page %d owned by another shard (map v%d, %d shards)",
		e.Page, e.Map.Version, len(e.Map.Shards))
}

// Is makes errors.Is(err, ErrWrongShard) match any *WrongShardError.
func (e *WrongShardError) Is(target error) bool { return target == ErrWrongShard }

// PageError reports a page whose fetch failed permanently: every replica
// was tried, retries are exhausted, or the directory answered that nobody
// holds it. It matches ErrPageUnavailable under errors.Is and unwraps to
// the last underlying cause.
type PageError struct {
	Page     uint64
	Attempts int
	Err      error
}

func (e *PageError) Error() string {
	return fmt.Sprintf("remote: page %d unavailable after %d attempt(s): %v", e.Page, e.Attempts, e.Err)
}

func (e *PageError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrPageUnavailable) match any *PageError.
func (e *PageError) Is(target error) bool { return target == ErrPageUnavailable }
