package remote

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/proto"
)

// leaseDirectory stands up a directory with a short lease TTL so tests can
// watch leases expire quickly.
func leaseDirectory(t *testing.T, ttl time.Duration) *Directory {
	t.Helper()
	dir, err := ListenDirectoryWith("127.0.0.1:0", DirectoryConfig{LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	return dir
}

// rawRegister speaks the wire protocol directly, bypassing Server, so tests
// can forge registrations from arbitrary addresses and epochs. It returns
// the directory's reply type.
func rawRegister(t *testing.T, dirAddr string, reg proto.Register) proto.Type {
	t.Helper()
	conn, err := net.Dial("tcp", dirAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.NewWriter(conn).SendRegister(reg); err != nil {
		t.Fatal(err)
	}
	f, err := proto.NewReader(conn).Next()
	if err != nil {
		t.Fatal(err)
	}
	return f.Type
}

func TestDirectoryCloseIdempotent(t *testing.T) {
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	first := dir.Close()
	second := dir.Close()
	if first != second {
		t.Fatalf("second Close returned %v, first returned %v", second, first)
	}
	// Concurrent closes must also be safe.
	dir2, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = dir2.Close()
		}()
	}
	wg.Wait()
}

func TestRegisterRacingCloseIsSafe(t *testing.T) {
	// Registrations in flight while the directory shuts down must neither
	// panic nor corrupt state; run several rounds to give the race detector
	// material.
	for round := 0; round < 10; round++ {
		dir, err := ListenDirectory("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := dir.Addr()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return // directory already closed
				}
				defer conn.Close()
				w := proto.NewWriter(conn)
				r := proto.NewReader(conn)
				for p := 0; p < 50; p++ {
					reg := proto.Register{
						Addr:  fmt.Sprintf("10.0.0.%d:1", i),
						Epoch: 1,
						Pages: []uint64{uint64(p)},
					}
					if err := w.SendRegister(reg); err != nil {
						return
					}
					if _, err := r.Next(); err != nil {
						return
					}
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = dir.Close()
		}()
		wg.Wait()
	}
}

func TestLeaseExpiryHidesDeadServer(t *testing.T) {
	const ttl = 150 * time.Millisecond
	dir := leaseDirectory(t, ttl)
	if rawRegister(t, dir.Addr(), proto.Register{Addr: "dead:1", Epoch: 1, Pages: []uint64{7}}) != proto.TAck {
		t.Fatal("registration rejected")
	}
	if _, ok := dir.Lookup(7); !ok {
		t.Fatal("page should resolve while the lease is live")
	}
	// No heartbeats arrive: the lease must lapse within one TTL (plus
	// scheduling slack), after which lookups stop returning the address.
	deadline := time.Now().Add(ttl + 500*time.Millisecond)
	for {
		if _, ok := dir.Lookup(7); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead server still resolvable well past one TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := dir.Replicas(7); len(got) != 0 {
		t.Fatalf("Replicas after expiry = %v, want empty", got)
	}
	if dir.Len() != 0 {
		t.Fatalf("Len after expiry = %d, want 0", dir.Len())
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	const ttl = 200 * time.Millisecond
	dir := leaseDirectory(t, ttl)
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Store(1, pagePattern(1))
	srv.SetHeartbeatInterval(40 * time.Millisecond)
	if err := srv.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	// Across several TTLs the heartbeat must keep the registration live.
	for elapsed := time.Duration(0); elapsed < 3*ttl; elapsed += ttl / 2 {
		if _, ok := dir.Lookup(1); !ok {
			t.Fatalf("lease lapsed despite heartbeats at %v", elapsed)
		}
		time.Sleep(ttl / 2)
	}
	// After Close the heartbeats stop and the lease must lapse.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(ttl + 500*time.Millisecond)
	for {
		if _, ok := dir.Lookup(1); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("closed server still resolvable well past one TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEpochFencingReplacesStaleEntries(t *testing.T) {
	dir := leaseDirectory(t, time.Minute)
	const addr = "srv:1"
	// First incarnation holds pages 1 and 2.
	if rawRegister(t, dir.Addr(), proto.Register{Addr: addr, Epoch: 10, Pages: []uint64{1, 2}}) != proto.TAck {
		t.Fatal("first registration rejected")
	}
	// The restarted incarnation holds pages 2 and 3 and registers with a
	// higher epoch — well before the old lease would expire.
	if rawRegister(t, dir.Addr(), proto.Register{Addr: addr, Epoch: 11, Pages: []uint64{2, 3}}) != proto.TAck {
		t.Fatal("re-registration rejected")
	}
	if got := dir.Replicas(1); len(got) != 0 {
		t.Fatalf("page 1 should have been fenced out, got %v", got)
	}
	for _, p := range []uint64{2, 3} {
		if got := dir.Replicas(p); len(got) != 1 || got[0] != addr {
			t.Fatalf("page %d replicas = %v, want [%s] exactly once", p, got, addr)
		}
	}
	// A delayed frame from the dead incarnation must be rejected, not
	// merged.
	if typ := rawRegister(t, dir.Addr(), proto.Register{Addr: addr, Epoch: 10, Pages: []uint64{4}}); typ != proto.TError {
		t.Fatalf("stale-epoch registration drew %v, want TError", typ)
	}
	if got := dir.Replicas(4); len(got) != 0 {
		t.Fatalf("stale registration leaked into the directory: %v", got)
	}
	if e, ok := dir.ServerEpoch(addr); !ok || e != 11 {
		t.Fatalf("ServerEpoch = %d,%v want 11,true", e, ok)
	}
}

func TestEpochMemorySurvivesLeaseExpiry(t *testing.T) {
	const ttl = 100 * time.Millisecond
	dir := leaseDirectory(t, ttl)
	const addr = "srv:1"
	if rawRegister(t, dir.Addr(), proto.Register{Addr: addr, Epoch: 20, Pages: []uint64{1}}) != proto.TAck {
		t.Fatal("registration rejected")
	}
	// Let the lease lapse and the janitor sweep the entry.
	time.Sleep(2 * ttl)
	if _, ok := dir.Lookup(1); ok {
		t.Fatal("lease should have expired")
	}
	// Even with the entry gone, a lower epoch must stay fenced.
	if typ := rawRegister(t, dir.Addr(), proto.Register{Addr: addr, Epoch: 19, Pages: []uint64{2}}); typ != proto.TError {
		t.Fatalf("stale epoch after expiry drew %v, want TError", typ)
	}
	// The same incarnation may re-register (it was slow, not replaced).
	if rawRegister(t, dir.Addr(), proto.Register{Addr: addr, Epoch: 20, Pages: []uint64{1}}) != proto.TAck {
		t.Fatal("same-epoch re-registration after expiry rejected")
	}
	if got := dir.Replicas(1); len(got) != 1 || got[0] != addr {
		t.Fatalf("Replicas = %v, want [%s]", got, addr)
	}
}

func TestReplicasSortedUnderChurn(t *testing.T) {
	// Concurrent register/expire/lookup churn: replica lists must stay
	// duplicate-free with the non-primary tail in sorted order, and settle
	// to a deterministic value once the churn stops.
	const ttl = 120 * time.Millisecond
	dir := leaseDirectory(t, ttl)
	addrs := []string{"10.0.0.5:1", "10.0.0.1:1", "10.0.0.3:1", "10.0.0.2:1", "10.0.0.4:1"}
	const page = 42

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churners: each repeatedly re-registers its address (renewing the
	// lease) with occasional pauses long enough for some leases to lapse.
	for i, a := range addrs {
		wg.Add(1)
		go func(i int, a string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", dir.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			w := proto.NewWriter(conn)
			r := proto.NewReader(conn)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := w.SendRegister(proto.Register{Addr: a, Epoch: 1, Pages: []uint64{page}}); err != nil {
					return
				}
				if _, err := r.Next(); err != nil {
					return
				}
				// Stagger so different subsets are alive at any moment.
				time.Sleep(time.Duration(5+3*i) * time.Millisecond)
			}
		}(i, a)
	}
	// Reader: every observed snapshot must be duplicate-free and sorted
	// after the primary.
	checkSnapshot := func(got []string) {
		t.Helper()
		seen := make(map[string]bool, len(got))
		for _, a := range got {
			if seen[a] {
				t.Fatalf("duplicate replica %q in %v", a, got)
			}
			seen[a] = true
		}
		if tail := got[1:]; !sort.StringsAreSorted(tail) {
			t.Fatalf("replica tail not sorted: %v", got)
		}
	}
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got := dir.Replicas(page); len(got) > 0 {
			checkSnapshot(got)
		}
	}
	close(stop)
	wg.Wait()

	// With churn stopped and every lease freshly renewed, the snapshot is
	// fully deterministic up to the primary: all five alive, tail sorted.
	conn, err := net.Dial("tcp", dir.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := proto.NewWriter(conn)
	r := proto.NewReader(conn)
	for _, a := range addrs {
		if err := w.SendRegister(proto.Register{Addr: a, Epoch: 1, Pages: []uint64{page}}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	got := dir.Replicas(page)
	if len(got) != len(addrs) {
		t.Fatalf("Replicas = %v, want all %d servers", got, len(addrs))
	}
	checkSnapshot(got)
	want := append([]string(nil), addrs...)
	sort.Strings(want)
	gotSorted := append([]string(nil), got...)
	sort.Strings(gotSorted)
	for i := range want {
		if gotSorted[i] != want[i] {
			t.Fatalf("Replicas membership = %v, want %v", got, want)
		}
	}
}

func TestRegisterWithUnreachableDirectory(t *testing.T) {
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Store(1, pagePattern(1))
	// Reserve an address and close it so the dial is refused immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	err = srv.RegisterWith(deadAddr)
	if err == nil {
		t.Fatal("registering with an unreachable directory should fail")
	}
	if !errors.Is(err, ErrDirectoryUnreachable) {
		t.Fatalf("error %v does not match ErrDirectoryUnreachable", err)
	}
}

func TestHeartbeatReregistersAfterDirectoryRestart(t *testing.T) {
	// A directory that loses its state (restart on the same address) sees
	// heartbeats for leases it does not know; the server must respond by
	// re-registering so its pages become resolvable again.
	dir, err := ListenDirectoryWith("127.0.0.1:0", DirectoryConfig{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	addr := dir.Addr()
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Store(1, pagePattern(1))
	srv.SetHeartbeatInterval(25 * time.Millisecond)
	if err := srv.RegisterWith(addr); err != nil {
		t.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart an empty directory on the same address.
	dir2, err := ListenDirectoryWith(addr, DirectoryConfig{LeaseTTL: time.Minute})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { dir2.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, ok := dir2.Lookup(1); ok {
			if got != srv.Addr() {
				t.Fatalf("Lookup = %q, want %q", got, srv.Addr())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never re-registered with the restarted directory")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
