package remote

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/proto"
)

// These tests pin the liveness fixes that came out of the gmslint
// deadlinecheck/tagswitch audit: unbounded waits on registration and
// misdirected-frame fallthroughs in the data stream. Each one fails by
// hanging (or stalling to a long timeout) if the corresponding fix is
// reverted, so they run their subject on a goroutine under a watchdog.

// silentDirectory accepts connections and speaks just enough protocol to
// let registration start: it serves the (empty) shard map, then swallows
// every Register without ever acking. This is the wedged-directory shape
// that used to hang RegisterWith forever.
func silentDirectory(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := proto.NewReader(conn)
				w := proto.NewWriter(conn)
				for {
					f, err := r.Next()
					if err != nil {
						return
					}
					if f.Type == proto.TGetShardMap {
						if err := w.SendShardMap(proto.ShardMap{}); err != nil {
							return
						}
					}
					// TRegister (and anything else): read it, never answer.
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestRegisterWithSilentDirectoryTimesOut(t *testing.T) {
	dirAddr := silentDirectory(t)
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Store(0, pagePattern(0))

	done := make(chan error, 1)
	go func() { done <- srv.RegisterWith(dirAddr) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RegisterWith succeeded against a directory that never acks")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RegisterWith hung on a silent directory; the register deadline did not fire")
	}
}

// misdirectedServer accepts data-stream connections and answers every
// GetPage with a TAck — a valid frame that has no business on a data
// stream. Before the tagswitch audit the client's read loop silently
// skipped such frames and the attempt stalled to the full RequestTimeout.
func misdirectedServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := proto.NewReader(conn)
				w := proto.NewWriter(conn)
				for {
					if _, err := r.Next(); err != nil {
						return
					}
					if err := w.SendAck(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestMisdirectedFrameFailsFastNotTimeout(t *testing.T) {
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	srvAddr := misdirectedServer(t)
	// Route page 0 at the broken server by registering it directly, the
	// way a real server announces itself.
	conn, err := net.Dial("tcp", dir.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.NewWriter(conn).SendRegister(proto.Register{Addr: srvAddr, Epoch: 1, Pages: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	if f, err := proto.NewReader(conn).Next(); err != nil || f.Type != proto.TAck {
		t.Fatalf("register: %v %v", f.Type, err)
	}

	// A long request timeout so the test can tell "dropped on the bad
	// frame" apart from "waited out the deadline".
	cfg := ClientConfig{RequestTimeout: 10 * time.Second, MaxRetries: 1, RetryBackoff: 5 * time.Millisecond}
	c := testClient(t, dir, cfg)
	var b [8]byte
	start := time.Now()
	readErr := c.Read(b[:], 0)
	elapsed := time.Since(start)
	if readErr == nil {
		t.Fatal("read from a protocol-confused server succeeded")
	}
	if !errors.Is(readErr, ErrPageUnavailable) {
		t.Fatalf("err = %v, want ErrPageUnavailable", readErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("misdirected frame took %v to fail; the read loop should drop the server immediately, not wait out the deadline", elapsed)
	}
	var pe *PageError
	if errors.As(readErr, &pe) && !strings.Contains(pe.Err.Error(), "unexpected") {
		t.Fatalf("cause = %v, want the unexpected-frame drop", pe.Err)
	}
}
