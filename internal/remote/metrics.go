package remote

import "github.com/gms-sim/gmsubpage/internal/obs"

// This file declares the prototype's metric handles. Every handle is
// nil-safe: a component built without a registry records into nil handles,
// which cost one pointer compare per event — the fault hot path pays
// nothing measurable when metrics are off (pinned by
// BenchmarkDisabledCounter in internal/obs).
//
// Metric names are part of the observability surface and documented in the
// README's Observability section; rename them there too.

// clientMetrics are the faulting client's handles.
type clientMetrics struct {
	faults        *obs.Counter
	prefetches    *obs.Counter
	evictions     *obs.Counter
	putPages      *obs.Counter
	bytesIn       *obs.Counter
	retries       *obs.Counter
	failovers     *obs.Counter
	hedges        *obs.Counter
	cancels       *obs.Counter
	breakerOpens  *obs.Counter
	breakerProbes *obs.Counter
	openBreakers  *obs.Gauge
	wrongShard    *obs.Counter
	mapRefreshes  *obs.Counter
	subpageLat    *obs.Histogram
	fullLat       *obs.Histogram
}

func newClientMetrics(r *obs.Registry) clientMetrics {
	return clientMetrics{
		faults:        r.Counter("gms_client_faults_total", "page faults issued to remote memory"),
		prefetches:    r.Counter("gms_client_prefetches_total", "read-ahead faults issued"),
		evictions:     r.Counter("gms_client_evictions_total", "pages evicted from the local cache"),
		putPages:      r.Counter("gms_client_putpages_total", "dirty pages written back on eviction"),
		bytesIn:       r.Counter("gms_client_bytes_in_total", "page data bytes received"),
		retries:       r.Counter("gms_client_retries_total", "fault or lookup attempts beyond the first"),
		failovers:     r.Counter("gms_client_failovers_total", "retries redirected to a different replica"),
		hedges:        r.Counter("gms_client_hedges_total", "duplicate GetPages sent to mask a slow primary"),
		cancels:       r.Counter("gms_client_cancels_total", "cancel frames sent to withdraw superseded v2 requests"),
		breakerOpens:  r.Counter("gms_client_breaker_opens_total", "circuit breakers tripped (closed to open)"),
		breakerProbes: r.Counter("gms_client_breaker_probes_total", "half-open probes granted after a cooldown"),
		openBreakers:  r.Gauge("gms_client_open_breakers", "servers currently shunned by their breaker"),
		wrongShard:    r.Counter("gms_client_wrong_shard_total", "lookups bounced by a shard that did not own the page"),
		mapRefreshes:  r.Counter("gms_client_shardmap_refreshes_total", "shard-map installs (bootstrap fetches and TWrongShard refreshes)"),
		subpageLat:    r.Histogram("gms_client_subpage_latency_us", "fault to faulted-subpage arrival, microseconds", nil),
		fullLat:       r.Histogram("gms_client_full_latency_us", "fault to complete page arrival, microseconds", nil),
	}
}

// serverMetrics are a page server's handles.
type serverMetrics struct {
	gets       *obs.Counter
	puts       *obs.Counter
	bytesOut   *obs.Counter
	heartbeats *obs.Counter
	reregs     *obs.Counter
	pages      *obs.Gauge
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		gets:       r.Counter("gms_server_gets_total", "GetPage requests served"),
		puts:       r.Counter("gms_server_puts_total", "PutPage requests accepted"),
		bytesOut:   r.Counter("gms_server_bytes_out_total", "page data bytes sent"),
		heartbeats: r.Counter("gms_server_heartbeats_total", "lease-renewal heartbeats sent to the directory"),
		reregs:     r.Counter("gms_server_reregistrations_total", "full re-registrations after a lost lease"),
		pages:      r.Gauge("gms_server_pages", "pages currently hosted"),
	}
}

// directoryMetrics are the directory's handles. The gms_dirshard_* block
// is only registered for sharded directories (nil handles otherwise, so
// single-directory deployments expose exactly the surface they always
// did).
type directoryMetrics struct {
	lookups      *obs.Counter
	registers    *obs.Counter
	heartbeats   *obs.Counter
	staleRejects *obs.Counter
	expiries     *obs.Counter
	pages        *obs.Gauge

	// Durability handles (gms_dirlog_*); registered alongside the core
	// block, nil-safe no-ops for in-memory directories like the rest.
	journalRecords   *obs.Counter
	journalErrors    *obs.Counter
	snapshots        *obs.Counter
	recoveredServers *obs.Gauge
	drains           *obs.Counter
	drainMoved       *obs.Counter

	// Shard-mode handles (gms_dirshard_*).
	wrongShard      *obs.Counter
	mapRequests     *obs.Counter
	foreignPages    *obs.Counter
	shardSelf       *obs.Gauge
	shardMapVersion *obs.Gauge
	shardCount      *obs.Gauge
}

func newDirectoryMetrics(r *obs.Registry, sharded bool) directoryMetrics {
	m := directoryMetrics{
		lookups:      r.Counter("gms_dir_lookups_total", "lookup RPCs answered"),
		registers:    r.Counter("gms_dir_registers_total", "server registrations applied"),
		heartbeats:   r.Counter("gms_dir_heartbeats_total", "lease renewals applied"),
		staleRejects: r.Counter("gms_dir_stale_rejects_total", "registrations rejected for a stale epoch"),
		expiries:     r.Counter("gms_dir_lease_expiries_total", "server leases expired by the janitor"),
		pages:        r.Gauge("gms_dir_pages", "pages currently mapped to at least one server"),

		journalRecords:   r.Counter("gms_dirlog_records_total", "state transitions appended to the write-ahead journal"),
		journalErrors:    r.Counter("gms_dirlog_errors_total", "journal appends that failed (directory keeps serving in memory)"),
		snapshots:        r.Counter("gms_dirlog_snapshots_total", "compacting snapshots written"),
		recoveredServers: r.Gauge("gms_dirlog_recovered_servers", "registrations restored from the journal at startup"),
		drains:           r.Counter("gms_dir_drains_total", "graceful server drains completed"),
		drainMoved:       r.Counter("gms_dir_drain_pages_moved_total", "sole-copy pages transferred off draining servers"),
	}
	if sharded {
		m.wrongShard = r.Counter("gms_dirshard_wrong_shard_total", "lookups answered TWrongShard: the page belongs to another shard")
		m.mapRequests = r.Counter("gms_dirshard_map_requests_total", "shard-map fetches answered")
		m.foreignPages = r.Counter("gms_dirshard_foreign_pages_total", "registered pages dropped because another shard owns them")
		m.shardSelf = r.Gauge("gms_dirshard_self", "this shard's index in the shard map")
		m.shardMapVersion = r.Gauge("gms_dirshard_map_version", "version of the shard map being served")
		m.shardCount = r.Gauge("gms_dirshard_shards", "number of shards in the map being served")
	}
	return m
}
