package remote

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// TestStatsSnapshotCoherentUnderRace hammers Stats() while faults trip the
// breaker on a dead primary. Run under -race it pins the locking; the
// invariants below pin coherence: every snapshot is one cut, so the breaker
// counters can never run ahead of the fault/retry counters that implied
// them (the bug this replaces: breaker counters were read in a second,
// separate critical section).
func TestStatsSnapshotCoherentUnderRace(t *testing.T) {
	dir, srvA, srvB := replicatedCluster(t, 8)
	_ = srvB
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}
	const threshold = 2
	c := testClient(t, dir, fastRetry(ClientConfig{
		CachePages:       4,
		BreakerThreshold: threshold,
		BreakerCooldown:  time.Minute, // no probes during the test
	}))

	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var violation error
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := c.Stats()
				var err error
				switch {
				case st.OpenBreakers < 0 || int64(st.OpenBreakers) > st.BreakerOpens:
					err = fmt.Errorf("OpenBreakers=%d outside [0, BreakerOpens=%d]",
						st.OpenBreakers, st.BreakerOpens)
				case threshold*st.BreakerOpens > st.Faults+st.Retries:
					err = fmt.Errorf("BreakerOpens=%d ahead of Faults=%d+Retries=%d",
						st.BreakerOpens, st.Faults, st.Retries)
				}
				if err != nil {
					mu.Lock()
					if violation == nil {
						violation = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}

	buf := make([]byte, 64)
	for p := 0; p < 8; p++ {
		if err := c.Read(buf, uint64(p)*units.PageSize); err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
	}
	close(done)
	wg.Wait()
	if violation != nil {
		t.Fatalf("incoherent snapshot observed: %v", violation)
	}
	if st := c.Stats(); st.BreakerOpens == 0 {
		t.Fatalf("test never exercised the breaker: %+v", st)
	}
}

// TestClientMetricsMirrorStats: with a registry configured, the
// gms_client_* metrics track the same history as Stats().
func TestClientMetricsMirrorStats(t *testing.T) {
	dir, _ := testCluster(t, 6)
	reg := obs.NewRegistry()
	c := testClient(t, dir, ClientConfig{CachePages: 3, Metrics: reg})
	buf := make([]byte, 256)
	for p := 0; p < 6; p++ {
		if err := c.Read(buf, uint64(p)*units.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Faults == 0 || st.Evictions == 0 {
		t.Fatalf("workload too small to exercise metrics: %+v", st)
	}
	checks := map[string]int64{
		"gms_client_faults_total":    st.Faults,
		"gms_client_evictions_total": st.Evictions,
		"gms_client_bytes_in_total":  st.BytesIn,
		"gms_client_retries_total":   st.Retries,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, stats say %d", name, got, want)
		}
	}
	if got, want := reg.Histogram("gms_client_subpage_latency_us", "", nil).Count(), st.SubpageLat.N(); got != int64(want) {
		t.Errorf("subpage latency observations = %d, stats say %d", got, want)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gms_client_faults_total") {
		t.Fatalf("exposition missing client metrics:\n%s", b.String())
	}
}

// TestServerAndDirectoryMetrics: SetMetrics on the server and directory
// records traffic.
func TestServerAndDirectoryMetrics(t *testing.T) {
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	dreg := obs.NewRegistry()
	dir.SetMetrics(dreg)

	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sreg := obs.NewRegistry()
	srv.SetMetrics(sreg)
	for p := 0; p < 4; p++ {
		srv.Store(uint64(p), pagePattern(uint64(p)))
	}
	if err := srv.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}

	c := testClient(t, dir, ClientConfig{CachePages: 4})
	buf := make([]byte, 128)
	for p := 0; p < 4; p++ {
		if err := c.Read(buf, uint64(p)*units.PageSize); err != nil {
			t.Fatal(err)
		}
	}

	if got := sreg.Counter("gms_server_gets_total", "").Value(); got != 4 {
		t.Errorf("gms_server_gets_total = %d, want 4", got)
	}
	if got := sreg.Gauge("gms_server_pages", "").Value(); got != 4 {
		t.Errorf("gms_server_pages = %d, want 4", got)
	}
	if got := sreg.Counter("gms_server_bytes_out_total", "").Value(); got < 4*units.PageSize {
		t.Errorf("gms_server_bytes_out_total = %d, want >= %d", got, 4*units.PageSize)
	}
	if got := dreg.Counter("gms_dir_registers_total", "").Value(); got == 0 {
		t.Error("gms_dir_registers_total = 0, want > 0")
	}
	if got := dreg.Counter("gms_dir_lookups_total", "").Value(); got != 4 {
		t.Errorf("gms_dir_lookups_total = %d, want 4", got)
	}
	if got := dreg.Gauge("gms_dir_pages", "").Value(); got != 4 {
		t.Errorf("gms_dir_pages = %d, want 4", got)
	}
}
