package remote

import (
	"errors"
	"fmt"
	"io"
)

// Pager adapts a Client to io.ReaderAt / io.WriterAt, so remote memory can
// back anything that reads and writes at offsets (archive readers, index
// structures, mmap-style accessors). Offset 0 of the pager is global
// address Base.
type Pager struct {
	c    *Client
	base uint64
	size int64
}

// NewPager views size bytes of remote memory starting at global address
// base through the io interfaces.
func (c *Client) NewPager(base uint64, size int64) (*Pager, error) {
	if size < 0 {
		return nil, errors.New("remote: negative pager size")
	}
	return &Pager{c: c, base: base, size: size}, nil
}

// Size returns the pager's extent in bytes.
func (p *Pager) Size() int64 { return p.size }

// ReadAt implements io.ReaderAt.
func (p *Pager) ReadAt(b []byte, off int64) (int, error) {
	n, err := p.clamp(len(b), off)
	if n == 0 {
		return 0, err
	}
	if rerr := p.c.Read(b[:n], p.base+uint64(off)); rerr != nil {
		return 0, rerr
	}
	return n, err
}

// WriteAt implements io.WriterAt.
func (p *Pager) WriteAt(b []byte, off int64) (int, error) {
	n, err := p.clamp(len(b), off)
	if n == 0 {
		return 0, err
	}
	if werr := p.c.Write(b[:n], p.base+uint64(off)); werr != nil {
		return 0, werr
	}
	return n, err
}

// clamp bounds an access to the pager's extent, returning the usable
// length and io.EOF when the request runs past the end.
func (p *Pager) clamp(want int, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("remote: negative offset %d", off)
	}
	if off >= p.size {
		return 0, io.EOF
	}
	n := want
	var err error
	if off+int64(n) > p.size {
		n = int(p.size - off)
		err = io.EOF
	}
	return n, err
}
