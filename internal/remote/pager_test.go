package remote

import (
	"bytes"
	"io"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func TestPagerReadAt(t *testing.T) {
	dir, _ := testCluster(t, 4)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	pg, err := c.NewPager(0, 3*units.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Size() != 3*units.PageSize {
		t.Fatalf("Size = %d", pg.Size())
	}
	buf := make([]byte, 100)
	n, err := pg.ReadAt(buf, int64(units.PageSize)+50)
	if err != nil || n != 100 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	want := pagePattern(1)[50:150]
	if !bytes.Equal(buf, want) {
		t.Fatal("pager data mismatch")
	}
}

func TestPagerEOF(t *testing.T) {
	dir, _ := testCluster(t, 2)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	pg, err := c.NewPager(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	// Straddling the end: short read + EOF.
	n, err := pg.ReadAt(buf, 80)
	if n != 20 || err != io.EOF {
		t.Fatalf("straddle = %d, %v", n, err)
	}
	// Past the end: 0, EOF.
	if n, err := pg.ReadAt(buf, 100); n != 0 || err != io.EOF {
		t.Fatalf("past end = %d, %v", n, err)
	}
	// Negative offset errors.
	if _, err := pg.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset should fail")
	}
	// Negative size rejected at construction.
	if _, err := c.NewPager(0, -1); err == nil {
		t.Fatal("negative size should fail")
	}
}

func TestPagerWriteAtRoundTrip(t *testing.T) {
	dir, _ := testCluster(t, 4)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	pg, err := c.NewPager(units.PageSize, 2*units.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pager write")
	if n, err := pg.WriteAt(msg, 123); err != nil || n != len(msg) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := pg.ReadAt(got, 123); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
}

func TestPagerSatisfiesIOInterfaces(t *testing.T) {
	var _ io.ReaderAt = (*Pager)(nil)
	var _ io.WriterAt = (*Pager)(nil)
	// And it composes with stdlib helpers.
	dir, _ := testCluster(t, 2)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	pg, _ := c.NewPager(0, units.PageSize)
	sr := io.NewSectionReader(pg, 10, 50)
	buf, err := io.ReadAll(sr)
	if err != nil || len(buf) != 50 {
		t.Fatalf("SectionReader = %d bytes, %v", len(buf), err)
	}
	if !bytes.Equal(buf, pagePattern(0)[10:60]) {
		t.Fatal("SectionReader data mismatch")
	}
}

func TestReadaheadPrefetchesSequentialRuns(t *testing.T) {
	dir, _ := testCluster(t, 16)
	c := testClient(t, dir, ClientConfig{
		Policy: proto.PolicyEager, Readahead: true, CachePages: 32,
	})
	buf := make([]byte, units.PageSize)
	for p := uint64(0); p < 8; p++ {
		if err := c.Read(buf, p*units.PageSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pagePattern(p)) {
			t.Fatalf("page %d mismatch", p)
		}
	}
	st := c.Stats()
	if st.Prefetches == 0 {
		t.Fatal("sequential run should trigger prefetches")
	}
	// Prefetched pages satisfy demand without a new fault: demand faults
	// + prefetches cover the 8 pages, with fewer demand faults than 8.
	if st.Faults >= 8 {
		t.Fatalf("Faults = %d, prefetching should absorb some", st.Faults)
	}
	if st.Faults+st.Prefetches < 8 {
		t.Fatalf("faults %d + prefetches %d < pages", st.Faults, st.Prefetches)
	}
}

func TestReadaheadOffByDefault(t *testing.T) {
	dir, _ := testCluster(t, 8)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	buf := make([]byte, units.PageSize)
	for p := uint64(0); p < 4; p++ {
		if err := c.Read(buf, p*units.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Prefetches != 0 {
		t.Fatalf("Prefetches = %d without Readahead", st.Prefetches)
	}
}

func TestReadaheadPastEndIsHarmless(t *testing.T) {
	// Prefetching page N (unregistered) must not poison later reads.
	dir, _ := testCluster(t, 3)
	c := testClient(t, dir, ClientConfig{
		Policy: proto.PolicyEager, Readahead: true,
	})
	buf := make([]byte, units.PageSize)
	for p := uint64(0); p < 3; p++ {
		if err := c.Read(buf, p*units.PageSize); err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
	}
	// Re-reading the last page still works.
	if err := c.Read(buf, 2*units.PageSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pagePattern(2)) {
		t.Fatal("page 2 mismatch after failed prefetch")
	}
}
