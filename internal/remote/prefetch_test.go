package remote

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// TestPolicyWireRoundTrip keeps the three policy registries in sync: every
// wire byte must name a policy core.ByName can build, the name must map
// back to the same byte, and the server's policyFor must resolve it. A new
// wire policy that misses one of the three layers fails here instead of at
// the first cross-version request.
func TestPolicyWireRoundTrip(t *testing.T) {
	for b := uint8(0); ; b++ {
		name, err := proto.PolicyName(b)
		if err != nil {
			if b == 0 {
				t.Fatal("no wire policies registered at all")
			}
			break // first unassigned byte: the wire table is dense by construction
		}
		pol, err := core.ByName(name)
		if err != nil {
			t.Errorf("wire byte %d names %q, which core.ByName rejects: %v", b, name, err)
			continue
		}
		if pol.Name() != name {
			t.Errorf("core policy for %q calls itself %q", name, pol.Name())
		}
		back, err := proto.PolicyByte(name)
		if err != nil || back != b {
			t.Errorf("PolicyByte(%q) = %d, %v; want %d", name, back, err, b)
		}
		spol, err := policyFor(b)
		if err != nil {
			t.Errorf("server policyFor(%d) failed: %v", b, err)
		} else if spol.Name() != name {
			t.Errorf("server policyFor(%d) = %q, want %q", b, spol.Name(), name)
		}
	}

	// Simulator-only policies must fail typed at the wire boundary, not
	// leak through as a bogus byte.
	for _, name := range []string{"prefetch", "widefault", "pipelined-double"} {
		if _, err := core.ByName(name); err != nil {
			t.Errorf("core.ByName(%q) failed: %v", name, err)
		}
		var ue *proto.UnknownPolicyError
		if _, err := proto.PolicyByte(name); err == nil {
			t.Errorf("PolicyByte(%q) succeeded; want UnknownPolicyError for a simulator-only policy", name)
		} else if !errors.As(err, &ue) {
			t.Errorf("PolicyByte(%q) error %T, want *proto.UnknownPolicyError", name, err)
		}
	}
}

// TestClientPrefetchLearnsStride drives the learned prefetcher end to end:
// a strided reader (10 MinSubpage blocks per step, a stride no static
// pipeline window covers) against a real server must converge to carrying
// predictions in its want bitmaps and fault strictly less than the same
// walk under plain lazy fetching — with every byte still correct.
func TestClientPrefetchLearnsStride(t *testing.T) {
	const pages = 8
	const stride = 10 * units.MinSubpage

	walk := func(c *Client) int64 {
		buf := make([]byte, 64)
		for addr := uint64(0); addr+64 <= pages*units.PageSize; addr += stride {
			if err := c.Read(buf, addr); err != nil {
				t.Fatal(err)
			}
			page, off := addr/units.PageSize, addr%units.PageSize
			if want := pagePattern(page)[off : off+64]; !bytes.Equal(buf, want) {
				t.Fatalf("wrong bytes at addr %d", addr)
			}
		}
		return c.Stats().Faults
	}

	dir, _ := testCluster(t, pages)
	lazyFaults := walk(testClient(t, dir, ClientConfig{Policy: proto.PolicyLazy, SubpageSize: 1024}))

	dir2, _ := testCluster(t, pages)
	cp := testClient(t, dir2, ClientConfig{Prefetch: true, SubpageSize: 1024})
	prefFaults := walk(cp)

	st := cp.Stats()
	if st.Predicted == 0 {
		t.Fatal("prefetch client never carried a prediction in a want bitmap")
	}
	if prefFaults >= lazyFaults {
		t.Fatalf("prefetch client faulted %d times, lazy baseline %d; predictions saved nothing",
			prefFaults, lazyFaults)
	}
}

// TestClientPrefetchRejectsV1 pins the config guard: predictions ride the
// v2 want bitmap, so a v1-pinned prefetch client must fail at Dial.
func TestClientPrefetchRejectsV1(t *testing.T) {
	_, err := Dial(ClientConfig{Directory: "127.0.0.1:1", Prefetch: true, WireV1: true})
	if err == nil {
		t.Fatal("Dial accepted Prefetch+WireV1")
	}
}
