package remote

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// testCluster stands up a directory and one server holding npages pages
// whose contents are a per-page byte pattern.
func testCluster(t *testing.T, npages int) (*Directory, *Server) {
	t.Helper()
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	for p := 0; p < npages; p++ {
		srv.Store(uint64(p), pagePattern(uint64(p)))
	}
	if err := srv.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	return dir, srv
}

func pagePattern(page uint64) []byte {
	data := make([]byte, units.PageSize)
	for i := range data {
		data[i] = byte(page*131 + uint64(i)*7)
	}
	return data
}

func testClient(t *testing.T, dir *Directory, cfg ClientConfig) *Client {
	t.Helper()
	cfg.Directory = dir.Addr()
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDirectoryRegisterLookup(t *testing.T) {
	dir, srv := testCluster(t, 10)
	if dir.Len() != 10 {
		t.Fatalf("directory has %d pages, want 10", dir.Len())
	}
	addr, ok := dir.Lookup(3)
	if !ok || addr != srv.Addr() {
		t.Fatalf("Lookup(3) = %q, %v", addr, ok)
	}
	if _, ok := dir.Lookup(99); ok {
		t.Fatal("unknown page should not resolve")
	}
}

func TestReadWholePage(t *testing.T) {
	dir, _ := testCluster(t, 4)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	buf := make([]byte, units.PageSize)
	if err := c.Read(buf, 2*units.PageSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pagePattern(2)) {
		t.Fatal("page contents mismatch")
	}
	st := c.Stats()
	if st.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", st.Faults)
	}
}

func TestReadAcrossPages(t *testing.T) {
	dir, _ := testCluster(t, 4)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	// Read spanning pages 0 and 1.
	buf := make([]byte, 4096)
	addr := uint64(units.PageSize - 2048)
	if err := c.Read(buf, addr); err != nil {
		t.Fatal(err)
	}
	want := append(pagePattern(0)[units.PageSize-2048:], pagePattern(1)[:2048]...)
	if !bytes.Equal(buf, want) {
		t.Fatal("cross-page read mismatch")
	}
	if st := c.Stats(); st.Faults != 2 {
		t.Fatalf("Faults = %d, want 2", st.Faults)
	}
}

func TestPoliciesDeliverIdenticalData(t *testing.T) {
	dir, _ := testCluster(t, 6)
	for _, pol := range []uint8{proto.PolicyFullPage, proto.PolicyEager, proto.PolicyPipelined} {
		c := testClient(t, dir, ClientConfig{Policy: pol, SubpageSize: 1024})
		buf := make([]byte, units.PageSize)
		for p := 0; p < 6; p++ {
			// Fault at an interior offset to exercise the
			// fragment ordering.
			if err := c.Read(buf[:128], uint64(p)*units.PageSize+3000); err != nil {
				t.Fatalf("policy %d: %v", pol, err)
			}
			if err := c.Read(buf, uint64(p)*units.PageSize); err != nil {
				t.Fatalf("policy %d: %v", pol, err)
			}
			if !bytes.Equal(buf, pagePattern(uint64(p))) {
				t.Fatalf("policy %d: page %d mismatch", pol, p)
			}
		}
	}
}

func TestLazyRefetchesOnDemand(t *testing.T) {
	dir, _ := testCluster(t, 2)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyLazy, SubpageSize: 1024})
	var b [16]byte
	if err := c.Read(b[:], 0); err != nil {
		t.Fatal(err)
	}
	// A second subpage of the same page needs another fault.
	if err := c.Read(b[:], 4096); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Faults != 2 {
		t.Fatalf("lazy Faults = %d, want 2", st.Faults)
	}
	if st.BytesIn >= units.PageSize {
		t.Fatalf("lazy moved %d bytes, should be two subpages", st.BytesIn)
	}
}

func TestEagerCompletesPageInBackground(t *testing.T) {
	dir, _ := testCluster(t, 2)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager, SubpageSize: 1024})
	var b [16]byte
	if err := c.Read(b[:], 0); err != nil {
		t.Fatal(err)
	}
	// Reading the rest of the page must not issue a second fault (the
	// remainder streams in behind the first subpage; ensureValid waits
	// on the same in-flight transfer).
	buf := make([]byte, units.PageSize)
	if err := c.Read(buf, 0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Faults != 1 {
		t.Fatalf("eager Faults = %d, want 1", st.Faults)
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	dir, srv := testCluster(t, 8)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager, CachePages: 2})
	msg := []byte("written through remote memory")
	if err := c.Write(msg, 5*units.PageSize+100); err != nil {
		t.Fatal(err)
	}
	// Touch other pages to force eviction of page 5.
	var b [8]byte
	for p := 0; p < 4; p++ {
		if err := c.Read(b[:], uint64(p)*units.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions with a 2-page cache")
	}
	if st.PutPages == 0 {
		t.Fatal("dirty page should have been put back")
	}
	// Drain: re-read page 5 through a fresh client and check the write
	// survived on the server.
	c2 := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	got := make([]byte, len(msg))
	if err := c2.Read(got, 5*units.PageSize+100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("write-back lost: %q", got)
	}
	_ = srv
}

func TestUnknownPageFails(t *testing.T) {
	dir, _ := testCluster(t, 1)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	var b [8]byte
	if err := c.Read(b[:], 100*units.PageSize); err == nil {
		t.Fatal("reading an unregistered page should fail")
	}
	// The client remains usable for valid pages.
	if err := c.Read(b[:], 0); err != nil {
		t.Fatalf("client should survive a failed lookup: %v", err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	const pages = 16
	dir, _ := testCluster(t, pages)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager, CachePages: pages})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < 50; i++ {
				p := uint64((g + i) % pages)
				off := uint64((i * 997) % (units.PageSize - 256))
				if err := c.Read(buf, p*units.PageSize+off); err != nil {
					errs <- err
					return
				}
				want := pagePattern(p)[off : off+256]
				if !bytes.Equal(buf, want) {
					errs <- fmt.Errorf("goroutine %d: page %d data mismatch", g, p)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSubpageLatencyBelowFullLatency(t *testing.T) {
	dir, _ := testCluster(t, 32)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager, SubpageSize: 1024, CachePages: 64})
	var b [8]byte
	for p := 0; p < 32; p++ {
		if err := c.Read(b[:], uint64(p)*units.PageSize+2048); err != nil {
			t.Fatal(err)
		}
	}
	// Let the trailing fragments land.
	buf := make([]byte, units.PageSize)
	for p := 0; p < 32; p++ {
		if err := c.Read(buf, uint64(p)*units.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.SubpageLat.N() == 0 || st.FullLat.N() == 0 {
		t.Fatalf("latency stats missing: %d/%d", st.SubpageLat.N(), st.FullLat.N())
	}
	// The faulted subpage is usable no later than the full page: medians
	// must be ordered (this is the prototype's core claim).
	if st.SubpageLat.Median() > st.FullLat.Median() {
		t.Fatalf("subpage median %.0fus > full median %.0fus",
			st.SubpageLat.Median(), st.FullLat.Median())
	}
}

func TestWireEmulationRestoresSizeEffect(t *testing.T) {
	// On an emulated 10 Mb/s link (coarse enough to dominate scheduler
	// noise even on one CPU), an eager 1K-subpage fault must make the
	// faulted data usable well before a full-page fault would, and before
	// its own page completes — the prototype's headline result.
	dir, srv := testCluster(t, 48)
	srv.SetWireMbps(10)

	cEager := testClient(t, dir, ClientConfig{
		Policy: proto.PolicyEager, SubpageSize: 1024, CachePages: 64,
	})
	var b [8]byte
	buf := make([]byte, units.PageSize)
	// Pace the probes: complete each page before faulting the next, so
	// the medians measure isolated fault latency rather than queueing.
	for p := 0; p < 24; p++ {
		if err := cEager.Read(b[:], uint64(p)*units.PageSize+4000); err != nil {
			t.Fatal(err)
		}
		if err := cEager.Read(buf, uint64(p)*units.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	cFull := testClient(t, dir, ClientConfig{
		Policy: proto.PolicyFullPage, SubpageSize: 1024, CachePages: 64,
	})
	for p := 24; p < 48; p++ {
		if err := cFull.Read(b[:], uint64(p)*units.PageSize+4000); err != nil {
			t.Fatal(err)
		}
	}
	eager, full := cEager.Stats(), cFull.Stats()
	// 1K at 10 Mb/s serializes in ~0.8 ms, 8K in ~6.5 ms. Allow generous
	// scheduling noise but require a clear gap.
	if eager.SubpageLat.Median() >= full.SubpageLat.Median()*0.6 {
		t.Errorf("eager subpage median %.0fus should be well below fullpage %.0fus",
			eager.SubpageLat.Median(), full.SubpageLat.Median())
	}
	if eager.SubpageLat.Median() >= eager.FullLat.Median() {
		t.Errorf("eager subpage %.0fus should beat its own page completion %.0fus",
			eager.SubpageLat.Median(), eager.FullLat.Median())
	}
}

func TestInvalidSubpageSizeRejected(t *testing.T) {
	if _, err := Dial(ClientConfig{Directory: "127.0.0.1:1", SubpageSize: 100}); err == nil {
		t.Fatal("bad subpage size should fail")
	}
}

func TestBitmapRuns(t *testing.T) {
	runs := bitmapRuns(0)
	if len(runs) != 0 {
		t.Fatalf("empty bitmap: %v", runs)
	}
	runs = bitmapRuns(0xFFFFFFFF)
	if len(runs) != 1 || runs[0] != (byteRun{0, units.PageSize}) {
		t.Fatalf("full bitmap: %v", runs)
	}
	// Bits 0-3 and 8-11: two 1K runs with a gap.
	runs = bitmapRuns(0x00000F0F)
	want := []byteRun{{0, 1024}, {2048, 3072}}
	if len(runs) != 2 || runs[0] != want[0] || runs[1] != want[1] {
		t.Fatalf("split bitmap: %v, want %v", runs, want)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	dir, _ := testCluster(t, 1)
	c := testClient(t, dir, ClientConfig{Policy: 200}) // unknown policy byte
	var b [8]byte
	if err := c.Read(b[:], 0); err == nil {
		t.Fatal("unknown policy should produce a server error")
	}
}

func TestServerFailureIsScoped(t *testing.T) {
	// Two servers: killing one fails only its pages; the other keeps
	// serving and the client survives.
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srvA, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	srvA.Store(0, pagePattern(0))
	srvB.Store(1, pagePattern(1))
	if err := srvA.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := srvB.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}

	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	buf := make([]byte, 64)
	if err := c.Read(buf, 0); err != nil {
		t.Fatal(err)
	}

	// Kill server A, drop its page from the cache by... the page is
	// cached; use a fresh client so the fault must go to the network.
	srvA.Close()
	c2 := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	if err := c2.Read(buf, 0); err == nil {
		t.Fatal("page on the dead server should fail")
	}
	// Server B's page still works on the same client.
	if err := c2.Read(buf, units.PageSize); err != nil {
		t.Fatalf("page on the live server should still work: %v", err)
	}
	if !bytes.Equal(buf, pagePattern(1)[:64]) {
		t.Fatal("live server data mismatch")
	}
}

func TestInFlightFaultsFailWhenServerDies(t *testing.T) {
	// A fault stalled on a throttled server gets an error (not a hang)
	// when the server dies mid-transfer.
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Store(0, pagePattern(0))
	if err := srv.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	srv.SetWireMbps(0.5) // ~130 ms for a full page: plenty of time to kill it

	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyFullPage})
	errCh := make(chan error, 1)
	go func() {
		var b [8]byte
		errCh <- c.Read(b[:], 0)
	}()
	time.Sleep(20 * time.Millisecond) // let the fault get in flight
	srv.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("read should fail when the server dies mid-transfer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read hung after server death")
	}
}
