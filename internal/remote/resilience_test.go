package remote

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/chaos"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// fastRetry is a retry budget tuned for tests: real failures resolve in
// tens of milliseconds instead of seconds.
func fastRetry(cfg ClientConfig) ClientConfig {
	cfg.RequestTimeout = 500 * time.Millisecond
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 5 * time.Millisecond
	return cfg
}

// replicatedCluster stands up a directory and two servers both holding the
// same npages pages. srvA registers first and is the primary for every page.
func replicatedCluster(t *testing.T, npages int) (*Directory, *Server, *Server) {
	t.Helper()
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	srvA, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvA.Close() })
	srvB, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() })
	for p := 0; p < npages; p++ {
		srvA.Store(uint64(p), pagePattern(uint64(p)))
		srvB.Store(uint64(p), pagePattern(uint64(p)))
	}
	if err := srvA.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := srvB.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	return dir, srvA, srvB
}

// waitForGoroutines fails the test if the goroutine count does not settle
// back to want (with slack) — the leak check for the fault path.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > %d\n%s", n, want, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFailoverToReplicaMidWorkload(t *testing.T) {
	const pages = 8
	dir, srvA, _ := replicatedCluster(t, pages)
	if got := dir.Replicas(0); len(got) != 2 {
		t.Fatalf("Replicas(0) = %v, want 2 entries", got)
	}

	base := runtime.NumGoroutine()
	c := testClient(t, dir, fastRetry(ClientConfig{Policy: proto.PolicyEager, CachePages: pages}))
	buf := make([]byte, 256)
	for p := 0; p < pages; p++ {
		if p == 3 {
			// Primary dies mid-workload; the uncached pages that
			// follow must come from the replica.
			srvA.Close()
		}
		if err := c.Read(buf, uint64(p)*units.PageSize); err != nil {
			t.Fatalf("page %d after primary death: %v", p, err)
		}
		if !bytes.Equal(buf, pagePattern(uint64(p))[:256]) {
			t.Fatalf("page %d data mismatch after failover", p)
		}
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Fatalf("stats = %+v, expected failovers to the replica", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, base+2)
}

func TestUnregisteredPageFailsFast(t *testing.T) {
	dir, _ := testCluster(t, 1)
	c := testClient(t, dir, fastRetry(ClientConfig{Policy: proto.PolicyEager}))
	var b [8]byte
	start := time.Now()
	err := c.Read(b[:], 100*units.PageSize)
	if !errors.Is(err, ErrPageUnavailable) {
		t.Fatalf("err = %v, want ErrPageUnavailable", err)
	}
	var pe *PageError
	if !errors.As(err, &pe) || pe.Page != 100 {
		t.Fatalf("err = %v, want *PageError for page 100", err)
	}
	// An authoritative directory miss must not burn the retry budget.
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("directory miss took %v, should fail fast", el)
	}
}

func TestRetriesExhaustedReturnTypedError(t *testing.T) {
	dir, srv := testCluster(t, 1)
	srv.Close() // registered but gone, and no replica exists
	c := testClient(t, dir, fastRetry(ClientConfig{Policy: proto.PolicyEager}))
	var b [8]byte
	err := c.Read(b[:], 0)
	if !errors.Is(err, ErrPageUnavailable) {
		t.Fatalf("err = %v, want ErrPageUnavailable", err)
	}
	var pe *PageError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PageError", err)
	}
	if pe.Attempts != 3 { // MaxRetries(2) + 1
		t.Fatalf("Attempts = %d, want 3", pe.Attempts)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatalf("stats = %+v, expected retries", st)
	}
}

func TestStalledStreamHitsDeadlineNotHang(t *testing.T) {
	// The server accepts the request but its replies stall on the wire:
	// the per-attempt deadline must fire and the access must fail with a
	// typed error instead of wedging.
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	nw := chaos.New(chaos.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ListenServerOn(nw.WrapListener(ln))
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(func() { nw.StallWrites(false) }) // let server writes unwind first
	srv.Store(0, pagePattern(0))
	if err := srv.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	nw.StallWrites(true)

	cfg := fastRetry(ClientConfig{Policy: proto.PolicyEager})
	cfg.RequestTimeout = 200 * time.Millisecond
	cfg.MaxRetries = 1
	c := testClient(t, dir, cfg)
	var b [8]byte
	start := time.Now()
	err = c.Read(b[:], 0)
	if !errors.Is(err, ErrPageUnavailable) {
		t.Fatalf("err = %v, want ErrPageUnavailable", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("stalled stream took %v to fail, deadline did not fire", el)
	}
}

func TestHedgedFetchMasksSlowPrimary(t *testing.T) {
	// The primary's replies stall; a hedge to the replica must complete
	// the read well inside the request timeout.
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	nw := chaos.New(chaos.Config{})
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvA := ListenServerOn(nw.WrapListener(lnA))
	t.Cleanup(func() { srvA.Close() })
	t.Cleanup(func() { nw.StallWrites(false) })
	srvB, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() })
	srvA.Store(0, pagePattern(0))
	srvB.Store(0, pagePattern(0))
	if err := srvA.RegisterWith(dir.Addr()); err != nil { // primary
		t.Fatal(err)
	}
	if err := srvB.RegisterWith(dir.Addr()); err != nil { // replica
		t.Fatal(err)
	}
	nw.StallWrites(true)

	cfg := ClientConfig{Policy: proto.PolicyEager, Hedge: 30 * time.Millisecond}
	cfg.RequestTimeout = 5 * time.Second // the hedge, not the deadline, must save us
	c := testClient(t, dir, cfg)
	buf := make([]byte, 256)
	start := time.Now()
	if err := c.Read(buf, 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("hedged read took %v, replica should have answered fast", el)
	}
	if !bytes.Equal(buf, pagePattern(0)[:256]) {
		t.Fatal("hedged read data mismatch")
	}
	if st := c.Stats(); st.Hedges == 0 {
		t.Fatalf("stats = %+v, expected a hedge", st)
	}
}

func TestDuplicateRegistrationBecomesReplica(t *testing.T) {
	dir, srvA, srvB := replicatedCluster(t, 1)
	got := dir.Replicas(0)
	if len(got) != 2 || got[0] != srvA.Addr() || got[1] != srvB.Addr() {
		t.Fatalf("Replicas(0) = %v, want [%s %s]", got, srvA.Addr(), srvB.Addr())
	}
	// Re-registration by the same server is idempotent; the primary
	// keeps its role.
	if err := srvB.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := dir.Replicas(0); len(got) != 2 {
		t.Fatalf("re-registration grew the replica list: %v", got)
	}
	if addr, ok := dir.Lookup(0); !ok || addr != srvA.Addr() {
		t.Fatalf("Lookup(0) = %q, want primary %s", addr, srvA.Addr())
	}
	if got := dir.Replicas(99); len(got) != 0 {
		t.Fatalf("Replicas(99) = %v, want empty", got)
	}
}

func TestDirectoryReconnect(t *testing.T) {
	dir, srv := testCluster(t, 2)
	c := testClient(t, dir, fastRetry(ClientConfig{Policy: proto.PolicyEager}))
	var b [8]byte
	if err := c.Read(b[:], 0); err != nil {
		t.Fatal(err)
	}

	// The directory restarts on the same address; the client's cached
	// connection is dead and the next lookup must redial.
	addr := dir.Addr()
	dir.Close()
	dir2, err := ListenDirectory(addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer dir2.Close()
	if err := srv.RegisterWith(dir2.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(b[:], units.PageSize); err != nil {
		t.Fatalf("lookup after directory restart: %v", err)
	}
}

func TestCloseUnblocksPendingFault(t *testing.T) {
	// A fault stuck on a stalled server must not keep Close (or the
	// reader) waiting: shutdown aborts in-flight attempts.
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	nw := chaos.New(chaos.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ListenServerOn(nw.WrapListener(ln))
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(func() { nw.StallWrites(false) })
	srv.Store(0, pagePattern(0))
	if err := srv.RegisterWith(dir.Addr()); err != nil {
		t.Fatal(err)
	}
	nw.StallWrites(true)

	cfg := ClientConfig{Policy: proto.PolicyEager}
	cfg.RequestTimeout = 30 * time.Second // Close, not the deadline, must unblock
	cfg.Directory = dir.Addr()
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	readDone := make(chan error, 1)
	go func() {
		var b [8]byte
		readDone <- c.Read(b[:], 0)
	}()
	time.Sleep(50 * time.Millisecond) // let the fault get in flight
	closeDone := make(chan error, 1)
	go func() { closeDone <- c.Close() }()
	for _, ch := range []chan error{readDone, closeDone} {
		select {
		case err := <-ch:
			if ch == readDone && err == nil {
				t.Fatal("read during shutdown should fail")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("shutdown left the client wedged")
		}
	}
}
