package remote

import (
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/chaos"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// TestChaosKillRestartSelfHeal is the end-to-end control-plane recovery
// scenario from the issue, asserted rather than inspected:
//
//  1. kill the primary mid-workload — replicated reads fail over, the
//     breaker opens on the dead address;
//  2. the directory's lease expires — within one TTL no lookup returns the
//     dead address, and pages only it held report unavailable (the
//     caller's cue to fall back to disk);
//  3. restart the server on the same address — it re-registers with a
//     higher epoch, the client's half-open probe closes the breaker, and
//     the once-lost pages serve again.
func TestChaosKillRestartSelfHeal(t *testing.T) {
	runSelfHealScenario(t, nil)
}

// TestChaosKillRestartSoak reruns the self-heal scenario on a lossy,
// jittery network, where timeouts and replays land at arbitrary points of
// the lease/breaker state machines. Heavyweight: enable it with
// GMS_CHAOS_SOAK=1 (the `make chaos` target does).
func TestChaosKillRestartSoak(t *testing.T) {
	if os.Getenv("GMS_CHAOS_SOAK") == "" {
		t.Skip("soak scenario: set GMS_CHAOS_SOAK=1 (or run `make chaos`)")
	}
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSelfHealScenario(t, chaos.New(chaos.Config{
				Jitter:   2 * time.Millisecond,
				DropRate: 0.01,
				Seed:     seed,
			}))
		})
	}
}

func runSelfHealScenario(t *testing.T, nw *chaos.Network) {
	t.Helper()
	const (
		ttl       = 250 * time.Millisecond
		heartbeat = 50 * time.Millisecond
		npages    = 8           // replicated on both servers
		solo      = uint64(100) // held only by the primary
	)
	dir, err := ListenDirectoryWith("127.0.0.1:0", DirectoryConfig{LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })

	startServer := func(addr string, withSolo bool) (*Server, error) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		if nw != nil {
			ln = nw.WrapListener(ln)
		}
		s := ListenServerOn(ln)
		s.SetHeartbeatInterval(heartbeat)
		for p := 0; p < npages; p++ {
			s.Store(uint64(p), pagePattern(uint64(p)))
		}
		if withSolo {
			s.Store(solo, pagePattern(solo))
		}
		if err := s.RegisterWith(dir.Addr()); err != nil {
			s.Close()
			return nil, err
		}
		return s, nil
	}
	primary, err := startServer("127.0.0.1:0", true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	replica, err := startServer("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	addrA := primary.Addr()

	c := testClient(t, dir, fastRetry(ClientConfig{
		CachePages:       2, // smaller than the working set, so reads refault
		SubpageSize:      1024,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	}))
	readPage := func(p uint64) error {
		buf := make([]byte, 64)
		if err := c.Read(buf, p*units.PageSize); err != nil {
			return err
		}
		want := pagePattern(p)[:64]
		for i := range buf {
			if buf[i] != want[i] {
				return fmt.Errorf("page %d: data mismatch at byte %d", p, i)
			}
		}
		return nil
	}

	// readPageEventually retries a read until deadline: under injected
	// faults a single retry budget can lose to the fault schedule, but no
	// fault may ever be permanently stuck.
	readPageEventually := func(p uint64, deadline time.Time) error {
		for {
			err := readPage(p)
			if err == nil || time.Now().After(deadline) {
				return err
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Phase 0: healthy — everything reads.
	for p := uint64(0); p < npages; p++ {
		if err := readPageEventually(p, time.Now().Add(5*time.Second)); err != nil {
			t.Fatalf("healthy read of page %d: %v", p, err)
		}
	}
	if err := readPageEventually(solo, time.Now().Add(5*time.Second)); err != nil {
		t.Fatalf("healthy read of solo page: %v", err)
	}
	epochBefore, ok := dir.ServerEpoch(addrA)
	if !ok {
		t.Fatalf("directory has no epoch for %s", addrA)
	}

	// Phase 1: kill the primary mid-workload. Replicated reads must keep
	// succeeding via failover, and the breaker must open on the dead addr.
	killedAt := time.Now()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < npages; p++ {
		if err := readPageEventually(p, time.Now().Add(5*time.Second)); err != nil {
			t.Fatalf("post-kill read of replicated page %d never recovered: %v", p, err)
		}
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Fatal("replicated reads after the kill should have failed over")
	}
	if st.BreakerOpens == 0 {
		t.Fatal("breaker should have opened on the dead primary")
	}

	// Phase 2: the lease lapses. Within one TTL (plus scheduling slack) no
	// lookup may return the dead address.
	deadline := killedAt.Add(ttl + 500*time.Millisecond)
	for {
		stale := false
		for p := uint64(0); p < npages; p++ {
			for _, a := range dir.Replicas(p) {
				if a == addrA {
					stale = true
				}
			}
		}
		if _, found := dir.Lookup(solo); found {
			stale = true
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead server %s still listed %v after its kill (TTL %v)",
				addrA, time.Since(killedAt), ttl)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The solo page is now gone from network memory: the read must fail
	// with the typed error a pager would turn into a disk fallback.
	if err := readPage(solo); !errors.Is(err, ErrPageUnavailable) {
		t.Fatalf("solo page after lease expiry: err = %v, want ErrPageUnavailable", err)
	}

	// Phase 3: restart on the same address. The new incarnation registers
	// with a higher epoch and the lost pages serve again; the client's
	// half-open probe closes the breaker.
	var restarted *Server
	for attempt := 0; attempt < 50; attempt++ {
		restarted, err = startServer(addrA, true)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Skipf("could not rebind %s to restart the server: %v", addrA, err)
	}
	t.Cleanup(func() { restarted.Close() })
	epochAfter, ok := dir.ServerEpoch(addrA)
	if !ok || epochAfter <= epochBefore {
		t.Fatalf("restart epoch = %d (ok=%v), want > %d", epochAfter, ok, epochBefore)
	}

	recoverBy := time.Now().Add(5 * time.Second)
	for {
		if err := readPage(solo); err == nil {
			break
		} else if time.Now().After(recoverBy) {
			t.Fatalf("solo page still unavailable after restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for p := uint64(0); p < npages; p++ {
		if err := readPageEventually(p, time.Now().Add(5*time.Second)); err != nil {
			t.Fatalf("post-restart read of page %d: %v", p, err)
		}
	}
	// Read unblocks on the faulted subpage; the breaker records success
	// when the whole transfer completes, a moment later. Poll.
	waitBreakerClosed(t, c, 2*time.Second)
	if st = c.Stats(); st.BreakerProbes == 0 {
		t.Fatal("recovery should have gone through a half-open probe")
	}
}
