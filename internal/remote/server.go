package remote

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Server is a page server: a node donating memory to the global cache. It
// answers GetPage requests by streaming the faulted subpage first and the
// remainder according to the requested policy, and accepts PutPage traffic
// from evicting clients.
// DefaultHeartbeatInterval is the lease-renewal period used unless
// SetHeartbeatInterval overrides it. It must stay well under the
// directory's lease TTL so a healthy server never expires.
const DefaultHeartbeatInterval = 5 * time.Second

type Server struct {
	ln net.Listener

	mu    sync.Mutex
	pages map[uint64]*pageBuf
	conns map[net.Conn]struct{}
	done  bool

	// Control-plane state. dirAddr is the bootstrap directory remembered
	// from the last RegisterWith so lease renewal and post-restart
	// re-registration reuse it; dirAddrs is every directory holding a lease
	// for this server — just the bootstrap when the deployment is
	// unsharded, all shards from the bootstrap's shard map when it is.
	// epoch is the registration epoch: drawn from the wall clock at first
	// registration (so a restarted incarnation always registers higher) or
	// pinned by SetEpoch in tests. hbOn records that the heartbeat loop is
	// running.
	dirAddr  string
	dirAddrs []string
	epoch    uint64
	hbEvery  time.Duration
	hbOn     bool

	// wireNsPerByte emulates a slower link: the server delays each data
	// fragment by its serialization time at the configured rate. Loopback
	// TCP is effectively infinitely fast, which hides the transfer-size
	// effects the paper measures on a 155 Mb/s ATM; throttling restores
	// them. Zero means no throttling. Accessed atomically.
	wireNsPerByte int64

	// Stats.
	Gets    int64
	Puts    int64
	Cancels int64 // v2 requests withdrawn by TCancel before completion
	Reregs  int64 // full re-registrations after a directory answered "no lease"

	// met holds the gms_server_* metric handles (nil-safe no-ops until
	// SetMetrics is called).
	met serverMetrics

	hbStop    chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup
}

// SetWireMbps emulates a link of the given megabits per second (0 disables
// emulation). 155 reproduces the paper's AN2 ATM rate.
func (s *Server) SetWireMbps(mbps float64) {
	var perByte int64
	if mbps > 0 {
		perByte = int64(math.Round(8_000 / mbps)) // ns per byte
	}
	atomic.StoreInt64(&s.wireNsPerByte, perByte)
}

// wireDelay stalls for the serialization time of n bytes, if emulating.
// Delays are tens to hundreds of microseconds, so each connection carries
// its own precise sleeper (see delay_linux.go): Go's own timers can have a
// millisecond floor, and thread-blocking sleeps can starve the client's
// goroutines on a single CPU.
func (s *Server) wireDelay(slp *sleeper, n int) {
	perByte := atomic.LoadInt64(&s.wireNsPerByte)
	if perByte <= 0 || n <= 0 {
		return
	}
	slp.Sleep(time.Duration(perByte * int64(n)))
}

// ListenServer starts a page server on addr.
func ListenServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: server listen: %w", err)
	}
	return ListenServerOn(ln), nil
}

// ListenServerOn starts a page server on an existing listener — the hook
// for serving through a chaos injector or a custom transport.
func ListenServerOn(ln net.Listener) *Server {
	s := &Server{
		ln:      ln,
		pages:   make(map[uint64]*pageBuf),
		conns:   make(map[net.Conn]struct{}),
		hbEvery: DefaultHeartbeatInterval,
		hbStop:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetMetrics registers the server's gms_server_* metrics on r (nil
// disables them). Call before serving traffic; the handles themselves are
// nil-safe, so an unset registry costs one pointer compare per event.
func (s *Server) SetMetrics(r *obs.Registry) {
	s.mu.Lock()
	s.met = newServerMetrics(r)
	s.met.pages.Set(int64(len(s.pages)))
	s.mu.Unlock()
}

// Close stops the server, severing active connections and stopping the
// lease-renewal heartbeat. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.ln.Close()
		close(s.hbStop)
		s.mu.Lock()
		s.done = true
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return s.closeErr
}

// SetEpoch pins the server's registration epoch; call before RegisterWith.
// Tests use it to model server incarnations deterministically. By default
// the epoch is drawn from the wall clock at first registration, so a
// restarted server always registers with a higher epoch than its
// predecessor and fences out that incarnation's directory entries.
func (s *Server) SetEpoch(e uint64) {
	s.mu.Lock()
	s.epoch = e
	s.mu.Unlock()
}

// Epoch reports the server's registration epoch (zero before the first
// RegisterWith if SetEpoch was never called).
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetHeartbeatInterval overrides the lease-renewal period. It takes effect
// from the next heartbeat; keep it well under the directory's lease TTL.
func (s *Server) SetHeartbeatInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultHeartbeatInterval
	}
	s.mu.Lock()
	s.hbEvery = d
	s.mu.Unlock()
}

// pageBuf is one page-sized buffer with a reference count: the pages map
// holds one reference, and every in-flight reply stream holds another for
// as long as it reads the data. Buffers recycle through pagePool when the
// last reference drops, so a steady stream of Store calls — the client
// write-back path, the load harness warm-up — runs without allocating or
// garbage-collecting a page per call (the Server.Store bugfix; budget
// pinned by BenchmarkServerStoreAllocs).
type pageBuf struct {
	data []byte // always units.PageSize long
	refs atomic.Int64
}

var pagePool = sync.Pool{
	New: func() any { return &pageBuf{data: make([]byte, units.PageSize)} },
}

// newPageBuf takes a buffer from the pool holding one reference, filled
// with data and zero-padded to a full page.
func newPageBuf(data []byte) *pageBuf {
	pb := pagePool.Get().(*pageBuf)
	pb.refs.Store(1)
	n := copy(pb.data, data)
	clear(pb.data[n:]) // pooled buffers carry a previous page's bytes
	return pb
}

func (pb *pageBuf) retain() { pb.refs.Add(1) }

func (pb *pageBuf) release() {
	if pb.refs.Add(-1) == 0 {
		pagePool.Put(pb)
	}
}

// Store makes the server hold a page. The data is copied into a pooled
// buffer; short data is zero-padded to a full page.
func (s *Server) Store(page uint64, data []byte) {
	pb := newPageBuf(data)
	s.mu.Lock()
	old := s.pages[page]
	s.pages[page] = pb
	s.met.pages.Set(int64(len(s.pages)))
	s.mu.Unlock()
	if old != nil {
		// Dropped outside the lock: release may return the buffer to the
		// pool, and an in-flight reply stream may still hold a reference.
		old.release()
	}
}

// Pages returns the number of pages stored.
func (s *Server) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// RegisterWith announces every stored page to the directory at dirAddr and
// takes out a lease there, which the server then renews on a heartbeat
// ticker until Close. If the bootstrap directory serves a sharded map, the
// page list is partitioned by ring owner and the server registers with —
// and leases itself to — every shard, so each shard's janitor tracks this
// server's liveness independently. The addresses are remembered so renewal
// and post-restart re-registration reuse them. An unreachable directory
// yields a typed error matching ErrDirectoryUnreachable.
func (s *Server) RegisterWith(dirAddr string) error {
	s.mu.Lock()
	if s.epoch == 0 {
		s.epoch = uint64(time.Now().UnixNano())
	}
	epoch := s.epoch
	s.dirAddr = dirAddr
	startHB := !s.hbOn && !s.done
	if startHB {
		s.hbOn = true
	}
	ids := make([]uint64, 0, len(s.pages))
	for p := range s.pages {
		ids = append(ids, p)
	}
	s.mu.Unlock()
	if startHB {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}

	m, err := getShardMap(dirAddr)
	if err != nil {
		return err
	}
	ring := proto.NewRing(m)
	if ring == nil {
		s.mu.Lock()
		s.dirAddrs = []string{dirAddr}
		s.mu.Unlock()
		return s.registerAt(dirAddr, epoch, ids)
	}
	byShard := make([][]uint64, len(m.Shards))
	for _, p := range ids {
		byShard[ring.Owner(p)] = append(byShard[ring.Owner(p)], p)
	}
	s.mu.Lock()
	s.dirAddrs = append([]string(nil), m.Shards...)
	s.mu.Unlock()
	for i, addr := range m.Shards {
		// An empty batch still takes out a lease: the shard tracks this
		// server even before it owns any of its pages.
		if err := s.registerAt(addr, epoch, byShard[i]); err != nil {
			return err
		}
	}
	return nil
}

// registerTimeout bounds each dial and register/ack round trip with the
// directory: a wedged or silent directory fails the registration (and the
// heartbeat self-heal behind it) instead of hanging it forever.
const registerTimeout = 2 * time.Second

// registerAt streams one registration (in frame-bounded batches) to the
// directory at dirAddr. An empty server still sends one registration so it
// holds a lease.
func (s *Server) registerAt(dirAddr string, epoch uint64, ids []uint64) error {
	conn, err := net.DialTimeout("tcp", dirAddr, registerTimeout)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrDirectoryUnreachable, dirAddr, err)
	}
	defer conn.Close()
	w := proto.NewWriter(conn)
	r := proto.NewReader(conn)
	const batch = (proto.MaxPayload - 256) / 8
	for first := true; first || len(ids) > 0; first = false {
		n := len(ids)
		if n > batch {
			n = batch
		}
		// A fresh deadline per batch: a large registration streams many
		// round trips, and it is per-exchange progress that proves the
		// directory alive, not total elapsed time.
		_ = conn.SetDeadline(time.Now().Add(registerTimeout))
		if err := w.SendRegister(proto.Register{Addr: s.Addr(), Epoch: epoch, Pages: ids[:n]}); err != nil {
			return err
		}
		f, err := r.Next()
		if err != nil {
			return err
		}
		switch f.Type {
		case proto.TAck:
		case proto.TError:
			return fmt.Errorf("remote: register: %s", proto.DecodeError(f.Payload).Text)
		case proto.TGetPage, proto.TPageData, proto.TPutPage, proto.TLookup,
			proto.TLookupReply, proto.TRegister, proto.THeartbeat,
			proto.TGetShardMap, proto.TShardMap, proto.TWrongShard,
			proto.TGetPageV2, proto.TSubpageBatch, proto.TCancel,
			proto.TDrain, proto.TDrainReply:
			return fmt.Errorf("remote: register: unexpected %v", f.Type)
		}
		ids = ids[n:]
	}
	return nil
}

// getShardMap asks the directory at addr which shard map it serves. The
// empty map means the deployment is unsharded. An unreachable directory
// yields a typed error matching ErrDirectoryUnreachable.
func getShardMap(addr string) (proto.ShardMap, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return proto.ShardMap{}, fmt.Errorf("%w: %s: %v", ErrDirectoryUnreachable, addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	w := proto.NewWriter(conn)
	r := proto.NewReader(conn)
	if err := w.SendGetShardMap(); err != nil {
		return proto.ShardMap{}, fmt.Errorf("remote: shard map from %s: %w", addr, err)
	}
	f, err := r.Next()
	if err != nil {
		return proto.ShardMap{}, fmt.Errorf("remote: shard map from %s: %w", addr, err)
	}
	if f.Type != proto.TShardMap {
		return proto.ShardMap{}, fmt.Errorf("remote: shard map from %s: unexpected %v", addr, f.Type)
	}
	return proto.DecodeShardMap(f.Payload)
}

// heartbeatLoop renews the directory lease until Close. A lost lease
// (directory restarted, or renewals delayed past the TTL) triggers a full
// re-registration; an unreachable directory is retried next tick.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		every := s.hbEvery
		s.mu.Unlock()
		t := time.NewTimer(every)
		select {
		case <-s.hbStop:
			t.Stop()
			return
		case <-t.C:
		}
		s.heartbeat()
	}
}

// heartbeat sends one lease renewal to every directory holding a lease
// (each shard in a sharded deployment). Errors are deliberately swallowed:
// the loop's only obligation is to try again next tick. Any directory that
// answers "no lease" triggers one full re-registration, which refreshes
// every shard, so the remaining renewals this tick are skipped.
func (s *Server) heartbeat() {
	s.mu.Lock()
	boot, epoch, met := s.dirAddr, s.epoch, s.met
	dirs := append([]string(nil), s.dirAddrs...)
	s.mu.Unlock()
	if len(dirs) == 0 {
		if boot == "" {
			return
		}
		dirs = []string{boot}
	}
	for _, dir := range dirs {
		renewed, err := s.renewAt(dir, epoch)
		if err != nil {
			continue // unreachable: retried next tick
		}
		met.heartbeats.Inc()
		if !renewed {
			met.reregs.Inc()
			atomic.AddInt64(&s.Reregs, 1)
			_ = s.RegisterWith(boot)
			return
		}
	}
}

// renewAt sends one lease renewal to the directory at dir, reporting
// whether the directory still recognized the lease.
func (s *Server) renewAt(dir string, epoch uint64) (bool, error) {
	conn, err := net.DialTimeout("tcp", dir, time.Second)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	w := proto.NewWriter(conn)
	r := proto.NewReader(conn)
	if err := w.SendHeartbeat(proto.Heartbeat{Addr: s.Addr(), Epoch: epoch}); err != nil {
		return false, err
	}
	f, err := r.Next()
	if err != nil {
		return false, err
	}
	return f.Type == proto.TAck, nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// A served connection idles until the peer sends a request or
			// hangs up; dead peers are reaped by directory lease expiry,
			// not by read deadlines here.
			s.serve(conn) //lint:allow deadlinecheck request reads idle by design until the peer sends or hangs up; lease expiry bounds dead peers
		}()
	}
}

// srvReq is one unit of work handed from a connection's reader to its
// writer goroutine.
type srvReq struct {
	get    proto.GetPage   // valid when kind == reqGetV1
	getV2  proto.GetPageV2 // valid when kind == reqGetV2
	errMsg string          // valid when kind == reqError
	kind   uint8
}

const (
	reqGetV1 = iota
	reqGetV2
	reqError
)

// connState is the per-connection serving state shared by the reader and
// writer halves. The reader decodes requests into queue and records
// cancellations; the writer drains queue, streaming replies and checking
// canceled between batches. live bounds canceled: a TCancel for an ID
// that is not queued or streaming is dropped, so a peer cannot grow the
// map with IDs the server never saw.
type connState struct {
	conn  net.Conn
	queue chan srvReq

	cmu      sync.Mutex
	live     map[uint64]bool
	canceled map[uint64]bool

	// Writer-goroutine scratch, reused across batches so the steady-state
	// reply path allocates nothing per request.
	hdr  []byte
	bufs net.Buffers
	runs []proto.SubpageRun
	brs  []byteRun
}

// begin records a v2 request as live (called by the reader on enqueue).
func (st *connState) begin(id uint64) {
	st.cmu.Lock()
	st.live[id] = true
	st.cmu.Unlock()
}

// cancel marks a live request canceled; cancels for unknown IDs no-op.
func (st *connState) cancel(id uint64) {
	st.cmu.Lock()
	if st.live[id] {
		st.canceled[id] = true
	}
	st.cmu.Unlock()
}

// isCanceled is the writer's between-batches poll.
func (st *connState) isCanceled(id uint64) bool {
	st.cmu.Lock()
	defer st.cmu.Unlock()
	return st.canceled[id]
}

// finish retires a request's cancel-tracking state.
func (st *connState) finish(id uint64) {
	st.cmu.Lock()
	delete(st.live, id)
	delete(st.canceled, id)
	st.cmu.Unlock()
}

func (s *Server) serve(conn net.Conn) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Latency matters more than throughput on this path.
		_ = tc.SetNoDelay(true)
	}
	st := &connState{
		conn:     conn,
		queue:    make(chan srvReq, 64),
		live:     make(map[uint64]bool),
		canceled: make(map[uint64]bool),
	}
	// The writer half streams replies while this reader half keeps
	// decoding, so a TCancel racing a reply stream is seen mid-stream —
	// the point of the split. The queue close below is its stop path.
	writerDone := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(writerDone)
		s.writeLoop(st)
	}()
	defer func() {
		close(st.queue)
		// Let the writer flush queued replies (it bails out the moment a
		// write fails); the connection closes after it is done.
		<-writerDone
	}()
	r := proto.NewReader(conn)
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case proto.TGetPage:
			req, err := proto.DecodeGetPage(f.Payload)
			if err != nil {
				st.queue <- srvReq{kind: reqError, errMsg: err.Error()}
				return
			}
			st.queue <- srvReq{kind: reqGetV1, get: req}
		case proto.TGetPageV2:
			req, err := proto.DecodeGetPageV2(f.Payload)
			if err != nil {
				st.queue <- srvReq{kind: reqError, errMsg: err.Error()}
				return
			}
			st.begin(req.ReqID)
			st.queue <- srvReq{kind: reqGetV2, getV2: req}
		case proto.TCancel:
			cn, err := proto.DecodeCancel(f.Payload)
			if err != nil {
				st.queue <- srvReq{kind: reqError, errMsg: err.Error()}
				return
			}
			st.cancel(cn.ReqID)
		case proto.TPutPage:
			put, err := proto.DecodePutPage(f.Payload)
			if err != nil {
				st.queue <- srvReq{kind: reqError, errMsg: err.Error()}
				return
			}
			s.Store(put.Page, put.Data)
			s.mu.Lock()
			s.Puts++
			met := s.met
			s.mu.Unlock()
			met.puts.Inc()
		case proto.TAck, proto.TLookup, proto.TLookupReply, proto.TRegister,
			proto.TError, proto.THeartbeat, proto.TGetShardMap,
			proto.TShardMap, proto.TWrongShard, proto.TPageData,
			proto.TSubpageBatch, proto.TDrain, proto.TDrainReply:
			// Tags a page server never receives; refuse and hang up so a
			// confused peer cannot keep feeding us misdirected traffic.
			st.queue <- srvReq{kind: reqError, errMsg: fmt.Sprintf("server: unexpected %v", f.Type)}
			return
		}
	}
}

// writeLoop is a connection's writer half: it owns every byte written to
// the connection, serving queued requests in arrival order. After a write
// error the connection is severed (unblocking the reader) and the
// remaining queue is drained without touching the wire.
func (s *Server) writeLoop(st *connState) {
	slp := newSleeper()
	defer slp.Close()
	w := proto.NewWriter(st.conn)
	dead := false
	for req := range st.queue {
		if dead {
			if req.kind == reqGetV2 {
				st.finish(req.getV2.ReqID)
			}
			continue
		}
		var err error
		switch req.kind {
		case reqGetV1:
			err = s.sendPage(w, req.get, slp)
		case reqGetV2:
			err = s.sendPageV2(st, w, req.getV2, slp)
			st.finish(req.getV2.ReqID)
		case reqError:
			err = w.SendError(req.errMsg)
		}
		if err != nil {
			dead = true
			_ = st.conn.Close()
		}
	}
}

// policyFor maps a wire policy byte to a transfer plan policy through the
// protocol's shared name mapping, so the server and the public DialClient
// can never drift on which policies the wire carries.
func policyFor(b uint8) (core.Policy, error) {
	name, err := proto.PolicyName(b)
	if err != nil {
		return nil, err
	}
	return core.ByName(name)
}

// sendPage streams the fragments of one page per the requested policy:
// the fragment covering the fault goes first, the rest follow immediately
// behind it on the wire (the prototype's sender pipelining).
func (s *Server) sendPage(w *proto.Writer, req proto.GetPage, slp *sleeper) error {
	pb, pol, sub, off, errMsg := s.openGet(req.Page, req.Policy, req.SubpageSize, req.FaultOff)
	if errMsg != "" {
		return w.SendError(errMsg)
	}
	defer pb.release()
	data := pb.data
	met := s.metrics()

	plan := pol.Plan(sub, off)
	for i, msg := range plan {
		for _, run := range bitmapRuns(msg.Covers) {
			flags := uint8(0)
			if i == 0 && run.contains(off) {
				flags |= proto.FlagFirst
			}
			s.wireDelay(slp, run.end-run.start)
			if err := w.SendPageData(proto.PageData{
				Page:   req.Page,
				Offset: uint32(run.start),
				Flags:  flags,
				Data:   data[run.start:run.end],
			}); err != nil {
				return err
			}
			met.bytesOut.Add(int64(run.end - run.start))
		}
	}
	// A zero-length terminator marks the reply complete.
	return w.SendPageData(proto.PageData{Page: req.Page, Flags: proto.FlagLast})
}

// openGet validates one get request and pins its page: the returned
// pageBuf holds a reference the caller must release. A non-empty errMsg
// means the request is refused (pb is nil).
func (s *Server) openGet(page uint64, policy uint8, subpageSize, faultOff uint32) (pb *pageBuf, pol core.Policy, sub, off int, errMsg string) {
	s.mu.Lock()
	pb = s.pages[page]
	if pb != nil {
		pb.retain()
	}
	s.Gets++
	met := s.met
	s.mu.Unlock()
	met.gets.Inc()
	if pb == nil {
		return nil, nil, 0, 0, fmt.Sprintf("server: page %d not stored", page)
	}
	var err error
	if pol, err = policyFor(policy); err != nil {
		pb.release()
		return nil, nil, 0, 0, err.Error()
	}
	sub = int(subpageSize)
	if !units.ValidSubpageSize(sub) {
		pb.release()
		return nil, nil, 0, 0, fmt.Sprintf("server: bad subpage size %d", sub)
	}
	off = int(faultOff)
	if off < 0 || off >= units.PageSize {
		pb.release()
		return nil, nil, 0, 0, fmt.Sprintf("server: bad fault offset %d", off)
	}
	return pb, pol, sub, off, ""
}

func (s *Server) metrics() serverMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.met
}

// sendPageV2 streams one page as TSubpageBatch frames: the plan message
// covering the fault goes first (FlagFirst), the remainder follows in as
// few batches as the frame size allows, and the final batch carries
// FlagLast. The want bitmap trims the plan to the blocks the client still
// misses (the faulted block is always sent). Between batches the request's
// cancel flag is polled, so a withdrawn hedge stops mid-page instead of
// burning the rest of its bandwidth.
//
// Batch boundaries follow the transfer plan whenever wire emulation is on,
// preserving the per-message serialization delays the paper's model
// measures; on a raw loopback the remainder coalesces into maximal frames,
// which is the batching win itself.
func (s *Server) sendPageV2(st *connState, w *proto.Writer, req proto.GetPageV2, slp *sleeper) error {
	pb, pol, sub, off, errMsg := s.openGet(req.Page, req.Policy, req.SubpageSize, req.FaultOff)
	if errMsg != "" {
		return w.SendError(errMsg)
	}
	defer pb.release()
	met := s.metrics()

	want := memmodel.Bitmap(req.Want)
	if want == 0 {
		want = ^memmodel.Bitmap(0)
	}
	want |= 1 << (off / units.MinSubpage) // the faulted block is never optional

	plan := pol.Plan(sub, off)
	emulate := atomic.LoadInt64(&s.wireNsPerByte) > 0
	canceled := func() bool {
		if !st.isCanceled(req.ReqID) {
			return false
		}
		s.mu.Lock()
		s.Cancels++
		s.mu.Unlock()
		return true
	}

	// The want bitmap is a request, not a filter: blocks the client asks for
	// beyond the plan's coverage (prefetch predictions on a lazy fault) are
	// still owed. The plan shapes timing and batching; want decides content.
	first := plan[0].Covers & want
	rest := want &^ first

	if !emulate {
		// Fast path: the faulted message, then one maximal batch for the
		// remainder (a full page minus one subpage fits a single frame).
		flags := uint8(proto.FlagFirst)
		if rest == 0 {
			flags |= proto.FlagLast
		}
		if err := s.writeBatch(st, req.ReqID, req.Page, flags, first, pb.data, met, slp); err != nil {
			return err
		}
		if rest == 0 || canceled() {
			return nil
		}
		return s.writeBatch(st, req.ReqID, req.Page, proto.FlagLast, rest, pb.data, met, slp)
	}

	// Emulated wire: one batch per plan message, each delayed by its
	// serialization time, so v2 keeps the arrival timing the transfer
	// plans model — only the framing overhead changes. Requested blocks no
	// plan message covers ride the final batch: they arrive last, after
	// everything the policy deliberately scheduled.
	planned := memmodel.Bitmap(0)
	for _, msg := range plan {
		planned |= msg.Covers
	}
	extra := want &^ planned
	sent := memmodel.Bitmap(0)
	for i, msg := range plan {
		covers := msg.Covers & want &^ sent
		last := i == len(plan)-1
		if last {
			covers |= extra
		}
		if covers == 0 && !last {
			continue
		}
		if i > 0 && canceled() {
			return nil
		}
		flags := uint8(0)
		if i == 0 {
			flags |= proto.FlagFirst
		}
		if last {
			flags |= proto.FlagLast
		}
		if err := s.writeBatch(st, req.ReqID, req.Page, flags, covers, pb.data, met, slp); err != nil {
			return err
		}
		sent |= covers
	}
	return nil
}

// writeBatch emits one TSubpageBatch covering the given valid bits: the
// frame header and run table build into the connection's reused scratch
// buffer, and the page data rides as scatter-gather ranges straight out
// of the (refcount-pinned) page buffer — no per-batch copies, no
// per-batch allocations.
func (s *Server) writeBatch(st *connState, reqID, page uint64, flags uint8, covers memmodel.Bitmap, data []byte, met serverMetrics, slp *sleeper) error {
	st.runs = st.runs[:0]
	st.brs = appendBitmapRuns(st.brs[:0], covers)
	bytes := 0
	for _, run := range st.brs {
		st.runs = append(st.runs, proto.SubpageRun{Off: uint32(run.start), Data: data[run.start:run.end]})
		bytes += run.end - run.start
	}
	hdr, err := proto.AppendSubpageBatchFrame(st.hdr[:0], reqID, page, flags, st.runs)
	if err != nil {
		return err
	}
	st.hdr = hdr
	st.bufs = st.bufs[:0]
	st.bufs = append(st.bufs, hdr)
	for _, r := range st.runs {
		st.bufs = append(st.bufs, r.Data)
	}
	s.wireDelay(slp, bytes)
	bufs := st.bufs // WriteTo consumes its receiver; keep st.bufs's backing array
	if _, err := bufs.WriteTo(st.conn); err != nil {
		return err
	}
	met.bytesOut.Add(int64(bytes))
	return nil
}

// byteRun is a contiguous valid range within a page.
type byteRun struct{ start, end int }

func (r byteRun) contains(off int) bool { return off >= r.start && off < r.end }

// bitmapRuns converts a valid-bit set into contiguous byte ranges.
func bitmapRuns(b memmodel.Bitmap) []byteRun { return appendBitmapRuns(nil, b) }

// appendBitmapRuns is the allocation-free form: runs append into dst.
func appendBitmapRuns(dst []byteRun, b memmodel.Bitmap) []byteRun {
	runs := dst
	inRun := false
	var start int
	for i := 0; i < units.ValidBitsPerPage; i++ {
		set := b&(1<<i) != 0
		switch {
		case set && !inRun:
			start = i * units.MinSubpage
			inRun = true
		case !set && inRun:
			runs = append(runs, byteRun{start, i * units.MinSubpage})
			inRun = false
		}
	}
	if inRun {
		runs = append(runs, byteRun{start, units.PageSize})
	}
	return runs
}
